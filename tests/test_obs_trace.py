"""repro.obs.trace: nesting, exception safety, disabled-mode cost, export.

The disabled-mode tests pin the subsystem's core contract: with no
collector installed, ``span(...)`` must return one shared singleton (no
per-call allocation), so instrumented per-chunk loops cost nothing when
``REPRO_TRACE`` is unset.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tracemalloc

import pytest

from repro.obs import (
    Span,
    TraceCollector,
    chrome_trace,
    current_collector,
    span,
    tracing,
    tracing_enabled,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import _NULL_SPAN


class TestDisabledMode:
    def test_disabled_by_default(self):
        assert not tracing_enabled()
        assert current_collector() is None

    def test_null_span_singleton(self):
        # The no-allocation property: every disabled span() call returns
        # the *same* object, so the hot path never constructs anything.
        a = span("engine.chunk", cat="sssp", sources=32)
        b = span("completely.different")
        assert a is b is _NULL_SPAN

    def test_null_span_is_inert(self):
        with span("x", cat="y", k=1) as s:
            assert s.set(more=2) is s  # set() chains but records nothing

    def test_no_allocation_on_hot_path(self):
        # 50k disabled spans must not grow traced memory beyond noise
        # (interned ints, tracemalloc bookkeeping).
        def burn():
            for _ in range(50_000):
                with span("hot.loop", cat="bench"):
                    pass

        burn()  # warm caches outside the measurement window
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            burn()
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before < 16_384, f"disabled spans allocated {after - before} B"


class TestNesting:
    def test_depths_and_order(self):
        with tracing() as tr:
            with span("outer", cat="t"):
                with span("inner", cat="t"):
                    pass
                with span("inner2", cat="t"):
                    pass
        names = {s.name: s for s in tr.spans}
        assert names["outer"].depth == 0
        assert names["inner"].depth == 1
        assert names["inner2"].depth == 1
        # Children close before their parent, so they are recorded first.
        assert [s.name for s in tr.spans] == ["inner", "inner2", "outer"]

    def test_span_tree_containment(self):
        with tracing() as tr:
            with span("root"):
                with span("child"):
                    with span("grandchild"):
                        pass
            with span("root2"):
                pass
        roots = tr.span_tree()
        assert [n["span"].name for n in roots] == ["root", "root2"]
        child = roots[0]["children"][0]
        assert child["span"].name == "child"
        assert child["children"][0]["span"].name == "grandchild"

    def test_set_attaches_args(self):
        with tracing() as tr:
            with span("work", cat="t", fixed=1) as s:
                s.set(late=2)
        (sp,) = tr.spans
        assert sp.args == {"fixed": 1, "late": 2}

    def test_by_name_and_total(self):
        with tracing() as tr:
            for _ in range(3):
                with span("phase"):
                    pass
        assert len(tr.by_name()["phase"]) == 3
        assert tr.total_ns("phase") == sum(s.dur_ns for s in tr.spans)
        assert tr.total_ns("absent") == 0


class TestSpanTreeEdgeCases:
    """Degenerate geometries the containment sweep must not mangle.

    These are the same shapes the critical-path analyzer walks
    (``repro.obs.critpath`` reuses the sort/sweep), so the tree contract
    here is what lets that analysis degrade gracefully downstream.
    """

    @staticmethod
    def _ingest(*spans: Span) -> TraceCollector:
        tr = TraceCollector()
        tr.ingest([s.to_tuple() for s in spans])
        return tr

    @staticmethod
    def _mk(name, start, dur, pid=1, tid=1, depth=0, args=None):
        return Span(name=name, cat="t", start_ns=start, dur_ns=dur,
                    pid=pid, tid=tid, depth=depth, args=args or {})

    def test_zero_duration_span_nests_inside_cover(self):
        tr = self._ingest(
            self._mk("cover", 0, 100),
            self._mk("instant", 50, 0),
        )
        (root,) = tr.span_tree()
        assert root["span"].name == "cover"
        (child,) = root["children"]
        assert child["span"].name == "instant"
        assert child["span"].dur_ns == 0

    def test_zero_duration_span_alone_is_a_root(self):
        tr = self._ingest(self._mk("instant", 7, 0))
        (root,) = tr.span_tree()
        assert root["span"].name == "instant"
        assert root["children"] == []

    def test_identical_start_times_longer_span_contains_shorter(self):
        # Same start on one track: the (start, -dur) sort makes the
        # longer span the parent, never a sibling overlap.
        tr = self._ingest(
            self._mk("long", 10, 100),
            self._mk("short", 10, 40),
        )
        (root,) = tr.span_tree()
        assert root["span"].name == "long"
        assert [c["span"].name for c in root["children"]] == ["short"]

    def test_identical_start_and_duration_nest_deterministically(self):
        tr = self._ingest(
            self._mk("twin_a", 10, 50),
            self._mk("twin_b", 10, 50),
        )
        roots = tr.span_tree()
        assert len(roots) == 1  # one nests under the other, no fork
        (child,) = roots[0]["children"]
        assert {roots[0]["span"].name, child["span"].name} == {
            "twin_a", "twin_b"
        }

    def test_orphan_worker_span_stays_own_root(self):
        # A worker_chunk from another pid with no dispatch bracket in the
        # trace (crash-degraded run / torn file): its track has no cover,
        # so it must surface as a root rather than attach anywhere.
        tr = self._ingest(
            self._mk("parallel.dispatch", 0, 100, pid=1),
            self._mk("parallel.worker_chunk", 200, 50, pid=2,
                     args={"dispatch": 99, "chunk": 0}),
        )
        roots = tr.span_tree()
        assert {n["span"].name for n in roots} == {
            "parallel.dispatch", "parallel.worker_chunk"
        }


class TestExceptionSafety:
    def test_raising_span_is_recorded_with_error_tag(self):
        with tracing() as tr:
            with pytest.raises(RuntimeError):
                with span("doomed", cat="t"):
                    raise RuntimeError("boom")
        (sp,) = tr.spans
        assert sp.name == "doomed"
        assert sp.args["error"] == "RuntimeError"

    def test_stack_unwinds_once(self):
        # A crashing inner phase must not shift its siblings' depths.
        with tracing() as tr:
            with span("outer"):
                with pytest.raises(ValueError):
                    with span("bad"):
                        raise ValueError
                with span("sibling"):
                    pass
        names = {s.name: s for s in tr.spans}
        assert names["bad"].depth == 1
        assert names["sibling"].depth == 1
        assert names["outer"].depth == 0


class TestTracingContextManager:
    def test_installs_and_restores(self):
        assert current_collector() is None
        with tracing() as tr:
            assert tracing_enabled()
            assert current_collector() is tr
        assert current_collector() is None

    def test_nesting_restores_previous(self):
        with tracing() as outer_tr:
            with tracing() as inner_tr:
                with span("inner.only"):
                    pass
            assert current_collector() is outer_tr
            with span("outer.only"):
                pass
        assert [s.name for s in inner_tr.spans] == ["inner.only"]
        assert [s.name for s in outer_tr.spans] == ["outer.only"]


class TestCrossProcessIngest:
    def test_roundtrip_tuples(self):
        remote = TraceCollector()
        with tracing(remote):
            with span("worker.chunk", cat="parallel", sources=8):
                pass
        payload = remote.export_spans()
        assert all(isinstance(t, tuple) for t in payload)
        local = TraceCollector()
        local.ingest(payload)
        (sp,) = local.spans
        assert isinstance(sp, Span)
        assert sp.name == "worker.chunk" and sp.args == {"sources": 8}

    def test_ingested_pid_becomes_own_track(self):
        local = TraceCollector()
        fake = Span(name="remote", cat="t", start_ns=0, dur_ns=10,
                    pid=os.getpid() + 1, tid=1, depth=0, args={})
        local.ingest([fake.to_tuple()])
        with tracing(local):
            with span("local.root"):
                pass
        roots = local.span_tree()
        assert {n["span"].name for n in roots} == {"remote", "local.root"}


class TestChromeExport:
    def test_schema_valid_and_rebased(self, tmp_path):
        with tracing() as tr:
            with span("a", cat="t", k=1):
                with span("b", cat="t"):
                    pass
        doc = chrome_trace(tr)
        assert validate_chrome_trace(doc) == []
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"a", "b"}
        assert all(e["ts"] >= 0 for e in xs)  # re-based to the origin
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in metas)
        path = write_chrome_trace(tr, str(tmp_path / "trace.json"))
        on_disk = json.loads(open(path).read())
        assert validate_chrome_trace(on_disk) == []

    def test_validator_rejects_garbage(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
        bad = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 1,
                                "ts": -5, "dur": "long"}]}
        problems = validate_chrome_trace(bad)
        assert any("ts" in p for p in problems)
        assert any("dur" in p for p in problems)
        bad_ph = {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1, "tid": 1}]}
        assert any("phase" in p for p in problems) or validate_chrome_trace(bad_ph)


class TestEnvKnob:
    def test_repro_trace_path_dumps_at_exit(self, tmp_path):
        out = tmp_path / "ambient.json"
        code = (
            "from repro.obs import tracing_enabled, span\n"
            "assert tracing_enabled()\n"
            "with span('env.phase', cat='t'):\n"
            "    pass\n"
        )
        env = dict(os.environ, REPRO_TRACE=str(out))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert any(e["name"] == "env.phase" for e in doc["traceEvents"])

    def test_repro_trace_falsy_stays_disabled(self):
        code = (
            "from repro.obs import tracing_enabled\n"
            "assert not tracing_enabled()\n"
        )
        env = dict(os.environ, REPRO_TRACE="0")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
