"""Packed GF(2) algebra, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcb import gf2

DIMS = st.integers(min_value=1, max_value=200)


@st.composite
def bit_vector(draw, f=None):
    if f is None:
        f = draw(DIMS)
    bits = draw(st.lists(st.booleans(), min_size=f, max_size=f))
    return np.asarray(bits, dtype=bool)


class TestPacking:
    @given(bit_vector())
    @settings(max_examples=80)
    def test_pack_unpack_roundtrip(self, bits):
        assert np.array_equal(gf2.unpack(gf2.pack(bits), bits.size), bits)

    @given(bit_vector())
    @settings(max_examples=50)
    def test_get_bit_matches(self, bits):
        v = gf2.pack(bits)
        for i in range(bits.size):
            assert gf2.get_bit(v, i) == int(bits[i])

    def test_word_boundaries(self):
        for f in (63, 64, 65, 127, 128, 129):
            bits = np.zeros(f, dtype=bool)
            bits[f - 1] = True
            v = gf2.pack(bits)
            assert v.size == gf2.n_words(f)
            assert gf2.get_bit(v, f - 1) == 1

    def test_set_bit(self):
        v = gf2.zeros(100)
        gf2.set_bit(v, 77)
        assert gf2.get_bit(v, 77) == 1
        gf2.set_bit(v, 77, 0)
        assert gf2.get_bit(v, 77) == 0

    def test_unit_vector(self):
        for i in (0, 63, 64, 99):
            u = gf2.unit(100, i)
            assert gf2.unpack(u, 100).sum() == 1
            assert gf2.get_bit(u, i) == 1

    @pytest.mark.parametrize("f", [63, 64, 65])
    def test_pack_random_bits_at_word_boundary(self, f):
        # Regression: the old non-multiple-of-8 fallback went through
        # tobytes().ljust and could misalign dense random payloads around
        # the 64-bit word boundary.
        rng = np.random.default_rng(f)
        for _ in range(10):
            bits = rng.integers(0, 2, size=f).astype(bool)
            v = gf2.pack(bits)
            assert v.size == gf2.n_words(f)
            assert np.array_equal(gf2.unpack(v, f), bits)
            # Padding bits beyond f must be zero (rank/dot rely on it).
            tail = np.unpackbits(
                np.ascontiguousarray(v).view(np.uint8), bitorder="little"
            )[f:]
            assert not tail.any()


class TestAlgebra:
    @given(bit_vector(f=100), bit_vector(f=100))
    @settings(max_examples=60)
    def test_dot_matches_definition(self, a, b):
        assert gf2.dot(gf2.pack(a), gf2.pack(b)) == int(np.sum(a & b) % 2)

    @given(bit_vector(f=70), bit_vector(f=70))
    @settings(max_examples=40)
    def test_xor_matches_definition(self, a, b):
        va, vb = gf2.pack(a), gf2.pack(b)
        gf2.xor_inplace(va, vb)
        assert np.array_equal(gf2.unpack(va, 70), a ^ b)

    @given(bit_vector(f=90))
    @settings(max_examples=30)
    def test_self_xor_is_zero(self, a):
        v = gf2.pack(a)
        gf2.xor_inplace(v, v.copy())
        assert not gf2.unpack(v, 90).any()

    def test_dot_many_rows(self):
        rng = np.random.default_rng(1)
        mat_bits = rng.integers(0, 2, size=(20, 130)).astype(bool)
        v_bits = rng.integers(0, 2, size=130).astype(bool)
        mat = np.stack([gf2.pack(row) for row in mat_bits])
        v = gf2.pack(v_bits)
        got = gf2.dot_many(mat, v)
        want = (mat_bits & v_bits).sum(axis=1) % 2
        assert np.array_equal(got, want.astype(np.uint8))

    def test_dot_many_empty(self):
        mat = np.zeros((0, 2), dtype=np.uint64)
        assert gf2.dot_many(mat, gf2.zeros(100)).shape == (0,)

    @pytest.mark.parametrize("f", [1, 63, 64, 65, 130])
    def test_identity(self, f):
        mat = gf2.identity(f)
        assert mat.shape == (f, gf2.n_words(f))
        for i in range(f):
            assert np.array_equal(mat[i], gf2.unit(f, i))
        assert gf2.rank(mat) == f

    def test_xor_many_matches_definition(self):
        rng = np.random.default_rng(3)
        f = 77
        mat_bits = rng.integers(0, 2, size=(15, f)).astype(bool)
        v_bits = rng.integers(0, 2, size=f).astype(bool)
        mask = rng.integers(0, 2, size=15).astype(np.uint8)
        mat = np.stack([gf2.pack(r) for r in mat_bits])
        gf2.xor_many(mat, mask, gf2.pack(v_bits))
        for i in range(15):
            want = mat_bits[i] ^ v_bits if mask[i] else mat_bits[i]
            assert np.array_equal(gf2.unpack(mat[i], f), want)

    def test_pivot_update_matches_scalar_loop(self):
        rng = np.random.default_rng(4)
        f = 100
        mat_bits = rng.integers(0, 2, size=(12, f)).astype(bool)
        c_bits = rng.integers(0, 2, size=f).astype(bool)
        p_bits = rng.integers(0, 2, size=f).astype(bool)
        mat = np.stack([gf2.pack(r) for r in mat_bits])
        ref = mat.copy()
        c_vec, pivot = gf2.pack(c_bits), gf2.pack(p_bits)
        odd = gf2.pivot_update(mat, c_vec, pivot)
        # Scalar reference: xor the pivot into every row odd against c.
        want_odd = np.zeros(12, dtype=np.uint8)
        for i in range(12):
            if gf2.dot(ref[i], c_vec):
                want_odd[i] = 1
                gf2.xor_inplace(ref[i], pivot)
        assert np.array_equal(odd, want_odd)
        assert np.array_equal(mat, ref)

    def test_pivot_update_empty_block(self):
        mat = np.zeros((0, 2), dtype=np.uint64)
        odd = gf2.pivot_update(mat, gf2.zeros(100), gf2.zeros(100))
        assert odd.shape == (0,)


class TestRank:
    def test_identity_full_rank(self):
        rows = np.stack([gf2.unit(80, i) for i in range(80)])
        assert gf2.rank(rows) == 80
        assert gf2.is_independent(rows)

    def test_duplicate_rows_dependent(self):
        v = gf2.pack(np.array([1, 0, 1, 1], dtype=bool))
        rows = np.stack([v, v.copy()])
        assert gf2.rank(rows) == 1
        assert not gf2.is_independent(rows)

    def test_xor_closure_dependent(self):
        rng = np.random.default_rng(2)
        a = gf2.pack(rng.integers(0, 2, 50).astype(bool))
        b = gf2.pack(rng.integers(0, 2, 50).astype(bool))
        c = a ^ b
        assert gf2.rank(np.stack([a, b, c])) == 2

    def test_zero_row(self):
        rows = np.stack([gf2.zeros(10), gf2.unit(10, 3)])
        assert gf2.rank(rows) == 1

    def test_empty_matrix(self):
        assert gf2.rank(np.zeros((0, 1), dtype=np.uint64)) == 0

    @given(st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_rank_invariant_under_row_ops(self, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(8, 40)).astype(bool)
        rows = np.stack([gf2.pack(r) for r in bits])
        r1 = gf2.rank(rows)
        # xor row 0 into row 1 (elementary op) preserves rank
        mod = rows.copy()
        mod[1] ^= mod[0]
        assert gf2.rank(mod) == r1


class TestPopcountFallback:
    """The byte-table fallback must match ``np.bitwise_count`` bit for bit
    (it is what runs on numpy < 2.0, below the pyproject floor check)."""

    def _reload_without_bitwise_count(self, monkeypatch):
        import importlib

        monkeypatch.delattr(np, "bitwise_count")
        return importlib.reload(gf2)

    def test_fallback_selected_and_consistent(self, monkeypatch):
        import importlib

        bitwise_count = np.bitwise_count  # keep a handle past the delattr
        try:
            mod = self._reload_without_bitwise_count(monkeypatch)
            assert mod._popcount is not bitwise_count
            rng = np.random.default_rng(3)
            words = rng.integers(0, 2**63, size=(6, 4)).astype(np.uint64)
            want = bitwise_count(words)
            assert np.array_equal(mod._popcount(words).astype(np.uint8), want)
            # dot / dot_many / rank keep working through the fallback.
            a = mod.pack(rng.integers(0, 2, 70).astype(bool))
            b = mod.pack(rng.integers(0, 2, 70).astype(bool))
            assert mod.dot(a, b) == int((bitwise_count(a & b).sum()) & 1)
            mat = np.stack([a, b, a ^ b])
            assert mod.rank(mat, f=70) == 2
        finally:
            monkeypatch.undo()
            importlib.reload(gf2)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_table_matches_bitwise_count(self, seed):
        # Exercise the table construction directly, independent of the
        # module-import branch.
        pop8 = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(
            axis=1, dtype=np.uint8
        )
        rng = np.random.default_rng(seed)
        words = rng.integers(0, 2**63, size=8).astype(np.uint64)
        by = words.view(np.uint8)
        got = pop8[by].reshape(8, 8).sum(axis=-1)
        assert np.array_equal(got, np.bitwise_count(words))


class TestRankColumnBound:
    """``rank(rows, f=...)`` must ignore padded columns past ``f`` and agree
    with the unbounded scan on clean inputs."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_bound_matches_unbounded(self, seed):
        rng = np.random.default_rng(seed)
        f = int(rng.integers(1, 90))
        bits = rng.integers(0, 2, size=(6, f)).astype(bool)
        rows = np.stack([gf2.pack(r) for r in bits])
        assert gf2.rank(rows, f=f) == gf2.rank(rows)

    def test_padding_garbage_ignored(self):
        # Rows identical on the first f coordinates but differing in the
        # padding must not count as independent when the scan is bounded.
        f = 10
        a = gf2.pack(np.ones(f, dtype=bool))
        b = a.copy()
        b[0] |= np.uint64(1) << np.uint64(60)  # garbage past column f
        rows = np.stack([a, b])
        assert gf2.rank(rows, f=f) == 1
        assert gf2.rank(rows) == 2
        assert not gf2.is_independent(rows, f=f)

    def test_sparse_column_jump(self):
        # Pivots only at far-apart columns: the OR-reduce jump must find
        # them without scanning the zero runs.
        f = 190
        rows = np.stack([gf2.unit(f, 3), gf2.unit(f, 130), gf2.unit(f, 189)])
        assert gf2.rank(rows, f=f) == 3
