"""Packed GF(2) algebra, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcb import gf2

DIMS = st.integers(min_value=1, max_value=200)


@st.composite
def bit_vector(draw, f=None):
    if f is None:
        f = draw(DIMS)
    bits = draw(st.lists(st.booleans(), min_size=f, max_size=f))
    return np.asarray(bits, dtype=bool)


class TestPacking:
    @given(bit_vector())
    @settings(max_examples=80)
    def test_pack_unpack_roundtrip(self, bits):
        assert np.array_equal(gf2.unpack(gf2.pack(bits), bits.size), bits)

    @given(bit_vector())
    @settings(max_examples=50)
    def test_get_bit_matches(self, bits):
        v = gf2.pack(bits)
        for i in range(bits.size):
            assert gf2.get_bit(v, i) == int(bits[i])

    def test_word_boundaries(self):
        for f in (63, 64, 65, 127, 128, 129):
            bits = np.zeros(f, dtype=bool)
            bits[f - 1] = True
            v = gf2.pack(bits)
            assert v.size == gf2.n_words(f)
            assert gf2.get_bit(v, f - 1) == 1

    def test_set_bit(self):
        v = gf2.zeros(100)
        gf2.set_bit(v, 77)
        assert gf2.get_bit(v, 77) == 1
        gf2.set_bit(v, 77, 0)
        assert gf2.get_bit(v, 77) == 0

    def test_unit_vector(self):
        for i in (0, 63, 64, 99):
            u = gf2.unit(100, i)
            assert gf2.unpack(u, 100).sum() == 1
            assert gf2.get_bit(u, i) == 1

    @pytest.mark.parametrize("f", [63, 64, 65])
    def test_pack_random_bits_at_word_boundary(self, f):
        # Regression: the old non-multiple-of-8 fallback went through
        # tobytes().ljust and could misalign dense random payloads around
        # the 64-bit word boundary.
        rng = np.random.default_rng(f)
        for _ in range(10):
            bits = rng.integers(0, 2, size=f).astype(bool)
            v = gf2.pack(bits)
            assert v.size == gf2.n_words(f)
            assert np.array_equal(gf2.unpack(v, f), bits)
            # Padding bits beyond f must be zero (rank/dot rely on it).
            tail = np.unpackbits(
                np.ascontiguousarray(v).view(np.uint8), bitorder="little"
            )[f:]
            assert not tail.any()


class TestAlgebra:
    @given(bit_vector(f=100), bit_vector(f=100))
    @settings(max_examples=60)
    def test_dot_matches_definition(self, a, b):
        assert gf2.dot(gf2.pack(a), gf2.pack(b)) == int(np.sum(a & b) % 2)

    @given(bit_vector(f=70), bit_vector(f=70))
    @settings(max_examples=40)
    def test_xor_matches_definition(self, a, b):
        va, vb = gf2.pack(a), gf2.pack(b)
        gf2.xor_inplace(va, vb)
        assert np.array_equal(gf2.unpack(va, 70), a ^ b)

    @given(bit_vector(f=90))
    @settings(max_examples=30)
    def test_self_xor_is_zero(self, a):
        v = gf2.pack(a)
        gf2.xor_inplace(v, v.copy())
        assert not gf2.unpack(v, 90).any()

    def test_dot_many_rows(self):
        rng = np.random.default_rng(1)
        mat_bits = rng.integers(0, 2, size=(20, 130)).astype(bool)
        v_bits = rng.integers(0, 2, size=130).astype(bool)
        mat = np.stack([gf2.pack(row) for row in mat_bits])
        v = gf2.pack(v_bits)
        got = gf2.dot_many(mat, v)
        want = (mat_bits & v_bits).sum(axis=1) % 2
        assert np.array_equal(got, want.astype(np.uint8))

    def test_dot_many_empty(self):
        mat = np.zeros((0, 2), dtype=np.uint64)
        assert gf2.dot_many(mat, gf2.zeros(100)).shape == (0,)

    @pytest.mark.parametrize("f", [1, 63, 64, 65, 130])
    def test_identity(self, f):
        mat = gf2.identity(f)
        assert mat.shape == (f, gf2.n_words(f))
        for i in range(f):
            assert np.array_equal(mat[i], gf2.unit(f, i))
        assert gf2.rank(mat) == f

    def test_xor_many_matches_definition(self):
        rng = np.random.default_rng(3)
        f = 77
        mat_bits = rng.integers(0, 2, size=(15, f)).astype(bool)
        v_bits = rng.integers(0, 2, size=f).astype(bool)
        mask = rng.integers(0, 2, size=15).astype(np.uint8)
        mat = np.stack([gf2.pack(r) for r in mat_bits])
        gf2.xor_many(mat, mask, gf2.pack(v_bits))
        for i in range(15):
            want = mat_bits[i] ^ v_bits if mask[i] else mat_bits[i]
            assert np.array_equal(gf2.unpack(mat[i], f), want)

    def test_pivot_update_matches_scalar_loop(self):
        rng = np.random.default_rng(4)
        f = 100
        mat_bits = rng.integers(0, 2, size=(12, f)).astype(bool)
        c_bits = rng.integers(0, 2, size=f).astype(bool)
        p_bits = rng.integers(0, 2, size=f).astype(bool)
        mat = np.stack([gf2.pack(r) for r in mat_bits])
        ref = mat.copy()
        c_vec, pivot = gf2.pack(c_bits), gf2.pack(p_bits)
        odd = gf2.pivot_update(mat, c_vec, pivot)
        # Scalar reference: xor the pivot into every row odd against c.
        want_odd = np.zeros(12, dtype=np.uint8)
        for i in range(12):
            if gf2.dot(ref[i], c_vec):
                want_odd[i] = 1
                gf2.xor_inplace(ref[i], pivot)
        assert np.array_equal(odd, want_odd)
        assert np.array_equal(mat, ref)

    def test_pivot_update_empty_block(self):
        mat = np.zeros((0, 2), dtype=np.uint64)
        odd = gf2.pivot_update(mat, gf2.zeros(100), gf2.zeros(100))
        assert odd.shape == (0,)


class TestRank:
    def test_identity_full_rank(self):
        rows = np.stack([gf2.unit(80, i) for i in range(80)])
        assert gf2.rank(rows) == 80
        assert gf2.is_independent(rows)

    def test_duplicate_rows_dependent(self):
        v = gf2.pack(np.array([1, 0, 1, 1], dtype=bool))
        rows = np.stack([v, v.copy()])
        assert gf2.rank(rows) == 1
        assert not gf2.is_independent(rows)

    def test_xor_closure_dependent(self):
        rng = np.random.default_rng(2)
        a = gf2.pack(rng.integers(0, 2, 50).astype(bool))
        b = gf2.pack(rng.integers(0, 2, 50).astype(bool))
        c = a ^ b
        assert gf2.rank(np.stack([a, b, c])) == 2

    def test_zero_row(self):
        rows = np.stack([gf2.zeros(10), gf2.unit(10, 3)])
        assert gf2.rank(rows) == 1

    def test_empty_matrix(self):
        assert gf2.rank(np.zeros((0, 1), dtype=np.uint64)) == 0

    @given(st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_rank_invariant_under_row_ops(self, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(8, 40)).astype(bool)
        rows = np.stack([gf2.pack(r) for r in bits])
        r1 = gf2.rank(rows)
        # xor row 0 into row 1 (elementary op) preserves rank
        mod = rows.copy()
        mod[1] ^= mod[0]
        assert gf2.rank(mod) == r1
