"""Doc drift: the counter table in docs/OBSERVABILITY.md vs reality.

The "Key instruments" table documents every counter the instrumented
paths emit.  Tables rot silently: a new counter lands in code, the doc
row doesn't, and the observability contract quietly narrows.  This
suite closes the loop in both directions:

* **emitted => documented** — run a smoke workload spanning the oracle
  serving path (build, ``query_many``, ``explain_many``, a sampler
  window), and assert every counter that moved appears in the table;
* **documented => emitted** — for the families this PR owns
  (``bulk_query.``, ``provenance.``, ``sampler.``), assert every
  documented name actually moves, so stale rows fail too.

Table rows pack sibling names as ``` `bulk_query.batches` / `.pairs` ```;
a bare ``.suffix`` continuation expands against the preceding full name.
"""

from __future__ import annotations

import re
import time
from pathlib import Path

import numpy as np
import pytest

from repro.apsp.oracle import DistanceOracle
from repro.apsp.reduced_oracle import ReducedDistanceOracle
from repro.obs.metrics import Counter, registry, snapshot
from repro.obs.sampler import StackSampler, read_profile
from repro.qa import strategies

DOC = Path(__file__).resolve().parent.parent / "docs" / "OBSERVABILITY.md"

# The families this suite asserts are *exhaustively* documented-and-live.
# Other families (mcb.*, delta.*, parallel.*...) have workload-specific
# triggers and are covered by the emitted=>documented direction only.
OWNED_PREFIXES = ("bulk_query.", "critpath.", "provenance.", "sampler.")

_NAME_RE = re.compile(r"`([^`]+)`")
_METRIC_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")


def documented_counters() -> set[str]:
    """Counter names from the "Key instruments" metric table.

    Parses every markdown row whose Kind column says ``counter``, pulls
    the backticked tokens out of the Metric column, and expands bare
    ``.suffix`` continuations against the previous full name (matching
    the suffix's component count, so ``a.b.c`` / ``.d`` -> ``a.b.d``).
    """
    names: set[str] = set()
    for line in DOC.read_text().splitlines():
        if not line.lstrip().startswith("|"):
            continue
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) < 3 or cells[1] != "counter":
            continue
        prev = None
        for token in _NAME_RE.findall(cells[0]):
            if token.startswith("."):
                assert prev is not None, f"dangling continuation {token!r}"
                parts = token[1:].split(".")
                full = prev.rsplit(".", len(parts))[0] + token
            else:
                full = token
            assert _METRIC_RE.match(full), (
                f"unparseable metric token {token!r} (line: {line!r})"
            )
            names.add(full)
            prev = full
    return names


def _all_pairs(n: int) -> np.ndarray:
    uu, vv = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return np.column_stack([uu.ravel(), vv.ravel()]).astype(np.int64)


def _run_smoke_workload(tmp_path: Path) -> None:
    """Touch every owned counter family once, for real.

    star_of_cycles drives same-bcc / cross-bcc / component-group
    traffic, the disconnected graph drives unreachable pairs, both
    oracles run query_many *and* explain_many, a live sampler window
    drives ``sampler.samples``, and a deliberately malformed shard
    drives ``sampler.errors`` through ``read_profile``'s tolerant merge.
    """
    graphs = [
        strategies.star_of_cycles(arms=3, cycle_len=4, seed=5),
        strategies.disconnected_graph(3, 4, isolated=1, seed=5),
    ]
    for g in graphs:
        pairs = _all_pairs(g.n)
        for oracle_cls in (DistanceOracle, ReducedDistanceOracle):
            o = oracle_cls(g)
            o.query_many(pairs)
            o.explain_many(pairs)

    s = StackSampler(hz=500).start()
    try:
        deadline = time.monotonic() + 5.0
        while s.samples == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
    finally:
        s.stop()
    assert s.samples > 0, "sampler took no stack snapshots within 5s"

    bad = tmp_path / "drift-profile"
    bad.mkdir()
    (bad / "profile-1.collapsed").write_text("frame;frame not_a_count\n")
    read_profile(bad)

    # critpath.*: one analysis over a synthetic trace that carries both a
    # fabricated straggler (finishes 1/1/1/50 ms inside one dispatch) and
    # an orphan worker chunk with no dispatch bracket, so the analyses /
    # stragglers / orphans counters all move in a single pass.
    from repro.obs.critpath import analyze_collector
    from repro.obs.trace import Span, TraceCollector

    ms = 1_000_000
    tr = TraceCollector()
    tr.ingest(
        [
            Span(name="parallel.dispatch", cat="parallel", start_ns=0,
                 dur_ns=51 * ms, pid=1, tid=1, depth=0,
                 args={"dispatch": 1, "workers": 4}).to_tuple(),
            *(
                Span(name="parallel.worker_chunk", cat="parallel",
                     start_ns=0, dur_ns=dur * ms, pid=10 + i, tid=1,
                     depth=0, args={"dispatch": 1, "chunk": i}).to_tuple()
                for i, dur in enumerate((1, 1, 1, 50))
            ),
            Span(name="parallel.worker_chunk", cat="parallel",
                 start_ns=60 * ms, dur_ns=ms, pid=99, tid=1, depth=0,
                 args={"dispatch": 777, "chunk": 0}).to_tuple(),
        ]
    )
    res = analyze_collector(tr)
    assert res.stragglers and res.orphans, "drift workload lost its shape"


def _counter_names() -> set[str]:
    # Instrument kinds aren't visible in a snapshot alone (a gauge set
    # to an int is indistinguishable from a counter), so ask the
    # registry which names are genuinely Counter instruments.
    return {
        name
        for name, inst in registry()._instruments.items()
        if isinstance(inst, Counter)
    }


class TestCounterTableParser:
    def test_expands_suffix_continuations(self):
        doc = documented_counters()
        assert "bulk_query.batches" in doc
        assert "bulk_query.pairs" in doc          # from `.pairs`
        assert "engine.adj_cache.hits" in doc
        assert "engine.adj_cache.misses" in doc   # from `.misses`
        assert "provenance.explains" in doc
        assert "sampler.errors" in doc
        assert not any(n.startswith(".") for n in doc)

    def test_gauge_rows_excluded(self):
        doc = documented_counters()
        assert "parallel.workers" not in doc      # documented as gauge
        assert not any(n.startswith("memory.") for n in doc)


class TestDocDrift:
    @pytest.fixture(scope="class")
    def drift(self, tmp_path_factory):
        before = snapshot()
        _run_smoke_workload(tmp_path_factory.mktemp("drift"))
        after = snapshot()
        counters = _counter_names()
        emitted = {
            name
            for name, val in after.items()
            if name in counters and val > before.get(name, 0)
        }
        return emitted, documented_counters()

    def test_emitted_counters_are_documented(self, drift):
        emitted, documented = drift
        undocumented = emitted - documented
        assert not undocumented, (
            "counters emitted by the serving-path workload but missing "
            f"from the docs/OBSERVABILITY.md metric table: "
            f"{sorted(undocumented)}"
        )

    def test_documented_owned_families_are_emitted(self, drift):
        emitted, documented = drift
        owned = {
            n for n in documented if n.startswith(OWNED_PREFIXES)
        }
        assert owned, "metric table lost the owned counter families"
        stale = owned - emitted
        assert not stale, (
            "counters documented in docs/OBSERVABILITY.md that the "
            f"workload never emitted (stale rows?): {sorted(stale)}"
        )
