"""Spanning forest structure and the E' coordinate system."""

import numpy as np
import pytest

from repro.graph import CSRGraph, cycle_graph, grid_graph, path_graph
from repro.mcb import gf2, spanning_structure

from _support import composite_graph


def test_tree_edge_count():
    g = composite_graph(0)
    ss = spanning_structure(g)
    c, _ = g.connected_components()
    assert int(ss.tree_mask.sum()) == g.n - c
    assert ss.f == g.m - g.n + c == g.cycle_space_dimension()


def test_forest_is_acyclic_and_spanning():
    g = composite_graph(2)
    ss = spanning_structure(g)
    tree = g.edge_subgraph(np.nonzero(ss.tree_mask)[0])
    c_tree, labels_tree = tree.connected_components()
    c_g, labels_g = g.connected_components()
    assert c_tree == c_g  # spans every component
    assert tree.m == tree.n - c_tree  # acyclic


def test_parent_depth_consistency():
    g = composite_graph(4)
    ss = spanning_structure(g)
    for v in range(g.n):
        p = int(ss.parent[v])
        if p == -1:
            assert ss.depth[v] == 0
        else:
            assert ss.depth[v] == ss.depth[p] + 1
            u, w = g.edge_endpoints(int(ss.parent_edge[v]))
            assert {v, p} == {u, w}


def test_self_loops_and_parallels_are_nontree(multigraph):
    ss = spanning_structure(multigraph)
    loops = np.nonzero(multigraph.edge_u == multigraph.edge_v)[0]
    assert not ss.tree_mask[loops].any()
    # of the parallel 0-1 pair, at most one can be a tree edge
    par = [e for e in range(multigraph.m)
           if {int(multigraph.edge_u[e]), int(multigraph.edge_v[e])} == {0, 1}]
    assert ss.tree_mask[par].sum() <= 1


def test_eprime_indexing_bijection():
    g = composite_graph(0)
    ss = spanning_structure(g)
    assert (ss.eprime_index[ss.eprime_edges] == np.arange(ss.f)).all()
    assert (ss.eprime_index[ss.tree_mask] == -1).all()


def test_tree_path_edges():
    g = path_graph(6)
    ss = spanning_structure(g)
    path = ss.tree_path_edges(0, 5)
    assert len(path) == 5
    assert ss.tree_path_edges(3, 3) == []


def test_tree_path_cross_components_raises():
    g = CSRGraph(4, [0, 2], [1, 3])
    ss = spanning_structure(g)
    with pytest.raises(ValueError):
        ss.tree_path_edges(0, 2)


def test_fundamental_cycle_is_cycle():
    g = grid_graph(3, 3)
    ss = spanning_structure(g)
    from repro.mcb import Cycle

    for i in range(ss.f):
        eids = ss.fundamental_cycle(i)
        cyc = Cycle(eids, float(g.edge_w[eids].sum()))
        assert cyc.is_valid_cycle(g)
        # contains exactly one non-tree edge: its own
        nontree = [e for e in eids if not ss.tree_mask[e]]
        assert nontree == [int(ss.eprime_edges[i])]


def test_fundamental_cycle_of_loop(multigraph):
    ss = spanning_structure(multigraph)
    loop_eid = int(np.nonzero(multigraph.edge_u == multigraph.edge_v)[0][0])
    i = int(ss.eprime_index[loop_eid])
    assert list(ss.fundamental_cycle(i)) == [loop_eid]


def test_restricted_vector_mod2():
    g = cycle_graph(5)
    ss = spanning_structure(g)
    # doubled edges cancel
    v = ss.restricted_vector(np.array([0, 0, 1]))
    bits = gf2.unpack(v, ss.f)
    expected = np.zeros(ss.f, dtype=bool)
    if ss.eprime_index[1] >= 0:
        expected[ss.eprime_index[1]] = True
    assert np.array_equal(bits, expected)


def test_fundamental_cycles_are_independent():
    g = composite_graph(2)
    ss = spanning_structure(g)
    if ss.f == 0:
        pytest.skip("acyclic")
    rows = np.stack([ss.restricted_vector(ss.fundamental_cycle(i)) for i in range(ss.f)])
    assert gf2.is_independent(rows)
