"""repro.scenarios: config validation, builtin library, matrix runner, gates.

The runner tests execute real (small) scenarios through the actual
engine/hetero runners — no mocks — and assert the full contract: events
land in the scenario's own directory, the SLO verdict reflects the
budgets, the ledger record carries the ``scenario`` / ``slo_verdict``
meta and the tail-percentile phases the regression gate consumes.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.ledger import Ledger
from repro.scenarios import (
    ALGORITHMS,
    BUILTIN_SPECS,
    GRAPH_FAMILIES,
    GraphSpec,
    QueryLoad,
    ScenarioConfig,
    ScenarioError,
    builtin_scenarios,
    get_scenario,
    load_config,
    run_matrix,
    run_scenario,
    render_matrix,
)


class TestGraphSpec:
    def test_builds_every_family(self):
        specs = {
            "theta": {"n_chains": 3, "chain_len": 4},
            "cactus": {"n_cycles": 3, "cycle_len": 4},
            "bridge_heavy": {"n_blocks": 3, "block_size": 4},
            "hairball": {"n": 8, "m": 14},
            "disconnected": {"n_parts": 2, "part_size": 4, "isolated": 1},
            "star_of_cycles": {"arms": 3, "cycle_len": 4},
            "grid": {"rows": 3, "cols": 3},
            "gnm": {"n": 10, "m": 14},
        }
        assert set(specs) | {"dataset"} == set(GRAPH_FAMILIES)
        for family, args in specs.items():
            g = GraphSpec.from_dict({"family": family, "args": args}).build()
            assert g.n > 0

    def test_deterministic_in_seed(self):
        spec = {"family": "gnm", "args": {"n": 12, "m": 20}, "seed": 5}
        a = GraphSpec.from_dict(spec).build()
        b = GraphSpec.from_dict(spec).build()
        assert a.n == b.n and a.m == b.m
        assert (a.weights == b.weights).all()

    def test_reweight_applied(self):
        base = GraphSpec.from_dict({"family": "grid", "args": {"rows": 4, "cols": 4}})
        tied = GraphSpec.from_dict(
            {"family": "grid", "args": {"rows": 4, "cols": 4}, "reweight": "ties"}
        )
        assert len(set(tied.build().weights)) <= len(set(base.build().weights))

    def test_unknown_family_and_keys_rejected(self):
        with pytest.raises(ScenarioError, match="family"):
            GraphSpec.from_dict({"family": "moebius"})
        with pytest.raises(ScenarioError, match="unknown key"):
            GraphSpec.from_dict({"family": "grid", "rows": 3})

    def test_bad_generator_args_fail_at_build_with_context(self):
        spec = GraphSpec.from_dict({"family": "grid", "args": {"rowz": 3}})
        with pytest.raises(ScenarioError, match="grid"):
            spec.build()


class TestScenarioConfig:
    def _minimal(self, **over):
        doc = {"name": "t", "graph": {"family": "grid", "args": {"rows": 3, "cols": 3}}}
        doc.update(over)
        return doc

    def test_minimal_defaults(self):
        cfg = ScenarioConfig.from_dict(self._minimal())
        assert cfg.algorithm == "apsp" and cfg.workers == 0
        assert cfg.queries is None and cfg.slo == () and cfg.repeats == 1

    def test_unknown_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown key"):
            ScenarioConfig.from_dict(self._minimal(deadline="nope"))

    def test_workers_require_sssp(self):
        with pytest.raises(ScenarioError, match="sssp"):
            ScenarioConfig.from_dict(self._minimal(workers=2, algorithm="apsp"))
        cfg = ScenarioConfig.from_dict(self._minimal(workers=2, algorithm="sssp"))
        assert cfg.workers == 2

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(ScenarioError, match="REPRO_FAULTS"):
            ScenarioConfig.from_dict(self._minimal(faults="worker.explode"))

    def test_bad_budget_rejected_at_load(self):
        with pytest.raises(ScenarioError, match="p99_ms"):
            ScenarioConfig.from_dict(
                self._minimal(slo=[{"metric": "query", "p99_lightyears": 1}])
            )

    def test_query_cap_enforced(self):
        with pytest.raises(ScenarioError, match="cap"):
            QueryLoad.from_dict({"count": 10_000_000})

    def test_algorithms_constant(self):
        assert ALGORITHMS == ("apsp", "mcb", "sssp")


class TestLoadConfig:
    def test_json_forms(self, tmp_path):
        single = {"name": "a", "graph": {"family": "grid", "args": {"rows": 3, "cols": 3}}}
        for doc in (single, [single], {"scenarios": [single]}):
            p = tmp_path / "c.json"
            p.write_text(json.dumps(doc))
            cfgs = load_config(p)
            assert [c.name for c in cfgs] == ["a"]

    def test_toml_when_available(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")
        del tomllib
        p = tmp_path / "c.toml"
        p.write_text(
            '[[scenarios]]\nname = "t"\nalgorithm = "apsp"\n'
            '[scenarios.graph]\nfamily = "grid"\n'
            "[scenarios.graph.args]\nrows = 3\ncols = 3\n"
        )
        cfgs = load_config(p)
        assert [c.name for c in cfgs] == ["t"]

    def test_duplicate_names_rejected(self, tmp_path):
        single = {"name": "a", "graph": {"family": "grid", "args": {"rows": 3, "cols": 3}}}
        p = tmp_path / "c.json"
        p.write_text(json.dumps([single, single]))
        with pytest.raises(ScenarioError, match="duplicate"):
            load_config(p)

    def test_invalid_json_named(self, tmp_path):
        p = tmp_path / "c.json"
        p.write_text("{nope")
        with pytest.raises(ScenarioError, match="invalid JSON"):
            load_config(p)

    def test_example_config_loads(self):
        from pathlib import Path

        example = Path(__file__).resolve().parents[1] / "examples" / "scenario_smoke.json"
        cfgs = load_config(example)
        assert len(cfgs) == 3
        assert any(c.faults for c in cfgs)  # the fault-injected smoke leg
        assert any(
            any(b.deadline_s is not None for b in c.slo) for c in cfgs
        )  # the tight-deadline leg


class TestLibrary:
    def test_all_builtins_validate(self):
        cfgs = builtin_scenarios()
        assert len(cfgs) == len(BUILTIN_SPECS) >= 6

    def test_spans_families_algorithms_and_faults(self):
        cfgs = builtin_scenarios()
        families = {c.graph.family for c in cfgs}
        assert {"theta", "cactus", "bridge_heavy", "grid"} <= families
        assert {c.algorithm for c in cfgs} == set(ALGORITHMS)
        assert any(c.faults for c in cfgs)
        assert any(any(b.deadline_s is not None for b in c.slo) for c in cfgs)

    def test_get_scenario_unknown_lists_names(self):
        with pytest.raises(ScenarioError, match="clean-theta-apsp"):
            get_scenario("not-a-scenario")


def _tiny(name="tiny", **over):
    doc = {
        "name": name,
        "graph": {"family": "theta", "args": {"n_chains": 2, "chain_len": 4}},
        "algorithm": "apsp",
        "queries": {"count": 25, "seed": 1},
        "slo": [{"metric": "query", "p99_s": 60.0}],
    }
    doc.update(over)
    return ScenarioConfig.from_dict(doc)


class TestRunScenario:
    def test_end_to_end_with_ledger(self, tmp_path):
        led = Ledger(tmp_path / "ledger.jsonl")
        res = run_scenario(_tiny(), tmp_path / "ev", ledger=led)
        assert res.ok and res.verdict == "ok"
        assert res.n_events > 0
        assert "query" in res.stats and res.stats["query"].count == 25
        rec = led.latest(kind="scenario")
        assert rec is not None
        assert rec.meta["scenario"] == "tiny"
        assert rec.meta["slo_verdict"] == "ok"
        # Tail percentiles ledgered as phases for the regression gate.
        assert "scenario.tiny.query.p99" in rec.phases
        assert "scenario.tiny.wall" in rec.phases
        # Compact critical-path summary rides along in the record meta
        # (and on the result), so scenario regressions can be attributed
        # without re-running anything.
        cp = rec.meta["critpath"]
        assert cp == res.critpath
        assert cp["length_ns"] > 0
        assert 0.0 <= cp["parallel_efficiency"] <= 1.0
        assert cp["entries"] >= 1 and isinstance(cp["top"], list)

    def test_ledger_scenario_filter(self, tmp_path):
        led = Ledger(tmp_path / "ledger.jsonl")
        run_scenario(_tiny("one"), tmp_path / "e1", ledger=led)
        run_scenario(_tiny("two"), tmp_path / "e2", ledger=led)
        assert [r.meta["scenario"] for r in led.records(scenario="one")] == ["one"]
        hist = led.phase_history(kind="scenario", scenario="two")
        assert "scenario.two.wall" in hist and "scenario.one.wall" not in hist

    def test_violated_budget_gates(self, tmp_path):
        cfg = _tiny("hot", slo=[{"metric": "query", "p99_s": 1e-12}])
        res = run_scenario(cfg, tmp_path / "ev")
        assert not res.ok and res.verdict == "violated"
        assert res.slo.exit_code == 1

    def test_absent_metric_is_no_data(self, tmp_path):
        cfg = _tiny("nodata", queries=None,
                    slo=[{"metric": "query", "p99_s": 60.0}])
        res = run_scenario(cfg, tmp_path / "ev")
        assert res.verdict == "no-data" and res.slo.exit_code == 2

    def test_fault_scenario_fires_and_passes(self, tmp_path):
        import warnings

        cfg = ScenarioConfig.from_dict({
            "name": "crashy",
            "graph": {"family": "grid", "args": {"rows": 5, "cols": 5}},
            "algorithm": "sssp",
            "workers": 2,
            # chunk_size 8 → chunks start at 0, 8, 16, 24; the crash
            # threshold of 4 guarantees the second chunk fires the fault.
            "chunk_size": 8,
            "faults": "worker.crash:4",
            "slo": [{"metric": "dispatch", "p99_s": 120.0}],
        })
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # degradation note
            res = run_scenario(cfg, tmp_path / "ev")
        assert res.ok
        kinds = set()
        from repro.obs.events import EventLog

        for ev in EventLog(tmp_path / "ev").read():
            kinds.add(ev["kind"])
        assert "fault.fired" in kinds
        assert "dispatch.finish" in kinds

    def test_matrix_and_render(self, tmp_path):
        results = run_matrix([_tiny("a"), _tiny("b")], tmp_path / "root")
        assert [r.config.name for r in results] == ["a", "b"]
        assert (tmp_path / "root" / "a").is_dir()
        out = render_matrix(results)
        assert "a" in out and "scenario matrix" in out


class TestScenariosCli:
    def test_config_run_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        cfg = tmp_path / "c.json"
        cfg.write_text(json.dumps([{
            "name": "cli-tiny",
            "graph": {"family": "theta", "args": {"n_chains": 2, "chain_len": 4}},
            "algorithm": "apsp",
            "queries": {"count": 10, "seed": 2},
            "slo": [{"metric": "query", "p99_s": 60.0}],
        }]))
        assert main([
            "scenarios", "--config", str(cfg),
            "--events-out", str(tmp_path / "ev"),
            "--ledger", str(tmp_path / "ledger.jsonl"),
        ]) == 0
        out = capsys.readouterr().out
        assert "cli-tiny" in out and "scenario matrix" in out
        assert Ledger(tmp_path / "ledger.jsonl").latest(scenario="cli-tiny")

    def test_violated_config_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        cfg = tmp_path / "c.json"
        cfg.write_text(json.dumps([{
            "name": "cli-hot",
            "graph": {"family": "theta", "args": {"n_chains": 2, "chain_len": 4}},
            "algorithm": "apsp",
            "queries": {"count": 10, "seed": 2},
            "slo": [{"metric": "query", "p99_s": 1e-12}],
        }]))
        with pytest.raises(SystemExit) as exc:
            main(["scenarios", "--config", str(cfg),
                  "--events-out", str(tmp_path / "ev")])
        assert exc.value.code == 1
        assert "SLO VIOLATED" in capsys.readouterr().out

    def test_builtin_selection(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "scenarios", "--scenario", "cactus-mcb",
            "--events-out", str(tmp_path / "ev"),
        ]) == 0
        assert "cactus-mcb" in capsys.readouterr().out


class TestReportSloPanel:
    def test_panel_renders_budgets_and_miss_timeline(self, tmp_path):
        from repro.obs.events import EventLog
        from repro.obs.report import build_report, validate_report

        led = Ledger(tmp_path / "ledger.jsonl")
        cfg = _tiny("panel", slo=[
            {"metric": "query", "p99_s": 60.0, "deadline_ms": 400.0,
             "miss_frac": 1.0},
        ])
        res = run_scenario(cfg, tmp_path / "ev", ledger=led)
        events = EventLog(tmp_path / "ev").read()
        doc = build_report(
            title="t", events=events, record=res.record, history=[res.record]
        )
        assert validate_report(doc) == []
        assert 'id="section-slo"' in doc
        assert "deadline-miss timeline" in doc
        assert "scenario verdict" in doc

    def test_panel_degrades_without_data(self):
        from repro.obs.report import build_report, validate_report

        doc = build_report(title="empty")
        assert validate_report(doc) == []
        assert 'id="section-slo"' in doc
        assert "no SLO data" in doc
