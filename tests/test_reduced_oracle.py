"""Reduced-table oracle: exactness and the stronger memory bound."""

import numpy as np
import pytest

from repro.apsp import DistanceOracle, ReducedDistanceOracle, dijkstra_apsp
from repro.graph import CSRGraph, cycle_graph, path_graph, subdivide_edges

from _support import biconnected_weighted, composite_graph


@pytest.mark.parametrize("seed", range(6))
def test_exact_on_composites(seed):
    g = composite_graph(seed)
    ro = ReducedDistanceOracle(g)
    ref = dijkstra_apsp(g)
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, g.n, size=(300, 2))
    got = ro.query_many(pairs)
    want = ref[pairs[:, 0], pairs[:, 1]]
    assert np.allclose(
        np.nan_to_num(got, posinf=-1), np.nan_to_num(want, posinf=-1), atol=1e-8
    )


def test_exact_all_pairs_small():
    g = subdivide_edges(biconnected_weighted(1, n=12, extra=6), 0.6, seed=1)
    ro = ReducedDistanceOracle(g)
    ref = dijkstra_apsp(g)
    for u in range(g.n):
        for v in range(g.n):
            q, r = ro.query(u, v), ref[u, v]
            assert (np.isinf(q) and np.isinf(r)) or abs(q - r) < 1e-8, (u, v)


def test_memory_never_exceeds_full_oracle():
    for seed in range(3):
        g = composite_graph(seed)
        assert (
            ReducedDistanceOracle(g).memory_bytes()
            <= DistanceOracle(g).memory_bytes()
        )


def test_memory_saves_on_chain_heavy_graphs():
    g = subdivide_edges(biconnected_weighted(2, n=30, extra=20), 0.8, seed=2,
                        chain_length=(2, 5))
    ro = ReducedDistanceOracle(g)
    assert ro.memory_bytes() < 0.5 * ro.full_matrix_bytes()


def test_pure_cycle():
    g = cycle_graph(10)
    ro = ReducedDistanceOracle(g)
    ref = dijkstra_apsp(g)
    for u in range(10):
        for v in range(10):
            assert abs(ro.query(u, v) - ref[u, v]) < 1e-9


def test_same_chain_queries():
    # long path: every interior pair exercises the same-chain branch
    g = path_graph(9)
    ro = ReducedDistanceOracle(g)
    for u in range(9):
        for v in range(9):
            assert ro.query(u, v) == pytest.approx(abs(u - v))


def test_isolated_and_disconnected():
    g = CSRGraph(5, [0, 2], [1, 3])
    ro = ReducedDistanceOracle(g)
    assert np.isinf(ro.query(0, 2))
    assert np.isinf(ro.query(0, 4))
    assert ro.query(4, 4) == 0.0
