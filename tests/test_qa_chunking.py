"""Chunked-dispatch edge cases: chunk size 1, chunk > n, empty sources."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apsp import dijkstra_apsp, ear_apsp_full
from repro.graph import grid_graph
from repro.qa import strategies
from repro.sssp import engine

pytestmark = pytest.mark.qa


@pytest.fixture
def graph():
    return grid_graph(4, 5)


class TestChunkSizeOne:
    def test_env_chunk_of_one(self, graph, monkeypatch):
        want = dijkstra_apsp(graph)
        monkeypatch.setenv("REPRO_SSSP_CHUNK", "1")
        assert engine.resolve_chunk_size(None) == 1
        assert np.array_equal(dijkstra_apsp(graph), want)
        assert np.array_equal(ear_apsp_full(graph), want)

    def test_explicit_chunk_of_one(self, graph):
        want = dijkstra_apsp(graph)
        assert np.array_equal(dijkstra_apsp(graph, chunk_size=1), want)
        assert np.array_equal(ear_apsp_full(graph, chunk_size=1), want)

    def test_chunk_of_one_on_multigraph(self):
        g = strategies.parallel_hairball(5, 12, seed=7)
        assert np.array_equal(
            dijkstra_apsp(g, chunk_size=1), dijkstra_apsp(g)
        )


class TestChunkLargerThanSources:
    def test_single_oversized_chunk(self, graph):
        want = dijkstra_apsp(graph)
        assert np.array_equal(dijkstra_apsp(graph, chunk_size=1000), want)
        assert np.array_equal(ear_apsp_full(graph, chunk_size=1000), want)

    def test_env_oversized_chunk(self, graph, monkeypatch):
        want = dijkstra_apsp(graph)
        monkeypatch.setenv("REPRO_SSSP_CHUNK", "1000")
        assert np.array_equal(dijkstra_apsp(graph), want)

    def test_invalid_chunk_rejected(self):
        with pytest.raises(ValueError):
            engine.resolve_chunk_size(0)
        with pytest.raises(ValueError):
            engine.resolve_chunk_size(-3)


class TestEmptySources:
    def test_multi_source_empty(self, graph):
        out = engine.multi_source(graph, np.array([], dtype=np.int64))
        assert out.shape == (0, graph.n)

    def test_spt_forest_empty(self, graph):
        dist, parent = engine.spt_forest(graph, np.array([], dtype=np.int64))
        assert dist.shape == (0, graph.n)
        assert parent.shape == (0, graph.n)

    def test_empty_graph_apsp(self):
        from repro.graph import CSRGraph

        g = CSRGraph(0, [], [], [])
        assert dijkstra_apsp(g).shape == (0, 0)
        assert ear_apsp_full(g).shape == (0, 0)

    def test_empty_sources_with_chunk_of_one(self, graph, monkeypatch):
        monkeypatch.setenv("REPRO_SSSP_CHUNK", "1")
        out = engine.multi_source(graph, np.array([], dtype=np.int64))
        assert out.shape == (0, graph.n)
