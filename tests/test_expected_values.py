"""Internal consistency of the transcribed paper values."""

import pytest

from repro.bench import expected
from repro import datasets


def test_table1_covers_all_datasets():
    names = {s.name for s in datasets.TABLE1}
    assert set(expected.TABLE1_MEMORY_MB) == names


def test_table1_ours_le_max():
    for name, (ours, mx) in expected.TABLE1_MEMORY_MB.items():
        assert ours <= mx, name


def test_table2_covers_mcb_datasets():
    assert set(expected.TABLE2_SECONDS) == set(datasets.MCB_DATASETS)


def test_table2_ear_never_slower():
    for name, impls in expected.TABLE2_SECONDS.items():
        for impl, (w, wo) in impls.items():
            assert w <= wo, (name, impl)


def test_table2_parallel_faster_than_sequential():
    for name, impls in expected.TABLE2_SECONDS.items():
        seq = impls["sequential"][0]
        for impl in ("multicore", "gpu", "cpu+gpu"):
            assert impls[impl][0] < seq, (name, impl)


def test_paper_fig5_ordering():
    sp = expected.FIG5_AVG_SPEEDUP
    assert sp["cpu+gpu"] > sp["gpu"] > sp["multicore"] > 1


def test_paper_table2_implies_fig5_magnitudes():
    """The per-dataset Table-2 ratios should average near the Fig-5 claims."""
    from repro.bench.metrics import geometric_mean

    for impl, claimed in expected.FIG5_AVG_SPEEDUP.items():
        ratios = [
            impls["sequential"][0] / impls[impl][0]
            for impls in expected.TABLE2_SECONDS.values()
        ]
        measured = geometric_mean(ratios)
        # the paper's own numbers agree with its own claim within ~40%
        assert measured == pytest.approx(claimed, rel=0.45), (impl, measured)


def test_phase_fractions_sum_below_one():
    assert sum(expected.PHASE_FRACTIONS.values()) <= 1.0


def test_ear_speedup_by_impl_sequential_largest():
    e = expected.EAR_SPEEDUP_BY_IMPL
    assert e["sequential"] >= max(e.values()) - 1e-9
