"""Process-parallel CPU backend: parity with the serial engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apsp import dijkstra_apsp
from repro.graph import gnm_random_graph, randomize_weights
from repro.hetero.parallel import (
    ParallelEngine,
    SharedCSRBuffers,
    parallel_all_pairs,
    parallel_multi_source,
    parallel_spt_forest,
    resolve_workers,
)
from repro.sssp import engine


@pytest.fixture
def medium():
    return randomize_weights(gnm_random_graph(60, 140, seed=11), seed=11)


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert resolve_workers(3) == 3

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers() == 4

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-5) == 1

    def test_default_positive(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() >= 1


class TestSharedBuffers:
    def test_roundtrip(self, medium):
        mat = engine.adjacency_matrix(medium)
        buf = SharedCSRBuffers(mat)
        try:
            remat, shms = SharedCSRBuffers.attach(buf.spec)
            assert (remat != mat).nnz == 0
            for shm in shms:
                shm.close()
        finally:
            buf.close()

    def test_close_idempotent(self, medium):
        buf = SharedCSRBuffers(engine.adjacency_matrix(medium))
        buf.close()
        buf.close()


class TestParallelParity:
    def test_two_workers_bit_identical(self, medium):
        want = engine.all_pairs(medium)
        with ParallelEngine(medium, workers=2, chunk_size=8) as eng:
            got = eng.all_pairs()
        assert np.array_equal(got, want)

    def test_multi_source_subset(self, medium):
        rng = np.random.default_rng(0)
        sources = rng.integers(0, medium.n, size=23)
        want = engine.multi_source(medium, sources)
        got = parallel_multi_source(medium, sources, workers=2, chunk_size=5)
        assert np.array_equal(got, want)

    def test_spt_forest_parity(self, medium):
        sources = np.arange(0, medium.n, 3)
        d_want, p_want = engine.spt_forest(medium, sources)
        d_got, p_got = parallel_spt_forest(medium, sources, workers=2, chunk_size=7)
        assert np.array_equal(d_got, d_want)
        assert np.array_equal(p_got, p_want)

    def test_engine_parallel_option_in_apsp(self, medium):
        want = dijkstra_apsp(medium, engine="scipy")
        got = dijkstra_apsp(medium, engine="parallel", workers=2, chunk_size=16)
        assert np.array_equal(got, want)


class TestSerialFallback:
    def test_single_worker_no_pool(self, medium):
        with ParallelEngine(medium, workers=1) as eng:
            assert not eng.is_parallel
            assert np.array_equal(eng.all_pairs(), engine.all_pairs(medium))

    def test_env_workers_one(self, medium, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert np.array_equal(parallel_all_pairs(medium), engine.all_pairs(medium))

    def test_empty_sources(self, medium):
        with ParallelEngine(medium, workers=2) as eng:
            out = eng.multi_source(np.array([], dtype=np.int64))
        assert out.shape == (0, medium.n)

    def test_empty_graph(self):
        from repro.graph import CSRGraph

        g = CSRGraph(0, [], [], [])
        with ParallelEngine(g, workers=2) as eng:
            assert not eng.is_parallel
            assert eng.all_pairs().shape == (0, 0)

    def test_close_is_idempotent_and_serial_after(self, medium):
        eng = ParallelEngine(medium, workers=2, chunk_size=8)
        want = engine.all_pairs(medium)
        assert np.array_equal(eng.all_pairs(), want)
        eng.close()
        eng.close()
        # After close the engine degrades to the serial path.
        assert np.array_equal(eng.all_pairs(), want)
