"""Table-1 stand-ins: structure matching and determinism."""

import pytest

from repro import datasets
from repro.graph.stats import table1_row


def test_registry_complete():
    assert len(datasets.TABLE1) == 15
    assert len(datasets.MCB_DATASETS) == 7
    assert len(datasets.PLANAR_DATASETS) == 5
    assert set(datasets.PLANAR_DATASETS) | set(datasets.GENERAL_DATASETS) == {
        s.name for s in datasets.TABLE1
    }


def test_load_by_name():
    g = datasets.load("nopoly", scale=0.02)
    assert g.n > 0 and g.is_connected()


def test_unknown_name():
    with pytest.raises(KeyError):
        datasets.load("frankenstein")


def test_deterministic():
    a = datasets.load("c-50", scale=0.02)
    b = datasets.load("c-50", scale=0.02)
    assert a == b


@pytest.mark.parametrize("spec", datasets.TABLE1, ids=lambda s: s.name)
def test_structure_matches_paper(spec):
    g = spec.generate(scale=0.02)
    row = table1_row(g, spec.name)
    # Removed-% is the driving knob: must match within 3 percentage points.
    assert abs(row.nodes_removed_pct - spec.removed_pct) <= 3.0
    # Largest-BCC dominance within 20 points (block grafting granularity).
    assert abs(row.largest_bcc_edge_pct - spec.largest_bcc_pct) <= 20.0
    # Size roughly proportional to the paper's.
    assert row.n >= 0.015 * spec.n


def test_scale_changes_size():
    small = datasets.load("c-50", scale=0.02)
    big = datasets.load("c-50", scale=0.05)
    assert big.n > small.n


def test_default_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.123")
    assert datasets.default_scale() == pytest.approx(0.123)


def test_planar_rows_low_edge_density():
    g = datasets.load("Planar_3", scale=0.02)
    assert g.m <= 3 * g.n  # planar-like sparsity
