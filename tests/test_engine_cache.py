"""Adjacency cache, chunked dispatch, and the engine's weight contract."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, GraphError, gnm_random_graph, grid_graph, randomize_weights
from repro.sssp import dijkstra
from repro.sssp.engine import (
    DEFAULT_CHUNK_SIZE,
    MIN_POSITIVE_WEIGHT,
    AdjacencyCache,
    adjacency_cache,
    adjacency_matrix,
    all_pairs,
    multi_source,
    resolve_chunk_size,
    spt_forest,
    sssp,
)


@pytest.fixture(autouse=True)
def _clean_cache():
    adjacency_cache().clear()
    yield
    adjacency_cache().clear()


class TestFingerprint:
    def test_stable_and_content_keyed(self, grid):
        assert grid.fingerprint == grid.fingerprint
        clone = CSRGraph(grid.n, grid.edge_u, grid.edge_v, grid.edge_w)
        assert clone.fingerprint == grid.fingerprint

    def test_differs_across_graphs(self, grid, ring):
        assert grid.fingerprint != ring.fingerprint
        reweighted = CSRGraph(grid.n, grid.edge_u, grid.edge_v, grid.edge_w * 2.0)
        assert reweighted.fingerprint != grid.fingerprint


class TestAdjacencyCache:
    def test_hit_miss_counters(self, grid, ring):
        cache = adjacency_cache()
        assert cache.info().hits == 0 and cache.info().misses == 0
        sssp(grid, 0)
        info = cache.info()
        assert (info.hits, info.misses, info.size) == (0, 1, 1)
        sssp(grid, 3)
        sssp(grid, 7)
        info = cache.info()
        assert (info.hits, info.misses) == (2, 1)
        sssp(ring, 0)
        info = cache.info()
        assert (info.hits, info.misses, info.size) == (2, 2, 2)

    def test_cache_bypass_leaves_counters_untouched(self, grid):
        sssp(grid, 0, cache=False)
        info = adjacency_cache().info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)

    def test_cached_equals_uncached(self, grid):
        src = np.arange(grid.n)
        cold = multi_source(grid, src, cache=False)
        multi_source(grid, src)  # prime
        warm = multi_source(grid, src)
        assert adjacency_cache().info().hits >= 1
        assert np.array_equal(cold, warm)

    def test_lru_eviction(self):
        cache = AdjacencyCache(maxsize=2)
        graphs = [grid_graph(2, k + 2) for k in range(3)]
        for g in graphs:
            cache.get(g)
        assert cache.info().size == 2
        # graphs[0] was evicted: a re-get is a miss, graphs[2] still hits.
        misses = cache.misses
        cache.get(graphs[2])
        assert cache.hits == 1
        cache.get(graphs[0])
        assert cache.misses == misses + 1

    def test_cached_matrix_matches_rebuild(self, multigraph):
        cached = adjacency_cache().get(multigraph)
        rebuilt = adjacency_matrix(multigraph)
        assert (cached != rebuilt).nnz == 0


class TestChunkedDispatch:
    def test_resolve_chunk_size(self, monkeypatch):
        assert resolve_chunk_size(7) == 7
        assert resolve_chunk_size() == DEFAULT_CHUNK_SIZE
        monkeypatch.setenv("REPRO_SSSP_CHUNK", "5")
        assert resolve_chunk_size() == 5
        assert resolve_chunk_size(9) == 9
        with pytest.raises(ValueError):
            resolve_chunk_size(0)

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_chunked_multi_source_bit_identical(self, chunk, seed):
        g = randomize_weights(gnm_random_graph(30, 60, seed=seed), seed=seed)
        rng = np.random.default_rng(seed)
        sources = rng.integers(0, g.n, size=rng.integers(1, 2 * g.n))
        whole = multi_source(g, sources, chunk_size=len(sources) + 1)
        chunked = multi_source(g, sources, chunk_size=chunk)
        assert np.array_equal(whole, chunked)

    def test_chunked_spt_forest_bit_identical(self, grid):
        src = np.arange(grid.n)
        d1, p1 = spt_forest(grid, src, chunk_size=grid.n + 1)
        d2, p2 = spt_forest(grid, src, chunk_size=3)
        assert np.array_equal(d1, d2)
        assert np.array_equal(p1, p2)

    def test_all_pairs_matches_reference_dijkstra(self, grid):
        mat = all_pairs(grid, chunk_size=4)
        for s in range(grid.n):
            assert np.allclose(mat[s], dijkstra(grid, s))


class TestWeightContract:
    def test_subnormal_weight_rejected(self):
        g = CSRGraph(3, [0, 1], [1, 2], [1.0, 1e-13])
        with pytest.raises(GraphError, match="engine contract"):
            adjacency_matrix(g)
        with pytest.raises(GraphError):
            sssp(g, 0)

    def test_zero_and_minimum_weights_accepted(self):
        g = CSRGraph(3, [0, 1], [1, 2], [0.0, MIN_POSITIVE_WEIGHT])
        d = sssp(g, 0)
        assert d[1] == pytest.approx(0.0, abs=1e-200)
        assert d[2] == pytest.approx(MIN_POSITIVE_WEIGHT)
