"""Work-queue telemetry: per-device counters and ``queue.grab`` events.

Covers both execution paths that drive the double-ended queue — the
trace-replay simulator (:func:`repro.hetero.trace.simulate_trace`) and
the live executor (:func:`repro.hetero.live_runner.live_hetero_mcb`) —
and the virtual-clock bridge that turns replay samples into Chrome-trace
device tracks.
"""

from __future__ import annotations

from repro.graph import grid_graph
from repro.hetero.executor import HeterogeneousExecutor, Platform
from repro.hetero.trace import WorkTrace, simulate_trace
from repro.hetero.workqueue import DequeWorkQueue, WorkUnit
from repro.obs import metrics as _metrics
from repro.obs.events import EventLog, events_to
from repro.obs.export import (
    VIRTUAL_PID,
    chrome_trace,
    validate_chrome_trace,
    virtual_clock_events,
)
from repro.obs.trace import TraceCollector


def _units(n=6):
    return [
        WorkUnit(uid=i, fn=lambda: None, work=float(i + 1), items=1)
        for i in range(n)
    ]


class TestGrabCounters:
    def test_end_counters_and_device_units(self):
        front = _metrics.counter("queue.grabs.front")
        back = _metrics.counter("queue.grabs.back")
        dev = _metrics.counter("queue.device.testdev.units")
        f0, b0, d0 = front.value, back.value, dev.value
        q = DequeWorkQueue(_units(6))
        q.grab(2, from_back=True, device="testdev")
        q.grab(1, from_back=False, device="testdev")
        q.grab(10, from_back=False)  # drains; anonymous grab
        assert back.value == b0 + 1
        assert front.value == f0 + 2
        assert dev.value == d0 + 3  # 2 back + 1 front units for testdev
        # Empty-queue grabs count nothing.
        b1 = back.value
        assert q.grab(4, from_back=True, device="testdev") == []
        assert back.value == b1

    def test_batch_histogram_observes(self):
        hist = _metrics.histogram("queue.grab.batch")
        n0 = hist.count
        DequeWorkQueue(_units(4)).grab(3, from_back=True)
        assert hist.count == n0 + 1

    def test_grab_event_payload(self, tmp_path):
        q = DequeWorkQueue(_units(5))
        with events_to(tmp_path):
            q.grab(2, from_back=True, device="gpu")
            q.grab(1, from_back=False, device="cpu")
        evs = EventLog(tmp_path).read(kinds={"queue.grab"})
        assert [(e["device"], e["end"], e["batch"], e["remaining"]) for e in evs] == [
            ("gpu", "back", 2, 3),
            ("cpu", "front", 1, 2),
        ]


class TestSimulatedPath:
    def test_replay_attributes_grabs_to_device_names(self, tmp_path):
        trace = WorkTrace()
        stage = trace.new_stage("dijkstra")
        for i in range(12):
            stage.add(1000.0 * (i + 1), 8)
        platform = Platform.heterogeneous()
        dev_counters = {
            d.name: _metrics.counter(f"queue.device.{d.name}.units")
            for d in platform.devices
        }
        before = {name: c.value for name, c in dev_counters.items()}
        with events_to(tmp_path):
            simulate_trace(trace, platform)
        grabbed = {
            name: c.value - before[name] for name, c in dev_counters.items()
        }
        assert sum(grabbed.values()) == 12  # every unit attributed
        evs = EventLog(tmp_path).read(kinds={"queue.grab"})
        assert {e["device"] for e in evs} <= set(dev_counters)
        # The [19] discipline: the GPU grabs from the big end (back),
        # the CPU from the small end (front).
        for e in evs:
            assert e["end"] == ("back" if e["device"] == "gpu" else "front")

    def test_executor_run_stage_threads_device_name(self, tmp_path):
        ex = HeterogeneousExecutor(Platform.sequential())
        with events_to(tmp_path):
            ex.run_stage(_units(3))
        evs = EventLog(tmp_path).read(kinds={"queue.grab"})
        assert evs
        assert all(e["device"] == "sequential" for e in evs)


class TestLivePath:
    def test_live_mcb_emits_device_grabs(self, tmp_path):
        from repro.hetero.live_runner import live_hetero_mcb

        g = grid_graph(4, 5)
        platform = Platform.heterogeneous()
        dev_counters = {
            d.name: _metrics.counter(f"queue.device.{d.name}.units")
            for d in platform.devices
        }
        before = {name: c.value for name, c in dev_counters.items()}
        with events_to(tmp_path):
            res = live_hetero_mcb(g, platform=platform)
        assert res.cycles
        evs = EventLog(tmp_path).read(kinds={"queue.grab"})
        assert evs
        assert {e["device"] for e in evs} <= set(dev_counters)
        emitted_units = sum(e["batch"] for e in evs)
        counted_units = sum(
            c.value - before[name] for name, c in dev_counters.items()
        )
        assert emitted_units == counted_units > 0


class TestVirtualClockBridge:
    def _clocks(self):
        trace = WorkTrace()
        stage = trace.new_stage("dijkstra")
        for i in range(8):
            stage.add(1000.0 * (i + 1), 4)
        platform = Platform.heterogeneous()
        simulate_trace(trace, platform, record_samples=True)
        return {d.name: d.clock for d in platform.devices}

    def test_record_samples_flag(self):
        clocks = self._clocks()
        assert any(c.samples for c in clocks.values())

    def test_virtual_tracks_render_under_synthetic_pid(self):
        clocks = self._clocks()
        evs = virtual_clock_events(clocks)
        assert all(e["pid"] == VIRTUAL_PID for e in evs)
        names = {
            e["args"]["name"] for e in evs
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {f"virtual {n}" for n in clocks}
        xs = [e for e in evs if e["ph"] == "X"]
        assert xs
        for e in xs:
            assert e["cat"] == "virtual"
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_merged_chrome_trace_validates(self):
        col = TraceCollector()
        doc = chrome_trace(col, clocks=self._clocks())
        assert validate_chrome_trace(doc) == []
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert VIRTUAL_PID in pids

    def test_raw_sample_lists_accepted(self):
        from repro.hetero.timing import ClockSample

        evs = virtual_clock_events({"dev": [ClockSample("k", 0.0, 1.0)]})
        assert any(e["ph"] == "X" and e["name"] == "k" for e in evs)

    def test_without_clocks_no_virtual_tracks(self):
        doc = chrome_trace(TraceCollector())
        assert VIRTUAL_PID not in {e.get("pid") for e in doc["traceEvents"]}
