"""Unweighted BFS APSP and its ear-reduced variant."""

import numpy as np
import pytest

from repro.apsp import bfs_apsp, bfs_distances, dijkstra_apsp, ear_bfs_apsp
from repro.graph import CSRGraph, cycle_graph, grid_graph, gnm_random_graph

from _support import close, composite_graph


@pytest.mark.parametrize("seed", range(4))
def test_bfs_matches_unit_dijkstra(seed):
    g = gnm_random_graph(40, 70, seed=seed, connected=(seed % 2 == 0))
    g = g.with_weights(np.ones(g.m))
    assert close(bfs_apsp(g), dijkstra_apsp(g))


def test_bfs_distances_grid(grid):
    d = bfs_distances(grid, 0)
    # manhattan distance on the grid
    rows, cols = 5, 6
    for v in range(grid.n):
        assert d[v] == (v // cols) + (v % cols)


def test_bfs_unreachable():
    g = CSRGraph(4, [0], [1])
    d = bfs_distances(g, 0)
    assert np.isinf(d[2]) and d[1] == 1.0


@pytest.mark.parametrize("seed", range(4))
def test_ear_bfs_apsp_exact(seed):
    # hop metric on graphs with chains: contracted edges become > 1 so the
    # weighted fallback path is exercised too
    core = gnm_random_graph(25, 40, seed=seed)
    from repro.graph import subdivide_edges

    g = subdivide_edges(core, 0.5, seed=seed)
    g = g.with_weights(np.ones(g.m))
    assert close(ear_bfs_apsp(g), dijkstra_apsp(g))


def test_ear_bfs_on_pure_unit_graph():
    g = grid_graph(4, 5)  # no chains contract to length > 1 except corners
    assert close(ear_bfs_apsp(g), bfs_apsp(g))


def test_ear_bfs_ignores_input_weights():
    g = cycle_graph(6).with_weights(np.full(6, 7.5))
    d = ear_bfs_apsp(g)
    assert d[0, 3] == 3.0  # hops, not weights
