"""repro.obs.critpath: span-DAG reconstruction, path exactness, stragglers.

The synthetic-trace tests pin the analyzer's arithmetic on hand-built
geometries (ingested :class:`~repro.obs.trace.Span` tuples, so every
nanosecond is chosen); the live tests run the real 2-worker parallel
backend — including the acceptance case of an injected worker hang that
must surface as a flagged straggler.  The CLI / report / regress classes
cover the surfaces the analysis is exposed through.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import span, tracing
from repro.obs.critpath import (
    CRITPATH_SCHEMA_VERSION,
    DEFAULT_STRAGGLER_K,
    STRAGGLER_FLOOR_NS,
    CritPathResult,
    analyze_chrome,
    analyze_collector,
    render_text,
    validate_critpath_doc,
)
from repro.obs.export import chrome_trace
from repro.obs.trace import Span, TraceCollector

MS = 1_000_000  # ns per millisecond — keeps the geometries readable


def _collector(*spans: tuple) -> TraceCollector:
    """Build a collector from (name, cat, start_ms, dur_ms, pid[, args])."""
    tr = TraceCollector()
    tr.ingest(
        [
            Span(
                name=s[0], cat=s[1], start_ns=s[2] * MS, dur_ns=s[3] * MS,
                pid=s[4], tid=1, depth=0, args=s[5] if len(s) > 5 else {},
            ).to_tuple()
            for s in spans
        ]
    )
    return tr


class TestSyntheticPath:
    def test_contributions_sum_exactly_to_window(self):
        # root [0,100], child [10,40], grandchild [20,30], gap before+after
        tr = _collector(
            ("root", "t", 0, 100, 1),
            ("child", "t", 10, 30, 1),
            ("grand", "t", 20, 10, 1),
        )
        res = analyze_collector(tr)
        assert res.total_ns == 100 * MS
        assert sum(e["path_ns"] for e in res.path) == res.total_ns
        by_name = {e["name"]: e for e in res.path}
        assert by_name["root"]["path_ns"] == 70 * MS  # 100 - child's 30
        assert by_name["child"]["path_ns"] == 20 * MS
        assert by_name["grand"]["path_ns"] == 10 * MS

    def test_untraced_gap_surfaces_explicitly(self):
        # Two disjoint roots with a hole between them: the hole must be
        # attributed, not silently vanish.
        tr = _collector(("a", "t", 0, 10, 1), ("b", "t", 50, 10, 1))
        res = analyze_collector(tr)
        assert res.total_ns == 60 * MS
        untraced = [e for e in res.path if e["name"] == "(untraced)"]
        assert sum(e["path_ns"] for e in untraced) == 40 * MS
        assert sum(e["path_ns"] for e in res.path) == res.total_ns

    def test_backward_greedy_prefers_latest_finisher(self):
        # Both children fit; only the one that finished last binds the
        # parent's end-to-end time.
        tr = _collector(
            ("parent", "t", 0, 100, 1),
            ("early", "t", 5, 20, 1),
            ("late", "t", 30, 60, 1),
        )
        res = analyze_collector(tr)
        names = [e["name"] for e in res.path]
        assert "late" in names and "early" in names
        by_name = {e["name"]: e for e in res.path}
        # late covers [30,90] → parent keeps 100-60-20=20 only if early
        # also chains: cursor moves to 30, early ends at 25 <= 30 → taken.
        assert by_name["late"]["path_ns"] == 60 * MS
        assert by_name["early"]["path_ns"] == 20 * MS
        assert by_name["parent"]["path_ns"] == 20 * MS

    def test_attribution_groups_by_category(self):
        tr = _collector(
            ("root", "alpha", 0, 100, 1),
            ("inner", "beta", 0, 60, 1),
        )
        res = analyze_collector(tr)
        assert res.attribution == {"alpha": 40 * MS, "beta": 60 * MS}

    def test_empty_trace_degrades_gracefully(self):
        res = analyze_collector(TraceCollector())
        assert res.total_ns == 0 and res.span_count == 0
        assert res.parallel_efficiency == 1.0
        assert res.path == [] and res.stragglers == 0
        assert validate_critpath_doc(res.as_dict()) == []
        assert "0.000 ms" in render_text(res)

    def test_zero_duration_only_trace_keeps_spans(self):
        tr = _collector(("instant", "t", 5, 0, 1))
        res = analyze_collector(tr)
        assert res.total_ns == 0 and res.span_count == 1
        assert [e["name"] for e in res.path] == ["instant"]
        assert validate_critpath_doc(res.as_dict()) == []
        render_text(res)  # must not divide by zero

    def test_identical_start_times_nest_not_fork(self):
        tr = _collector(
            ("long", "t", 0, 100, 1),
            ("short", "t", 0, 40, 1),
        )
        res = analyze_collector(tr)
        by_name = {e["name"]: e for e in res.path}
        assert by_name["short"]["path_ns"] == 40 * MS
        assert by_name["long"]["path_ns"] == 60 * MS
        assert sum(e["path_ns"] for e in res.path) == 100 * MS


class TestCausalLinking:
    def _dispatch_trace(self, *, chunk_dispatch_ids=(7, 7), orphan=False):
        spans = [
            ("run", "t", 0, 100, 1),
            ("parallel.dispatch", "parallel", 10, 80, 1,
             {"dispatch": 7, "workers": 2, "chunks": 2}),
            ("parallel.worker_chunk", "parallel", 12, 30, 2,
             {"dispatch": chunk_dispatch_ids[0], "chunk": 0}),
            ("parallel.worker_chunk", "parallel", 12, 75, 3,
             {"dispatch": chunk_dispatch_ids[1], "chunk": 1}),
        ]
        if orphan:
            spans.append(
                ("parallel.worker_chunk", "parallel", 200, 10, 4,
                 {"dispatch": 999, "chunk": 5})
            )
        return _collector(*spans)

    def test_chunks_link_by_dispatch_id(self):
        res = analyze_collector(self._dispatch_trace())
        (d,) = res.dispatches
        assert d["dispatch"] == 7 and d["chunks"] == 2 and d["workers"] == 2
        assert res.orphans == 0
        # busy 105ms over 80ms * 2 workers
        assert d["utilisation"] == pytest.approx(105 / 160)

    def test_legacy_trace_links_by_containment(self):
        res = analyze_collector(
            self._dispatch_trace(chunk_dispatch_ids=(None, None))
        )
        (d,) = res.dispatches
        assert d["chunks"] == 2 and res.orphans == 0

    def test_orphan_chunk_counted_and_kept_as_root(self):
        res = analyze_collector(self._dispatch_trace(orphan=True))
        assert res.orphans == 1
        (d,) = res.dispatches
        assert d["chunks"] == 2  # the orphan never attaches
        assert "orphan worker span" in render_text(res)
        # The orphan still contributes to the window/path arithmetic.
        assert sum(e["path_ns"] for e in res.path) == res.total_ns

    def test_worker_rows_cover_busy_idle(self):
        res = analyze_collector(self._dispatch_trace())
        rows = {w["pid"]: w for w in res.workers}
        assert rows[2]["busy_ns"] == 30 * MS
        assert rows[2]["idle_ns"] == 50 * MS  # 80ms window - 30ms busy
        assert rows[3]["busy_ns"] == 75 * MS


class TestStragglers:
    def _trace_with_finishes(self, finishes_ms):
        spans = [
            ("parallel.dispatch", "parallel", 0, max(finishes_ms) + 1, 1,
             {"dispatch": 1, "workers": len(finishes_ms)}),
        ]
        for i, fin in enumerate(finishes_ms):
            spans.append(
                ("parallel.worker_chunk", "parallel", 0, fin, 10 + i,
                 {"dispatch": 1, "chunk": i})
            )
        return _collector(*spans)

    def test_outlier_finish_is_flagged(self):
        res = analyze_collector(self._trace_with_finishes([10, 11, 10, 60]))
        (d,) = res.dispatches
        (s,) = d["stragglers"]
        assert s["chunk"] == 3 and s["pid"] == 13
        assert s["excess_ns"] == pytest.approx(49.5 * MS, rel=0.01)
        assert res.stragglers == 1
        assert (w["straggler"] for w in res.workers)
        flagged = {w["pid"] for w in res.workers if w["straggler"]}
        assert flagged == {13}

    def test_floor_suppresses_scheduler_noise(self):
        # Near-identical finishes: MAD ~ 0 would flag microsecond jitter
        # without the absolute floor.
        tr = TraceCollector()
        tr.ingest([
            Span(name="parallel.dispatch", cat="parallel", start_ns=0,
                 dur_ns=2 * MS, pid=1, tid=1, depth=0,
                 args={"dispatch": 1, "workers": 3}).to_tuple(),
            *(
                Span(name="parallel.worker_chunk", cat="parallel",
                     start_ns=0, dur_ns=MS + i * 1000, pid=10 + i, tid=1,
                     depth=0, args={"dispatch": 1, "chunk": i}).to_tuple()
                for i in range(3)
            ),
        ])
        res = analyze_collector(tr)
        assert res.stragglers == 0
        assert STRAGGLER_FLOOR_NS == 1 * MS

    def test_straggler_k_widens_the_band(self):
        finishes = [10, 11, 10, 18]
        tight = analyze_collector(
            self._trace_with_finishes(finishes), straggler_k=1.0
        )
        loose = analyze_collector(
            self._trace_with_finishes(finishes), straggler_k=20.0
        )
        assert tight.stragglers == 1 and loose.stragglers == 0
        assert tight.straggler_k == 1.0

    def test_single_chunk_never_straggles(self):
        res = analyze_collector(self._trace_with_finishes([50]))
        assert res.stragglers == 0


class TestWhatIf:
    def test_savings_only_for_on_path_dispatches(self):
        # Dispatch A is on the path (it bounds the window end); an
        # imbalanced dispatch B hides entirely inside A's shadow on
        # another pid, so fixing B cannot shorten the run.
        tr = _collector(
            ("run", "t", 0, 100, 1),
            ("parallel.dispatch", "parallel", 10, 85, 1,
             {"dispatch": 1, "workers": 2}),
            ("parallel.worker_chunk", "parallel", 12, 40, 2,
             {"dispatch": 1, "chunk": 0}),
            ("parallel.worker_chunk", "parallel", 12, 80, 3,
             {"dispatch": 1, "chunk": 1}),
            ("parallel.dispatch", "parallel", 20, 30, 5,
             {"dispatch": 2, "workers": 2}),
            ("parallel.worker_chunk", "parallel", 21, 5, 6,
             {"dispatch": 2, "chunk": 0}),
            ("parallel.worker_chunk", "parallel", 21, 28, 7,
             {"dispatch": 2, "chunk": 1}),
        )
        res = analyze_collector(tr)
        on_path = {e["name"] for e in res.path}
        assert "parallel.dispatch" in on_path
        balance = next(
            w for w in res.whatif if w["label"].startswith("perfect balance")
        )
        # On-path dispatch 1: wall 85ms, floor = longest chunk 80ms →
        # saving 5ms.  Off-path dispatch 2's imbalance contributes 0.
        assert balance["saving_ns"] == 5 * MS
        assert balance["new_length_ns"] == res.total_ns - 5 * MS
        assert balance["improvement_pct"] == pytest.approx(5.0)

    def test_wall_floored_at_longest_chunk(self):
        tr = _collector(
            ("parallel.dispatch", "parallel", 0, 50, 1,
             {"dispatch": 1, "workers": 8}),
            ("parallel.worker_chunk", "parallel", 0, 48, 2,
             {"dispatch": 1, "chunk": 0}),
            ("parallel.worker_chunk", "parallel", 0, 2, 3,
             {"dispatch": 1, "chunk": 1}),
        )
        res = analyze_collector(tr)
        doubled = next(w for w in res.whatif if "2x workers" in w["label"])
        # 16 workers can't beat the 48ms single chunk: saving ≤ 2ms.
        assert doubled["saving_ns"] <= 2 * MS

    def test_empty_for_zero_window(self):
        res = analyze_collector(_collector(("instant", "t", 0, 0, 1)))
        assert res.whatif == []


class TestRollupAndEfficiency:
    def test_self_time_uses_union_of_overlapping_children(self):
        # Dispatch [0,100] with two overlapping 60ms chunks covering
        # [0,60] and [40,100]: union is 100 → dispatch self = 0, not -20.
        tr = _collector(
            ("parallel.dispatch", "parallel", 0, 100, 1,
             {"dispatch": 1, "workers": 2}),
            ("parallel.worker_chunk", "parallel", 0, 60, 2,
             {"dispatch": 1, "chunk": 0}),
            ("parallel.worker_chunk", "parallel", 40, 60, 3,
             {"dispatch": 1, "chunk": 1}),
        )
        res = analyze_collector(tr)
        rows = {r["name"]: r for r in res.rollup}
        assert rows["parallel.dispatch"]["self_ns"] == 0
        assert rows["parallel.dispatch"]["inclusive_ns"] == 100 * MS
        assert rows["parallel.worker_chunk"]["self_ns"] == 120 * MS
        # busy 120ms over 100ms * 2 workers
        assert res.parallel_efficiency == pytest.approx(0.6)

    def test_efficiency_is_one_without_dispatches(self):
        res = analyze_collector(_collector(("serial", "t", 0, 50, 1)))
        assert res.parallel_efficiency == 1.0


class TestChromeRoundTrip:
    def test_chrome_doc_matches_collector_analysis(self):
        with tracing() as tr:
            with span("outer", cat="t"):
                with span("inner", cat="t"):
                    pass
        direct = analyze_collector(tr)
        via_chrome = analyze_chrome(chrome_trace(tr))
        # Chrome ts/dur are µs floats; round-trip is within rounding.
        assert via_chrome.span_count == direct.span_count
        assert via_chrome.total_ns == pytest.approx(direct.total_ns, rel=0.01)
        assert [e["name"] for e in via_chrome.path] == [
            e["name"] for e in direct.path
        ]

    def test_virtual_clock_tracks_excluded(self):
        from repro.obs.export import VIRTUAL_PID

        doc = {
            "traceEvents": [
                {"name": "real", "cat": "t", "ph": "X", "pid": 1, "tid": 1,
                 "ts": 0.0, "dur": 1000.0},
                {"name": "virtual", "cat": "sim", "ph": "X",
                 "pid": VIRTUAL_PID, "tid": 1, "ts": 0.0, "dur": 9e9},
                {"name": "meta", "ph": "M", "pid": 1, "tid": 1},
            ]
        }
        res = analyze_chrome(doc)
        assert res.span_count == 1
        assert [e["name"] for e in res.path] == ["real"]

    def test_events_become_annotations(self):
        tr = _collector(("run", "t", 0, 10, 1))
        events = [
            {"kind": "fault.fired", "site": "worker.chunk", "arg": "4",
             "seam": "chunk", "pid": 2, "ts_ns": 5},
            {"kind": "engine.degraded", "error": "Boom", "pid": 1, "ts_ns": 6},
            {"kind": "chunk.finish", "pid": 1, "ts_ns": 7},  # not surfaced
        ]
        res = analyze_collector(tr, events=events)
        kinds = [a["kind"] for a in res.annotations]
        assert kinds == ["fault.fired", "engine.degraded"]
        assert "event annotations:" in render_text(res)


class TestValidation:
    def test_live_result_validates(self):
        tr = _collector(("root", "t", 0, 100, 1), ("leaf", "t", 5, 20, 1))
        doc = analyze_collector(tr).as_dict()
        assert doc["schema_version"] == CRITPATH_SCHEMA_VERSION
        assert validate_critpath_doc(doc) == []
        # JSON round-trip keeps it valid (the CI artifact path).
        assert validate_critpath_doc(json.loads(json.dumps(doc))) == []

    def test_validator_rejects_tampering(self):
        doc = analyze_collector(_collector(("r", "t", 0, 100, 1))).as_dict()
        assert validate_critpath_doc({}) != []
        bad_sum = json.loads(json.dumps(doc))
        bad_sum["path"][0]["path_ns"] = 1
        assert any("sum" in p for p in validate_critpath_doc(bad_sum))
        bad_type = json.loads(json.dumps(doc))
        bad_type["parallel_efficiency"] = "high"
        assert any(
            "parallel_efficiency" in p for p in validate_critpath_doc(bad_type)
        )
        wrong_ver = json.loads(json.dumps(doc))
        wrong_ver["schema_version"] = 999
        assert any(
            "schema_version" in p for p in validate_critpath_doc(wrong_ver)
        )


def _star(arms=4, cycle_len=8, seed=3):
    from repro.qa.strategies import star_of_cycles

    return star_of_cycles(arms=arms, cycle_len=cycle_len, seed=seed)


class TestLiveParallelRun:
    """The acceptance path: a real 2-worker, 2-dispatch recorded run."""

    @pytest.fixture(scope="class")
    def recorded(self):
        from repro.hetero.parallel import ParallelEngine

        g = _star()
        sources = np.arange(g.n, dtype=np.int64)
        with tracing() as tr, span("run.acceptance", cat="test"):
            with ParallelEngine(g, workers=2, chunk_size=8) as eng:
                eng.multi_source(sources[: g.n // 2])
                eng.multi_source(sources[g.n // 2:])
        return analyze_collector(tr)

    def test_path_total_matches_root_span_within_1pct(self, recorded):
        covered = sum(e["path_ns"] for e in recorded.path)
        assert abs(covered - recorded.total_ns) <= max(
            1, recorded.total_ns // 100
        )
        assert recorded.total_ns > 0

    def test_two_dispatches_reconstructed_with_chunks(self, recorded):
        assert len(recorded.dispatches) == 2
        for d in recorded.dispatches:
            assert d["chunks"] >= 1
            assert d["dispatch"] is not None  # causal id, not containment
        assert 0.0 < recorded.parallel_efficiency <= 1.0
        assert recorded.orphans == 0

    def test_render_and_schema(self, recorded):
        text = render_text(recorded)
        assert "critical path:" in text and "what-if" in text
        assert validate_critpath_doc(recorded.as_dict()) == []

    def test_injected_hang_is_flagged_as_straggler(self):
        from repro.hetero.parallel import ParallelEngine
        from repro.qa.faultinject import inject_worker_hang

        g = _star()
        sources = np.arange(g.n, dtype=np.int64)
        # The inject context must wrap engine *construction*: workers
        # fork (and copy REPRO_FAULTS) when the pool starts, so arming
        # after the fork would never reach them.  chunk_size=8 on n=29
        # puts sources 24..28 into chunk 3 — the hang's target.
        with tracing() as tr, inject_worker_hang(0.08, from_source=24):
            with ParallelEngine(g, workers=2, chunk_size=8) as eng:
                eng.multi_source(sources)
        res = analyze_collector(tr)
        assert res.stragglers >= 1
        flagged = [
            s for d in res.dispatches for s in d["stragglers"]
        ]
        assert any(s["chunk"] == 3 for s in flagged)
        assert all(s["excess_ns"] > 50 * MS for s in flagged)
        median_fix = next(
            w for w in res.whatif if "median" in w["label"]
        )
        assert median_fix["saving_ns"] > 0


class TestDispatchUtilisationHistogram:
    def test_observed_once_per_dispatch(self):
        from repro.hetero.parallel import ParallelEngine
        from repro.obs.metrics import registry

        g = _star()
        hist = registry().histogram("parallel.dispatch_utilisation")
        before = hist.count
        with tracing():
            with ParallelEngine(g, workers=2, chunk_size=16) as eng:
                eng.multi_source(np.arange(g.n, dtype=np.int64))
                eng.multi_source(np.arange(g.n, dtype=np.int64))
        assert hist.count == before + 2
        assert 0.0 < hist.max <= 1.0


class TestSelfTimesExport:
    def test_self_times_subtract_child_union(self):
        from repro.obs.export import self_times

        with tracing() as tr:
            with span("outer", cat="t"):
                with span("inner", cat="t"):
                    pass
        durs = {s.name: s.dur_ns for s in tr.spans}
        times = self_times(tr)
        assert times["inner"] == (1, durs["inner"])  # leaf: self == wall
        out_count, out_self = times["outer"]
        assert out_count == 1
        assert out_self == durs["outer"] - durs["inner"]
        assert out_self >= 0

    def test_overlapping_children_clip_via_union(self):
        from repro.obs.export import self_times

        tr = _collector(
            ("parallel.dispatch", "parallel", 0, 100, 1,
             {"dispatch": 1}),
            ("parallel.worker_chunk", "parallel", 0, 60, 1),
            ("parallel.worker_chunk", "parallel", 40, 60, 1),
        )
        # Same-track containment: both chunks nest inside the dispatch;
        # their union covers [0,100], so dispatch self clamps to 0 — a
        # plain sum (120) would have gone negative.
        times = self_times(tr)
        assert times["parallel.dispatch"] == (1, 0)

    def test_summary_prints_self_column(self):
        from repro.obs.export import summary

        with tracing() as tr:
            with span("phase.a", cat="t"):
                with span("phase.b", cat="t"):
                    pass
        text = summary(tr)
        assert "self (s)" in text


class TestRegressInvertedGating:
    def test_efficiency_drop_regresses_rise_improves(self):
        from repro.obs.regress import compare, is_higher_better_phase

        assert is_higher_better_phase("critpath.parallel_efficiency")
        assert not is_higher_better_phase("critpath.length_ns")
        hist = {"critpath.parallel_efficiency": [0.8, 0.81, 0.79]}
        down = compare(
            hist, {"critpath.parallel_efficiency": 0.4},
            rel_tol=0.25, mad_k=5.0,
        )
        assert not down.ok
        (v,) = down.regressions
        assert v.name == "critpath.parallel_efficiency"
        up = compare(
            hist, {"critpath.parallel_efficiency": 0.99},
            rel_tol=0.1, mad_k=5.0,
        )
        assert up.ok
        assert up.verdicts[0].status == "improved"

    def test_length_still_gates_on_the_slow_side(self):
        from repro.obs.regress import compare

        hist = {"critpath.length_ns": [1e9, 1.01e9, 0.99e9]}
        slow = compare(hist, {"critpath.length_ns": 3e9}, rel_tol=0.5)
        assert not slow.ok
        fast = compare(hist, {"critpath.length_ns": 0.9e9}, rel_tol=0.5)
        assert fast.ok


class TestCLI:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        with tracing() as tr, span("run.cli", cat="test"):
            with span("work", cat="test"):
                pass
        path = tmp_path / "trace.json"
        tr.write_chrome(str(path))
        return path

    def test_text_output(self, trace_file, capsys):
        from repro.cli import main

        assert main(["critpath", "--trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out and "run.cli" in out

    def test_json_output_validates(self, trace_file, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "critpath.json"
        assert main(
            ["critpath", "--trace", str(trace_file), "--json",
             "--out", str(out_path)]
        ) == 0
        doc = json.loads(out_path.read_text())
        assert validate_critpath_doc(doc) == []
        assert doc["span_count"] == 2

    def test_missing_trace_exits_with_message(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["critpath", "--trace", str(tmp_path / "absent.json"),
                  "--ledger", str(tmp_path / "no-ledger.jsonl")])
        assert "no Chrome trace" in str(exc.value)

    def test_spanless_trace_exits_2(self, tmp_path):
        from repro.cli import main

        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(SystemExit) as exc:
            main(["critpath", "--trace", str(empty)])
        assert exc.value.code == 2

    def test_profile_prints_critpath_headline(self, capsys):
        from repro.cli import main

        assert main(["profile", "apsp", "--scale", "0.01",
                     "--datasets", "nopoly"]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "parallel efficiency" in out


class TestReportSection:
    def test_report_includes_critpath_section(self):
        from repro.obs.report import REPORT_SECTIONS, build_report, validate_report

        assert "critpath" in REPORT_SECTIONS
        with tracing() as tr, span("run.report", cat="test"):
            with span("work", cat="test"):
                pass
        doc = build_report(trace=chrome_trace(tr))
        assert validate_report(doc) == []
        assert 'id="section-critpath"' in doc
        assert "parallel efficiency" in doc
        assert "run.report" in doc

    def test_report_degrades_without_trace(self):
        from repro.obs.report import build_report

        doc = build_report()
        assert 'id="section-critpath"' in doc  # anchor present, no data
        assert "no Chrome trace" in doc
