"""Work queue, device models, executor, trace simulation."""

import numpy as np
import pytest

from repro.hetero import (
    DequeWorkQueue,
    Device,
    HeterogeneousExecutor,
    Platform,
    SIMTDevice,
    Stage,
    VirtualClock,
    WorkTrace,
    WorkUnit,
    cpu_device,
    gpu_device,
    sequential_device,
    simulate_trace,
)


def units(works, items=1):
    return [WorkUnit(uid=i, fn=lambda i=i: i, work=w, items=items) for i, w in enumerate(works)]


class TestWorkQueue:
    def test_sorted_small_front_big_back(self):
        q = DequeWorkQueue(units([5.0, 1.0, 3.0]))
        front = q.grab(1, from_back=False)
        back = q.grab(1, from_back=True)
        assert front[0].work == 1.0
        assert back[0].work == 5.0

    def test_conservation(self):
        q = DequeWorkQueue(units([1.0] * 17))
        seen = []
        while not q.empty:
            seen += q.grab(3, from_back=bool(len(seen) % 2))
        assert sorted(u.uid for u in seen) == list(range(17))

    def test_batch_bigger_than_queue(self):
        q = DequeWorkQueue(units([1.0, 2.0]))
        got = q.grab(10, from_back=False)
        assert len(got) == 2 and q.empty

    def test_grab_counters(self):
        q = DequeWorkQueue(units([1.0] * 4))
        q.grab(1, from_back=False)
        q.grab(1, from_back=True)
        assert q.grabs_front == 1 and q.grabs_back == 1

    def test_unsorted_mode(self):
        q = DequeWorkQueue(units([5.0, 1.0]), sort=False)
        assert q.grab(1, from_back=False)[0].work == 5.0


class TestClockAndDevices:
    def test_clock_advance_and_utilisation(self):
        c = VirtualClock()
        c.advance(2.0)
        c.wait_until(4.0)
        assert c.now == 4.0 and c.busy == 2.0
        assert c.utilisation == pytest.approx(0.5)

    def test_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_clock_samples(self):
        c = VirtualClock(record_samples=True)
        c.advance(1.0, label="x")
        assert c.samples[0].label == "x"
        c.reset()
        assert c.now == 0.0 and not c.samples

    def test_device_cost_linear_in_work(self):
        d = Device(name="d", effective_bandwidth=100.0, dispatch_overhead=1.0)
        one = d.cost(units([10.0]))
        two = d.cost(units([10.0, 10.0]))
        assert two - one == pytest.approx(0.1)

    def test_device_execute_advances_clock(self):
        d = sequential_device()
        res = d.execute(units([d.effective_bandwidth]))  # exactly 1 second
        assert res == [0]
        assert d.clock.now == pytest.approx(1.0)

    def test_gpu_occupancy_monotone(self):
        g = gpu_device()
        assert g.occupancy(10) < g.occupancy(10_000) <= 1.0
        assert g.occupancy(0) == g.min_occupancy
        assert g.occupancy(10**9) == 1.0

    def test_gpu_small_batch_penalised(self):
        g = gpu_device()
        small = g.cost(units([1e6], items=16))
        big = g.cost(units([1e6], items=100_000))
        assert small > big

    def test_multicore_faster_than_sequential(self):
        w = units([1e9])
        assert cpu_device().cost(w) < sequential_device().cost(w)

    def test_platform_presets(self):
        assert len(Platform.sequential().devices) == 1
        assert len(Platform.heterogeneous().devices) == 2
        names = {d.name for d in Platform.heterogeneous().devices}
        assert names == {"cpu", "gpu"}


class TestExecutor:
    def test_results_in_item_order(self):
        ex = HeterogeneousExecutor(Platform.heterogeneous())
        got = ex.map(lambda x: x * x, list(range(20)), work=1e6)
        assert got == [x * x for x in range(20)]

    def test_every_unit_executed_once(self):
        counter = {"n": 0}

        def bump():
            counter["n"] += 1

        us = [WorkUnit(uid=i, fn=bump, work=1e6) for i in range(33)]
        ex = HeterogeneousExecutor(Platform.heterogeneous())
        rep = ex.run_stage(us)
        assert counter["n"] == 33
        assert sum(rep.per_device_units.values()) == 33
        assert rep.makespan > 0

    def test_stage_is_barrier(self):
        plat = Platform.heterogeneous()
        ex = HeterogeneousExecutor(plat)
        ex.run_stage(units([1e9]))
        times = {d.clock.now for d in plat.devices}
        assert len(times) == 1  # all aligned after the stage

    def test_empty_platform_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousExecutor(Platform("none", []))

    def test_hetero_beats_single_device_on_big_stage(self):
        work = [1e8] * 64
        t = {}
        for plat in (Platform.sequential(), Platform.heterogeneous()):
            ex = HeterogeneousExecutor(plat)
            rep = ex.run_stage(units(work, items=50_000))
            t[plat.name] = rep.makespan
        assert t["cpu+gpu"] < t["sequential"]


class TestTraceSimulation:
    def make_trace(self):
        tr = WorkTrace()
        st = tr.new_stage("labels")
        for _ in range(50):
            st.add(1e7, 5000)
        tr.new_stage("update", divisible=True).add(5e7, 100_000)
        return tr

    def test_total_work(self):
        tr = self.make_trace()
        assert tr.total_work == pytest.approx(50 * 1e7 + 5e7)
        assert tr.merged()["labels"] == pytest.approx(5e8)

    def test_simulation_deterministic(self):
        tr = self.make_trace()
        a = simulate_trace(tr, Platform.heterogeneous())
        b = simulate_trace(tr, Platform.heterogeneous())
        assert a.total_time == b.total_time

    def test_speedup_ordering(self):
        tr = self.make_trace()
        res = {
            name: simulate_trace(tr, plat).total_time
            for name, plat in [
                ("seq", Platform.sequential()),
                ("mc", Platform.multicore()),
                ("gpu", Platform.gpu()),
                ("het", Platform.heterogeneous()),
            ]
        }
        assert res["het"] < res["gpu"] < res["seq"]
        assert res["het"] < res["mc"] < res["seq"]

    def test_stage_times_recorded(self):
        res = simulate_trace(self.make_trace(), Platform.sequential())
        assert set(res.stage_times) == {"labels", "update"}
        assert res.total_time == pytest.approx(sum(res.stage_times.values()))

    def test_device_busy_positive(self):
        res = simulate_trace(self.make_trace(), Platform.heterogeneous())
        assert all(v > 0 for v in res.device_busy.values())

    def test_empty_stages_skipped(self):
        tr = WorkTrace()
        tr.new_stage("nothing")
        res = simulate_trace(tr, Platform.sequential())
        assert res.total_time == 0.0


class TestTraceExtras:
    def test_merged_filters_by_kind(self):
        tr = WorkTrace()
        tr.new_stage("a").add(10.0)
        tr.new_stage("b").add(5.0)
        tr.new_stage("a").add(1.0)
        assert tr.merged() == {"a": 11.0, "b": 5.0}
        assert tr.merged({"b"}) == {"b": 5.0}

    def test_stage_total_work(self):
        st = Stage(kind="x")
        st.add(3.0, 2)
        st.add(4.5)
        assert st.total_work == pytest.approx(7.5)

    def test_simulation_result_speedup(self):
        from repro.hetero import SimulationResult

        a = SimulationResult("a", 2.0, {}, {})
        b = SimulationResult("b", 1.0, {}, {})
        assert b.speedup_over(a) == 2.0

    def test_stage_report_bottleneck(self):
        from repro.hetero import StageReport

        rep = StageReport(1.0, {"cpu": 0.3, "gpu": 0.7}, {"cpu": 1, "gpu": 2}, 3)
        assert rep.bottleneck == "gpu"
