"""repro.obs.watch: stall detection semantics, status rendering, CLI view.

The integration test arms the ``worker.hang`` fault with a deterministic
spec and asserts the watchdog flags the stall (``watch.stalls``,
``engine.stall_detected``) *before* the dispatch timeout degrades the
engine — the liveness gap the watchdog exists to close.
"""

from __future__ import annotations

import os
import time
import warnings

import numpy as np
import pytest

from repro.graph import grid_graph
from repro.obs import metrics as _metrics
from repro.obs.events import EventLog, EventSink, events_to
from repro.obs.watch import (
    DEFAULT_STALL_AFTER,
    Watchdog,
    heartbeats_from_events,
    render_status,
    resolve_stall_after,
)


class TestResolveStallAfter:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WATCH_STALL", raising=False)
        assert resolve_stall_after() == DEFAULT_STALL_AFTER

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCH_STALL", "9.0")
        assert resolve_stall_after(1.5) == 1.5

    def test_env_beats_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCH_STALL", "0.25")
        assert resolve_stall_after(None, timeout=10.0) == 0.25

    def test_timeout_derived_half(self, monkeypatch):
        # Detection must precede the timeout's pool teardown.
        monkeypatch.delenv("REPRO_WATCH_STALL", raising=False)
        assert resolve_stall_after(None, timeout=3.0) == 1.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_stall_after(0.0)


class TestWatchdogCheck:
    def test_fresh_beats_never_stall(self):
        now = time.perf_counter_ns()
        beats = {7: now}
        wd = Watchdog(lambda: beats, stall_after=1.0, since_ns=0)
        assert wd.check(now_ns=now + int(0.5e9)) == []
        assert wd.stalled == {}

    def test_stale_beat_stalls_once_per_episode(self):
        stalls = _metrics.counter("watch.stalls")
        before = stalls.value
        now = time.perf_counter_ns()
        beats = {7: now}
        wd = Watchdog(lambda: beats, stall_after=1.0, since_ns=0)
        late = now + int(2e9)
        assert wd.check(now_ns=late) == [7]
        assert wd.check(now_ns=late + 1) == []  # same episode: counted once
        assert stalls.value == before + 1
        # A fresh beat clears the episode; going stale again re-counts.
        beats[7] = late
        assert wd.check(now_ns=late + int(0.1e9)) == []
        assert 7 not in wd.stalled
        assert wd.check(now_ns=late + int(3e9)) == [7]
        assert stalls.value == before + 2

    def test_ignores_beats_before_arming(self):
        # A shared event dir carries beats from earlier dispatches; they
        # must not produce phantom stalls for this watchdog.
        old_beat = 100
        wd = Watchdog(lambda: {7: old_beat}, stall_after=0.001, since_ns=10_000)
        assert wd.check(now_ns=20_000_000_000) == []

    def test_stall_emits_event(self, tmp_path):
        now = time.perf_counter_ns()
        with events_to(tmp_path):
            wd = Watchdog(lambda: {7: now}, stall_after=1.0, since_ns=0)
            wd.check(now_ns=now + int(5e9))
        evs = EventLog(tmp_path).read(kinds={"engine.stall_detected"})
        assert len(evs) == 1
        assert evs[0]["worker"] == 7
        assert evs[0]["heartbeat_age_s"] > 1.0

    def test_thread_lifecycle(self):
        wd = Watchdog(lambda: {}, stall_after=1.0, poll_interval=0.01)
        with wd:
            time.sleep(0.05)
        assert wd.checks >= 1
        assert wd._thread is None


class TestHeartbeatsFromEvents:
    def test_latest_beat_per_pid(self, tmp_path):
        sink = EventSink(tmp_path)
        sink.emit("worker.heartbeat", status="chunk_start")
        sink.emit("worker.heartbeat", status="chunk_done")
        sink.emit("queue.grab", batch=1)  # other kinds ignored
        sink.close()
        read = heartbeats_from_events(tmp_path)
        beats = read()
        assert set(beats) == {os.getpid()}
        evs = EventLog(tmp_path).read(kinds={"worker.heartbeat"})
        assert beats[os.getpid()] == evs[-1]["ts_ns"]

    def test_empty_dir(self, tmp_path):
        assert heartbeats_from_events(tmp_path / "nope")() == {}


class TestRenderStatus:
    def _events(self, tmp_path):
        with events_to(tmp_path):
            from repro.obs.events import emit, emitting

            with emitting("phase", phase="process", cat="apsp", stage="dijkstra"):
                emit("chunk.start", sources=8)
                emit("queue.grab", end="back", batch=3, device="gpu", remaining=5)
                emit("queue.grab", end="front", batch=1, device="cpu", remaining=4)
                emit("worker.heartbeat", status="chunk_done", sources=8)
                emit("chunk.finish", sources=8)
        return EventLog(tmp_path).read()

    def test_frame_contents(self, tmp_path):
        frame = render_status(self._events(tmp_path))
        assert "work queue: 2 grabs, 4 units" in frame
        assert "gpu" in frame and "cpu" in frame
        assert "back 1" in frame and "front 1" in frame
        assert "sssp chunks: 1/1 finished" in frame
        assert "heartbeating" in frame
        assert "open phase: none" in frame

    def test_open_phase_and_stall_flag(self, tmp_path):
        with events_to(tmp_path):
            from repro.obs.events import emit

            emit("phase.start", phase="process", cat="mcb")
            emit("worker.heartbeat", status="chunk_start")
        evs = EventLog(tmp_path).read()
        # Render "now" far past the last beat: the worker must flag.
        late = evs[-1]["ts_ns"] + int(60e9)
        frame = render_status(evs, now_ns=late, stall_after=5.0)
        assert "open phase: mcb/process" in frame
        assert "STALLED" in frame

    def test_finished_dispatch_workers_render_done_not_stalled(self, tmp_path):
        # After dispatch.finish the workers' beats age forever; a recorded
        # stream (or a live view of a finished run) must say done, not STALLED.
        with events_to(tmp_path):
            from repro.obs.events import emit

            emit("worker.heartbeat", status="chunk_done")
            emit("dispatch.finish", chunks=1, workers=1, stalls=0)
        evs = EventLog(tmp_path).read()
        late = evs[-1]["ts_ns"] + int(600e9)
        frame = render_status(evs, now_ns=late, stall_after=5.0)
        assert "done" in frame
        assert "STALLED" not in frame

    def test_empty_stream(self):
        assert "empty" in render_status([])


class TestHangDetectionIntegration:
    def test_watchdog_flags_hang_before_timeout(self, tmp_path, monkeypatch):
        """An injected worker hang is detected mid-dispatch, before the
        timeout fires the serial degradation, and the degraded result is
        still bit-identical to the serial engine."""
        from repro.hetero.parallel import ParallelEngine
        from repro.qa.faultinject import inject_worker_hang
        from repro.sssp import engine as serial_engine

        # Deterministic seeds: hang 30s (forever at test scale), flag
        # stalls at 0.3s, time the dispatch out at 1.5s.
        monkeypatch.setenv("REPRO_WATCH_STALL", "0.3")
        stalls = _metrics.counter("watch.stalls")
        before = stalls.value
        g = grid_graph(6, 7)
        sources = np.arange(16, dtype=np.int64)
        with events_to(tmp_path), warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with inject_worker_hang(30.0):
                with ParallelEngine(g, workers=2, chunk_size=8, timeout=1.5) as eng:
                    if not eng.is_parallel:
                        pytest.skip("no process pool in this sandbox")
                    dist = eng.multi_source(sources)
        np.testing.assert_array_equal(
            dist, serial_engine.multi_source(g, sources)
        )
        assert stalls.value > before
        evs = EventLog(tmp_path).read()
        stall_evs = [e for e in evs if e["kind"] == "engine.stall_detected"]
        degraded = [e for e in evs if e["kind"] == "engine.degraded"]
        fired = [e for e in evs if e["kind"] == "fault.fired"]
        assert stall_evs and degraded and fired
        assert fired[0]["site"] == "worker.hang"
        # The whole point: detection strictly precedes degradation.
        assert stall_evs[0]["ts_ns"] < degraded[0]["ts_ns"]


class TestWatchCLI:
    def test_watch_once_renders_recorded_stream(self, tmp_path, capsys):
        from repro.cli import main

        with events_to(tmp_path / "ev"):
            from repro.obs.events import emit

            emit("queue.grab", end="back", batch=2, device="gpu", remaining=0)
            emit("worker.heartbeat", status="chunk_done")
        rc = main(["watch", "--once", "--events", str(tmp_path / "ev")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "single frame" in out
        assert "gpu" in out
        # Recorded stream: ages render relative to the stream's end, so
        # a long-finished run must not show every worker as stalled.
        assert "STALLED" not in out

    def test_watch_without_events_dir_exits_nonzero(self, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_EVENTS", raising=False)
        with pytest.raises(SystemExit):
            main(["watch", "--once"])
