"""repro.obs.ledger: run records, tolerant JSONL reads, phase history."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.ledger import (
    SCHEMA_VERSION,
    Ledger,
    LedgerError,
    RunRecord,
    default_ledger_path,
    git_sha,
    host_fingerprint,
    repro_knobs,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _rec(kind="bench_smoke", phases=None, **kw) -> RunRecord:
    return RunRecord(kind=kind, phases=phases or {"smoke.a": 1.0}, **kw)


class TestStamps:
    def test_git_sha_in_this_repo(self):
        sha = git_sha(REPO_ROOT)
        assert sha is not None
        assert len(sha) == 40
        int(sha, 16)  # hex

    def test_git_sha_outside_git(self, tmp_path):
        assert git_sha(tmp_path) is None

    def test_host_fingerprint_keys(self):
        fp = host_fingerprint()
        assert set(fp) == {"hostname", "platform", "machine", "python", "cpus"}
        assert fp["cpus"] >= 1

    def test_repro_knobs_filters_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SSSP_CHUNK", "64")
        monkeypatch.setenv("NOT_A_KNOB", "x")
        knobs = repro_knobs()
        assert knobs["REPRO_SSSP_CHUNK"] == "64"
        assert "NOT_A_KNOB" not in knobs

    def test_default_ledger_path_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert default_ledger_path() is None
        monkeypatch.setenv("REPRO_LEDGER", "/tmp/led.jsonl")
        assert default_ledger_path() == Path("/tmp/led.jsonl")


class TestRunRecord:
    def test_new_stamps_context(self):
        rec = RunRecord.new(
            kind="profile", phases={"apsp.process": 0.5}, root=REPO_ROOT
        )
        assert rec.schema_version == SCHEMA_VERSION
        assert rec.git_sha == git_sha(REPO_ROOT)
        assert rec.created_unix > 0
        assert rec.host["cpus"] >= 1
        assert rec.phases == {"apsp.process": 0.5}

    def test_roundtrip(self):
        rec = RunRecord.new(
            kind="qa",
            phases={"qa.suite": 2.0},
            counters={"qa.checks": 3},
            memory={"peak": 123},
            meta={"seed": 0},
            root=REPO_ROOT,
        )
        back = RunRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
        assert back == rec

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(LedgerError, match="must be an object"):
            RunRecord.from_dict(["not", "a", "dict"])

    def test_from_dict_rejects_missing_schema(self):
        with pytest.raises(LedgerError, match="schema_version"):
            RunRecord.from_dict({"kind": "x", "phases": {}})

    def test_from_dict_rejects_future_schema(self):
        doc = _rec().to_dict()
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(LedgerError, match="newer than supported"):
            RunRecord.from_dict(doc)

    def test_from_dict_rejects_bad_phase_value(self):
        doc = _rec().to_dict()
        doc["phases"] = {"smoke.a": "fast"}
        with pytest.raises(LedgerError, match="non-numeric"):
            RunRecord.from_dict(doc)

    def test_from_dict_rejects_missing_kind(self):
        doc = _rec().to_dict()
        doc["kind"] = ""
        with pytest.raises(LedgerError, match="kind"):
            RunRecord.from_dict(doc)

    def test_v1_record_parses_without_exemplars(self):
        # A v1 record (written before the exemplars field existed) must
        # keep parsing under the v2 schema, defaulting to no exemplars.
        doc = _rec().to_dict()
        doc["schema_version"] = 1
        doc.pop("exemplars", None)
        rec = RunRecord.from_dict(doc)
        assert rec.exemplars == []

    def test_from_dict_rejects_non_list_exemplars(self):
        doc = _rec().to_dict()
        doc["exemplars"] = {"not": "a list"}
        with pytest.raises(LedgerError, match="exemplars"):
            RunRecord.from_dict(doc)

    def test_exemplars_roundtrip(self):
        ex = [{"metric": "query", "dur_s": 0.002, "rank": 1, "digest": "ab12"}]
        rec = RunRecord.new(kind="scenario", phases={}, exemplars=ex, root=REPO_ROOT)
        back = RunRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
        assert back.exemplars == ex


class TestMixedVersionLedger:
    def test_reader_spans_schema_versions(self, tmp_path):
        """One JSONL holding v1, v2, and future-v records side by side.

        The append-only ledger never rewrites history: a reader must take
        v1 records (no exemplars field) as-is, v2 records in full, and
        skip — not crash on — records stamped by a future schema.
        """
        path = tmp_path / "ledger.jsonl"
        v1 = _rec().to_dict()
        v1["schema_version"] = 1
        v1.pop("exemplars", None)
        v1["meta"] = {"gen": "v1"}
        v2 = RunRecord.new(
            kind="scenario",
            phases={"s.wall": 1.0},
            exemplars=[{"metric": "query", "rank": 1}],
            root=REPO_ROOT,
        ).to_dict()
        v2["meta"] = {"gen": "v2"}
        future = _rec().to_dict()
        future["schema_version"] = SCHEMA_VERSION + 1
        future["meta"] = {"gen": "future"}
        with open(path, "w") as fh:
            for doc in (v1, v2, future):
                fh.write(json.dumps(doc) + "\n")
        ledger = Ledger(path)
        recs = ledger.records()
        assert [r.meta["gen"] for r in recs] == ["v1", "v2"]
        assert ledger.skipped == 1
        assert recs[0].exemplars == []
        assert recs[1].exemplars == [{"metric": "query", "rank": 1}]


class TestLedger:
    def test_append_and_read(self, tmp_path):
        led = Ledger(tmp_path / "runs.jsonl")
        led.append(_rec(phases={"smoke.a": 1.0}))
        led.append(_rec(phases={"smoke.a": 2.0}))
        recs = led.records()
        assert [r.phases["smoke.a"] for r in recs] == [1.0, 2.0]
        assert led.skipped == 0

    def test_append_creates_parents(self, tmp_path):
        led = Ledger(tmp_path / "deep" / "runs.jsonl")
        led.append(_rec())
        assert led.path.exists()

    def test_missing_file_reads_empty(self, tmp_path):
        led = Ledger(tmp_path / "absent.jsonl")
        assert led.records() == []
        assert led.latest() is None

    def test_tolerant_reader_skips_garbage(self, tmp_path):
        p = tmp_path / "runs.jsonl"
        led = Ledger(p)
        led.append(_rec(phases={"smoke.a": 1.0}))
        with open(p, "a") as fh:
            fh.write("{not json\n")                     # corrupt line
            fh.write("\n")                              # blank line (ignored)
            doc = _rec().to_dict()
            doc["schema_version"] = SCHEMA_VERSION + 5  # future writer
            fh.write(json.dumps(doc) + "\n")
        led.append(_rec(phases={"smoke.a": 3.0}))
        recs = led.records()
        assert [r.phases["smoke.a"] for r in recs] == [1.0, 3.0]
        assert led.skipped == 2  # corrupt + future; blank is not an error

    def test_kind_filter_and_latest(self, tmp_path):
        led = Ledger(tmp_path / "runs.jsonl")
        led.append(_rec(kind="bench_smoke", phases={"smoke.a": 1.0}))
        led.append(_rec(kind="profile", phases={"apsp.process": 9.0}))
        led.append(_rec(kind="bench_smoke", phases={"smoke.a": 2.0}))
        assert len(led.records("bench_smoke")) == 2
        assert led.latest("bench_smoke").phases["smoke.a"] == 2.0
        assert led.latest("profile").phases == {"apsp.process": 9.0}
        assert led.latest("nope") is None

    def test_phase_history_with_limit(self, tmp_path):
        led = Ledger(tmp_path / "runs.jsonl")
        for v in (1.0, 2.0, 3.0, 4.0):
            led.append(_rec(phases={"smoke.a": v, "smoke.b": v * 10}))
        hist = led.phase_history("bench_smoke")
        assert hist["smoke.a"] == [1.0, 2.0, 3.0, 4.0]
        hist = led.phase_history("bench_smoke", limit=2)
        assert hist["smoke.a"] == [3.0, 4.0]
        assert hist["smoke.b"] == [30.0, 40.0]

    def test_jsonl_is_plain_one_object_per_line(self, tmp_path):
        """The format promise: grep/jq-able, sorted keys, newline-terminated."""
        led = Ledger(tmp_path / "runs.jsonl")
        led.append(_rec())
        text = led.path.read_text()
        assert text.endswith("\n")
        doc = json.loads(text.splitlines()[0])
        assert doc["kind"] == "bench_smoke"
        assert list(doc) == sorted(doc)


def _append_burst(path: str, worker: int, count: int) -> None:
    """Child-process body for the concurrent-append test (module level so
    it pickles under the spawn start method)."""
    from repro.obs.ledger import Ledger, RunRecord

    led = Ledger(path)
    for i in range(count):
        led.append(
            RunRecord.new(kind="stress", phases={f"w{worker}.p{i}": float(i)})
        )


class TestConcurrentAppend:
    def test_multiprocess_appends_never_tear_lines(self, tmp_path):
        """4 processes × 25 appends race one ledger file; every record
        must read back whole — the O_APPEND single-write contract."""
        import multiprocessing as mp

        path = tmp_path / "runs.jsonl"
        procs = [
            mp.Process(target=_append_burst, args=(str(path), w, 25))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        led = Ledger(path)
        recs = led.records(kind="stress")
        assert len(recs) == 100
        assert led.skipped == 0
        # Every (worker, i) pair arrived exactly once — nothing was
        # interleaved into another record's line.
        seen = {name for r in recs for name in r.phases}
        assert len(seen) == 100


class TestBenchSmokeStamping:
    def test_script_stamps_baseline_and_appends_ledger(self, tmp_path):
        """Satellite: bench_smoke output carries git SHA + schema version."""
        import os
        import subprocess
        import sys

        out = tmp_path / "baseline.json"
        ledger = tmp_path / "ledger.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "bench_smoke.py"),
                "--scale", "0.004",
                "--out", str(out),
                "--ledger", str(ledger),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["git_sha"] == git_sha(REPO_ROOT)
        assert doc["created_unix"] > 0
        assert doc["host"]["cpus"] >= 1
        assert doc["phases"]["smoke.repeated_sssp.cached"] > 0
        rec = Ledger(ledger).latest("bench_smoke")
        assert rec is not None
        assert rec.phases == doc["phases"]
        assert "schema v" in proc.stdout
