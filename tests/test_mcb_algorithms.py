"""MCB solvers: de Pina, Horton, Mehlhorn–Michail — cross-validated."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    grid_graph,
    randomize_weights,
    to_networkx,
)
from repro.mcb import (
    DePinaReport,
    MMReport,
    depina_mcb,
    horton_mcb,
    horton_set,
    mm_mcb,
    perturbed_weights,
    verify_cycle_basis,
)

from _support import biconnected_weighted


def total(cycles):
    return float(sum(c.weight for c in cycles))


def assert_same_weight(a, b, rel=1e-6):
    assert abs(a - b) <= rel * max(1.0, abs(a)), (a, b)


class TestHandComputedCases:
    def test_triangle(self):
        g = cycle_graph(3)
        for solver in (depina_mcb, horton_mcb, mm_mcb):
            basis = solver(g)
            assert len(basis) == 1 and total(basis) == pytest.approx(3.0)

    def test_k4_unit_weights(self):
        g = complete_graph(4)
        for solver in (depina_mcb, horton_mcb, mm_mcb):
            basis = solver(g)
            assert len(basis) == 3
            assert total(basis) == pytest.approx(9.0)  # three triangles
            assert all(len(c) == 3 for c in basis)

    def test_two_triangles_sharing_edge(self):
        g = CSRGraph(4, [0, 1, 0, 0, 1], [1, 2, 2, 3, 3])
        for solver in (depina_mcb, horton_mcb, mm_mcb):
            basis = solver(g)
            assert len(basis) == 2
            assert total(basis) == pytest.approx(6.0)

    def test_petersen_graph(self):
        g = CSRGraph.from_edges(10, list(nx.petersen_graph().edges()))
        for solver in (depina_mcb, mm_mcb):
            basis = solver(g)
            assert len(basis) == 6
            assert total(basis) == pytest.approx(30.0)  # six 5-cycles (girth 5)

    def test_multigraph_by_hand(self, multigraph):
        # cheapest basis: loop (0.5), parallel pair (1+2=3), square (4.0)
        for solver in (depina_mcb, horton_mcb, mm_mcb):
            basis = solver(multigraph)
            assert len(basis) == 3
            assert total(basis) == pytest.approx(7.5)

    def test_grid_unit_weights(self):
        g = grid_graph(3, 4)
        dim = g.cycle_space_dimension()
        for solver in (depina_mcb, mm_mcb):
            basis = solver(g)
            assert len(basis) == dim
            assert total(basis) == pytest.approx(4.0 * dim)  # all unit squares


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(6))
    def test_depina_equals_horton_random_weights(self, seed):
        g = randomize_weights(gnm_random_graph(16, 26, seed=seed), seed=seed)
        assert_same_weight(total(depina_mcb(g)), total(horton_mcb(g)))

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("lca", [True, False])
    def test_mm_equals_depina_random_weights(self, seed, lca):
        g = randomize_weights(gnm_random_graph(22, 38, seed=seed), seed=seed)
        mm = mm_mcb(g, lca_filter=lca)
        assert verify_cycle_basis(g, mm).ok
        assert_same_weight(total(mm), total(depina_mcb(g)))

    @pytest.mark.parametrize("seed", range(4))
    def test_mm_equals_depina_unit_weights_ties(self, seed):
        g = gnm_random_graph(16, 28, seed=seed)
        assert_same_weight(total(mm_mcb(g)), total(depina_mcb(g)))

    @pytest.mark.parametrize("seed", range(3))
    def test_disconnected_graphs(self, seed):
        g = gnm_random_graph(24, 30, seed=seed, connected=False)
        for solver in (depina_mcb, mm_mcb):
            basis = solver(g)
            rep = verify_cycle_basis(g, basis)
            assert rep.ok
        assert_same_weight(total(depina_mcb(g)), total(mm_mcb(g)))

    def test_depina_all_roots_mode(self):
        g = biconnected_weighted(2, n=14, extra=8)
        assert_same_weight(
            total(depina_mcb(g, roots="all")), total(depina_mcb(g, roots="fvs"))
        )

    def test_depina_bad_roots(self, ring):
        with pytest.raises(ValueError):
            depina_mcb(ring, roots="some")


class TestDegenerateInputs:
    def test_forest_empty_basis(self):
        from repro.graph import path_graph

        for solver in (depina_mcb, horton_mcb, mm_mcb):
            assert solver(path_graph(6)) == []

    def test_empty_graph(self):
        g = CSRGraph(0, [], [])
        for solver in (depina_mcb, horton_mcb, mm_mcb):
            assert solver(g) == []

    def test_single_self_loop(self):
        g = CSRGraph(1, [0], [0], [2.5])
        for solver in (depina_mcb, horton_mcb, mm_mcb):
            basis = solver(g)
            assert len(basis) == 1 and basis[0].weight == pytest.approx(2.5)

    def test_bouquet_of_loops(self):
        g = CSRGraph(1, [0, 0, 0], [0, 0, 0], [1.0, 2.0, 3.0])
        for solver in (depina_mcb, mm_mcb):
            basis = solver(g)
            assert len(basis) == 3
            assert total(basis) == pytest.approx(6.0)


class TestReportsAndInternals:
    def test_depina_report(self):
        g = biconnected_weighted(1, n=12, extra=8)
        rep = DePinaReport()
        depina_mcb(g, report=rep)
        assert rep.f == g.cycle_space_dimension()
        assert rep.searches == rep.f
        assert rep.t_search > 0

    def test_mm_report(self):
        g = biconnected_weighted(1, n=16, extra=10)
        rep = MMReport()
        mm_mcb(g, report=rep)
        assert rep.f == g.cycle_space_dimension()
        assert rep.n_fvs > 0
        assert rep.n_candidates >= rep.f
        fr = rep.fractions()
        assert pytest.approx(sum(fr.values()), abs=1e-9) == 1.0

    def test_mm_block_sizes(self):
        g = biconnected_weighted(3, n=18, extra=12)
        ref = total(mm_mcb(g))
        for bs in (1, 7, 64, 4096):
            assert_same_weight(total(mm_mcb(g, block_size=bs)), ref)

    def test_horton_set_sorted_and_valid(self):
        g = biconnected_weighted(0, n=12, extra=6)
        cycles = horton_set(g)
        weights = [c.weight for c in cycles]
        assert weights == sorted(weights)
        assert all(c.is_valid_cycle(g) for c in cycles)

    def test_perturbed_weights_tiny_and_distinct(self, grid):
        pw = perturbed_weights(grid)
        assert np.unique(pw).size == grid.m  # all distinct now
        assert np.max(np.abs(pw - grid.edge_w)) < 1e-6

    def test_mm_no_perturb_on_generic_weights(self):
        g = biconnected_weighted(4, n=14, extra=8)
        assert_same_weight(total(mm_mcb(g, perturb=False)), total(depina_mcb(g)))
