"""Block-cut tree structure, LCA, and boundary articulation points."""

import networkx as nx
import pytest

from repro.decomposition import BlockCutTree, biconnected_components
from repro.graph import CSRGraph, path_graph, to_networkx

from _support import composite_graph


def build(g):
    bcc = biconnected_components(g)
    return BlockCutTree(g, bcc), bcc


def test_node_counts():
    g = path_graph(4)  # 3 blocks, 2 cuts
    tree, bcc = build(g)
    assert tree.n_blocks == 3
    assert tree.n_nodes == 5


def test_forest_structure_is_tree_per_component():
    g = composite_graph(0)
    tree, _ = build(g)
    # edges in a forest: nodes - trees
    n_edges = sum(len(a) for a in tree.adj) // 2
    assert n_edges == tree.n_nodes - tree.n_trees


def test_node_for_vertex():
    g = path_graph(4)
    tree, bcc = build(g)
    assert tree.node_for_vertex(1) >= tree.n_blocks  # AP -> cut node
    assert tree.node_for_vertex(0) < tree.n_blocks   # leaf -> block node


def test_isolated_vertex_raises():
    g = CSRGraph(3, [0], [1])
    tree, _ = build(g)
    with pytest.raises(KeyError):
        tree.node_for_vertex(2)


def test_lca_depth_consistency():
    g = composite_graph(2)
    tree, _ = build(g)
    for a in range(0, tree.n_nodes, 3):
        for b in range(0, tree.n_nodes, 5):
            anc = tree.lca(a, b)
            if tree.tree_id[a] != tree.tree_id[b]:
                assert anc == -1
            else:
                assert anc >= 0
                assert tree.depth[anc] <= min(tree.depth[a], tree.depth[b])


def _brute_force_bracket(g, u, v):
    """All vertices whose removal separates u from v, via networkx."""
    G = to_networkx(g)
    if G.is_multigraph():
        G = nx.Graph(G)
    seps = []
    for w in G.nodes:
        if w in (u, v):
            continue
        H = G.copy()
        H.remove_node(w)
        if not nx.has_path(H, u, v):
            seps.append(w)
    return set(seps)


@pytest.mark.parametrize("seed", [0, 2, 4])
def test_boundary_aps_are_separators(seed):
    g = composite_graph(seed, n=14, m=20)
    tree, bcc = build(g)
    import numpy as np

    rng = np.random.default_rng(seed)
    checked = 0
    for _ in range(60):
        u, v = rng.integers(0, g.n, size=2)
        u, v = int(u), int(v)
        if u == v or g.degree[u] == 0 or g.degree[v] == 0:
            continue
        try:
            bracket = tree.boundary_aps(u, v)
        except ValueError:
            continue  # different connected components
        seps = _brute_force_bracket(g, u, v)
        if bracket is None:
            # same block: no forced separator between u and v exists...
            # unless the block is a bridge edge (no interior).
            continue
        a1, a2 = bracket
        assert a1 in seps or a1 in (u, v)
        assert a2 in seps or a2 in (u, v)
        checked += 1
    assert checked > 5


def test_same_block_returns_none(grid):
    tree, _ = build(grid)
    assert tree.boundary_aps(0, 5) is None


def test_adjacent_blocks_share_ap():
    g = path_graph(3)  # blocks 0-1 and 1-2, AP at 1
    tree, _ = build(g)
    assert tree.boundary_aps(0, 2) == (1, 1)


def test_blocks_of_vertex():
    g = path_graph(3)
    tree, _ = build(g)
    assert len(tree.blocks_of_vertex(1)) == 2
    assert len(tree.blocks_of_vertex(0)) == 1
    assert tree.same_block(0, 1) is not None
    assert tree.same_block(0, 2) is None


def test_disconnected_raises():
    g = CSRGraph(4, [0, 2], [1, 3])
    tree, _ = build(g)
    with pytest.raises(ValueError):
        tree.boundary_aps(0, 2)
