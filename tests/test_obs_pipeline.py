"""End-to-end observability: pipeline spans, worker stitching, profile CLI.

Covers the ISSUE's integration criteria: the pipeline drivers emit the
paper's preprocess/process/post-process phases as top-level spans, the
parallel backend's worker spans merge into the parent trace as separate
pid tracks (and survive an injected worker crash uncorrupted), and
``repro-bench profile`` writes a schema-valid Chrome trace.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.graph import grid_graph
from repro.hetero.apsp_runner import apsp_with_trace
from repro.hetero.mcb_runner import mcb_with_trace
from repro.hetero.parallel import ParallelEngine
from repro.obs import tracing, validate_chrome_trace
from repro.qa import faultinject
from repro.sssp import engine as serial_engine

TINY = 0.012

PHASES = {"preprocess", "process", "postprocess"}


def _root_names(tr):
    return [n["span"].name for n in tr.span_tree()]


class TestPipelinePhases:
    def test_apsp_paper_phases_are_roots(self):
        g = grid_graph(6, 6)
        with tracing() as tr:
            apsp_with_trace(g)
        roots = _root_names(tr)
        assert PHASES <= set(roots)
        # Phase order follows the paper: decompose/reduce, then dijkstra,
        # then extend/assemble.
        assert roots.index("preprocess") < roots.index("process")
        assert roots.index("process") < roots.index("postprocess")
        stages = {
            (n["span"].name, n["span"].args.get("stage")) for n in tr.span_tree()
        }
        assert ("process", "dijkstra") in stages

    def test_mcb_paper_phases_are_roots(self):
        g = grid_graph(5, 5)
        with tracing() as tr:
            cycles, _ = mcb_with_trace(g)
        assert cycles
        roots = set(_root_names(tr))
        assert PHASES <= roots
        stages = {n["span"].args.get("stage") for n in tr.span_tree()}
        assert "mehlhorn_michail" in stages
        assert "expand" in stages

    def test_decomposition_spans_nest_under_preprocess(self):
        g = grid_graph(6, 6)
        with tracing() as tr:
            apsp_with_trace(g)
        names = {s.name for s in tr.spans}
        assert "decomposition.ear" in names or "decomposition.reduce" in names
        pre = [n for n in tr.span_tree() if n["span"].name == "preprocess"]
        nested = {c["span"].name for node in pre for c in node["children"]}
        assert nested & {"decomposition.ear", "decomposition.reduce"}


class TestWorkerStitching:
    def test_worker_spans_merge_as_pid_tracks(self):
        g = grid_graph(10, 10)
        sources = np.arange(g.n, dtype=np.int64)
        with ParallelEngine(g, workers=2) as eng:
            if not eng.is_parallel:
                pytest.skip("no live pool in this environment")
            with tracing() as tr:
                dist = eng.multi_source(sources)
        assert np.array_equal(dist, serial_engine.multi_source(g, sources))
        names = {s.name for s in tr.spans}
        assert "parallel.dispatch" in names
        assert "parallel.worker_chunk" in names
        pids = {s.pid for s in tr.spans}
        assert len(pids) >= 2, "worker spans should carry their own pid"
        doc = tr.chrome_trace()
        assert validate_chrome_trace(doc) == []
        labels = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "repro (parent)" in labels
        assert any(lb.startswith("repro worker ") for lb in labels)

    def test_untraced_dispatch_ships_no_span_payload(self):
        # With tracing off the worker protocol must stay lean: results come
        # back as bare arrays, not (result, spans) pairs.
        g = grid_graph(8, 8)
        sources = np.arange(g.n, dtype=np.int64)
        with ParallelEngine(g, workers=2) as eng:
            dist = eng.multi_source(sources)
        assert np.array_equal(dist, serial_engine.multi_source(g, sources))

    def test_injected_worker_crash_keeps_trace_valid(self):
        """REPRO_FAULTS worker crash must not corrupt the parent trace."""
        g = grid_graph(8, 8)
        sources = np.arange(g.n, dtype=np.int64)
        # Arm the fault before the pool forks so the workers inherit it.
        with faultinject.inject_worker_crash():
            with ParallelEngine(g, workers=2) as eng:
                if not eng.is_parallel:
                    pytest.skip("no live pool in this environment")
                with tracing() as tr:
                    with pytest.warns(RuntimeWarning, match="degrading"):
                        dist = eng.multi_source(sources)
        # The degraded path still returns the serial engine's matrices…
        assert np.array_equal(dist, serial_engine.multi_source(g, sources))
        # …and every span in the trace is complete and well-formed: the
        # crashed workers returned nothing, so nothing partial was ingested.
        assert validate_chrome_trace(tr.chrome_trace()) == []
        for s in tr.spans:
            assert s.dur_ns >= 0 and s.name

    def test_spt_forest_dispatch_traced(self):
        g = grid_graph(7, 7)
        sources = np.arange(g.n, dtype=np.int64)
        with ParallelEngine(g, workers=2) as eng:
            if not eng.is_parallel:
                pytest.skip("no live pool in this environment")
            with tracing() as tr:
                dist, pred = eng.spt_forest(sources)
        sd, sp = serial_engine.spt_forest(g, sources)
        assert np.array_equal(dist, sd) and np.array_equal(pred, sp)
        assert "parallel.dispatch" in {s.name for s in tr.spans}


class TestProfileCLI:
    def test_profile_apsp_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main([
            "profile", "apsp",
            "--scale", str(TINY),
            "--datasets", "nopoly",
            "--trace-out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert PHASES <= names
        text = capsys.readouterr().out
        assert "phase" in text and "% total" in text
        assert "engine.adj_cache" in text  # counter table rides along

    def test_profile_mcb_summary_only(self, capsys):
        rc = main(["profile", "mcb", "--scale", str(TINY), "--datasets", "nopoly"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "preprocess" in text and "process" in text
        assert "mcb.witness_xors" in text

    def test_bench_harness_records_span_tree(self):
        from repro.bench import run_table2

        with tracing() as tr:
            run_table2(scale=TINY, names=["nopoly"], check=False)
        assert "bench.table2.mcb" in {s.name for s in tr.spans}
        roots = {n["span"].name for n in tr.span_tree()}
        assert "bench.table2.mcb" in roots
