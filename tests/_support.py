"""Shared helper functions for the test suite (importable)."""

from __future__ import annotations

import numpy as np

from repro.graph import (
    CSRGraph,
    attach_blocks,
    gnm_random_graph,
    randomize_weights,
    random_biconnected_graph,
    subdivide_edges,
)


def close(a, b, atol: float = 1e-8) -> bool:
    """Distance-matrix comparison treating +inf as a sentinel."""
    return np.allclose(
        np.nan_to_num(np.asarray(a), posinf=-1.0),
        np.nan_to_num(np.asarray(b), posinf=-1.0),
        atol=atol,
    )


def composite_graph(seed: int, n: int = 30, m: int = 45) -> CSRGraph:
    """Adversarial family: random core + subdivision + grafted blocks.

    Connected for even seeds, disconnected for odd ones; always has
    articulation points, degree-2 chains, and several BCCs.
    """
    core = gnm_random_graph(n, m, seed=seed, connected=(seed % 2 == 0))
    g = subdivide_edges(randomize_weights(core, seed=seed), 0.4, seed=seed)
    return attach_blocks(g, 4, seed=seed)


def biconnected_weighted(seed: int, n: int = 40, extra: int = 25) -> CSRGraph:
    """Random biconnected graph with random weights."""
    return randomize_weights(random_biconnected_graph(n, extra, seed=seed), seed=seed)
