"""repro.obs.regress + the ``repro-bench regress``/``profile`` CLI gates.

Pins the ISSUE's acceptance behaviours directly:

* ``repro-bench regress`` exits 0 on an unchanged rerun of the same
  phases and exits nonzero when fed a synthetic run with a phase slowed
  beyond tolerance;
* ``repro-bench profile apsp`` prints measured distance-table bytes with
  the Table 1 shape ``a² + Σ nᵢ² < n²`` on a multi-BCC corpus graph.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.ledger import Ledger, RunRecord
from repro.obs.regress import (
    compare,
    diff_chrome_traces,
    extract_phases,
    mad,
    measure_profile_phases,
    median,
    phase_totals,
)


class TestRobustStats:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        assert median([7.0]) == 7.0
        with pytest.raises(ValueError):
            median([])

    def test_mad(self):
        assert mad([]) == 0.0
        assert mad([5.0]) == 0.0
        assert mad([1.0, 1.0, 1.0]) == 0.0
        assert mad([1.0, 2.0, 3.0, 100.0]) == pytest.approx(1.0)


class TestCompare:
    def test_unchanged_candidate_is_ok(self):
        hist = {"a": [1.0, 1.01, 0.99], "b": [0.5]}
        report = compare(hist, {"a": 1.0, "b": 0.5})
        assert report.ok
        assert report.compared == 2
        assert {v.status for v in report.verdicts} == {"ok"}

    def test_slowed_phase_clears_both_bands(self):
        hist = {"a": [1.0, 1.0, 1.0]}
        report = compare(hist, {"a": 2.5}, rel_tol=0.25, mad_k=5.0)
        assert not report.ok
        (v,) = report.regressions
        assert v.name == "a"
        assert v.ratio == pytest.approx(2.5)

    def test_mad_band_widens_tolerance_for_noisy_history(self):
        # Same 1.4x candidate: quiet history flags it, noisy history does not.
        quiet = {"a": [1.0, 1.0, 1.0, 1.0, 1.0]}
        noisy = {"a": [1.0, 0.7, 1.3, 0.6, 1.4]}
        assert not compare(quiet, {"a": 1.4}, rel_tol=0.25, mad_k=5.0).ok
        assert compare(noisy, {"a": 1.4}, rel_tol=0.25, mad_k=5.0).ok

    def test_single_entry_history_uses_relative_band(self):
        hist = {"a": [1.0]}
        assert compare(hist, {"a": 1.2}, rel_tol=0.25).ok
        assert not compare(hist, {"a": 1.3}, rel_tol=0.25).ok

    def test_noise_floor_never_flags(self):
        hist = {"a": [1e-5]}
        report = compare(hist, {"a": 9e-4}, rel_tol=0.25, min_seconds=1e-3)
        assert report.ok
        assert report.verdicts[0].status == "noise-floor"

    def test_improved_new_and_missing_statuses(self):
        hist = {"a": [1.0], "gone": [2.0]}
        report = compare(hist, {"a": 0.5, "brand": 3.0})
        by_name = {v.name: v.status for v in report.verdicts}
        assert by_name == {"a": "improved", "gone": "missing", "brand": "new"}
        assert report.ok          # new/missing never fail the gate
        assert report.compared == 1  # only "a" was judged on both sides

    def test_compared_counts_only_two_sided_phases(self):
        report = compare({"a": [1.0]}, {"a": 1.0, "b": 2.0})
        assert report.compared == 1

    def test_rejects_negative_knobs(self):
        with pytest.raises(ValueError):
            compare({"a": [1.0]}, {"a": 1.0}, rel_tol=-0.1)

    def test_render_confirmed_regression_line(self):
        hist = {"smoke.a": [1.0, 1.0], "smoke.b": [1.0]}
        report = compare(hist, {"smoke.a": 2.5, "smoke.b": 1.0})
        text = report.render()
        assert "CONFIRMED REGRESSION in 1 phase(s)" in text
        assert "smoke.a at 2.50x baseline" in text
        assert "REGRESSED" in text

    def test_render_clean_run_line(self):
        report = compare({"a": [1.0]}, {"a": 1.0})
        assert "no confirmed regressions across 1 compared phase(s)" in report.render()


class TestExtractPhases:
    def test_stamped_document(self):
        rec = RunRecord(kind="bench_smoke", phases={"smoke.a": 1.5})
        assert extract_phases(rec.to_dict()) == {"smoke.a": 1.5}

    def test_bare_numeric_dict(self):
        assert extract_phases({"a": 1, "b": 2.5}) == {"a": 1.0, "b": 2.5}

    def test_legacy_bench_baseline_layout(self):
        doc = {
            "repeated_sssp": {
                "uncached_per_source_s": 4.0,
                "cached_chunked_s": 1.0,
            },
            "parallel": {"serial_s": 2.0, "parallel_s": 1.5},
            "fig2": [{"name": "nopoly", "t_ours_s": 0.1, "t_baseline_s": 0.2}],
            "table2": [
                {"name": "nopoly", "wall_with_ear_s": 0.3, "wall_without_ear_s": 0.4}
            ],
        }
        phases = extract_phases(doc)
        assert phases["smoke.repeated_sssp.uncached"] == 4.0
        assert phases["smoke.parallel.parallel"] == 1.5
        assert phases["smoke.fig2.nopoly.ours"] == 0.1
        assert phases["smoke.table2.nopoly.without_ear"] == 0.4

    def test_repo_committed_baseline_is_extractable(self):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "BENCH_BASELINE.json"
        phases = extract_phases(json.loads(path.read_text()))
        assert "smoke.repeated_sssp.cached" in phases
        assert all(v >= 0 for v in phases.values())

    def test_unrecognizable_document_raises(self):
        with pytest.raises(ValueError, match="no recognizable"):
            extract_phases({"unrelated": {"stuff": "here"}})
        with pytest.raises(ValueError, match="expected an object"):
            extract_phases([1, 2, 3])


def _trace_doc(spans: dict[str, float]) -> dict:
    """Chrome trace with one complete event per name (dur in seconds)."""
    return {
        "traceEvents": [
            {"ph": "X", "name": k, "ts": 0, "dur": v * 1e6, "pid": 1, "tid": 1}
            for k, v in spans.items()
        ]
    }


class TestTraceDiff:
    def test_biggest_mover_first(self):
        a = _trace_doc({"dijkstra": 1.0, "reduce": 0.5})
        b = _trace_doc({"dijkstra": 3.0, "reduce": 0.6, "assemble": 0.1})
        rows = diff_chrome_traces(a, b)
        assert rows[0]["name"] == "dijkstra"
        assert rows[0]["delta_s"] == pytest.approx(2.0)
        assert rows[0]["ratio"] == pytest.approx(3.0)
        by_name = {r["name"]: r for r in rows}
        assert by_name["assemble"]["a_s"] == 0.0
        assert by_name["assemble"]["ratio"] == float("inf")

    def test_ignores_non_complete_events(self):
        a = {"traceEvents": [{"ph": "M", "name": "meta"}]}
        assert diff_chrome_traces(a, a) == []


class TestMeasureProfilePhases:
    def test_apsp_phase_names_and_positivity(self):
        phases = measure_profile_phases(
            workload="apsp", dataset="nopoly", scale=0.008, repeats=1
        )
        assert set(phases) == {"apsp.preprocess", "apsp.process", "apsp.postprocess"}
        assert all(v > 0 for v in phases.values())

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            measure_profile_phases(repeats=0)


@pytest.fixture()
def no_env_ledger(monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER", raising=False)


def _baseline_file(tmp_path, phases, name="baseline.json"):
    path = tmp_path / name
    path.write_text(json.dumps({"schema_version": 1, "phases": phases}))
    return path


PHASES = {"smoke.a": 0.8, "smoke.b": 0.2}


class TestRegressCLI:
    def test_unchanged_rerun_exits_zero(self, tmp_path, capsys, no_env_ledger):
        """ISSUE acceptance: same-commit rerun passes the gate."""
        base = _baseline_file(tmp_path, PHASES)
        cand = tmp_path / "candidate.json"
        cand.write_text(json.dumps(PHASES))
        rc = main(
            ["regress", "--baseline", str(base), "--candidate", str(cand)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "no confirmed regressions across 2 compared phase(s)" in out

    def test_slowed_run_exits_nonzero(self, tmp_path, capsys, no_env_ledger):
        """ISSUE acceptance: a phase slowed beyond tolerance fails the gate."""
        base = _baseline_file(tmp_path, PHASES)
        cand = tmp_path / "candidate.json"
        cand.write_text(json.dumps({**PHASES, "smoke.a": PHASES["smoke.a"] * 3}))
        with pytest.raises(SystemExit) as exc:
            main(["regress", "--baseline", str(base), "--candidate", str(cand)])
        assert exc.value.code == 1
        out = capsys.readouterr().out
        assert "CONFIRMED REGRESSION in 1 phase(s)" in out
        assert "smoke.a at 3.00x baseline" in out

    def test_no_baseline_data_exits_two(self, tmp_path, capsys, no_env_ledger):
        cand = tmp_path / "candidate.json"
        cand.write_text(json.dumps(PHASES))
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "regress",
                    "--baseline", str(tmp_path / "absent.json"),
                    "--candidate", str(cand),
                ]
            )
        assert exc.value.code == 2
        assert "no baseline data" in capsys.readouterr().out

    def test_disjoint_phases_exit_two(self, tmp_path, capsys, no_env_ledger):
        base = _baseline_file(tmp_path, {"old.phase": 1.0})
        cand = tmp_path / "candidate.json"
        cand.write_text(json.dumps({"new.phase": 1.0}))
        with pytest.raises(SystemExit) as exc:
            main(["regress", "--baseline", str(base), "--candidate", str(cand)])
        assert exc.value.code == 2
        assert "no comparable phases" in capsys.readouterr().out

    def test_ledger_history_feeds_noise_model(self, tmp_path, capsys, no_env_ledger):
        # Noisy ledger history widens the MAD band enough to pass a 1.4x
        # candidate that a single-point baseline would flag.
        ledger_path = tmp_path / "ledger.jsonl"
        led = Ledger(ledger_path)
        for v in (1.0, 0.7, 1.3, 0.6, 1.4):
            led.append(RunRecord(kind="bench_smoke", phases={"smoke.a": v}))
        cand = tmp_path / "candidate.json"
        cand.write_text(json.dumps({"smoke.a": 1.4}))
        rc = main(
            [
                "regress",
                "--ledger", str(ledger_path),
                "--baseline", str(tmp_path / "absent.json"),
                "--candidate", str(cand),
            ]
        )
        assert rc == 0

    def test_record_appends_candidate_to_ledger(self, tmp_path, no_env_ledger):
        ledger_path = tmp_path / "ledger.jsonl"
        Ledger(ledger_path).append(
            RunRecord(kind="bench_smoke", phases={"smoke.a": 0.8})
        )
        cand = tmp_path / "candidate.json"
        cand.write_text(json.dumps({"smoke.a": 0.8}))
        rc = main(
            [
                "regress",
                "--ledger", str(ledger_path),
                "--baseline", str(tmp_path / "absent.json"),
                "--candidate", str(cand),
                "--record",
            ]
        )
        assert rc == 0
        recs = Ledger(ledger_path).records()
        assert [r.kind for r in recs] == ["bench_smoke", "regress"]
        assert recs[-1].phases == {"smoke.a": 0.8}

    def test_trace_diff_mode(self, tmp_path, capsys, no_env_ledger):
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        pa.write_text(json.dumps(_trace_doc({"dijkstra": 1.0})))
        pb.write_text(json.dumps(_trace_doc({"dijkstra": 2.0})))
        rc = main(["regress", "--trace-a", str(pa), "--trace-b", str(pb)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Chrome-trace diff" in out
        assert "dijkstra" in out

    def test_trace_diff_requires_both_files(self, tmp_path, no_env_ledger):
        with pytest.raises(SystemExit, match="both required"):
            main(["regress", "--trace-a", "only-one.json"])


class TestProfileCLI:
    def test_profile_apsp_prints_measured_table1(self, capsys, no_env_ledger):
        """ISSUE acceptance: profile apsp reports reduced-vs-dense bytes."""
        rc = main(
            ["profile", "apsp", "--datasets", "ca-AstroPh", "--scale", "0.012"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1 (measured) — ca-AstroPh" in out
        assert "oracle total (a² + Σ nᵢ²)" in out
        assert "dense matrix (n²)" in out
        assert "per-phase memory" in out
        # The headline shape claim, printed with the strict inequality on
        # this multi-BCC graph.
        assert "shape: a² + Σ nᵢ² = " in out
        shape_line = next(l for l in out.splitlines() if l.startswith("shape:"))
        assert " < n² = " in shape_line

    def test_profile_appends_ledger_record(self, tmp_path, capsys, no_env_ledger):
        ledger_path = tmp_path / "ledger.jsonl"
        rc = main(
            [
                "profile", "apsp",
                "--datasets", "nopoly",
                "--scale", "0.008",
                "--ledger", str(ledger_path),
            ]
        )
        assert rc == 0
        rec = Ledger(ledger_path).latest("profile")
        assert rec is not None
        assert rec.meta["dataset"] == "nopoly"
        assert "apsp.process" in rec.phases
        assert "memory.apsp.oracle_bytes" in rec.memory["gauges"]
        assert rec.memory["spans"]  # tracemalloc spans were captured
        assert "appended profile record" in capsys.readouterr().out


def test_phase_totals_counts_only_roots():
    from repro.obs.trace import span, tracing

    with tracing() as tr:
        with span("outer", cat="t"):
            with span("inner", cat="t"):
                pass
        with span("outer", cat="t"):
            pass
    totals = phase_totals(tr)
    assert set(totals) == {"t.outer"}
    assert totals["t.outer"] > 0
