"""Hybrid array/linked-list candidate store (Section 3.3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcb import CandidateStore


def make_store(n=100, block=16):
    return CandidateStore(np.arange(n), block_size=block)


def match_set(targets):
    targets = set(targets)

    def pred(ids):
        return np.array([int(i) in targets for i in ids])

    return pred


def test_scan_returns_first_in_order():
    store = make_store()
    assert store.scan_and_remove(match_set({55, 7, 90})) == 7


def test_removed_not_returned_again():
    store = make_store()
    assert store.scan_and_remove(match_set({7})) == 7
    assert store.scan_and_remove(match_set({7})) is None


def test_len_tracks_removals():
    store = make_store(10)
    assert len(store) == 10
    store.scan_and_remove(match_set({3}))
    assert len(store) == 9


def test_no_match_returns_none_and_keeps_all():
    store = make_store(20)
    assert store.scan_and_remove(lambda ids: np.zeros(len(ids), dtype=bool)) is None
    assert len(store) == 20


def test_early_exit_skips_later_batches():
    store = make_store(100, block=10)
    store.scan_and_remove(match_set({5}))
    # only the first batch should have been visited
    assert store.stats.batches_visited == 1
    assert store.stats.candidates_tested == 10


def test_compaction_triggers_at_half():
    store = CandidateStore(np.arange(8), block_size=8)
    for t in (0, 1, 2, 3):
        store.scan_and_remove(match_set({t}))
    assert store.stats.compactions >= 1
    assert sorted(store.remaining_ids().tolist()) == [4, 5, 6, 7]


def test_empty_blocks_unlinked():
    store = CandidateStore(np.arange(4), block_size=2)
    for t in (0, 1):
        store.scan_and_remove(match_set({t}))
    # first block now empty; next scan must still find later entries
    assert store.scan_and_remove(match_set({3})) == 3


def test_weight_order_preserved_nontrivial_ids():
    # ordered ids need not be 0..n-1
    order = np.array([42, 17, 99, 3])
    store = CandidateStore(order, block_size=2)
    assert store.scan_and_remove(match_set({99, 3})) == 99  # first in order


def test_invalid_block_size():
    with pytest.raises(ValueError):
        CandidateStore(np.arange(3), block_size=0)


def test_empty_store():
    store = CandidateStore(np.array([], dtype=np.int64))
    assert len(store) == 0
    assert store.scan_and_remove(lambda ids: np.ones(len(ids), dtype=bool)) is None


@given(
    st.integers(1, 60),
    st.integers(1, 16),
    st.lists(st.integers(0, 59), min_size=1, max_size=40),
)
@settings(max_examples=60)
def test_property_matches_naive_first_match(n, block, removals):
    """Whatever the removal pattern, scan == first live id matching."""
    store = CandidateStore(np.arange(n), block_size=block)
    alive = list(range(n))
    for r in removals:
        targets = {r, (r * 7) % n}
        got = store.scan_and_remove(match_set(targets))
        want = next((x for x in alive if x in targets), None)
        assert got == want
        if want is not None:
            alive.remove(want)
    assert sorted(store.remaining_ids().tolist()) == alive


class TestParallelScan:
    def test_same_result_as_serial(self):
        for lanes in (1, 2, 4, 9):
            a = make_store(50, block=8)
            b = make_store(50, block=8)
            targets = {33, 12, 47}
            assert a.scan_and_remove(match_set(targets)) == \
                b.scan_and_remove_parallel(match_set(targets), n_lanes=lanes)

    def test_speculative_tests_counted(self):
        serial = make_store(100, block=10)
        par = make_store(100, block=10)
        serial.scan_and_remove(match_set({5}))
        par.scan_and_remove_parallel(match_set({5}), n_lanes=4)
        # parallel round evaluates lanes past the hit block too
        assert par.stats.candidates_tested >= serial.stats.candidates_tested

    def test_match_in_later_round(self):
        store = make_store(100, block=10)
        assert store.scan_and_remove_parallel(match_set({95}), n_lanes=3) == 95

    def test_no_match(self):
        store = make_store(20, block=4)
        none = store.scan_and_remove_parallel(
            lambda ids: np.zeros(len(ids), dtype=bool), n_lanes=3
        )
        assert none is None and len(store) == 20

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            make_store().scan_and_remove_parallel(match_set({1}), n_lanes=0)

    @given(
        st.integers(1, 40),
        st.integers(1, 8),
        st.integers(1, 5),
        st.lists(st.integers(0, 39), min_size=1, max_size=20),
    )
    @settings(max_examples=40)
    def test_property_parallel_equals_serial(self, n, block, lanes, removals):
        a = CandidateStore(np.arange(n), block_size=block)
        b = CandidateStore(np.arange(n), block_size=block)
        for r in removals:
            targets = {r % n, (r * 3) % n}
            assert a.scan_and_remove(match_set(targets)) == \
                b.scan_and_remove_parallel(match_set(targets), n_lanes=lanes)
        assert a.remaining_ids().tolist() == b.remaining_ids().tolist()
