"""Multilevel partitioner invariants."""

import numpy as np
import pytest

from repro.graph import delaunay_graph, grid_graph, gnm_random_graph
from repro.partition import Partition, partition_graph


@pytest.mark.parametrize("k", [2, 4, 7])
def test_assignment_covers_all_vertices(k):
    g = grid_graph(10, 10)
    part = partition_graph(g, k, seed=1)
    assert part.assignment.shape == (g.n,)
    assert part.assignment.min() >= 0
    assert part.assignment.max() < k
    assert sum(len(p) for p in part.parts()) == g.n


@pytest.mark.parametrize("k", [2, 4])
def test_balance(k):
    g = grid_graph(12, 12)
    part = partition_graph(g, k, seed=2)
    assert part.balance() <= 1.35


def test_boundary_on_mesh_is_small():
    g = grid_graph(16, 16)
    part = partition_graph(g, 4, seed=3)
    # a decent 4-way mesh partition cuts O(sqrt(n)) vertices
    assert len(part.boundary_vertices(g)) < g.n // 3


def test_edge_cut_counts_cross_edges():
    g = grid_graph(4, 4)
    part = partition_graph(g, 2, seed=4)
    asg = part.assignment
    manual = int((asg[g.edge_u] != asg[g.edge_v]).sum())
    assert part.edge_cut(g) == manual


def test_k_one_trivial():
    g = grid_graph(3, 3)
    part = partition_graph(g, 1)
    assert (part.assignment == 0).all()


def test_k_ge_n_degenerates():
    g = grid_graph(2, 2)
    part = partition_graph(g, 10, seed=0)
    assert part.assignment.shape == (4,)


def test_deterministic():
    g = delaunay_graph(200, seed=5)
    a = partition_graph(g, 4, seed=9).assignment
    b = partition_graph(g, 4, seed=9).assignment
    assert np.array_equal(a, b)


def test_partition_of_disconnected_graph():
    from repro.graph import CSRGraph

    g = CSRGraph(8, [0, 1, 4, 5], [1, 2, 5, 6])
    part = partition_graph(g, 2, seed=1)
    assert sum(len(p) for p in part.parts()) == 8


def test_no_boundary_when_parts_disconnect_cleanly():
    from repro.graph import CSRGraph

    g = CSRGraph(4, [0, 2], [1, 3])
    part = Partition(np.array([0, 0, 1, 1]), 2)
    assert part.edge_cut(g) == 0
    assert len(part.boundary_vertices(g)) == 0


def test_refinement_does_not_worsen_cut():
    g = gnm_random_graph(120, 300, seed=7)
    from repro.partition.metis_lite import _kl_refine

    rng = np.random.default_rng(0)
    rough = rng.integers(0, 3, size=g.n)
    part0 = Partition(rough.copy(), 3)
    refined = Partition(_kl_refine(g, rough, 3, passes=4), 3)
    assert refined.edge_cut(g) <= part0.edge_cut(g)
