"""Heterogeneous MCB/APSP runners: correct answers + sensible timings."""

import numpy as np
import pytest

from repro.apsp import dijkstra_apsp
from repro.graph import randomize_weights, random_biconnected_graph, subdivide_edges
from repro.hetero import (
    Platform,
    apsp_with_trace,
    mcb_with_trace,
    run_apsp_on_platforms,
    run_mcb_on_platforms,
    simulate_trace,
)
from repro.mcb import minimum_cycle_basis, verify_cycle_basis

from _support import close, composite_graph


@pytest.fixture(scope="module")
def medium():
    g = random_biconnected_graph(100, 70, seed=2)
    return subdivide_edges(randomize_weights(g, seed=2), 0.6, seed=2, chain_length=(2, 4))


class TestMCBRunner:
    def test_cycles_match_reference(self, medium):
        cycles, trace = mcb_with_trace(medium, use_ear=True)
        rep = verify_cycle_basis(medium, cycles)
        assert rep.ok
        ref = verify_cycle_basis(medium, minimum_cycle_basis(medium, algorithm="depina"))
        assert rep.total_weight == pytest.approx(ref.total_weight, rel=1e-6)

    def test_trace_has_expected_stages(self, medium):
        _, trace = mcb_with_trace(medium, use_ear=True)
        kinds = {s.kind for s in trace.stages}
        assert {"decompose", "reduce", "spt", "labels", "scan", "update"} <= kinds

    def test_no_ear_trace_has_no_reduce(self, medium):
        _, trace = mcb_with_trace(medium, use_ear=False)
        assert "reduce" not in {s.kind for s in trace.stages}

    def test_ear_reduces_total_work(self, medium):
        _, with_ear = mcb_with_trace(medium, use_ear=True)
        _, without = mcb_with_trace(medium, use_ear=False)
        assert with_ear.total_work < without.total_work

    def test_platform_results(self, medium):
        res = run_mcb_on_platforms(medium, use_ear=True)
        assert set(res.timings) == {"sequential", "multicore", "gpu", "cpu+gpu"}
        sp = res.speedups_vs_sequential()
        assert sp["sequential"] == pytest.approx(1.0)
        # heterogeneous must beat single devices at this scale
        assert sp["cpu+gpu"] >= max(sp["multicore"], sp["gpu"]) * 0.7
        assert res.total_weight > 0

    def test_works_on_composite_graphs(self):
        g = composite_graph(0)
        cycles, _ = mcb_with_trace(g, use_ear=True)
        assert verify_cycle_basis(g, cycles).ok


class TestAPSPRunner:
    def test_matrix_exact(self, medium):
        mat, _ = apsp_with_trace(medium, use_ear=True)
        assert close(mat, dijkstra_apsp(medium))

    def test_matrix_exact_general(self):
        g = composite_graph(2)
        mat, _ = apsp_with_trace(g, use_ear=True)
        assert close(mat, dijkstra_apsp(g))

    def test_ear_reduces_dijkstra_work(self, medium):
        _, with_ear = apsp_with_trace(medium, use_ear=True)
        _, without = apsp_with_trace(medium, use_ear=False)
        dij_w = with_ear.merged()["dijkstra"]
        dij_wo = without.merged()["dijkstra"]
        assert dij_w < dij_wo

    def test_platforms(self, medium):
        res = run_apsp_on_platforms(medium, use_ear=True)
        sp = res.speedups_vs_sequential()
        assert sp["cpu+gpu"] > 1.0
        assert close(res.matrix, dijkstra_apsp(medium))

    def test_trace_replay_consistency(self, medium):
        _, trace = apsp_with_trace(medium, use_ear=True)
        a = simulate_trace(trace, Platform.sequential()).total_time
        b = simulate_trace(trace, Platform.sequential()).total_time
        assert a == pytest.approx(b)


class TestLiveRunner:
    def test_live_matches_offline(self, medium):
        from repro.hetero import live_hetero_mcb
        from repro.mcb import minimum_cycle_basis

        res = live_hetero_mcb(medium)
        ref = sum(c.weight for c in minimum_cycle_basis(medium, algorithm="depina"))
        assert verify_cycle_basis(medium, res.cycles).ok
        assert res.total_weight == pytest.approx(ref, rel=1e-6)
        assert res.virtual_seconds > 0
        assert set(res.device_busy) == {"cpu", "gpu"}
        assert all(v >= 0 for v in res.device_busy.values())

    def test_live_sequential_platform(self):
        from repro.hetero import Platform, live_hetero_mcb
        from repro.graph import randomize_weights, random_biconnected_graph

        g = randomize_weights(random_biconnected_graph(40, 25, seed=4), seed=4)
        res = live_hetero_mcb(g, platform=Platform.sequential())
        assert verify_cycle_basis(g, res.cycles).ok

    def test_live_no_ear(self):
        from repro.hetero import live_hetero_mcb
        from repro.graph import randomize_weights, random_biconnected_graph, subdivide_edges

        g = subdivide_edges(
            randomize_weights(random_biconnected_graph(30, 20, seed=5), seed=5), 0.5, seed=5
        )
        w_ear = live_hetero_mcb(g, use_ear=True)
        w_raw = live_hetero_mcb(g, use_ear=False)
        assert w_ear.total_weight == pytest.approx(w_raw.total_weight, rel=1e-6)
