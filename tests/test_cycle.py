"""Cycle representation semantics."""

import numpy as np
import pytest

from repro.graph import CSRGraph, cycle_graph, grid_graph
from repro.mcb import Cycle


def test_from_multiset_cancels_pairs(ring):
    c = Cycle.from_multiset(ring, np.array([0, 1, 1, 2]))
    assert sorted(c.edge_ids.tolist()) == [0, 2]


def test_from_multiset_default_weight(ring):
    c = Cycle.from_multiset(ring, np.arange(ring.m))
    assert c.weight == pytest.approx(ring.total_weight)


def test_from_multiset_explicit_weight_and_meta(ring):
    c = Cycle.from_multiset(ring, np.arange(ring.m), weight=42.0, z=3)
    assert c.weight == 42.0
    assert c.meta == {"z": 3}


def test_is_valid_cycle(ring):
    full = Cycle(np.arange(ring.m), ring.total_weight)
    assert full.is_valid_cycle(ring)
    broken = Cycle(np.array([0, 1]), 2.0)
    assert not broken.is_valid_cycle(ring)
    empty = Cycle(np.array([], dtype=np.int64), 0.0)
    assert not empty.is_valid_cycle(ring)


def test_self_loop_is_valid():
    g = CSRGraph(2, [0, 0], [0, 1])
    loop = Cycle(np.array([0]), 1.0)
    assert loop.is_valid_cycle(g)


def test_vertex_sequence_ring(ring):
    seq = Cycle(np.arange(ring.m), ring.total_weight).vertex_sequence(ring)
    assert len(seq) == ring.n
    assert set(seq) == set(range(ring.n))


def test_vertex_sequence_loop():
    g = CSRGraph(2, [0, 0], [0, 1])
    assert Cycle(np.array([0]), 1.0).vertex_sequence(g) == [0]


def test_vertex_sequence_rejects_figure_eight():
    # two triangles sharing a vertex: valid cycle-space vector, not simple
    g = CSRGraph(5, [0, 1, 2, 2, 3, 4], [1, 2, 0, 3, 4, 2])
    c = Cycle(np.arange(6), 6.0)
    assert c.is_valid_cycle(g)
    with pytest.raises(ValueError):
        c.vertex_sequence(g)


def test_support_weight(grid):
    c = Cycle(np.array([0, 1, 2]), 99.0)
    assert c.support_weight(grid) == pytest.approx(float(grid.edge_w[:3].sum()))


def test_len(ring):
    assert len(Cycle(np.arange(3), 3.0)) == 3
