"""Brandes betweenness vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.centrality import (
    betweenness_source_pass,
    brandes_betweenness,
    hetero_betweenness,
)
from repro.graph import (
    CSRGraph,
    cycle_graph,
    grid_graph,
    path_graph,
    randomize_weights,
    to_networkx,
)

from _support import composite_graph


def nx_bc(g, normalized=False):
    G = to_networkx(g)
    if G.is_multigraph():
        G = nx.Graph(G)
    out = nx.betweenness_centrality(G, weight="weight", normalized=normalized)
    return np.array([out[v] for v in range(g.n)])


@pytest.mark.parametrize("seed", range(5))
def test_matches_networkx_weighted(seed):
    g = randomize_weights(composite_graph(seed, n=16, m=24), seed=seed)
    assert np.allclose(brandes_betweenness(g), nx_bc(g), atol=1e-8)


@pytest.mark.parametrize("seed", range(3))
def test_matches_networkx_unit_weights_with_ties(seed):
    from repro.graph import gnm_random_graph

    g = gnm_random_graph(14, 24, seed=seed)
    assert np.allclose(brandes_betweenness(g), nx_bc(g), atol=1e-8)


def test_path_graph_closed_form():
    g = path_graph(6)
    bc = brandes_betweenness(g)
    # vertex i on a path lies between i*(n-1-i) pairs
    want = np.array([i * (5 - i) for i in range(6)], dtype=float)
    assert np.allclose(bc, want)


def test_cycle_symmetry(ring):
    bc = brandes_betweenness(ring)
    assert np.allclose(bc, bc[0])


def test_grid_symmetry(grid):
    bc = brandes_betweenness(grid)
    assert np.allclose(bc, bc[::-1], atol=1e-8)  # 180° rotation symmetry


def test_normalization():
    g = grid_graph(3, 3)
    bc = brandes_betweenness(g, normalized=True)
    assert np.allclose(bc, nx_bc(g, normalized=True), atol=1e-8)


def test_self_loops_ignored():
    base = cycle_graph(5)
    with_loop = CSRGraph(
        5,
        np.concatenate([base.edge_u, [2]]),
        np.concatenate([base.edge_v, [2]]),
        np.concatenate([base.edge_w, [0.1]]),
    )
    assert np.allclose(brandes_betweenness(with_loop), brandes_betweenness(base))


def test_source_pass_sums_to_bc():
    g = randomize_weights(grid_graph(3, 3), seed=1)
    total = sum(betweenness_source_pass(g, s) for s in range(g.n)) / 2.0
    assert np.allclose(total, brandes_betweenness(g))


def test_hetero_betweenness_matches_serial():
    g = randomize_weights(grid_graph(4, 4), seed=2)
    bc, report = hetero_betweenness(g)
    assert np.allclose(bc, brandes_betweenness(g), atol=1e-8)
    assert sum(report.per_device_units.values()) == g.n
