"""Hypothesis property tests over the paper's core invariants.

Each property is an executable statement of a claim the paper relies on:
distance preservation under reduction (Section 2.1), the post-processing
formulas (Section 2.1.3), Lemma 3.1, FVS coverage, and oracle/table
consistency (Section 2.2/2.3).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apsp import DistanceOracle, dijkstra_apsp, ear_apsp_full
from repro.decomposition import biconnected_components, ear_decomposition, reduce_graph
from repro.graph import CSRGraph
from repro.mcb import (
    depina_mcb,
    greedy_fvs,
    is_feedback_vertex_set,
    mm_mcb,
    verify_cycle_basis,
)
from repro.sssp import dijkstra

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def random_graph(draw, min_n=2, max_n=16, connected=False, weighted=True):
    n = draw(st.integers(min_n, max_n))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(0, min(max_m, 3 * n)))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    pairs = set()
    us, vs = [], []
    if connected:
        perm = rng.permutation(n)
        for i in range(1, n):
            j = int(rng.integers(0, i))
            a, b = int(perm[i]), int(perm[j])
            pairs.add((min(a, b), max(a, b)))
    tries = 0
    while len(pairs) < m and tries < 20 * m + 20:
        a, b = rng.integers(0, n, size=2)
        tries += 1
        if a != b:
            pairs.add((int(min(a, b)), int(max(a, b))))
    us = [p[0] for p in pairs]
    vs = [p[1] for p in pairs]
    w = rng.uniform(0.5, 2.0, len(pairs)) if weighted else np.ones(len(pairs))
    return CSRGraph(n, us, vs, w)


@st.composite
def random_multigraph(draw, max_n=8):
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(0, 2 * n + 4))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    us = rng.integers(0, n, m)
    vs = rng.integers(0, n, m)
    return CSRGraph(n, us, vs, rng.uniform(0.5, 2.0, m))


class TestReductionInvariants:
    @given(random_graph())
    @settings(**SETTINGS)
    def test_reduction_validates(self, g):
        reduce_graph(g).validate()

    @given(random_graph(connected=True, min_n=3))
    @settings(**SETTINGS)
    def test_kept_vertex_distances_preserved(self, g):
        red = reduce_graph(g)
        if red.graph.n < 2:
            return
        simple = red.simple_graph()
        d_r = dijkstra(simple, 0)
        d_g = dijkstra(g, int(red.kept_ids[0]))
        assert np.allclose(d_r, d_g[red.kept_ids], atol=1e-9)

    @given(random_graph())
    @settings(**SETTINGS)
    def test_chain_edges_partition_edge_set(self, g):
        red = reduce_graph(g)
        covered = np.concatenate([c.edges for c in red.chains]) if red.chains else np.array([], dtype=np.int64)
        assert sorted(covered.tolist()) == list(range(g.m))

    @given(random_graph())
    @settings(**SETTINGS)
    def test_cycle_space_dimension_invariant(self, g):
        # chain contraction never changes m - n + c
        red = reduce_graph(g)
        assert red.graph.cycle_space_dimension() == g.cycle_space_dimension()


class TestAPSPInvariants:
    @given(random_graph())
    @settings(**SETTINGS)
    def test_ear_apsp_equals_dijkstra(self, g):
        assert np.allclose(
            np.nan_to_num(ear_apsp_full(g), posinf=-1),
            np.nan_to_num(dijkstra_apsp(g, engine="python"), posinf=-1),
            atol=1e-8,
        )

    @given(random_graph(min_n=3), st.integers(0, 10_000))
    @settings(**SETTINGS)
    def test_oracle_equals_matrix(self, g, qseed):
        oracle = DistanceOracle(g)
        ref = dijkstra_apsp(g, engine="python")
        rng = np.random.default_rng(qseed)
        for _ in range(15):
            u, v = rng.integers(0, g.n, 2)
            q = oracle.query(int(u), int(v))
            r = ref[u, v]
            assert (np.isinf(q) and np.isinf(r)) or abs(q - r) < 1e-8

    @given(random_graph())
    @settings(**SETTINGS)
    def test_triangle_inequality(self, g):
        d = ear_apsp_full(g)
        n = g.n
        rng = np.random.default_rng(0)
        for _ in range(20):
            i, j, k = rng.integers(0, n, 3)
            if np.isfinite(d[i, k]) and np.isfinite(d[k, j]):
                assert d[i, j] <= d[i, k] + d[k, j] + 1e-9


class TestEarInvariants:
    @given(random_graph(connected=True, min_n=3))
    @settings(**SETTINGS)
    def test_biconnected_iff_open_ear_decomposition(self, g):
        bcc = biconnected_components(g)
        from repro.graph import GraphError

        try:
            ed = ear_decomposition(g)
        except GraphError:
            # no ear decomposition -> not 2-edge-connected (has a bridge)
            bridges = [c for c in bcc.component_edges if len(c) == 1]
            assert bridges
            return
        if bcc.count == 1 and len(bcc.articulation_points) == 0 and g.n >= 3:
            assert ed.is_open


class TestMCBInvariants:
    @given(random_multigraph())
    @settings(**SETTINGS)
    def test_fvs_covers_all_cycles(self, g):
        assert is_feedback_vertex_set(g, greedy_fvs(g))

    @given(random_multigraph(max_n=6))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_depina_basis_verifies(self, g):
        basis = depina_mcb(g)
        assert verify_cycle_basis(g, basis).ok or g.cycle_space_dimension() == 0

    @given(random_graph(min_n=4, max_n=12, connected=True))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_lemma31_weight_equality(self, g):
        """W(MCB(G)) == W(MCB(G^r)) — the heart of Section 3.3.1."""
        red = reduce_graph(g)
        w_g = sum(c.weight for c in depina_mcb(g))
        w_r = sum(c.weight for c in depina_mcb(red.graph))
        assert abs(w_g - w_r) < 1e-6 * max(1.0, w_g)

    @given(random_graph(min_n=4, max_n=12, connected=True))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_mm_equals_depina(self, g):
        w_mm = sum(c.weight for c in mm_mcb(g))
        w_dp = sum(c.weight for c in depina_mcb(g))
        assert abs(w_mm - w_dp) < 1e-6 * max(1.0, w_dp)


class TestCSRInvariants:
    @given(random_multigraph(max_n=12))
    @settings(**SETTINGS)
    def test_degree_sum_is_twice_edges(self, g):
        assert int(g.degree.sum()) == 2 * g.m

    @given(random_multigraph(max_n=12))
    @settings(**SETTINGS)
    def test_csr_slot_count(self, g):
        loops = int((g.edge_u == g.edge_v).sum())
        assert g.indptr[-1] == 2 * g.m - loops

    @given(random_multigraph(max_n=10))
    @settings(**SETTINGS)
    def test_simplify_preserves_distances(self, g):
        from repro.sssp import dijkstra

        s = g.simplify()
        if g.n == 0:
            return
        assert np.allclose(
            np.nan_to_num(dijkstra(g, 0), posinf=-1),
            np.nan_to_num(dijkstra(s, 0), posinf=-1),
            atol=1e-12,
        )

    @given(random_multigraph(max_n=10), st.integers(0, 10_000))
    @settings(**SETTINGS)
    def test_permutation_preserves_structure(self, g, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(g.n) if g.n else np.zeros(0, dtype=np.int64)
        h = g.reverse_permutation(perm)
        assert h.m == g.m
        assert sorted(h.degree.tolist()) == sorted(g.degree.tolist())
        assert np.isclose(h.total_weight, g.total_weight)

    @given(random_multigraph(max_n=10))
    @settings(**SETTINGS)
    def test_npz_roundtrip(self, g):
        import os
        import tempfile

        from repro.graph import load_npz, save_npz

        fd, name = tempfile.mkstemp(suffix=".npz")
        os.close(fd)
        try:
            save_npz(g, name)
            assert load_npz(name) == g
        finally:
            os.unlink(name)


class TestBFSInvariants:
    @given(random_graph(min_n=2, max_n=14, weighted=False))
    @settings(**SETTINGS)
    def test_bfs_equals_unit_dijkstra(self, g):
        from repro.apsp import bfs_distances
        from repro.sssp import dijkstra

        assert np.allclose(
            np.nan_to_num(bfs_distances(g, 0), posinf=-1),
            np.nan_to_num(dijkstra(g, 0), posinf=-1),
        )


class TestGirthInvariants:
    @given(random_graph(min_n=3, max_n=10, connected=True))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_girth_lower_bounds_every_mcb_cycle(self, g):
        from repro.mcb import weighted_girth

        basis = depina_mcb(g)
        if not basis:
            return
        w, cyc = weighted_girth(g)
        assert all(c.weight >= w - 1e-9 for c in basis)
        assert w == pytest.approx(min(c.weight for c in basis), rel=1e-9)
