"""Biconnected components vs networkx, plus multigraph semantics."""

import networkx as nx
import numpy as np
import pytest

from repro.decomposition import biconnected_components
from repro.graph import (
    CSRGraph,
    cycle_graph,
    grid_graph,
    path_graph,
    to_networkx,
)

from _support import composite_graph


@pytest.mark.parametrize("seed", range(8))
def test_matches_networkx_on_composites(seed):
    g = composite_graph(seed)
    bcc = biconnected_components(g)
    G = to_networkx(g)
    if G.is_multigraph():
        G = nx.Graph(G)
    assert bcc.count == len(list(nx.biconnected_components(G)))
    assert set(bcc.articulation_points.tolist()) == set(nx.articulation_points(G))


def test_every_edge_in_exactly_one_component():
    g = composite_graph(2)
    bcc = biconnected_components(g)
    assert (bcc.edge_component >= 0).all()
    counted = np.concatenate(bcc.component_edges)
    assert sorted(counted.tolist()) == list(range(g.m))


def test_single_edge_is_one_component():
    bcc = biconnected_components(path_graph(2))
    assert bcc.count == 1
    assert len(bcc.articulation_points) == 0


def test_path_components_and_aps():
    bcc = biconnected_components(path_graph(5))
    assert bcc.count == 4  # each edge a bridge component
    assert set(bcc.articulation_points.tolist()) == {1, 2, 3}


def test_cycle_is_single_component():
    bcc = biconnected_components(cycle_graph(9))
    assert bcc.count == 1 and len(bcc.articulation_points) == 0


def test_grid_is_biconnected(grid):
    bcc = biconnected_components(grid)
    assert bcc.count == 1


def test_two_triangles_sharing_vertex():
    g = CSRGraph(5, [0, 1, 2, 2, 3, 4], [1, 2, 0, 3, 4, 2])
    bcc = biconnected_components(g)
    assert bcc.count == 2
    assert list(bcc.articulation_points) == [2]


def test_parallel_edges_form_biconnected_pair():
    g = CSRGraph(3, [0, 0, 1], [1, 1, 2])
    bcc = biconnected_components(g)
    # parallel 0-1 pair is one component; bridge 1-2 another
    assert bcc.count == 2
    assert list(bcc.articulation_points) == [1]


def test_self_loop_own_component_not_articulation():
    g = CSRGraph(3, [0, 1, 1], [1, 2, 1])
    bcc = biconnected_components(g)
    assert bcc.count == 3  # edge, edge, loop
    loop_comps = [c for c in range(3) if len(bcc.component_edges[c]) == 1
                  and g.edge_u[bcc.component_edges[c][0]] == g.edge_v[bcc.component_edges[c][0]]]
    assert len(loop_comps) == 1
    # vertex 1 is an AP due to the two bridges, not the loop
    assert list(bcc.articulation_points) == [1]


def test_isolated_vertices_in_no_component():
    g = CSRGraph(4, [0], [1])
    bcc = biconnected_components(g)
    assert bcc.count == 1
    assert all(2 not in v and 3 not in v for v in bcc.component_vertices)


def test_long_chain_no_recursion_error():
    g = path_graph(50_000)
    bcc = biconnected_components(g)
    assert bcc.count == g.m


def test_component_subgraph_roundtrip():
    g = composite_graph(4)
    bcc = biconnected_components(g)
    for cid in range(bcc.count):
        sub, vmap = bcc.component_subgraph(g, cid)
        assert sub.n == len(vmap)
        assert sub.m == len(bcc.component_edges[cid])
        # weights preserved
        total = g.edge_w[bcc.component_edges[cid]].sum()
        assert np.isclose(sub.total_weight, total)


def test_component_keep_mask_includes_aps():
    g = composite_graph(0)
    bcc = biconnected_components(g)
    for cid in range(bcc.count):
        _, vmap = bcc.component_subgraph(g, cid)
        keep = bcc.component_keep_mask(g, cid)
        for i, v in enumerate(vmap):
            if bcc.is_articulation[v]:
                assert keep[i]
