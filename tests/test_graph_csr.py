"""CSRGraph construction, accessors, derived graphs, connectivity."""

import numpy as np
import pytest

from repro.graph import CSRGraph, GraphError, cycle_graph, grid_graph, path_graph


class TestConstruction:
    def test_empty_graph(self):
        g = CSRGraph(0, [], [])
        assert g.n == 0 and g.m == 0
        assert g.is_connected()

    def test_isolated_vertices(self):
        g = CSRGraph(5, [], [])
        assert g.n == 5 and g.m == 0
        assert (g.degree == 0).all()

    def test_default_unit_weights(self):
        g = CSRGraph(3, [0, 1], [1, 2])
        assert np.allclose(g.edge_w, 1.0)

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(-1, [], [])

    def test_endpoint_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(3, [0], [3])
        with pytest.raises(GraphError):
            CSRGraph(3, [-1], [0])

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(3, [0, 1], [1])
        with pytest.raises(GraphError):
            CSRGraph(3, [0, 1], [1, 2], [1.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(2, [0], [1], [-1.0])

    def test_nonfinite_weight_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(2, [0], [1], [np.inf])
        with pytest.raises(GraphError):
            CSRGraph(2, [0], [1], [np.nan])

    def test_from_edges_mixed_tuples(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2, 2.5), (2, 3)])
        assert g.m == 3
        assert g.edge_weight(1, 2) == 2.5
        assert g.edge_weight(0, 1) == 1.0


class TestDegreesAndAdjacency:
    def test_path_degrees(self):
        g = path_graph(4)
        assert list(g.degree) == [1, 2, 2, 1]

    def test_self_loop_counts_twice(self):
        g = CSRGraph(2, [0, 0], [0, 1])
        assert g.degree[0] == 3  # loop (2) + edge (1)
        assert g.degree[1] == 1

    def test_parallel_edges_count_separately(self):
        g = CSRGraph(2, [0, 0], [1, 1])
        assert g.degree[0] == 2 and g.degree[1] == 2

    def test_neighbors_sorted_into_csr(self):
        g = grid_graph(3, 3)
        center = 4
        assert sorted(g.neighbors(center).tolist()) == [1, 3, 5, 7]

    def test_incident_returns_consistent_triples(self):
        g = CSRGraph(3, [0, 0, 1], [1, 2, 2], [1.0, 2.0, 3.0])
        nbrs, wts, eids = g.incident(0)
        for v, w, e in zip(nbrs, wts, eids):
            u2, v2 = g.edge_endpoints(int(e))
            assert {0, int(v)} == {u2, v2}
            assert w == g.edge_w[e]

    def test_has_edge_and_edge_weight(self):
        g = CSRGraph(3, [0, 0], [1, 1], [3.0, 1.5])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert g.edge_weight(0, 1) == 1.5  # min of parallels
        with pytest.raises(KeyError):
            g.edge_weight(0, 2)

    def test_edges_iteration_roundtrip(self):
        g = grid_graph(3, 4)
        edges = list(g.edges())
        assert len(edges) == g.m
        g2 = CSRGraph.from_edges(g.n, edges)
        assert g2 == g

    def test_total_weight(self):
        g = CSRGraph(3, [0, 1], [1, 2], [1.5, 2.5])
        assert g.total_weight == 4.0


class TestFlags:
    def test_simple_graph_flags(self, grid):
        assert grid.is_simple()
        assert not grid.has_parallel_edges
        assert not grid.has_self_loops

    def test_parallel_flag(self):
        g = CSRGraph(2, [0, 0], [1, 1])
        assert g.has_parallel_edges and not g.has_self_loops

    def test_loop_flag(self):
        g = CSRGraph(2, [0], [0])
        assert g.has_self_loops and not g.has_parallel_edges


class TestDerivedGraphs:
    def test_simplify_keeps_min_weight(self):
        g = CSRGraph(2, [0, 0, 0], [1, 1, 0], [3.0, 1.0, 9.0])
        s = g.simplify()
        assert s.m == 1
        assert s.edge_weight(0, 1) == 1.0
        assert not s.has_self_loops

    def test_simplify_idempotent(self, grid):
        assert grid.simplify() == grid

    def test_subgraph_relabels(self):
        g = grid_graph(3, 3)
        sub, vmap = g.subgraph([0, 1, 3, 4])
        assert sub.n == 4
        assert sub.m == 4  # the top-left unit square
        assert list(vmap) == [0, 1, 3, 4]

    def test_subgraph_duplicate_rejected(self, grid):
        with pytest.raises(GraphError):
            grid.subgraph([0, 0, 1])

    def test_edge_subgraph(self):
        g = cycle_graph(5)
        sub = g.edge_subgraph([0, 1])
        assert sub.n == g.n and sub.m == 2

    def test_with_weights(self):
        g = path_graph(3)
        g2 = g.with_weights(np.array([5.0, 7.0]))
        assert g2.total_weight == 12.0
        assert g.total_weight == 2.0  # original untouched

    def test_permutation(self):
        g = path_graph(3)
        perm = np.array([2, 0, 1])
        g2 = g.reverse_permutation(perm)
        assert g2.has_edge(2, 0) and g2.has_edge(0, 1)
        with pytest.raises(GraphError):
            g.reverse_permutation(np.array([0, 0, 1]))


class TestConnectivity:
    def test_connected_components_labels(self):
        g = CSRGraph(6, [0, 1, 3], [1, 2, 4])
        count, labels = g.connected_components()
        assert count == 3
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[5] not in (labels[0], labels[3])

    def test_is_connected(self, grid, ring):
        assert grid.is_connected()
        assert ring.is_connected()
        assert not CSRGraph(3, [0], [1]).is_connected()

    def test_cycle_space_dimension(self, ring, grid):
        assert ring.cycle_space_dimension() == 1
        assert grid.cycle_space_dimension() == grid.m - grid.n + 1
        assert path_graph(5).cycle_space_dimension() == 0

    def test_cycle_space_dimension_with_loops(self):
        g = CSRGraph(2, [0, 0, 0], [1, 1, 0])
        # edges: one tree edge, one parallel, one loop -> dim 2
        assert g.cycle_space_dimension() == 2


class TestEquality:
    def test_equal_ignores_edge_order(self):
        a = CSRGraph(3, [0, 1], [1, 2], [1.0, 2.0])
        b = CSRGraph(3, [2, 1], [1, 0], [2.0, 1.0])
        assert a == b

    def test_unequal_weights(self):
        a = CSRGraph(2, [0], [1], [1.0])
        b = CSRGraph(2, [0], [1], [2.0])
        assert a != b

    def test_not_comparable_to_other_types(self, grid):
        assert grid.__eq__(42) is NotImplemented
