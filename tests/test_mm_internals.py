"""Mehlhorn–Michail internals: Algorithm-3 labels, candidates, updates."""

import numpy as np
import pytest

from repro.graph import gnm_random_graph, randomize_weights
from repro.mcb import gf2
from repro.mcb.mehlhorn_michail import MMContext

from _support import biconnected_weighted


@pytest.fixture(scope="module")
def ctx():
    g = randomize_weights(gnm_random_graph(24, 44, seed=3), seed=3)
    return MMContext(g)


def brute_force_label(ctx, zi, u, s_pad):
    """Parity of the witness over E' edges on the tree path root→u."""
    par = ctx.parent[zi]
    root = int(ctx.fvs[zi])
    parity = 0
    cur = int(u)
    if ctx.depth[zi, cur] < 0:
        return 0
    while cur != root:
        ep = int(ctx.parent_ep[zi, cur])
        if ep >= 0:
            parity ^= int(s_pad[ep])
        cur = int(par[cur])
    return parity


def test_labels_equal_bruteforce_parity(ctx):
    rng = np.random.default_rng(0)
    for _ in range(5):
        bits = rng.integers(0, 2, ctx.f).astype(bool)
        s_pad = ctx.witness_edge_bits(gf2.pack(bits))
        labels = ctx.compute_labels(s_pad)
        for zi in range(len(ctx.fvs)):
            for u in range(ctx.n):
                assert labels[zi, u] == brute_force_label(ctx, zi, u, s_pad), (zi, u)


def test_labels_zero_witness_all_zero(ctx):
    s_pad = ctx.witness_edge_bits(gf2.zeros(ctx.f))
    assert not ctx.compute_labels(s_pad).any()


def test_flat_levels_match_per_tree_path(ctx):
    rng = np.random.default_rng(1)
    bits = rng.integers(0, 2, ctx.f).astype(bool)
    s_pad = ctx.witness_edge_bits(gf2.pack(bits))
    flat = ctx.compute_labels(s_pad)
    per_tree = np.stack(
        [ctx.labels_for_tree(zi, s_pad) for zi in range(len(ctx.fvs))]
    )
    assert np.array_equal(flat, per_tree)


def test_parallel_map_hook(ctx):
    rng = np.random.default_rng(2)
    bits = rng.integers(0, 2, ctx.f).astype(bool)
    s_pad = ctx.witness_edge_bits(gf2.pack(bits))
    calls = []

    def pmap(fn, items):
        calls.append(len(items))
        return [fn(x) for x in items]

    labels = ctx.compute_labels(s_pad, parallel_map=pmap)
    assert calls == [len(ctx.fvs)]
    assert np.array_equal(labels, ctx.compute_labels(s_pad))


def test_candidate_weights_sorted_by_order(ctx):
    w = ctx.cand_w[ctx.order]
    assert (np.diff(w) >= -1e-12).all()


def test_candidates_cover_cycle_space(ctx):
    """Greedy over the candidate family must reach full rank."""
    rows = []
    for cid in ctx.order:
        _, vec = ctx.reconstruct(int(cid))
        rows.append(vec)
    mat = np.stack(rows)
    assert gf2.rank(mat) == ctx.f


def test_reconstruct_weights_true_not_perturbed(ctx):
    g = ctx.graph
    for cid in ctx.order[:20]:
        cyc, _ = ctx.reconstruct(int(cid))
        assert cyc.weight == pytest.approx(cyc.support_weight(g), rel=1e-12)


def test_scan_predicate_matches_vector_dot(ctx):
    rng = np.random.default_rng(3)
    bits = rng.integers(0, 2, ctx.f).astype(bool)
    packed = gf2.pack(bits)
    s_pad = ctx.witness_edge_bits(packed)
    labels = ctx.compute_labels(s_pad)
    pred = ctx.scan_predicate(labels, s_pad)
    ids = ctx.order[:64]
    fast = pred(ids)
    slow = np.array(
        [gf2.dot(ctx.reconstruct(int(c))[1], packed) == 1 for c in ids]
    )
    assert np.array_equal(fast, slow)


def test_update_witnesses_counts_and_orthogonalises(ctx):
    f = ctx.f
    witnesses = np.stack([gf2.unit(f, i) for i in range(f)])
    s_pad = ctx.witness_edge_bits(witnesses[0])
    labels = ctx.compute_labels(s_pad)
    store = ctx.new_store()
    cand = store.scan_and_remove(ctx.scan_predicate(labels, s_pad))
    _, c_vec = ctx.reconstruct(cand)
    flipped = ctx.update_witnesses(witnesses, 0, c_vec)
    assert flipped == int(gf2.dot_many(np.stack([gf2.unit(f, i) for i in range(1, f)]), c_vec).sum())
    # all later witnesses now orthogonal to the selected cycle
    assert not gf2.dot_many(witnesses[1:], c_vec).any()


def test_update_witnesses_parallel_map(ctx):
    f = ctx.f
    a = np.stack([gf2.unit(f, i) for i in range(f)])
    b = a.copy()
    s_pad = ctx.witness_edge_bits(a[0])
    labels = ctx.compute_labels(s_pad)
    cand = ctx.new_store().scan_and_remove(ctx.scan_predicate(labels, s_pad))
    _, c_vec = ctx.reconstruct(cand)

    def pmap(fn, items):
        return [fn(x) for x in items]

    ctx.update_witnesses(a, 0, c_vec)
    ctx.update_witnesses(b, 0, c_vec, parallel_map=pmap)
    assert np.array_equal(a, b)


def test_context_on_multigraph(multigraph):
    ctx = MMContext(multigraph)
    assert ctx.f == multigraph.cycle_space_dimension()
    loops = (ctx.cand_z == -1).sum()
    assert loops == int((multigraph.edge_u == multigraph.edge_v).sum())
