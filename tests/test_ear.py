"""Ear decomposition: partition properties and failure modes."""

import numpy as np
import pytest

from repro.decomposition import ear_decomposition
from repro.graph import (
    CSRGraph,
    GraphError,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)

from _support import biconnected_weighted


def assert_valid_ear_decomposition(g, ed):
    """The defining properties of Section 2.1.1."""
    # Every edge on exactly one ear.
    seen = np.zeros(g.m, dtype=bool)
    for ear in ed.ears:
        assert not seen[ear.edges].any()
        seen[ear.edges] = True
        # consecutive vertices joined by the listed edges
        for i, e in enumerate(ear.edges):
            u, v = g.edge_endpoints(int(e))
            assert {int(ear.vertices[i]), int(ear.vertices[i + 1])} == ({u, v} if u != v else {u})
    assert seen.all()
    # First ear is a cycle (P0 ∪ P1).
    assert ed.ears[0].is_cycle
    # Endpoints of later ears lie on earlier ears.
    on_earlier: set[int] = set()
    for k, ear in enumerate(ed.ears):
        if k > 0:
            assert int(ear.vertices[0]) in on_earlier
            assert int(ear.vertices[-1]) in on_earlier
            # interior vertices are new
            for x in ear.vertices[1:-1]:
                assert int(x) not in on_earlier
        on_earlier.update(int(x) for x in ear.vertices)


@pytest.mark.parametrize("seed", range(6))
def test_random_biconnected(seed):
    g = biconnected_weighted(seed)
    ed = ear_decomposition(g)
    assert_valid_ear_decomposition(g, ed)
    assert ed.is_open


def test_cycle_single_ear(ring):
    ed = ear_decomposition(ring)
    assert ed.count == 1
    assert ed.ears[0].is_cycle
    assert len(ed.ears[0]) == ring.m


def test_ear_count_equals_cycle_dimension(grid):
    # Open ear decomposition has exactly m - n + 1 ears.
    ed = ear_decomposition(grid)
    assert ed.count == grid.m - grid.n + 1


def test_complete_graph(grid):
    g = complete_graph(6)
    ed = ear_decomposition(g)
    assert_valid_ear_decomposition(g, ed)
    assert ed.is_open


def test_parallel_edges_multigraph():
    g = CSRGraph(2, [0, 0, 0], [1, 1, 1])
    ed = ear_decomposition(g)
    assert_valid_ear_decomposition(g, ed)
    assert ed.count == 2


def test_bridge_rejected():
    with pytest.raises(GraphError, match="2-edge-connected"):
        ear_decomposition(path_graph(3))


def test_two_blocks_not_open():
    # Two triangles sharing a vertex: 2-edge-connected but not 2-connected.
    g = CSRGraph(5, [0, 1, 2, 2, 3, 4], [1, 2, 0, 3, 4, 2])
    ed = ear_decomposition(g)
    assert_valid_ear_decomposition(g, ed)
    assert not ed.is_open


def test_disconnected_rejected():
    g = CSRGraph(6, [0, 1, 2, 3, 4, 5], [1, 2, 0, 4, 5, 3])
    with pytest.raises(GraphError, match="connected"):
        ear_decomposition(g)


def test_self_loop_rejected():
    g = CSRGraph(3, [0, 1, 2, 0], [1, 2, 0, 0])
    with pytest.raises(GraphError, match="self-loop"):
        ear_decomposition(g)


def test_empty_rejected():
    with pytest.raises(GraphError):
        ear_decomposition(CSRGraph(0, [], []))


def test_edge_ear_mapping(grid):
    ed = ear_decomposition(grid)
    mapping = ed.edge_ear(grid.m)
    assert (mapping >= 0).all()
    for i, ear in enumerate(ed.ears):
        assert (mapping[ear.edges] == i).all()


def test_ear_weight(ring):
    ed = ear_decomposition(ring)
    assert np.isclose(ed.ears[0].weight(ring), ring.total_weight)


def test_root_parameter():
    g = biconnected_weighted(3)
    for root in (0, 5, g.n - 1):
        ed = ear_decomposition(g, root=root)
        assert_valid_ear_decomposition(g, ed)
