"""repro.obs.slo: percentile fidelity, budget parsing, exit-coded verdicts.

The agreement tests pin the contract that :func:`repro.obs.slo.percentile`
and :meth:`repro.obs.metrics.Histogram.percentile` share one rank
arithmetic — SLO verdicts and histogram snapshots must never disagree on
identical data.  The merge tests feed multi-pid shard layouts through the
tolerant reader and assert percentile monotonicity and torn-line
tolerance, the properties the CI gate leans on.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import metrics as _metrics
from repro.obs.events import EventLog, EventSink
from repro.obs.slo import (
    EXIT_EMPTY_STREAM,
    EXIT_NO_DATA,
    EXIT_OK,
    EXIT_VIOLATED,
    LatencyStats,
    SLOBudget,
    evaluate,
    extract_exemplars,
    extract_latencies,
    parse_budgets,
    percentile,
    slo_from_events,
)


class TestPercentile:
    def test_single_sample_answers_everything(self):
        assert percentile([4.2], 0) == 4.2
        assert percentile([4.2], 50) == 4.2
        assert percentile([4.2], 99.9) == 4.2

    def test_interpolates(self):
        assert percentile([0.0, 1.0], 50) == pytest.approx(0.5)
        assert percentile([0.0, 1.0, 2.0, 3.0], 75) == pytest.approx(2.25)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_agrees_with_histogram_exactly_under_cap(self, rng):
        """Below the retention cap both sides see every sample: bit-equal."""
        samples = [float(x) for x in rng.random(997)]
        h = _metrics.Histogram("agree")
        for s in samples:
            h.observe(s)
        for p in (0.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0):
            assert percentile(samples, p) == h.percentile(p)

    def test_agrees_with_histogram_within_one_sample_over_cap(self, rng):
        """Over the cap the histogram holds a uniform reservoir: its
        percentile must land within one *order-statistic step* of the
        exact answer's neighbourhood — we assert the reservoir estimate
        falls between the exact sample just below p-1 and just above p+1.
        """
        n = _metrics.Histogram.RETAIN_CAP + 500
        samples = [float(x) for x in rng.random(n)]
        h = _metrics.Histogram("agree-cap")
        for s in samples:
            h.observe(s)
        for p in (50.0, 90.0, 99.0):
            lo = percentile(samples, max(p - 1.0, 0.0))
            hi = percentile(samples, min(p + 1.0, 100.0))
            assert lo <= h.percentile(p) <= hi


class TestHistogramReservoir:
    def test_length_capped_and_aggregates_exact(self):
        h = _metrics.Histogram("cap")
        n = h.RETAIN_CAP + 500
        for i in range(n):
            h.observe(float(i))
        assert len(h.samples) == h.RETAIN_CAP
        assert h.count == n
        assert h.sum == pytest.approx(sum(range(n)))
        assert h.min == 0.0 and h.max == float(n - 1)

    def test_reservoir_sees_the_tail(self):
        """Post-cap observations must be able to enter the retained set —
        the pre-reservoir behaviour (frozen prefix) kept none of them."""
        h = _metrics.Histogram("tail")
        for i in range(h.RETAIN_CAP):
            h.observe(0.0)
        for _ in range(h.RETAIN_CAP):
            h.observe(1.0)
        assert any(s == 1.0 for s in h.samples)

    def test_deterministic_under_repro_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "1234")

        def run():
            h = _metrics.Histogram("det")
            for i in range(h.RETAIN_CAP + 1000):
                h.observe(float(i))
            return list(h.samples)

        assert run() == run()

    def test_seed_and_name_change_the_reservoir(self, monkeypatch):
        def run(name):
            h = _metrics.Histogram(name)
            for i in range(h.RETAIN_CAP + 1000):
                h.observe(float(i))
            return list(h.samples)

        monkeypatch.setenv("REPRO_SEED", "1")
        a = run("x")
        b = run("y")
        monkeypatch.setenv("REPRO_SEED", "2")
        c = run("x")
        assert a != b and a != c

    def test_registry_reset_rearms_reservoir(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "77")
        reg = _metrics.MetricsRegistry()
        h = reg.histogram("reset-me")

        def fill():
            for i in range(h.RETAIN_CAP + 200):
                h.observe(float(i))
            return list(h.samples)

        first = fill()
        reg.reset()
        assert h.count == 0 and not h.samples
        assert fill() == first  # same seed ⇒ same reservoir after reset

    def test_max_samples_alias(self):
        assert _metrics.Histogram.MAX_SAMPLES == _metrics.Histogram.RETAIN_CAP


def _emit_events(tmp_path, per_pid: dict[int, list[float]], kind="query"):
    """Write one shard per fake pid with ``<kind>.finish`` durations (s)."""
    for pid, durs in per_pid.items():
        sink = EventSink(tmp_path)
        with open(tmp_path / f"events-{pid}.jsonl", "a") as fh:
            for i, dur in enumerate(durs):
                fh.write(
                    json.dumps(
                        {
                            "v": 1, "seq": i, "ts_ns": i * 1000, "pid": pid,
                            "kind": f"{kind}.finish", "dur_ns": int(dur * 1e9),
                        }
                    )
                    + "\n"
                )
    del sink
    return EventLog(tmp_path)


class TestExtractLatencies:
    def test_phase_finish_keyed_by_cat_and_phase(self, tmp_path):
        with open(tmp_path / "events-1.jsonl", "w") as fh:
            fh.write(json.dumps({
                "v": 1, "seq": 0, "ts_ns": 0, "pid": 1, "kind": "phase.finish",
                "cat": "apsp", "phase": "process", "dur_ns": 5_000_000,
            }) + "\n")
        lat = extract_latencies(EventLog(tmp_path).read())
        assert lat == {"phase.apsp.process": [0.005]}

    def test_chunk_pairs_matched_per_pid(self, tmp_path):
        # Interleave two pids: pairing must never cross processes.
        rows = [
            (1, "chunk.start", 0), (2, "chunk.start", 10),
            (1, "chunk.finish", 100), (2, "chunk.finish", 250),
        ]
        with open(tmp_path / "events-1.jsonl", "w") as fh:
            for i, (pid, kind, ts) in enumerate(rows):
                fh.write(json.dumps(
                    {"v": 1, "seq": i, "ts_ns": ts, "pid": pid, "kind": kind}
                ) + "\n")
        lat = extract_latencies(EventLog(tmp_path).read())
        assert sorted(lat["chunk"]) == [pytest.approx(100e-9), pytest.approx(240e-9)]

    def test_multi_pid_merge_monotone_percentiles(self, tmp_path, rng):
        per_pid = {
            100 + pid: [float(x) for x in rng.random(40)]
            for pid in range(4)
        }
        log = _emit_events(tmp_path, per_pid)
        lat = extract_latencies(log.read())
        merged = [d for durs in per_pid.values() for d in durs]
        assert len(lat["query"]) == len(merged)
        # Durations round-trip through integer nanoseconds in the event
        # schema, so equality holds only to 1 ns.
        assert sorted(lat["query"]) == pytest.approx(sorted(merged), abs=2e-9)
        ps = [percentile(lat["query"], p) for p in (0, 10, 50, 90, 99, 99.9, 100)]
        assert ps == sorted(ps)  # monotone in p after the merge

    def test_tolerates_one_torn_line(self, tmp_path):
        log = _emit_events(tmp_path, {1: [0.001, 0.002, 0.003]})
        # Simulate a writer caught mid-line: truncated JSON at the tail.
        with open(tmp_path / "events-1.jsonl", "a") as fh:
            fh.write('{"v": 1, "seq": 3, "ts_ns": 99, "pid": 1, "kin')
        lat = extract_latencies(log.read())
        assert lat["query"] == pytest.approx([0.001, 0.002, 0.003])
        assert log.skipped == 1

    def test_slo_percentile_agrees_with_histogram_on_stream(self, tmp_path, rng):
        durs = [float(x) for x in rng.random(301)]
        log = _emit_events(tmp_path, {1: durs})
        lat = extract_latencies(log.read())
        h = _metrics.Histogram("stream-agree")
        for d in lat["query"]:
            h.observe(d)
        st = LatencyStats.from_samples("query", lat["query"])
        for p, got in ((50.0, st.p50), (90.0, st.p90), (99.0, st.p99), (99.9, st.p999)):
            assert got == h.percentile(p)


class TestBudgets:
    def test_parse_units_and_deadline(self):
        budgets = parse_budgets([
            {"metric": "query", "p99_ms": 5.0, "deadline_ms": 10.0,
             "miss_frac": 0.01},
        ])
        by_stat = {b.stat: b for b in budgets}
        assert by_stat["p99"].limit == pytest.approx(0.005)
        assert by_stat["miss_frac"].limit == 0.01
        assert all(b.deadline_s == pytest.approx(0.010) for b in budgets)

    def test_bare_deadline_implies_zero_misses(self):
        budgets = parse_budgets([{"metric": "query", "deadline_s": 1.0}])
        assert [(b.stat, b.limit) for b in budgets] == [("miss_frac", 0.0)]

    def test_unknown_key_names_accepted_ones(self):
        with pytest.raises(ValueError, match="p99_ms"):
            parse_budgets([{"metric": "query", "p99_msec": 5.0}])

    def test_missing_metric_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            parse_budgets([{"p99_ms": 5.0}])


class TestEvaluate:
    def test_ok(self):
        rep = evaluate({"query": [0.001, 0.002]}, [SLOBudget("query", "p99", 1.0)])
        assert rep.ok and rep.verdict == "ok" and rep.exit_code == EXIT_OK

    def test_violated(self):
        rep = evaluate({"query": [0.5, 2.0]}, [SLOBudget("query", "p99", 0.1)])
        assert not rep.ok
        assert rep.verdict == "violated" and rep.exit_code == EXIT_VIOLATED
        assert rep.violations[0].measured > 0.1

    def test_no_data_fails_gate(self):
        rep = evaluate({}, [SLOBudget("query", "p99", 0.1)])
        assert rep.verdict == "no-data" and rep.exit_code == EXIT_NO_DATA

    def test_miss_counting_against_deadline(self):
        budgets = parse_budgets(
            [{"metric": "query", "deadline_s": 0.01, "miss_frac": 0.5}]
        )
        rep = evaluate({"query": [0.001, 0.02, 0.001, 0.001]}, budgets)
        st = rep.stats["query"]
        assert st.misses == 1 and st.miss_frac == pytest.approx(0.25)
        assert rep.ok

    def test_jitter_definitions(self):
        rep = evaluate({"query": [1.0, 2.0, 3.0, 5.0]}, [])
        st = rep.stats["query"]
        assert st.jitter_range == pytest.approx(4.0)
        assert st.jitter_iqr == pytest.approx(
            percentile([1.0, 2.0, 3.0, 5.0], 75) - percentile([1.0, 2.0, 3.0, 5.0], 25)
        )

    def test_render_mentions_worst_violation(self):
        rep = evaluate({"query": [1.0]}, [SLOBudget("query", "max", 0.1)])
        out = rep.render()
        assert "SLO VIOLATED" in out and "query.max" in out


def _exemplar_event(rank, dur_ns, **extra):
    ev = {
        "v": 1, "seq": rank, "ts_ns": rank * 1000, "pid": 7,
        "kind": "exemplar", "metric": "query", "dur_ns": dur_ns,
        "rank": rank, "src": 1, "dst": 2,
    }
    ev.update(extra)
    return ev


class TestExemplars:
    def test_explicit_exemplar_events_win(self):
        events = [
            _exemplar_event(1, 5_000_000, pair_class="cross-bcc",
                            resolver="ap-bridge", digest="abc123def456"),
            _exemplar_event(2, 3_000_000, pair_class="same-bcc",
                            resolver="table", digest="fed321cba654"),
            # a slower *.finish event that must NOT displace the explicit ones
            {"v": 1, "seq": 9, "ts_ns": 9000, "pid": 7,
             "kind": "query.finish", "dur_ns": 9_000_000},
        ]
        exs = extract_exemplars(events, top_k=10)
        assert len(exs) == 2
        assert exs[0].dur_s == pytest.approx(0.005)
        assert exs[0].pair_class == "cross-bcc"
        assert exs[0].digest == "abc123def456"
        assert [e.rank for e in exs] == [1, 2]

    def test_fallback_synthesizes_from_finish_events(self):
        events = [
            {"v": 1, "seq": i, "ts_ns": i * 1000, "pid": 1,
             "kind": "query.finish", "dur_ns": (i + 1) * 1_000_000}
            for i in range(6)
        ]
        exs = extract_exemplars(events, top_k=3)
        assert len(exs) == 3
        # slowest first, ranks restamped 1-based
        assert [e.rank for e in exs] == [1, 2, 3]
        assert exs[0].dur_s >= exs[1].dur_s >= exs[2].dur_s
        assert exs[0].dur_s == pytest.approx(0.006)
        assert exs[0].metric == "query"
        assert exs[0].pair_class is None  # no provenance without explain

    def test_top_k_caps_per_metric(self):
        events = [_exemplar_event(r, (20 - r) * 1_000_000) for r in range(1, 15)]
        exs = extract_exemplars(events, top_k=5)
        assert len(exs) == 5

    def test_as_dict_is_json_clean(self):
        ev = _exemplar_event(1, 2_000_000, pair_class="self",
                             resolver="identity", digest="0011223344aa")
        exs = extract_exemplars([ev], top_k=1)
        d = exs[0].as_dict()
        json.dumps(d)
        assert d["metric"] == "query"
        assert d["digest"] == "0011223344aa"

    def test_slo_from_events_fills_exemplars_and_render(self, tmp_path):
        log = _emit_events(tmp_path, {1: [0.001, 0.002, 0.010]})
        report = slo_from_events(log.read(), [], top_k=2)
        assert len(report.exemplars) == 2
        out = report.render()
        assert "tail exemplars" in out
        # ledger duplication guard: as_dict leaves exemplars to RunRecord
        assert "exemplars" not in report.as_dict()


class TestSLOCli:
    def _stream(self, tmp_path, durs):
        return _emit_events(tmp_path / "ev", {1: durs})

    def test_exit_zero_when_met(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "ev").mkdir()
        self._stream(tmp_path, [0.001] * 20)
        budgets = tmp_path / "b.json"
        budgets.write_text(json.dumps([{"metric": "query", "p99_s": 1.0}]))
        assert main(["slo", "--events", str(tmp_path / "ev"),
                     "--budgets", str(budgets)]) == 0
        assert "SLO OK" in capsys.readouterr().out

    def test_exit_one_on_violated_p99(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "ev").mkdir()
        self._stream(tmp_path, [0.5] * 20)
        budgets = tmp_path / "b.json"
        budgets.write_text(json.dumps([{"metric": "query", "p99_ms": 1.0}]))
        with pytest.raises(SystemExit) as exc:
            main(["slo", "--events", str(tmp_path / "ev"),
                  "--budgets", str(budgets)])
        assert exc.value.code == EXIT_VIOLATED
        assert "SLO VIOLATED" in capsys.readouterr().out

    def test_exit_three_on_empty_stream_with_layout_hint(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "nothing"
        empty.mkdir()
        budgets = tmp_path / "b.json"
        budgets.write_text(json.dumps([{"metric": "query", "p99_s": 1.0}]))
        with pytest.raises(SystemExit) as exc:
            main(["slo", "--events", str(empty), "--budgets", str(budgets)])
        assert exc.value.code == EXIT_EMPTY_STREAM
        out = capsys.readouterr().out
        assert "empty" in out and "events-<pid>.jsonl" in out

    def test_watch_once_exit_three_on_empty_stream(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "nothing"
        empty.mkdir()
        with pytest.raises(SystemExit) as exc:
            main(["watch", "--once", "--events", str(empty)])
        assert exc.value.code == EXIT_EMPTY_STREAM
        out = capsys.readouterr().out
        assert "empty" in out and "events-<pid>.jsonl" in out


class TestRegressTailGate:
    def test_tail_phases_use_wider_band(self):
        from repro.obs.regress import compare, is_tail_phase

        assert is_tail_phase("scenario.s.query.p99")
        assert is_tail_phase("scenario.s.query.jitter_iqr")
        assert not is_tail_phase("scenario.s.wall")
        baseline = {
            "scenario.s.query.p99": [1.0, 1.0, 1.0],
            "scenario.s.wall": [1.0, 1.0, 1.0],
        }
        # +50%: inside the 0.75 tail band, outside the 0.25 median band.
        candidate = {"scenario.s.query.p99": 1.5, "scenario.s.wall": 1.5}
        rep = compare(baseline, candidate, rel_tol=0.25, tail_rel_tol=0.75)
        by_name = {v.name: v.status for v in rep.verdicts}
        assert by_name["scenario.s.query.p99"] == "ok"
        assert by_name["scenario.s.wall"] == "regressed"

    def test_tail_regression_still_confirms(self):
        from repro.obs.regress import compare

        baseline = {"scenario.s.query.p99": [1.0, 1.0, 1.0]}
        rep = compare(baseline, {"scenario.s.query.p99": 2.0}, tail_rel_tol=0.75)
        assert [v.status for v in rep.verdicts] == ["regressed"]
        assert not rep.ok


class TestSloFromEvents:
    def test_one_call_gate(self, tmp_path):
        log = _emit_events(tmp_path, {1: [0.001, 0.002]})
        rep = slo_from_events(log.read(), [{"metric": "query", "p99_s": 1.0}])
        assert rep.ok
