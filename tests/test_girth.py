"""Weighted girth and shortest-cycle-through queries."""

import numpy as np
import pytest

from repro.graph import CSRGraph, complete_graph, cycle_graph, gnm_random_graph, path_graph, randomize_weights
from repro.mcb import depina_mcb, shortest_cycle_through, weighted_girth


@pytest.mark.parametrize("seed", range(5))
def test_girth_equals_lightest_mcb_element(seed):
    g = randomize_weights(gnm_random_graph(16, 28, seed=seed), seed=seed)
    w, cyc = weighted_girth(g)
    mcb_min = min(c.weight for c in depina_mcb(g))
    assert w == pytest.approx(mcb_min, rel=1e-9)
    assert cyc.is_valid_cycle(g)
    assert cyc.support_weight(g) == pytest.approx(w)


def test_girth_cycle_graph(ring):
    w, cyc = weighted_girth(ring)
    assert w == pytest.approx(ring.total_weight)
    assert len(cyc) == ring.m


def test_girth_unit_k4():
    w, cyc = weighted_girth(complete_graph(4))
    assert w == pytest.approx(3.0) and len(cyc) == 3


def test_girth_acyclic():
    w, cyc = weighted_girth(path_graph(5))
    assert np.isinf(w) and cyc is None


def test_girth_self_loop_wins():
    g = CSRGraph(3, [0, 1, 2, 1], [1, 2, 0, 1], [1, 1, 1, 0.4])
    w, cyc = weighted_girth(g)
    assert w == pytest.approx(0.4)
    assert len(cyc) == 1


def test_through_vertex_specific():
    # two triangles sharing vertex 2; cheap one on {2,3,4}
    g = CSRGraph(5, [0, 1, 2, 2, 3, 4], [1, 2, 0, 3, 4, 2],
                 [5, 5, 5, 1, 1, 1])
    c0 = shortest_cycle_through(g, 0)
    assert c0.weight == pytest.approx(15.0)
    c3 = shortest_cycle_through(g, 3)
    assert c3.weight == pytest.approx(3.0)
    c2 = shortest_cycle_through(g, 2)
    assert c2.weight == pytest.approx(3.0)


def test_through_vertex_not_on_any_cycle():
    # pendant vertex attached to a triangle
    g = CSRGraph(4, [0, 1, 2, 0], [1, 2, 0, 3])
    assert shortest_cycle_through(g, 3) is None


def test_through_all_vertices_brute(ring):
    for x in range(ring.n):
        c = shortest_cycle_through(ring, x)
        assert c.weight == pytest.approx(ring.total_weight)
