"""repro.obs.metrics: instruments, registry semantics, and pipeline wiring.

The wiring tests assert the ISSUE's acceptance criterion directly: after
an engine or MCB run, ``snapshot()`` shows nonzero adjacency-cache and
witness-update counters.  They measure via snapshot *diffs*, because the
process-wide registry accumulates across the whole test session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import grid_graph
from repro.obs import metrics_diff, reset_metrics, snapshot
from repro.obs.metrics import MetricsRegistry


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert reg.counter("c") is c  # same instrument on re-lookup

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="negative"):
            reg.counter("c").inc(-1)

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(3)
        g.set(0.5)
        assert g.value == 0.5

    def test_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(6.0)
        assert (h.min, h.max) == (1.0, 3.0)
        assert h.mean == pytest.approx(2.0)
        assert h.as_dict() == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0}

    def test_empty_histogram_dict(self):
        h = MetricsRegistry().histogram("h")
        assert h.as_dict() == {"count": 0, "sum": 0.0, "min": None, "max": None}

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")


class TestHistogramPercentiles:
    def test_single_sample_answers_every_p(self):
        h = MetricsRegistry().histogram("h")
        h.observe(7.5)
        for p in (0, 25, 50, 99, 100):
            assert h.percentile(p) == 7.5

    def test_all_equal_samples(self):
        h = MetricsRegistry().histogram("h")
        for _ in range(10):
            h.observe(3.0)
        assert h.percentile(0) == 3.0
        assert h.percentile(50) == 3.0
        assert h.percentile(100) == 3.0

    def test_linear_interpolation(self):
        h = MetricsRegistry().histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0
        assert h.percentile(50) == pytest.approx(2.5)

    def test_empty_raises(self):
        h = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError, match="no samples"):
            h.percentile(50)

    def test_out_of_range_p_raises(self):
        h = MetricsRegistry().histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError, match=r"outside \[0, 100\]"):
            h.percentile(101)
        with pytest.raises(ValueError, match=r"outside \[0, 100\]"):
            h.percentile(-0.5)

    def test_sample_retention_cap(self):
        h = MetricsRegistry().histogram("h")
        for i in range(h.MAX_SAMPLES + 50):
            h.observe(float(i))
        assert len(h.samples) == h.MAX_SAMPLES
        assert h.count == h.MAX_SAMPLES + 50  # aggregates stay exact
        assert h.max == float(h.MAX_SAMPLES + 49)

    def test_reset_clears_samples(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(1.0)
        reg.reset()
        assert h.samples == []
        with pytest.raises(ValueError, match="no samples"):
            h.percentile(50)


class TestRegistry:
    def test_snapshot_sorted_and_prefixed(self):
        reg = MetricsRegistry()
        reg.counter("b.two").inc(2)
        reg.counter("a.one").inc(1)
        reg.gauge("b.gauge").set(0.25)
        snap = reg.snapshot()
        assert list(snap) == ["a.one", "b.gauge", "b.two"]
        assert reg.snapshot("b.") == {"b.gauge": 0.25, "b.two": 2}

    def test_reset_zeroes_but_keeps_instruments(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(9)
        h = reg.histogram("h")
        h.observe(4.0)
        reg.reset()
        assert c.value == 0
        assert h.count == 0 and h.as_dict()["min"] is None
        assert reg.counter("c") is c

    def test_metrics_diff(self):
        before = {"c": 3, "g": 0.5, "h": {"count": 2, "sum": 5.0, "min": 1, "max": 4}}
        after = {"c": 10, "g": 0.9, "h": {"count": 5, "sum": 9.0, "min": 1, "max": 4},
                 "new": 7}
        d = metrics_diff(before, after)
        assert d["c"] == 7          # counters subtract
        assert d["g"] == 0.9        # gauges report "after"
        assert d["h"]["count"] == 3 and d["h"]["sum"] == pytest.approx(4.0)
        assert d["new"] == 7        # absent-before counts from zero

    def test_metrics_diff_decreasing_gauge(self):
        # Gauges are last-write-wins: a *decrease* between snapshots must
        # surface as the (smaller) after value, never a negative delta.
        before = {"mem.bytes": 1024.0, "c": 5}
        after = {"mem.bytes": 256.0, "c": 5}
        d = metrics_diff(before, after)
        assert d["mem.bytes"] == 256.0
        assert d["c"] == 0

    def test_metrics_diff_gauge_dropping_to_zero(self):
        d = metrics_diff({"g": 7.5}, {"g": 0.0})
        assert d["g"] == 0.0

    def test_module_reset_helper(self):
        from repro.obs import counter

        counter("test.reset_helper").inc(3)
        reset_metrics()
        assert snapshot()["test.reset_helper"] == 0


class TestEngineWiring:
    def test_cache_hit_miss_and_chunk_counters(self):
        from repro.sssp import engine

        g = grid_graph(8, 8)
        engine.adjacency_cache().clear()
        before = snapshot()
        engine.multi_source(g, np.arange(16, dtype=np.int64))  # miss + build
        engine.multi_source(g, np.arange(16, dtype=np.int64))  # hit
        d = metrics_diff(before, snapshot())
        assert d["engine.adj_cache.misses"] == 1
        assert d["engine.adj_cache.hits"] == 1
        assert d["engine.chunks_dispatched"] >= 2
        assert d["engine.sources_dispatched"] == 32

    def test_counters_match_cache_info(self):
        from repro.sssp import engine

        info = engine.adjacency_cache().info()
        snap = snapshot("engine.adj_cache.")
        # Counters survive cache.clear(); they can only run ahead of the
        # live CacheInfo, never behind.
        assert snap["engine.adj_cache.hits"] >= info.hits
        assert snap["engine.adj_cache.misses"] >= info.misses


class TestMCBWiring:
    def test_mcb_run_reports_nonzero_counters(self):
        """ISSUE acceptance: adjacency-cache + witness counters after MCB."""
        from repro.hetero.mcb_runner import mcb_with_trace
        from repro.sssp import engine

        g = grid_graph(5, 6)
        engine.adjacency_cache().clear()
        before = snapshot()
        cycles, _ = mcb_with_trace(g)
        assert cycles
        d = metrics_diff(before, snapshot())
        assert d.get("engine.adj_cache.misses", 0) + d.get(
            "engine.adj_cache.hits", 0
        ) > 0
        assert d.get("mcb.witness_xors", 0) > 0
        assert d.get("mcb.orthogonality_checks", 0) > 0
        assert d.get("mcb.candidates_scanned", 0) > 0

    def test_depina_counters(self):
        from repro.mcb.depina import depina_mcb

        before = snapshot()
        depina_mcb(grid_graph(4, 4))
        d = metrics_diff(before, snapshot())
        assert d.get("mcb.depina.searches", 0) > 0


class TestQAWiring:
    def test_invariant_check_counter(self, monkeypatch):
        from repro.decomposition.ear import ear_decomposition
        from repro.qa import invariants

        g = grid_graph(4, 4)
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        dec = ear_decomposition(g)  # knob off: no check fires in here
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        before = snapshot()
        invariants.maybe_check_ear_decomposition(g, dec)
        d = metrics_diff(before, snapshot())
        assert d.get("qa.invariant_checks", 0) == 1
