"""Per-BCC tables, articulation-point closure, full-matrix assembly."""

import numpy as np
import pytest

from repro.apsp import (
    assemble_full_matrix,
    build_component_tables,
    dijkstra_apsp,
)
from repro.graph import CSRGraph, path_graph
from repro.sssp import all_pairs

from _support import close, composite_graph


@pytest.mark.parametrize("seed", range(6))
def test_assembled_matrix_exact(seed):
    g = composite_graph(seed)
    ct = build_component_tables(g)
    assert close(assemble_full_matrix(g, ct), dijkstra_apsp(g))


def test_custom_solver_is_used():
    calls = []

    def spy(sub):
        calls.append(sub.n)
        return all_pairs(sub)

    g = composite_graph(0)
    ct = build_component_tables(g, solver=spy)
    assert len(calls) == ct.bcc.count
    assert close(assemble_full_matrix(g, ct), dijkstra_apsp(g))


def test_ap_matrix_exactness():
    g = composite_graph(2)
    ct = build_component_tables(g)
    ref = dijkstra_apsp(g)
    aps = ct.ap_ids
    for i, a in enumerate(aps):
        for j, b in enumerate(aps):
            assert np.isclose(
                np.nan_to_num(ct.ap_matrix[i, j], posinf=-1),
                np.nan_to_num(ref[a, b], posinf=-1),
                atol=1e-9,
            )


def test_ap_matrix_symmetric_zero_diagonal():
    g = composite_graph(4)
    ct = build_component_tables(g)
    A = ct.ap_matrix
    assert (np.diag(A) == 0).all()
    assert np.allclose(np.nan_to_num(A, posinf=-1), np.nan_to_num(A.T, posinf=-1))


def test_no_articulation_points():
    from _support import biconnected_weighted

    g = biconnected_weighted(1, n=15, extra=10)
    ct = build_component_tables(g)
    assert ct.ap_matrix.shape == (0, 0)
    assert close(assemble_full_matrix(g, ct), dijkstra_apsp(g))


def test_path_graph_all_bridges():
    g = path_graph(6)
    ct = build_component_tables(g)
    assert ct.bcc.count == 5
    assert len(ct.ap_ids) == 4
    assert close(assemble_full_matrix(g, ct), dijkstra_apsp(g))


def test_vertex_local_memberships():
    g = path_graph(4)
    ct = build_component_tables(g)
    assert len(ct.component_of(1)) == 2  # AP in two blocks
    assert len(ct.component_of(0)) == 1
    assert ct.component_of(99) == []


def test_table_bytes_model():
    g = composite_graph(0)
    ct = build_component_tables(g)
    expected = sum(t.size for t in ct.tables) + ct.ap_matrix.size
    assert ct.table_bytes(4) == expected * 4
    assert ct.table_bytes(8) == expected * 8


def test_shared_ap_pair_across_two_components():
    # two vertices that are both APs and share two different blocks:
    # u - v parallel structure through two separate squares + pendant to
    # make them APs.
    edges = [
        (0, 2), (2, 1), (0, 3), (3, 1),  # block A (cycle 0-2-1-3)
        (0, 4), (4, 1), (0, 5), (5, 1),  # block B (cycle 0-4-1-5)
        (0, 6), (1, 7),                   # pendants making 0 and 1 APs
    ]
    g = CSRGraph(8, [e[0] for e in edges], [e[1] for e in edges])
    # NB: blocks A and B actually merge into one BCC (0 and 1 stay
    # biconnected through both squares) — the point is the assembly stays
    # exact in the presence of dense AP sharing.
    ct = build_component_tables(g)
    assert close(assemble_full_matrix(g, ct), dijkstra_apsp(g))
