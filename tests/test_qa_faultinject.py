"""Fault injection: the parallel backend degrades losslessly.

Each armed fault (worker crash mid-chunk, shared-memory allocation
failure, hung worker past the dispatch timeout) must leave the caller with
the serial engine's bit-identical matrices and leak no shared-memory
segments.
"""

from __future__ import annotations

import glob
import warnings
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.graph import grid_graph
from repro.hetero.parallel import ParallelEngine, SharedCSRBuffers, resolve_timeout
from repro.qa import faultinject
from repro.sssp import engine as serial_engine

pytestmark = pytest.mark.qa


def shm_segment_count() -> int | None:
    """Live ``/dev/shm`` segment count, or None where it does not exist."""
    try:
        return len(glob.glob("/dev/shm/psm_*"))
    except OSError:  # pragma: no cover - non-tmpfs platforms
        return None


@pytest.fixture
def leak_check():
    before = shm_segment_count()
    yield
    after = shm_segment_count()
    if before is not None and after is not None:
        assert after <= before, f"leaked shared-memory segments: {after - before}"


@pytest.fixture
def graph():
    return grid_graph(6, 7)


class TestSpecParsing:
    def test_parse_spec(self):
        assert faultinject.parse_spec("worker.crash:8, shm.oom") == [
            ("worker.crash", "8"),
            ("shm.oom", None),
        ]
        assert faultinject.parse_spec("") == []

    def test_inject_restores_env(self, monkeypatch):
        monkeypatch.delenv(faultinject.ENV_VAR, raising=False)
        with faultinject.inject("shm.oom"):
            with pytest.raises(OSError):
                faultinject.fire("shm.create")
        faultinject.fire("shm.create")  # disarmed again

    def test_crash_threshold(self, monkeypatch):
        monkeypatch.setenv(faultinject.ENV_VAR, "worker.crash:8")
        faultinject.fire("worker.chunk", first_source=4)  # below threshold
        with pytest.raises(faultinject.InjectedWorkerCrash):
            faultinject.fire("worker.chunk", first_source=8)

    def test_resolve_timeout(self, monkeypatch):
        assert resolve_timeout(None) is None
        assert resolve_timeout(2.5) == 2.5
        monkeypatch.setenv("REPRO_PARALLEL_TIMEOUT", "1.5")
        assert resolve_timeout(None) == 1.5
        assert resolve_timeout(9.0) == 9.0  # explicit argument wins
        with pytest.raises(ValueError):
            resolve_timeout(0)


class TestDegradation:
    def test_worker_crash_midway_bit_identical(self, graph, leak_check):
        want = serial_engine.all_pairs(graph)
        with faultinject.inject_worker_crash(from_source=8):
            with ParallelEngine(graph, workers=2, chunk_size=4) as eng:
                if not eng.is_parallel:
                    pytest.skip("no process pool in this sandbox")
                with pytest.warns(RuntimeWarning, match="degrading to serial"):
                    got = eng.all_pairs()
                assert not eng.is_parallel  # pool is gone for good
        assert np.array_equal(want, got)

    def test_shm_allocation_failure_falls_back(self, graph, leak_check):
        want = serial_engine.all_pairs(graph)
        with faultinject.inject_shm_failure():
            with pytest.warns(RuntimeWarning, match="falling back to serial"):
                eng = ParallelEngine(graph, workers=2, chunk_size=4)
            with eng:
                assert not eng.is_parallel
                got = eng.all_pairs()
        assert np.array_equal(want, got)

    def test_hung_worker_times_out_and_degrades(self, graph, leak_check):
        want = serial_engine.all_pairs(graph)
        with faultinject.inject_worker_hang(30.0):
            with ParallelEngine(graph, workers=2, chunk_size=16, timeout=1.0) as eng:
                if not eng.is_parallel:
                    pytest.skip("no process pool in this sandbox")
                with pytest.warns(RuntimeWarning, match="degrading to serial"):
                    got = eng.all_pairs()
        assert np.array_equal(want, got)

    def test_spt_forest_degrades_bit_identical(self, graph, leak_check):
        sources = np.arange(graph.n, dtype=np.int64)
        want_d, want_p = serial_engine.spt_forest(graph, sources)
        with faultinject.inject_worker_crash():
            with ParallelEngine(graph, workers=2, chunk_size=8) as eng:
                if not eng.is_parallel:
                    pytest.skip("no process pool in this sandbox")
                with pytest.warns(RuntimeWarning, match="degrading to serial"):
                    got_d, got_p = eng.spt_forest(sources)
        assert np.array_equal(want_d, got_d)
        assert np.array_equal(want_p, got_p)

    def test_degraded_engine_stays_usable(self, graph, leak_check):
        want = serial_engine.multi_source(graph, np.array([0, 3, 5]))
        with faultinject.inject_worker_crash():
            with ParallelEngine(graph, workers=2, chunk_size=4) as eng:
                if not eng.is_parallel:
                    pytest.skip("no process pool in this sandbox")
                with pytest.warns(RuntimeWarning):
                    eng.all_pairs()
        # The fault is disarmed and the pool is gone; later calls serve serially.
        got = eng.multi_source(np.array([0, 3, 5]))
        assert np.array_equal(want, got)
        eng.close()


class TestSharedMemoryLeaks:
    def test_partial_buffer_creation_releases_segments(self, graph, leak_check):
        """Allocation failing on the 2nd segment must free the 1st."""
        mat = serial_engine.adjacency_cache().get(graph)
        created: list[shared_memory.SharedMemory] = []
        real_ctor = shared_memory.SharedMemory
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError(28, "simulated ENOSPC")
            shm = real_ctor(*args, **kwargs)
            created.append(shm)
            return shm

        with pytest.MonkeyPatch.context() as mp_ctx:
            mp_ctx.setattr(shared_memory, "SharedMemory", flaky)
            with pytest.raises(OSError):
                SharedCSRBuffers(mat)
        assert created, "first segment should have been created"
        for shm in created:  # every created segment must already be unlinked
            with pytest.raises(FileNotFoundError):
                real_ctor(name=shm.name)

    def test_normal_lifecycle_leaves_no_segments(self, graph, leak_check):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with ParallelEngine(graph, workers=2, chunk_size=8) as eng:
                eng.all_pairs()
