"""File format round trips and error handling."""

import io

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    GraphError,
    grid_graph,
    randomize_weights,
    read_dimacs,
    read_edge_list,
    read_matrix_market,
    write_dimacs,
    write_edge_list,
    write_matrix_market,
)
from repro.graph.io import loads_edge_list


@pytest.fixture
def weighted(grid):
    return randomize_weights(grid, seed=1)


class TestMatrixMarket:
    def test_roundtrip_buffer(self, weighted):
        buf = io.StringIO()
        write_matrix_market(weighted, buf)
        buf.seek(0)
        assert read_matrix_market(buf) == weighted

    def test_roundtrip_file(self, weighted, tmp_path):
        path = tmp_path / "g.mtx"
        write_matrix_market(weighted, path)
        assert read_matrix_market(path) == weighted

    def test_pattern_matrix_gets_unit_weights(self):
        text = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n"
        g = read_matrix_market(io.StringIO(text))
        assert g.m == 2 and np.allclose(g.edge_w, 1.0)

    def test_rejects_non_mm(self):
        with pytest.raises(GraphError):
            read_matrix_market(io.StringIO("not a matrix\n"))

    def test_rejects_dense_format(self):
        with pytest.raises(GraphError):
            read_matrix_market(io.StringIO("%%MatrixMarket matrix array real general\n"))

    def test_rejects_rectangular(self):
        text = "%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1.0\n"
        with pytest.raises(GraphError):
            read_matrix_market(io.StringIO(text))

    def test_diagonal_entry_is_self_loop(self):
        text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 2.0\n2 1 1.0\n"
        g = read_matrix_market(io.StringIO(text))
        assert g.has_self_loops

    def test_comment_lines_skipped(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% a comment\n% another\n2 2 1\n2 1 3.5\n"
        )
        g = read_matrix_market(io.StringIO(text))
        assert g.m == 1 and g.edge_weight(0, 1) == 3.5


class TestEdgeList:
    def test_roundtrip(self, weighted):
        buf = io.StringIO()
        write_edge_list(weighted, buf)
        buf.seek(0)
        assert read_edge_list(buf) == weighted

    def test_comments_and_blank_lines(self):
        g = loads_edge_list("# comment\n\n0 1 2.0\n1 2\n")
        assert g.m == 2 and g.edge_weight(1, 2) == 1.0

    def test_explicit_vertex_count(self):
        g = read_edge_list(io.StringIO("0 1\n"), n=5)
        assert g.n == 5

    def test_empty_input(self):
        g = read_edge_list(io.StringIO(""))
        assert g.n == 0 and g.m == 0


class TestDimacs:
    def test_roundtrip(self, weighted):
        buf = io.StringIO()
        write_dimacs(weighted, buf, comment="test graph")
        buf.seek(0)
        assert read_dimacs(buf) == weighted

    def test_min_weight_arc_kept(self):
        text = "p sp 2 3\na 1 2 5\na 2 1 3\na 1 2 4\n"
        g = read_dimacs(io.StringIO(text))
        assert g.m == 1 and g.edge_weight(0, 1) == 3.0

    def test_comments_ignored(self):
        g = read_dimacs(io.StringIO("c hello\np sp 3 1\na 1 3 2\n"))
        assert g.n == 3 and g.edge_weight(0, 2) == 2.0


class TestMetis:
    def test_roundtrip(self, weighted):
        buf = io.StringIO()
        from repro.graph import read_metis, write_metis

        write_metis(weighted, buf)
        buf.seek(0)
        assert read_metis(buf) == weighted

    def test_plain_format_unit_weights(self):
        from repro.graph import read_metis

        text = "3 2\n2\n1 3\n2\n"
        g = read_metis(io.StringIO(text))
        assert g.m == 2 and np.allclose(g.edge_w, 1.0)

    def test_edge_count_mismatch_rejected(self):
        from repro.graph import read_metis

        with pytest.raises(GraphError):
            read_metis(io.StringIO("3 5\n2\n1 3\n2\n"))

    def test_vertex_count_mismatch_rejected(self):
        from repro.graph import read_metis

        with pytest.raises(GraphError):
            read_metis(io.StringIO("4 2\n2\n1 3\n2\n"))

    def test_comment_lines(self):
        from repro.graph import read_metis

        text = "3 2\n% comment before vertex 1? no: after header only\n2\n1 3\n2\n"
        # comments are permitted between adjacency lines
        g = read_metis(io.StringIO(text))
        assert g.m == 2

    def test_simplifies_on_write(self, multigraph):
        from repro.graph import read_metis, write_metis

        buf = io.StringIO()
        write_metis(multigraph, buf)
        buf.seek(0)
        g = read_metis(buf)
        assert g.is_simple()
        assert g == multigraph.simplify()


class TestNpz:
    def test_roundtrip(self, weighted, tmp_path):
        from repro.graph import load_npz, save_npz

        path = tmp_path / "g.npz"
        save_npz(weighted, path)
        assert load_npz(path) == weighted

    def test_multigraph_roundtrip(self, multigraph, tmp_path):
        from repro.graph import load_npz, save_npz

        path = tmp_path / "m.npz"
        save_npz(multigraph, path)
        g2 = load_npz(path)
        assert g2 == multigraph
        assert g2.has_self_loops and g2.has_parallel_edges

    def test_empty_graph(self, tmp_path):
        from repro.graph import CSRGraph, load_npz, save_npz

        path = tmp_path / "e.npz"
        save_npz(CSRGraph(7, [], []), path)
        g = load_npz(path)
        assert g.n == 7 and g.m == 0
