"""Isometric cycle filter and the MCB built on it."""

import numpy as np
import pytest

from repro.apsp import dijkstra_apsp
from repro.graph import CSRGraph, complete_graph, cycle_graph, gnm_random_graph, randomize_weights
from repro.mcb import (
    Cycle,
    depina_mcb,
    filter_isometric,
    horton_set,
    is_isometric,
    isometric_mcb,
    verify_cycle_basis,
)

from _support import biconnected_weighted


def test_plain_cycle_is_isometric(ring):
    dist = dijkstra_apsp(ring)
    cyc = Cycle(np.arange(ring.m), float(ring.m))
    assert is_isometric(ring, cyc, dist)


def test_detour_cycle_not_isometric():
    # square 0-1-2-3 plus a shortcut diagonal 0-2 of tiny weight:
    # the square is not isometric (d(0,2) < both square arcs)
    g = CSRGraph(4, [0, 1, 2, 3, 0], [1, 2, 3, 0, 2], [1, 1, 1, 1, 0.1])
    dist = dijkstra_apsp(g)
    square = Cycle(np.arange(4), 4.0)
    assert not is_isometric(g, square, dist)
    tri = Cycle(np.array([0, 1, 4]), 2.1)
    assert is_isometric(g, tri, dist)


def test_self_loop_isometric():
    g = CSRGraph(1, [0], [0], [2.0])
    assert is_isometric(g, Cycle(np.array([0]), 2.0), dijkstra_apsp(g))


def test_filter_shrinks_horton_set():
    g = biconnected_weighted(1, n=14, extra=10)
    hs = horton_set(g)
    iso = filter_isometric(g, hs)
    assert len(iso) <= len(hs)
    assert len(iso) >= g.cycle_space_dimension()


@pytest.mark.parametrize("seed", range(4))
def test_isometric_mcb_matches_depina(seed):
    g = randomize_weights(gnm_random_graph(14, 24, seed=seed), seed=seed)
    w_iso = sum(c.weight for c in isometric_mcb(g))
    w_dp = sum(c.weight for c in depina_mcb(g))
    assert w_iso == pytest.approx(w_dp, rel=1e-6)


def test_isometric_mcb_unit_weights():
    g = complete_graph(5)
    basis = isometric_mcb(g)
    rep = verify_cycle_basis(g, basis)
    assert rep.ok
    assert rep.total_weight == pytest.approx(
        sum(c.weight for c in depina_mcb(g)), rel=1e-6
    )


def test_isometric_mcb_forest():
    from repro.graph import path_graph

    assert isometric_mcb(path_graph(5)) == []


def test_non_simple_support_rejected():
    # figure-eight support is a cycle-space vector but not simple
    g = CSRGraph(5, [0, 1, 2, 2, 3, 4], [1, 2, 0, 3, 4, 2])
    fig8 = Cycle(np.arange(6), 6.0)
    assert not is_isometric(g, fig8, dijkstra_apsp(g))
