"""Conversions to/from networkx, scipy, dense adjacency."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    GraphError,
    from_adjacency,
    from_networkx,
    from_scipy,
    grid_graph,
    to_adjacency,
    to_networkx,
    to_scipy,
)


class TestNetworkx:
    def test_roundtrip_simple(self, grid):
        assert from_networkx(to_networkx(grid)) == grid

    def test_roundtrip_multigraph(self, multigraph):
        g2 = from_networkx(to_networkx(multigraph))
        assert g2 == multigraph

    def test_multigraph_type_selection(self, grid, multigraph):
        assert isinstance(to_networkx(grid), nx.Graph)
        assert isinstance(to_networkx(multigraph), nx.MultiGraph)

    def test_string_labels_are_relabelled(self):
        G = nx.Graph()
        G.add_edge("b", "a", weight=2.0)
        G.add_node("c")
        g = from_networkx(G)
        assert g.n == 3 and g.m == 1
        assert g.edge_weight(0, 1) == 2.0  # 'a'-'b' after sorting

    def test_missing_weight_uses_default(self):
        G = nx.Graph()
        G.add_edge(0, 1)
        g = from_networkx(G, default=3.5)
        assert g.edge_weight(0, 1) == 3.5

    def test_isolated_nodes_preserved(self):
        g = CSRGraph(4, [0], [1])
        assert to_networkx(g).number_of_nodes() == 4


class TestScipy:
    def test_roundtrip(self, grid):
        assert from_scipy(to_scipy(grid)) == grid

    def test_rejects_rectangular(self):
        import scipy.sparse as sp

        with pytest.raises(GraphError):
            from_scipy(sp.random(3, 4, density=0.5))

    def test_diagonal_becomes_loop(self):
        import scipy.sparse as sp

        mat = sp.coo_matrix(([2.0], ([1], [1])), shape=(3, 3))
        g = from_scipy(mat)
        assert g.has_self_loops and g.m == 1


class TestDense:
    def test_roundtrip(self, grid):
        assert from_adjacency(to_adjacency(grid)) == grid

    def test_absent_marker(self):
        g = CSRGraph(2, [0], [1], [2.0])
        a = to_adjacency(g, absent=np.inf)
        assert a[0, 1] == 2.0 and np.isinf(a[0, 0])

    def test_asymmetric_rejected(self):
        with pytest.raises(GraphError):
            from_adjacency(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_rectangular_rejected(self):
        with pytest.raises(GraphError):
            from_adjacency(np.zeros((2, 3)))

    def test_parallel_edges_collapse_to_min(self):
        g = CSRGraph(2, [0, 0], [1, 1], [5.0, 2.0])
        assert to_adjacency(g)[0, 1] == 2.0


def test_networkx_apsp_agreement(grid):
    """Conversion preserves shortest-path semantics end to end."""
    G = to_networkx(grid)
    d_nx = dict(nx.all_pairs_dijkstra_path_length(G))
    from repro.sssp import dijkstra

    d0 = dijkstra(grid, 0)
    for t, dv in d_nx[0].items():
        assert np.isclose(d0[t], dv)
