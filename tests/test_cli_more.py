"""Remaining CLI surface (datasets command, argument handling)."""

import pytest

from repro.cli import main


def test_datasets_command(capsys):
    assert main(["datasets", "--scale", "0.012", "--datasets", "nopoly", "c-50"]) == 0
    out = capsys.readouterr().out
    assert "nopoly" in out and "c-50" in out and "paper removed%" in out


def test_unknown_command_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_table1_subset(capsys):
    assert main(["table1", "--scale", "0.012", "--datasets", "Planar_1"]) == 0
    out = capsys.readouterr().out
    assert "Planar_1" in out
    assert "nopoly" not in out
