"""The invariant layer: clean pipelines pass, corruption is caught."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.decomposition import Ear, EarDecomposition, ear_decomposition, reduce_graph
from repro.graph import CSRGraph, GraphError, cycle_graph, grid_graph
from repro.mcb import depina_mcb, minimum_cycle_basis
from repro.qa import strategies
from repro.qa.invariants import (
    InvariantViolation,
    check_cycle_basis,
    check_ear_decomposition,
    check_reduction,
    invariants_enabled,
)


class TestKnob:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        assert not invariants_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", value)
        assert invariants_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "off", ""])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", value)
        assert not invariants_enabled()


class TestEarInvariant:
    def test_clean_decomposition_passes(self):
        g = strategies.theta_graph(4, 5, seed=2)
        check_ear_decomposition(g, ear_decomposition(g))

    def test_dropped_ear_caught(self):
        g = strategies.theta_graph(3, 4, seed=0)
        dec = ear_decomposition(g)
        broken = EarDecomposition(ears=dec.ears[:-1], is_open=dec.is_open)
        with pytest.raises(InvariantViolation, match="partition"):
            check_ear_decomposition(g, broken)

    def test_duplicated_ear_caught(self):
        g = strategies.theta_graph(3, 4, seed=0)
        dec = ear_decomposition(g)
        broken = EarDecomposition(ears=dec.ears + [dec.ears[-1]], is_open=dec.is_open)
        with pytest.raises(InvariantViolation, match="partition"):
            check_ear_decomposition(g, broken)

    def test_inconsistent_walk_caught(self):
        g = cycle_graph(5)
        dec = ear_decomposition(g)
        ear = dec.ears[0]
        scrambled = Ear(vertices=ear.vertices[::-1].copy(), edges=ear.edges)
        with pytest.raises(InvariantViolation):
            check_ear_decomposition(g, EarDecomposition(ears=[scrambled], is_open=True))

    def test_hook_fires_under_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        g = strategies.theta_graph(3, 6, seed=1)
        dec = ear_decomposition(g)  # must not raise on a correct pipeline
        assert dec.count == g.m - g.n + 1


class TestReductionInvariant:
    def test_clean_reduction_passes(self):
        g = strategies.theta_graph(4, 6, seed=5)
        check_reduction(reduce_graph(g))

    def test_validate_failure_propagates(self):
        g = strategies.theta_graph(3, 5, seed=0)
        red = reduce_graph(g)
        broken = dataclasses.replace(
            red, graph=red.graph.with_weights(red.graph.edge_w * 2.0)
        )
        with pytest.raises(GraphError, match="chain weight"):
            check_reduction(broken)

    def test_anchor_distance_corruption_caught(self):
        g = strategies.theta_graph(3, 6, seed=0)
        red = reduce_graph(g)
        assert red.n_removed > 0
        red.dist_left = red.dist_left + np.where(red.chain_of >= 0, 0.5, 0.0)
        with pytest.raises(InvariantViolation, match="dist_left"):
            check_reduction(red)

    def test_strict_degree_rejects_unreduced_chain(self):
        g = strategies.theta_graph(3, 6, seed=0)
        keep = np.zeros(g.n, dtype=bool)
        keep[2] = True  # force one interior chain vertex to survive
        red = reduce_graph(g, keep=keep)
        assert int(red.graph.degree[red.reduced_id[2]]) == 2
        check_reduction(red, strict_degree=False)
        with pytest.raises(InvariantViolation, match="not maximal"):
            check_reduction(red, strict_degree=True)

    def test_hook_honors_caller_keep(self, monkeypatch):
        # The embedded hook must not flag a deliberately partial reduction.
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        g = strategies.theta_graph(3, 6, seed=0)
        keep = np.zeros(g.n, dtype=bool)
        keep[2] = True
        red = reduce_graph(g, keep=keep)  # must not raise
        assert bool(red.kept_mask[2])

    def test_hook_fires_under_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        for name, g in strategies.corpus(count=20, seed=4):
            if g.n:
                reduce_graph(g)


class TestCycleBasisInvariant:
    def test_clean_basis_passes(self):
        g = grid_graph(3, 4)
        check_cycle_basis(g, depina_mcb(g))

    def test_dropped_cycle_caught(self):
        g = grid_graph(3, 4)
        basis = depina_mcb(g)
        with pytest.raises(InvariantViolation, match="cycle basis"):
            check_cycle_basis(g, basis[:-1])

    def test_dependent_set_caught(self):
        g = grid_graph(3, 4)
        basis = depina_mcb(g)
        with pytest.raises(InvariantViolation, match="cycle basis"):
            check_cycle_basis(g, basis[:-1] + [basis[0]])

    def test_weight_accounting_mismatch_caught(self):
        g = grid_graph(3, 3)
        basis = depina_mcb(g)
        fudged = [dataclasses.replace(basis[0], weight=basis[0].weight * 2)]
        with pytest.raises(InvariantViolation, match="accounted weight"):
            check_cycle_basis(g, fudged + list(basis[1:]))

    def test_pipeline_hooks_fire_under_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        g = strategies.cactus_graph(3, 4, seed=6)
        basis = minimum_cycle_basis(g, algorithm="mm")  # ear pipeline + check
        assert len(basis) == g.cycle_space_dimension()
        basis = minimum_cycle_basis(g, algorithm="depina")  # witness check too
        assert len(basis) == g.cycle_space_dimension()
        basis = depina_mcb(g)  # direct de Pina witness orthogonality check
        assert len(basis) == g.cycle_space_dimension()
