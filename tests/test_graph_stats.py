"""Structural statistics (Table-1 columns)."""

import numpy as np

from repro.graph import CSRGraph, cycle_graph, degree_histogram, grid_graph, path_graph, table1_row


def test_degree_histogram_path():
    hist = degree_histogram(path_graph(5))
    assert hist[1] == 2 and hist[2] == 3


def test_degree_histogram_empty():
    assert degree_histogram(CSRGraph(0, [], [])).tolist() == [0]


def test_degree_histogram_with_loops():
    g = CSRGraph(2, [0, 0], [0, 1])
    hist = degree_histogram(g)
    assert hist[3] == 1 and hist[1] == 1


def test_table1_row_cycle():
    st = table1_row(cycle_graph(10), "ring")
    assert st.name == "ring"
    assert st.n == 10 and st.m == 10
    assert st.n_bcc == 1
    assert st.largest_bcc_edge_pct == 100.0
    assert st.degree2_pct == 100.0
    # whole ring contracts to one anchor
    assert st.nodes_removed_pct == 90.0


def test_table1_row_empty_graph():
    st = table1_row(CSRGraph(0, [], []))
    assert st.n == 0 and st.nodes_removed_pct == 0.0


def test_table1_as_row_shape():
    st = table1_row(grid_graph(3, 3), "g")
    row = st.as_row()
    assert row[0] == "g" and len(row) == 6
