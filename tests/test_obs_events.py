"""repro.obs.events: shard discipline, tolerant reads, zero-cost disabled mode.

The disabled-mode tests pin the subsystem's core contract (mirroring the
trace layer's null span): with no sink installed, ``emit()`` returns after
one module-global read and ``emitting()`` hands back a shared singleton,
so per-chunk instrumentation costs nothing unless ``REPRO_EVENTS`` is set.
"""

from __future__ import annotations

import json
import os
import tracemalloc

import numpy as np
import pytest

from repro.graph import grid_graph
from repro.obs import events
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    EventSink,
    emit,
    emitting,
    events_to,
)


class TestDisabledMode:
    def test_disabled_by_default(self):
        assert not events.enabled()
        assert events.current_sink() is None

    def test_emit_is_noop(self, tmp_path):
        emit("queue.grab", end="back", batch=4)  # no sink: must not raise
        assert list(tmp_path.iterdir()) == []

    def test_emitting_returns_shared_singleton(self):
        a = emitting("phase", phase="process", cat="apsp")
        b = emitting("completely.different")
        assert a is b is events._NULL_EMITTING

    def test_no_allocation_on_hot_path(self):
        # 50k disabled guard+emit cycles must not grow traced memory
        # beyond noise — same budget as the trace layer's null span.
        def burn():
            for _ in range(50_000):
                if events.enabled():
                    emit("chunk.start", sources=32)

        burn()  # warm caches outside the measurement window
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            burn()
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before < 16_384, f"disabled emits allocated {after - before} B"


class TestEventSink:
    def test_emit_writes_schema_stamped_lines(self, tmp_path):
        sink = EventSink(tmp_path)
        sink.emit("queue.grab", end="back", batch=4, device="gpu")
        sink.emit("chunk.start", sources=32)
        sink.close()
        lines = sink.shard_path().read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["v"] == EVENT_SCHEMA_VERSION
        assert first["pid"] == os.getpid()
        assert first["kind"] == "queue.grab"
        assert first["device"] == "gpu"
        assert first["seq"] == 0
        assert json.loads(lines[1])["seq"] == 1

    def test_shard_is_per_pid(self, tmp_path):
        sink = EventSink(tmp_path)
        assert sink.shard_path().name == f"events-{os.getpid()}.jsonl"

    def test_shard_cap_counts_drops(self, tmp_path, monkeypatch):
        monkeypatch.setattr(events, "MAX_EVENTS_PER_SHARD", 3)
        sink = EventSink(tmp_path)
        for i in range(5):
            sink.emit("k", i=i)
        sink.close()
        assert sink.dropped == 2
        assert len(EventLog(tmp_path).read()) == 3

    def test_non_serializable_fields_coerced(self, tmp_path):
        sink = EventSink(tmp_path)
        sink.emit("k", arr=np.int64(7))  # default=str coerces
        sink.close()
        assert EventLog(tmp_path).read()[0]["arr"] in (7, "7")


class TestEventLog:
    def test_merged_read_is_timestamp_sorted(self, tmp_path):
        # Fake two pids' shards with interleaved timestamps.
        (tmp_path / "events-100.jsonl").write_text(
            '{"v":1,"seq":0,"ts_ns":30,"pid":100,"kind":"b"}\n'
            '{"v":1,"seq":1,"ts_ns":50,"pid":100,"kind":"d"}\n'
        )
        (tmp_path / "events-200.jsonl").write_text(
            '{"v":1,"seq":0,"ts_ns":20,"pid":200,"kind":"a"}\n'
            '{"v":1,"seq":1,"ts_ns":40,"pid":200,"kind":"c"}\n'
        )
        log = EventLog(tmp_path)
        assert [e["kind"] for e in log.read()] == ["a", "b", "c", "d"]
        assert log.skipped == 0

    def test_tolerant_of_garbage_and_future_schema(self, tmp_path):
        (tmp_path / "events-1.jsonl").write_text(
            '{"v":1,"seq":0,"ts_ns":1,"pid":1,"kind":"good"}\n'
            "not json at all\n"
            '{"v":999,"seq":0,"ts_ns":2,"pid":1,"kind":"future"}\n'
            '{"v":1,"ts_ns":"not-an-int","pid":1,"kind":"bad-ts"}\n'
            '{"truncated": tru\n'
            '{"v":1,"seq":1,"ts_ns":3,"pid":1,"kind":"good2"}\n'
        )
        log = EventLog(tmp_path)
        assert [e["kind"] for e in log.read()] == ["good", "good2"]
        assert log.skipped == 4

    def test_kind_filter_and_kinds_summary(self, tmp_path):
        sink = EventSink(tmp_path)
        sink.emit("a")
        sink.emit("b")
        sink.emit("a")
        sink.close()
        log = EventLog(tmp_path)
        assert len(log.read(kinds={"a"})) == 2
        assert log.kinds() == {"a": 2, "b": 1}

    def test_missing_dir_reads_empty(self, tmp_path):
        log = EventLog(tmp_path / "never-created")
        assert log.read() == []
        assert log.shards() == []

    def test_skewed_shards_clamped_monotonic(self, tmp_path):
        # Two shards from hosts with skewed clocks: pid 100's timestamps
        # run far behind pid 200's, and pid 200's file itself contains a
        # backwards step (a suspended-VM artifact).  The merged stream
        # must still come out non-decreasing — backwards steps inside one
        # shard's append order are clamped up to the shard's running max
        # and flagged, never silently reordered.
        (tmp_path / "events-100.jsonl").write_text(
            '{"v":1,"seq":0,"ts_ns":10,"pid":100,"kind":"a"}\n'
            '{"v":1,"seq":1,"ts_ns":1000,"pid":100,"kind":"b"}\n'
        )
        (tmp_path / "events-200.jsonl").write_text(
            '{"v":1,"seq":0,"ts_ns":500,"pid":200,"kind":"c"}\n'
            '{"v":1,"seq":1,"ts_ns":400,"pid":200,"kind":"d"}\n'
            '{"v":1,"seq":2,"ts_ns":600,"pid":200,"kind":"e"}\n'
        )
        log = EventLog(tmp_path)
        evs = log.read()
        ts = [e["ts_ns"] for e in evs]
        assert ts == sorted(ts), ts
        assert log.clamped == 1
        by_kind = {e["kind"]: e for e in evs}
        # the backwards event was clamped up to its shard's running max
        assert by_kind["d"]["ts_ns"] == 500
        assert by_kind["d"].get("ts_clamped") is True
        # in-order events are untouched and unflagged
        assert "ts_clamped" not in by_kind["c"]
        assert by_kind["e"]["ts_ns"] == 600

    def test_clamped_counter_resets_per_read(self, tmp_path):
        (tmp_path / "events-1.jsonl").write_text(
            '{"v":1,"seq":0,"ts_ns":5,"pid":1,"kind":"a"}\n'
            '{"v":1,"seq":1,"ts_ns":3,"pid":1,"kind":"b"}\n'
        )
        log = EventLog(tmp_path)
        log.read()
        assert log.clamped == 1
        log.read()
        assert log.clamped == 1  # re-counted, not accumulated


class TestEventsTo:
    def test_installs_and_restores(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_EVENTS", raising=False)
        assert not events.enabled()
        with events_to(tmp_path) as sink:
            assert events.enabled()
            assert events.current_sink() is sink
            # Exported for spawn-method worker processes.
            assert os.environ["REPRO_EVENTS"] == str(tmp_path)
            emit("k")
        assert not events.enabled()
        assert "REPRO_EVENTS" not in os.environ
        assert len(EventLog(tmp_path).read()) == 1

    def test_nesting_restores_outer_sink(self, tmp_path):
        outer, inner = tmp_path / "outer", tmp_path / "inner"
        with events_to(outer) as s_outer:
            with events_to(inner):
                emit("inner.event")
            assert events.current_sink() is s_outer
            emit("outer.event")
        assert EventLog(inner).kinds() == {"inner.event": 1}
        assert EventLog(outer).kinds() == {"outer.event": 1}

    def test_emitting_brackets_with_duration(self, tmp_path):
        with events_to(tmp_path):
            with emitting("phase", phase="process", cat="apsp"):
                pass
        evs = EventLog(tmp_path).read()
        assert [e["kind"] for e in evs] == ["phase.start", "phase.finish"]
        assert evs[1]["dur_ns"] >= 0
        assert evs[1]["phase"] == "process"

    def test_emitting_tags_exceptions(self, tmp_path):
        with events_to(tmp_path):
            with pytest.raises(ValueError):
                with emitting("phase", phase="process"):
                    raise ValueError("boom")
        evs = EventLog(tmp_path).read()
        assert evs[1]["kind"] == "phase.finish"
        assert evs[1]["error"] == "ValueError"

    def test_resolve_dir_flag_vs_path(self):
        assert events._resolve_dir("0") is None
        assert events._resolve_dir("") is None
        assert events._resolve_dir("off") is None
        assert events._resolve_dir("1") == events.DEFAULT_EVENTS_DIR
        assert events._resolve_dir("/some/dir") == "/some/dir"


class TestPipelineEmission:
    def test_apsp_run_emits_phases_and_chunks(self, tmp_path):
        from repro.hetero.apsp_runner import apsp_with_trace

        g = grid_graph(5, 5)
        with events_to(tmp_path):
            apsp_with_trace(g)
        kinds = EventLog(tmp_path).kinds()
        assert kinds.get("phase.start", 0) >= 1
        assert kinds["phase.start"] == kinds["phase.finish"]
        assert kinds.get("chunk.start", 0) >= 1
        assert kinds["chunk.start"] == kinds["chunk.finish"]

    def test_simulated_stage_emits_device_grabs(self, tmp_path):
        from repro.hetero.apsp_runner import apsp_with_trace
        from repro.hetero.executor import Platform
        from repro.hetero.trace import simulate_trace

        g = grid_graph(6, 6)
        with events_to(tmp_path):
            _, trace = apsp_with_trace(g)
            simulate_trace(trace, Platform.heterogeneous())
        grabs = EventLog(tmp_path).read(kinds={"queue.grab"})
        assert grabs
        for ev in grabs:
            assert ev["end"] in ("front", "back")
            assert ev["batch"] >= 1
            assert ev["device"]
            assert isinstance(ev["remaining"], int)

    def test_parallel_workers_shard_by_pid(self, tmp_path):
        from repro.hetero.parallel import ParallelEngine
        from repro.sssp import engine as serial_engine

        g = grid_graph(6, 7)
        sources = np.arange(g.n, dtype=np.int64)
        with events_to(tmp_path):
            with ParallelEngine(g, workers=2, chunk_size=8) as eng:
                if not eng.is_parallel:
                    pytest.skip("no process pool in this sandbox")
                dist = eng.multi_source(sources)
        np.testing.assert_array_equal(
            dist, serial_engine.multi_source(g, sources)
        )
        log = EventLog(tmp_path)
        evs = log.read()
        beats = [e for e in evs if e["kind"] == "worker.heartbeat"]
        assert beats
        worker_pids = {e["pid"] for e in beats}
        assert os.getpid() not in worker_pids  # beats come from workers
        assert len(log.shards()) >= 2  # parent + at least one worker shard
        dispatch = [e for e in evs if e["kind"].startswith("dispatch.")]
        assert [e["kind"] for e in dispatch] == ["dispatch.start", "dispatch.finish"]
        assert all(e["pid"] == os.getpid() for e in dispatch)
