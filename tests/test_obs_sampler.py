"""Continuous profiling: stack sampler, collapsed-stack format, shards.

The sampler is the "what is the interpreter actually doing" complement
to the instrumented traces: a daemon thread snapshotting every other
thread's Python stack at a prime rate, exported in Brendan Gregg's
collapsed format that flamegraph renderers consume directly.  The tests
pin the contract surface: capture works against a busy thread, the
export round-trips through ``parse_collapsed``, malformed shards are
rejected loudly (CI uses the parser as its output validation), per-pid
shards merge, and ``sampling_to`` arms/disarms the ambient environment
so pool workers inherit it.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.obs import metrics
from repro.obs.sampler import (
    DEFAULT_HZ,
    StackSampler,
    active_sampler,
    parse_collapsed,
    read_profile,
    sampling_to,
    top_stacks,
)


def _busy_until(stop: threading.Event) -> None:
    x = 0
    while not stop.is_set():
        x = (x + 1) % 1000003


def _sample_busy_thread(hz: float = 500.0, seconds: float = 0.25) -> StackSampler:
    stop = threading.Event()
    t = threading.Thread(target=_busy_until, args=(stop,), daemon=True)
    t.start()
    s = StackSampler(hz=hz).start()
    time.sleep(seconds)
    s.stop()
    stop.set()
    t.join()
    return s


class TestCapture:
    def test_samples_busy_thread(self):
        s = _sample_busy_thread()
        assert s.samples > 0
        assert s.counts
        joined = {";".join(k) for k in s.counts}
        assert any("_busy_until" in line for line in joined), joined

    def test_frames_are_root_first(self):
        s = _sample_busy_thread()
        busy = [k for k in s.counts if "_busy_until" in ";".join(k)]
        assert busy, s.counts
        # the busy helper lives at the leaf end (itself, or the
        # ``Event.is_set`` call it makes each iteration) — never the root
        assert all(
            any("_busy_until" in f for f in stack[-2:]) for stack in busy
        )
        assert all("_busy_until" not in stack[0] for stack in busy)

    def test_counter_increments(self):
        before = metrics.counter("sampler.samples").value
        s = _sample_busy_thread()
        assert metrics.counter("sampler.samples").value - before >= s.samples > 0

    def test_invalid_hz_rejected(self):
        with pytest.raises(ValueError):
            StackSampler(hz=0)
        with pytest.raises(ValueError):
            StackSampler(hz=-5)

    def test_double_start_rejected(self):
        s = StackSampler(hz=10).start()
        try:
            with pytest.raises(RuntimeError):
                s.start()
        finally:
            s.stop()

    def test_stop_idempotent(self):
        s = StackSampler(hz=10).start()
        s.stop()
        s.stop()


class TestCollapsedFormat:
    def test_roundtrip(self):
        s = _sample_busy_thread()
        text = s.collapsed()
        assert text
        counts = parse_collapsed(text)
        assert counts == s.counts
        assert sum(counts.values()) == s.samples

    def test_lines_are_flamegraph_input(self):
        s = _sample_busy_thread()
        for line in s.collapsed().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack, line
            assert int(count) > 0
            # frame names never smuggle the two format delimiters
            for frame in stack.split(";"):
                assert " " not in frame and frame

    @pytest.mark.parametrize(
        "bad",
        [
            "no-count-here\n",
            "a.py:f notanumber\n",
            "a.py:f 0\n",
            "a.py:f -3\n",
            " 5\n",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_collapsed(bad)

    def test_blank_lines_skipped(self):
        counts = parse_collapsed("\n\na.py:f;b.py:g 2\n\n")
        assert counts == {("a.py:f", "b.py:g"): 2}

    def test_duplicate_stacks_accumulate(self):
        counts = parse_collapsed("a.py:f 2\na.py:f 3\n")
        assert counts == {("a.py:f",): 5}


class TestShards:
    def test_write_and_read_profile(self, tmp_path):
        s = _sample_busy_thread()
        path = s.write(tmp_path)
        assert path.name == f"profile-{os.getpid()}.collapsed"
        merged = read_profile(tmp_path)
        assert merged == s.counts

    def test_multi_shard_merge(self, tmp_path):
        (tmp_path / "profile-100.collapsed").write_text("a.py:f;b.py:g 3\n")
        (tmp_path / "profile-200.collapsed").write_text(
            "a.py:f;b.py:g 2\nc.py:h 1\n"
        )
        merged = read_profile(tmp_path)
        assert merged == {("a.py:f", "b.py:g"): 5, ("c.py:h",): 1}

    def test_bad_shard_skipped_and_counted(self, tmp_path):
        (tmp_path / "profile-1.collapsed").write_text("a.py:f 3\n")
        (tmp_path / "profile-2.collapsed").write_text("garbage without count\n")
        before = metrics.counter("sampler.errors").value
        merged = read_profile(tmp_path)
        assert merged == {("a.py:f",): 3}
        assert metrics.counter("sampler.errors").value == before + 1

    def test_missing_dir_is_empty(self, tmp_path):
        assert read_profile(tmp_path / "nope") == {}


class TestSamplingTo:
    def test_writes_shard_and_restores_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLER", raising=False)
        monkeypatch.delenv("REPRO_SAMPLER_HZ", raising=False)
        stop = threading.Event()
        t = threading.Thread(target=_busy_until, args=(stop,), daemon=True)
        t.start()
        try:
            with sampling_to(tmp_path, hz=500) as s:
                assert active_sampler() is s
                # workers forked inside the block inherit the arming
                assert os.environ["REPRO_SAMPLER"] == str(tmp_path)
                assert float(os.environ["REPRO_SAMPLER_HZ"]) == 500.0
                time.sleep(0.2)
        finally:
            stop.set()
            t.join()
        assert "REPRO_SAMPLER" not in os.environ
        assert "REPRO_SAMPLER_HZ" not in os.environ
        assert active_sampler() is None
        assert sum(read_profile(tmp_path).values()) > 0

    def test_nested_env_restored_to_outer(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLER", "outer-dir")
        with sampling_to(tmp_path, hz=50):
            assert os.environ["REPRO_SAMPLER"] == str(tmp_path)
        assert os.environ["REPRO_SAMPLER"] == "outer-dir"


class TestTopStacks:
    def test_ranked_heaviest_first(self):
        counts = {
            ("a.py:f", "b.py:g"): 2,
            ("c.py:h",): 7,
            ("d.py:i",): 2,
        }
        top = top_stacks(counts, k=2)
        assert top == [("c.py:h", 7), ("a.py:f;b.py:g", 2)]

    def test_k_bounds(self):
        assert top_stacks({}, k=3) == []
        assert len(top_stacks({("a",): 1, ("b",): 2}, k=1)) == 1
