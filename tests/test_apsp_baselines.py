"""Banerjee (BCC + pendant peeling) and Djidjev (partition) baselines."""

import numpy as np
import pytest

from repro.apsp import bcc_apsp, dijkstra_apsp, partition_apsp, peel_pendants
from repro.graph import (
    CSRGraph,
    grid_graph,
    path_graph,
    planar_graph,
    randomize_weights,
)

from _support import close, composite_graph


class TestPendantPeeling:
    def test_peel_star(self):
        g = CSRGraph(5, [0, 0, 0, 0], [1, 2, 3, 4])
        core, core_ids, peel = peel_pendants(g)
        # star peels entirely (centre degenerates too)
        assert len(peel) == 4
        assert core.m == 0

    def test_peel_iterative_chain(self):
        g = path_graph(5)
        core, core_ids, peel = peel_pendants(g)
        assert core.m == 0
        assert len(peel) == 4

    def test_peel_keeps_cycles(self, ring):
        core, core_ids, peel = peel_pendants(ring)
        assert len(peel) == 0
        assert core.m == ring.m

    def test_peel_lollipop(self):
        # triangle with a 2-vertex tail hanging off vertex 2
        g = CSRGraph(5, [0, 1, 2, 2, 3], [1, 2, 0, 3, 4])
        core, core_ids, peel = peel_pendants(g)
        assert len(peel) == 2
        assert set(core_ids.tolist()) == {0, 1, 2}
        assert core.m == 3


class TestBanerjee:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("peel", [True, False])
    def test_exact(self, seed, peel):
        g = composite_graph(seed)
        assert close(bcc_apsp(g, peel=peel), dijkstra_apsp(g))

    def test_pendant_heavy_graph(self):
        # deep tree hanging off a cycle
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (4, 6)]
        g = CSRGraph(7, [e[0] for e in edges], [e[1] for e in edges])
        g = randomize_weights(g, seed=1)
        assert close(bcc_apsp(g, peel=True), dijkstra_apsp(g))

    def test_pure_tree(self):
        g = randomize_weights(path_graph(9), seed=2)
        assert close(bcc_apsp(g), dijkstra_apsp(g))

    def test_two_pendants_same_support(self):
        g = CSRGraph(5, [0, 1, 2, 0, 0], [1, 2, 0, 3, 4], [1, 1, 1, 2, 3])
        d = bcc_apsp(g, peel=True)
        assert d[3, 4] == 5.0
        assert close(d, dijkstra_apsp(g))


class TestDjidjev:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_on_planar(self, seed):
        g = planar_graph(120, seed=seed)
        assert close(partition_apsp(g, k=4, seed=seed), dijkstra_apsp(g))

    @pytest.mark.parametrize("k", [2, 3, 8])
    def test_various_part_counts(self, k):
        g = randomize_weights(grid_graph(8, 8), seed=1)
        assert close(partition_apsp(g, k=k), dijkstra_apsp(g))

    def test_works_on_general_graphs_too(self):
        g = composite_graph(0)
        assert close(partition_apsp(g, k=3), dijkstra_apsp(g))

    def test_default_k(self):
        g = randomize_weights(grid_graph(6, 6), seed=2)
        assert close(partition_apsp(g), dijkstra_apsp(g))

    def test_disconnected_parts(self):
        g = CSRGraph(6, [0, 1, 3, 4], [1, 2, 4, 5], [1, 2, 1, 2])
        d = partition_apsp(g, k=2)
        assert np.isinf(d[0, 3])
        assert close(d, dijkstra_apsp(g))

    def test_empty_graph(self):
        assert partition_apsp(CSRGraph(0, [], [])).shape == (0, 0)


class TestDjidjevRecursive:
    def test_recursive_boundary_matches_flat(self):
        g = randomize_weights(grid_graph(10, 10), seed=5)
        flat = partition_apsp(g, k=5, seed=2)
        rec = partition_apsp(g, k=5, seed=2, recursive_threshold=12)
        assert close(rec, flat)
        assert close(rec, dijkstra_apsp(g))

    def test_threshold_larger_than_boundary_is_noop(self):
        g = randomize_weights(grid_graph(6, 6), seed=6)
        a = partition_apsp(g, k=3, seed=1)
        b = partition_apsp(g, k=3, seed=1, recursive_threshold=10_000)
        assert close(a, b)

    def test_recursion_guard_terminates(self):
        # pathological: everything is boundary; must not recurse forever
        from repro.graph import complete_graph

        g = complete_graph(12)
        d = partition_apsp(g, k=3, seed=0, recursive_threshold=2)
        assert close(d, dijkstra_apsp(g))
