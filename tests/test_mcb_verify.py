"""The basis verifier must catch every kind of broken basis."""

import numpy as np
import pytest

from repro.graph import complete_graph, cycle_graph
from repro.mcb import Cycle, depina_mcb, verify_cycle_basis


@pytest.fixture
def k4():
    return complete_graph(4)


def test_accepts_correct_basis(k4):
    rep = verify_cycle_basis(k4, depina_mcb(k4))
    assert rep.ok
    assert rep.dimension == rep.expected_dimension == 3
    assert rep.independent and rep.all_cycles_valid
    assert rep.total_weight == pytest.approx(9.0)


def test_rejects_wrong_cardinality(k4):
    basis = depina_mcb(k4)[:2]
    rep = verify_cycle_basis(k4, basis)
    assert not rep.ok
    assert "cardinality" in rep.message


def test_rejects_dependent_cycles(k4):
    basis = depina_mcb(k4)
    broken = [basis[0], basis[1], basis[0]]  # duplicate
    rep = verify_cycle_basis(k4, broken)
    assert not rep.ok and not rep.independent


def test_rejects_non_cycle_support(k4):
    basis = depina_mcb(k4)
    bogus = Cycle(np.array([0, 1]), 2.0)  # open path
    rep = verify_cycle_basis(k4, [basis[0], basis[1], bogus])
    assert not rep.ok
    assert not rep.all_cycles_valid


def test_empty_basis_of_forest():
    from repro.graph import path_graph

    rep = verify_cycle_basis(path_graph(4), [])
    assert rep.ok and rep.dimension == 0


def test_single_cycle_graph(ring):
    rep = verify_cycle_basis(ring, [Cycle(np.arange(ring.m), float(ring.m))])
    assert rep.ok


def test_weight_is_sum_of_reported_weights(k4):
    basis = depina_mcb(k4)
    rep = verify_cycle_basis(k4, basis)
    assert rep.total_weight == pytest.approx(sum(c.weight for c in basis))
