"""Feedback vertex set correctness and size sanity."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
)
from repro.mcb import greedy_fvs, is_feedback_vertex_set

from _support import composite_graph


@pytest.mark.parametrize("seed", range(6))
def test_fvs_property_on_composites(seed):
    g = composite_graph(seed)
    fvs = greedy_fvs(g)
    assert is_feedback_vertex_set(g, fvs)


def test_tree_has_empty_fvs():
    assert greedy_fvs(path_graph(10)).size == 0


def test_cycle_needs_one(ring):
    fvs = greedy_fvs(ring)
    assert fvs.size == 1
    assert is_feedback_vertex_set(ring, fvs)


def test_self_loop_vertex_forced():
    g = CSRGraph(3, [0, 1, 2], [1, 2, 2])
    fvs = greedy_fvs(g)
    assert 2 in fvs
    assert is_feedback_vertex_set(g, fvs)


def test_parallel_edges_need_coverage(multigraph):
    fvs = greedy_fvs(multigraph)
    assert is_feedback_vertex_set(multigraph, fvs)


def test_complete_graph_size():
    g = complete_graph(7)
    fvs = greedy_fvs(g)
    assert is_feedback_vertex_set(g, fvs)
    assert fvs.size == 5  # K_n needs exactly n-2


def test_grid_fvs_reasonable(grid):
    fvs = greedy_fvs(grid)
    assert is_feedback_vertex_set(grid, fvs)
    # grid has m-n+1 independent cycles; greedy should stay well below n
    assert fvs.size <= grid.n // 2


def test_is_fvs_detects_non_cover(ring):
    assert not is_feedback_vertex_set(ring, np.array([], dtype=np.int64))


def test_empty_graph():
    g = CSRGraph(3, [], [])
    assert greedy_fvs(g).size == 0
    assert is_feedback_vertex_set(g, np.array([], dtype=np.int64))
