"""Benchmark harness entry points and the repro-bench CLI (tiny scale)."""

import numpy as np
import pytest

from repro.bench import (
    Fig2Row,
    ear_speedup_by_impl,
    format_kv,
    format_table,
    geometric_mean,
    mteps,
    ratio_note,
    run_fig2,
    run_fig3,
    run_fig5,
    run_fig6,
    run_phase_breakdown,
    run_table1,
    run_table2,
    speedup,
)
from repro.cli import main

TINY = 0.012
FAST = ["nopoly", "as-22july06"]


class TestMetrics:
    def test_mteps_definition(self):
        assert mteps(1000, 5000, 2.0) == pytest.approx(2.5)

    def test_mteps_zero_time_raises(self):
        with pytest.raises(ValueError, match="positive time"):
            mteps(10, 10, 0.0)
        with pytest.raises(ValueError, match="positive time"):
            mteps(10, 10, -1.0)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_speedup_zero_time_raises(self):
        with pytest.raises(ValueError, match="positive time"):
            speedup(10.0, 0.0)

    def test_fig2row_speedup_zero_time_raises(self):
        row = Fig2Row(
            name="x", kind="general", n=1, m=1,
            t_ours=0.0, t_baseline=1.0, baseline="banerjee",
        )
        with pytest.raises(ValueError, match="positive time"):
            row.speedup

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert np.isnan(geometric_mean([]))
        assert geometric_mean([2.0, float("inf")]) == pytest.approx(2.0)

    def test_geomean(self):
        from repro.bench import geomean

        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([8.0]) == pytest.approx(8.0)

    def test_geomean_empty_raises(self):
        from repro.bench import geomean

        with pytest.raises(ValueError, match="at least one value"):
            geomean([])
        with pytest.raises(ValueError, match="at least one value"):
            geomean(iter(()))  # generators too, not just lists

    def test_geomean_rejects_nonpositive_and_nonfinite(self):
        from repro.bench import geomean

        with pytest.raises(ValueError, match="positive finite"):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError, match="positive finite"):
            geomean([1.0, -2.0])
        with pytest.raises(ValueError, match="positive finite"):
            geomean([1.0, float("inf")])

    def test_geometric_mean_is_the_lenient_wrapper(self):
        # The legacy helper filters junk and returns NaN instead of raising
        # — the behaviour summary printers rely on.
        assert geometric_mean([0.0, float("nan")]) is not None
        assert np.isnan(geometric_mean([0.0]))


class TestReporting:
    def test_format_table(self):
        out = format_table(["a", "bb"], [(1, 2.5), (3, 4.0)], title="T")
        assert "T" in out and "bb" in out and "2.5" in out

    def test_format_table_empty(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_format_table_empty_separator_matches_header_width(self):
        # With no body rows, the rule must still be as wide as the header.
        out = format_table(["wide-header", "x"], [])
        lines = out.splitlines()
        header = next(l for l in lines if "wide-header" in l)
        rules = [l for l in lines if l and set(l) <= {"-", "+"}]
        assert rules and all(len(r) == len(header) for r in rules)

    def test_format_table_ragged_row_raises_with_index(self):
        with pytest.raises(ValueError, match=r"row 1 has 3 cell\(s\), expected 2"):
            format_table(["a", "b"], [(1, 2), (3, 4, 5)])

    def test_format_table_short_row_raises(self):
        with pytest.raises(ValueError, match=r"row 0 has 1 cell\(s\), expected 3"):
            format_table(["a", "b", "c"], [(1,)])

    def test_format_kv(self):
        out = format_kv({"alpha": 1.5, "b": "x"})
        assert "alpha" in out and "1.5" in out

    def test_ratio_note(self):
        out = ratio_note("t", 2.0, 1.0)
        assert "0.50" in out


class TestHarness:
    def test_table1(self):
        rows = run_table1(scale=TINY, names=FAST)
        assert len(rows) == 2
        for r in rows:
            assert r.ours_mb <= r.max_mb + 1e-12

    def test_fig2_and_fig3(self):
        rows = run_fig2(scale=TINY, names=FAST + ["Planar_1"])
        assert {r.kind for r in rows} == {"general", "planar"}
        assert all(r.t_ours > 0 and r.t_baseline > 0 for r in rows)
        m = run_fig3(rows)
        assert all(d["mteps_ours"] > 0 for d in m)

    def test_table2_fig5_fig6(self):
        rows = run_table2(scale=TINY, names=FAST)
        assert all(r.basis_weight > 0 for r in rows)
        for r in rows:
            for p, (w, wo) in r.seconds.items():
                assert w > 0 and wo > 0
                assert wo >= w * 0.9  # ear never hurts much
        sp = run_fig5(rows)
        assert set(sp) == {"multicore", "gpu", "cpu+gpu"}
        ear = ear_speedup_by_impl(rows)
        assert ear["sequential"] >= 1.0
        fig6 = run_fig6(rows)
        assert len(fig6) == 2 and "cpu+gpu" in fig6[0]

    def test_phase_breakdown_sums_to_one(self):
        frac = run_phase_breakdown("as-22july06", scale=TINY)
        assert sum(frac.values()) == pytest.approx(1.0)
        assert frac["labels"] > frac["scan"] or frac["labels"] > 0.3


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1", "--scale", str(TINY), "--datasets", "nopoly"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2", "--scale", str(TINY), "--datasets", "nopoly", "--mteps"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "MTEPS" in out

    def test_table2(self, capsys):
        assert main(["table2", "--scale", str(TINY), "--datasets", "nopoly", "--fig6"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Figure 6" in out

    def test_phases(self, capsys):
        assert main(["phases", "--scale", str(TINY), "--datasets", "as-22july06"]) == 0
        assert "labels" in capsys.readouterr().out
