"""Algorithm 1: ear-reduced APSP and its post-processing formulas."""

import numpy as np
import pytest

from repro.apsp import EarAPSPReport, dijkstra_apsp, ear_apsp_full, extend_reduced_distances
from repro.decomposition import reduce_graph
from repro.graph import (
    CSRGraph,
    cycle_graph,
    grid_graph,
    path_graph,
    randomize_weights,
    subdivide_edges,
)
from repro.sssp import all_pairs

from _support import biconnected_weighted, close, composite_graph


@pytest.mark.parametrize("seed", range(8))
def test_exact_on_composites(seed):
    g = composite_graph(seed)
    assert close(ear_apsp_full(g), dijkstra_apsp(g))


@pytest.mark.parametrize("seed", range(4))
def test_exact_on_subdivided_biconnected(seed):
    g = subdivide_edges(biconnected_weighted(seed), 0.7, seed=seed, chain_length=(2, 5))
    assert close(ear_apsp_full(g), dijkstra_apsp(g))


def test_python_engine_agrees():
    g = composite_graph(0, n=15, m=22)
    assert close(ear_apsp_full(g, engine="python"), ear_apsp_full(g))


def test_pure_cycle():
    g = randomize_weights(cycle_graph(9), seed=1)
    assert close(ear_apsp_full(g), dijkstra_apsp(g))


def test_path_graph_everything_removed_but_ends():
    g = randomize_weights(path_graph(12), seed=2)
    assert close(ear_apsp_full(g), dijkstra_apsp(g))


def test_theta_graph_parallel_chains():
    # two vertices joined by three 2-hop chains with distinct weights
    g = CSRGraph(
        5,
        [0, 2, 0, 3, 0, 4],
        [2, 1, 3, 1, 4, 1],
        [1.0, 1.0, 2.0, 2.0, 0.5, 0.2],
    )
    d = ear_apsp_full(g)
    assert close(d, dijkstra_apsp(g))
    assert d[0, 1] == pytest.approx(0.7)  # via the cheap chain
    assert d[2, 4] == pytest.approx(1.2)  # crosses between chains via 1


def test_same_chain_direct_beats_crossing():
    # heavy anchors: path between interior nodes must go along the chain
    g = CSRGraph(
        6,
        [0, 1, 2, 3, 4, 5],
        [1, 2, 3, 4, 5, 0],
        [100.0, 1.0, 1.0, 1.0, 100.0, 100.0],
    )
    d = ear_apsp_full(g)
    assert d[2, 4] == pytest.approx(2.0)


def test_report_counts():
    g = subdivide_edges(biconnected_weighted(1), 0.5, seed=1)
    rep = EarAPSPReport()
    ear_apsp_full(g, report=rep)
    assert rep.n == g.n
    assert rep.n_reduced + rep.n_removed == g.n
    assert rep.total > 0
    assert rep.t_process >= 0 and rep.t_postprocess >= 0


def test_extend_reduced_distances_direct_call():
    g = subdivide_edges(randomize_weights(grid_graph(3, 3), seed=3), 0.6, seed=3)
    red = reduce_graph(g)
    s_r = all_pairs(red.simple_graph())
    full = extend_reduced_distances(red, s_r)
    assert close(full, dijkstra_apsp(g))
    assert (np.diag(full) == 0).all()


def test_extend_with_no_removed_vertices():
    from repro.graph import complete_graph

    g = complete_graph(5)
    red = reduce_graph(g)
    s_r = all_pairs(red.simple_graph())
    assert close(extend_reduced_distances(red, s_r), dijkstra_apsp(g))


def test_disconnected_components():
    g = CSRGraph(8, [0, 1, 2, 4, 5, 6], [1, 2, 0, 5, 6, 4], [1, 2, 3, 1, 1, 1])
    d = ear_apsp_full(g)
    assert np.isinf(d[0, 4])
    assert close(d, dijkstra_apsp(g))


def test_isolated_vertices():
    g = CSRGraph(5, [0, 1], [1, 2])
    d = ear_apsp_full(g)
    assert np.isinf(d[0, 4]) and d[4, 4] == 0.0


def test_matrix_is_symmetric():
    g = composite_graph(2)
    d = ear_apsp_full(g)
    assert np.allclose(np.nan_to_num(d, posinf=-1), np.nan_to_num(d.T, posinf=-1))
