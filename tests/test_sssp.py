"""All SSSP kernels against networkx and each other."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    cycle_graph,
    gnm_random_graph,
    grid_graph,
    path_graph,
    randomize_weights,
    to_networkx,
)
from repro.sssp import (
    FrontierStats,
    bellman_ford,
    delta_stepping,
    dijkstra,
    dijkstra_tree,
    frontier_sssp,
    frontier_sssp_batch,
    multi_source,
    shortest_path,
    spt_forest,
    sssp,
)

from _support import composite_graph

KERNELS = [dijkstra, bellman_ford, frontier_sssp, delta_stepping, sssp]


def nx_reference(g, source):
    G = to_networkx(g)
    ref = np.full(g.n, np.inf)
    for t, d in nx.single_source_dijkstra_path_length(G, source).items():
        ref[t] = d
    return ref


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("kernel", KERNELS, ids=lambda f: f.__name__)
def test_kernels_match_networkx(kernel, seed):
    g = randomize_weights(gnm_random_graph(50, 90, seed=seed, connected=(seed % 2 == 0)), seed=seed)
    ref = nx_reference(g, 0)
    got = kernel(g, 0)
    assert np.allclose(
        np.nan_to_num(got, posinf=-1), np.nan_to_num(ref, posinf=-1), atol=1e-9
    )


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda f: f.__name__)
def test_kernels_on_multigraph_with_loops(kernel, multigraph):
    ref = nx_reference(multigraph, 0)
    got = kernel(multigraph, 0)
    assert np.allclose(got, ref)


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda f: f.__name__)
def test_single_vertex(kernel):
    g = CSRGraph(1, [], [])
    assert kernel(g, 0)[0] == 0.0


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda f: f.__name__)
def test_unreachable_is_inf(kernel):
    g = CSRGraph(3, [0], [1])
    d = kernel(g, 0)
    assert np.isinf(d[2]) and d[1] == 1.0


@pytest.mark.parametrize("kernel", [dijkstra, bellman_ford, frontier_sssp, sssp])
def test_zero_weight_edges(kernel):
    g = CSRGraph(3, [0, 1], [1, 2], [0.0, 2.0])
    d = kernel(g, 0)
    # the compiled engine nudges explicit zeros to 1e-300 (documented)
    assert d[1] == pytest.approx(0.0, abs=1e-12) and d[2] == pytest.approx(2.0)


def test_dijkstra_early_exit():
    g = path_graph(100)
    d = dijkstra(g, 0, target=3)
    assert d[3] == 3.0  # exact up to the target


def test_dijkstra_tree_parents_consistent():
    g = randomize_weights(grid_graph(5, 5), seed=1)
    dist, parent, pedge = dijkstra_tree(g, 0)
    for v in range(1, g.n):
        p = int(parent[v])
        assert p >= 0
        u, w = g.edge_endpoints(int(pedge[v]))
        assert {v, p} == {u, w}
        assert np.isclose(dist[v], dist[p] + g.edge_w[pedge[v]])


def test_shortest_path_recovery():
    g = path_graph(6)
    d, path = shortest_path(g, 0, 5)
    assert d == 5.0 and path == [0, 1, 2, 3, 4, 5]


def test_shortest_path_unreachable():
    g = CSRGraph(3, [0], [1])
    d, path = shortest_path(g, 0, 2)
    assert np.isinf(d) and path == []


def test_frontier_stats_counters():
    g = grid_graph(10, 10)
    st = FrontierStats()
    frontier_sssp(g, 0, stats=st)
    assert st.launches > 0
    assert st.edges_relaxed > 0
    assert st.frontier_total >= g.n  # every vertex enters the frontier once+
    st2 = FrontierStats()
    st2.merge(st)
    assert st2.launches == st.launches


def test_frontier_batch_rows_match_single():
    g = randomize_weights(grid_graph(6, 6), seed=2)
    sources = np.array([0, 7, 35])
    batch = frontier_sssp_batch(g, sources)
    for i, s in enumerate(sources):
        assert np.allclose(batch[i], frontier_sssp(g, int(s)))


def test_multi_source_shape_and_rows():
    g = randomize_weights(grid_graph(4, 4), seed=3)
    src = np.array([3, 0])
    mat = multi_source(g, src)
    assert mat.shape == (2, g.n)
    assert np.allclose(mat[0], dijkstra(g, 3))
    assert np.allclose(mat[1], dijkstra(g, 0))


def test_multi_source_empty_inputs():
    assert multi_source(CSRGraph(3, [0], [1]), np.array([], dtype=int)).shape == (0, 3)
    assert multi_source(CSRGraph(0, [], []), np.array([], dtype=int)).shape == (0, 0)


def test_spt_forest_distances():
    g = composite_graph(0)
    src = np.arange(0, g.n, 7)
    dist, pred = spt_forest(g, src)
    for i, s in enumerate(src):
        assert np.allclose(
            np.nan_to_num(dist[i], posinf=-1),
            np.nan_to_num(dijkstra(g, int(s)), posinf=-1),
            atol=1e-9,
        )
        assert pred[i, s] < 0  # roots have the sentinel


def test_delta_stepping_delta_values():
    g = randomize_weights(grid_graph(5, 5), seed=4)
    ref = dijkstra(g, 0)
    for delta in (0.1, 0.5, 2.0, 100.0):
        assert np.allclose(delta_stepping(g, 0, delta=delta), ref)


def test_bellman_ford_round_cap():
    g = path_graph(10)
    # one round is not enough to settle the far end
    partial = bellman_ford(g, 0, max_rounds=1)
    assert partial[1] == 1.0
    full = bellman_ford(g, 0)
    assert full[9] == 9.0


def test_cycle_goes_both_ways():
    g = cycle_graph(10)
    d = dijkstra(g, 0)
    assert d[5] == 5.0 and d[9] == 1.0


class TestBidirectional:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_dijkstra(self, seed):
        from repro.sssp import bidirectional_dijkstra

        g = randomize_weights(
            gnm_random_graph(60, 110, seed=seed, connected=(seed % 2 == 0)), seed=seed
        )
        rng = np.random.default_rng(seed)
        ref_cache = {}
        for _ in range(25):
            s, t = map(int, rng.integers(0, g.n, 2))
            if s not in ref_cache:
                ref_cache[s] = dijkstra(g, s)
            d, path = bidirectional_dijkstra(g, s, t)
            r = ref_cache[s][t]
            if np.isinf(r):
                assert np.isinf(d) and path == []
                continue
            assert d == pytest.approx(r, abs=1e-9)
            assert path[0] == s and path[-1] == t
            total = sum(g.edge_weight(a, b) for a, b in zip(path[:-1], path[1:]))
            assert total == pytest.approx(d, abs=1e-9)

    def test_identity(self):
        from repro.sssp import bidirectional_dijkstra

        g = grid_graph(3, 3)
        assert bidirectional_dijkstra(g, 4, 4) == (0.0, [4])

    def test_adjacent(self):
        from repro.sssp import bidirectional_dijkstra

        g = path_graph(4)
        d, path = bidirectional_dijkstra(g, 1, 2)
        assert d == 1.0 and path == [1, 2]

    def test_disconnected(self):
        from repro.sssp import bidirectional_dijkstra

        g = CSRGraph(4, [0, 2], [1, 3])
        d, path = bidirectional_dijkstra(g, 0, 3)
        assert np.isinf(d) and path == []


class TestParentChainGuard:
    """``shortest_path`` must fail loudly on a corrupted parent array
    instead of walking it forever."""

    def test_cycle_in_parents_raises(self, monkeypatch):
        from repro.graph.csr import GraphError
        import importlib

        dj = importlib.import_module("repro.sssp.dijkstra")

        g = path_graph(4)
        dist = np.array([0.0, 1.0, 2.0, 3.0])
        parent = np.array([-1, 2, 1, 2])  # 1 <-> 2 cycle, never reaches 0
        monkeypatch.setattr(
            dj, "dijkstra_tree", lambda g_, s: (dist, parent, parent.copy())
        )
        with pytest.raises(GraphError, match="exceeds"):
            dj.shortest_path(g, 0, 3)

    def test_premature_minus_one_raises(self, monkeypatch):
        from repro.graph.csr import GraphError
        import importlib

        dj = importlib.import_module("repro.sssp.dijkstra")

        g = path_graph(4)
        dist = np.array([0.0, 1.0, 2.0, 3.0])
        parent = np.array([-1, 0, -1, 2])  # chain from 3 dead-ends at 2
        monkeypatch.setattr(
            dj, "dijkstra_tree", lambda g_, s: (dist, parent, parent.copy())
        )
        with pytest.raises(GraphError, match="hit -1"):
            dj.shortest_path(g, 0, 3)

    def test_healthy_tree_unaffected(self):
        from repro.sssp.dijkstra import shortest_path

        g = path_graph(5)
        d, path = shortest_path(g, 0, 4)
        assert d == 4.0 and path == [0, 1, 2, 3, 4]
