"""Smaller units: engine internals, chains, reports, platform lifecycle."""

import numpy as np
import pytest

from repro.apsp.ear_apsp import EarAPSPReport
from repro.decomposition import reduce_graph
from repro.graph import CSRGraph, cycle_graph, path_graph, subdivide_edges
from repro.hetero import Platform
from repro.mcb import EarMCBReport
from repro.sssp import adjacency_matrix


class TestEngineInternals:
    def test_zero_weight_nudge(self):
        g = CSRGraph(2, [0], [1], [0.0])
        mat = adjacency_matrix(g)
        assert mat[0, 1] == 1e-300  # explicit zero kept as tiny epsilon

    def test_parallel_edges_take_min(self):
        g = CSRGraph(2, [0, 0], [1, 1], [5.0, 2.0])
        assert adjacency_matrix(g)[0, 1] == 2.0

    def test_self_loops_dropped(self):
        g = CSRGraph(2, [0, 0], [0, 1], [1.0, 3.0])
        mat = adjacency_matrix(g)
        assert mat[0, 0] == 0.0 and mat[0, 1] == 3.0


class TestChainProperties:
    def test_chain_accessors(self):
        g = CSRGraph(4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
        red = reduce_graph(g)
        chain = red.chains[0]
        assert chain.left == 0 and chain.right == 3
        assert chain.weight == pytest.approx(6.0)
        assert list(chain.interior) == [1, 2]
        assert len(chain) == 3

    def test_loop_chain_interior(self, ring):
        red = reduce_graph(ring)
        chain = red.chains[0]
        assert chain.left == chain.right
        assert chain.interior.size == ring.n - 1


class TestReports:
    def test_ear_apsp_report_total(self):
        rep = EarAPSPReport(t_preprocess=1.0, t_process=2.0, t_postprocess=3.0)
        assert rep.total == pytest.approx(6.0)

    def test_ear_mcb_report_total(self):
        rep = EarMCBReport(t_decompose=1.0, t_reduce=0.5, t_solve=2.0, t_expand=0.25)
        assert rep.total == pytest.approx(3.75)


class TestPlatformLifecycle:
    def test_total_time_and_reset(self):
        plat = Platform.heterogeneous()
        assert plat.total_time == 0.0
        plat.devices[0].clock.advance(1.5)
        assert plat.total_time == pytest.approx(1.5)
        plat.reset()
        assert plat.total_time == 0.0

    def test_empty_platform_total_time(self):
        assert Platform("x", []).total_time == 0.0


class TestReduceEdgeCases:
    def test_two_vertex_parallel_pair(self):
        g = CSRGraph(2, [0, 0], [1, 1], [1.0, 2.0])
        red = reduce_graph(g)
        red.validate()
        # both endpoints have degree 2 but the pair forms a pure 2-cycle:
        # one anchor is promoted and the other contracts into a loop... or
        # both stay; either way the structure must validate and preserve
        # the cycle dimension.
        assert red.graph.cycle_space_dimension() == 1

    def test_subdivided_loop_chain_distances(self):
        # ring with an attached spoke: the ring contracts to a self-loop
        # at the attachment vertex
        g = CSRGraph(5, [0, 1, 2, 3, 0], [1, 2, 3, 0, 4], [1, 1, 1, 1, 5.0])
        red = reduce_graph(g)
        red.validate()
        assert red.kept_mask[0] and red.kept_mask[4]
        loop_edges = [
            e for e in range(red.graph.m)
            if red.graph.edge_u[e] == red.graph.edge_v[e]
        ]
        assert len(loop_edges) == 1
        assert red.graph.edge_w[loop_edges[0]] == pytest.approx(4.0)

    def test_reduce_of_subdivided_path_keeps_ends(self):
        g = subdivide_edges(path_graph(2), 1.0, seed=1, chain_length=(3, 3))
        red = reduce_graph(g)
        assert red.graph.n == 2 and red.graph.m == 1
        assert red.graph.edge_w[0] == pytest.approx(1.0)
