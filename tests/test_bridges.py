"""Bridges / 2-edge-connected components vs networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.decomposition import (
    ear_decomposition,
    find_bridges,
    is_two_edge_connected,
    two_edge_connected_components,
)
from repro.graph import CSRGraph, cycle_graph, grid_graph, path_graph, to_networkx

from _support import composite_graph


@pytest.mark.parametrize("seed", range(6))
def test_bridges_match_networkx(seed):
    g = composite_graph(seed)
    G = to_networkx(g)
    if G.is_multigraph():
        G = nx.Graph(G)
        # multigraph parallels make pairwise comparison ambiguous; compare
        # on the simplified graph instead
        from repro.graph import from_networkx

        g = from_networkx(G)
    mask = find_bridges(g)
    ours = {
        (min(int(g.edge_u[e]), int(g.edge_v[e])), max(int(g.edge_u[e]), int(g.edge_v[e])))
        for e in np.nonzero(mask)[0]
    }
    theirs = {(min(u, v), max(u, v)) for u, v in nx.bridges(G)}
    assert ours == theirs


def test_path_all_bridges():
    g = path_graph(6)
    assert find_bridges(g).all()


def test_cycle_no_bridges(ring):
    assert not find_bridges(ring).any()


def test_parallel_edges_not_bridges():
    g = CSRGraph(3, [0, 0, 1], [1, 1, 2])
    mask = find_bridges(g)
    assert not mask[0] and not mask[1]
    assert mask[2]


def test_self_loop_not_bridge():
    g = CSRGraph(2, [0, 0], [0, 1])
    mask = find_bridges(g)
    assert not mask[0] and mask[1]


def test_two_ecc_labels():
    # two triangles joined by a bridge
    g = CSRGraph(6, [0, 1, 2, 2, 3, 4, 5], [1, 2, 0, 3, 4, 5, 3])
    dec = two_edge_connected_components(g)
    assert dec.count == 2
    assert dec.component[0] == dec.component[1] == dec.component[2]
    assert dec.component[3] == dec.component[4] == dec.component[5]
    assert dec.component[0] != dec.component[3]
    assert len(dec.bridges) == 1


def test_is_two_edge_connected_matches_ear_existence():
    from repro.graph import GraphError, random_biconnected_graph

    for g in (cycle_graph(5), grid_graph(3, 3), random_biconnected_graph(12, 8, seed=1)):
        assert is_two_edge_connected(g)
        ear_decomposition(g)  # must not raise
    for g in (path_graph(4), CSRGraph(4, [0, 2], [1, 3])):
        assert not is_two_edge_connected(g)
        with pytest.raises(GraphError):
            ear_decomposition(g)


def test_trivial_graphs():
    assert is_two_edge_connected(CSRGraph(1, [], []))
    assert is_two_edge_connected(CSRGraph(0, [], []))
    assert not is_two_edge_connected(CSRGraph(2, [], []))
