"""Bit-identity of the vectorized bulk-query fast paths.

The vectorized ``query_many`` kernels must return *bit-identical* results
to the scalar ``query`` loop (kept as ``query_many_scalar``) — same
lookups, same minimum sets, same floating-point association order — on
the full adversarial corpus, including disconnected graphs, self-loop
blocks, and single-chain cycles.  The corpus seed is the session
``--repro-seed``, so failures replay exactly.

The same paths are enrolled in the differential registry as
``oracle-bulk`` / ``reduced-oracle-bulk``, which additionally checks the
full matrices against the scipy Dijkstra reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apsp.oracle import DistanceOracle
from repro.apsp.reduced_oracle import ReducedDistanceOracle
from repro.graph import cycle_graph
from repro.obs import metrics
from repro.qa import strategies
from repro.qa.differential import APSP_REGISTRY, run_apsp_differential

pytestmark = pytest.mark.qa

CORPUS_COUNT = 60

ORACLES = [
    pytest.param(DistanceOracle, id="oracle"),
    pytest.param(ReducedDistanceOracle, id="reduced-oracle"),
]


def _pairs_for(n: int, seed: int) -> np.ndarray:
    """Exhaustive pairs for small graphs, a random sample otherwise."""
    if n <= 25:
        uu, vv = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        return np.column_stack([uu.ravel(), vv.ravel()]).astype(np.int64)
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=(600, 2), dtype=np.int64)


def assert_bit_identical(oracle_cls, g, name: str, seed: int) -> None:
    o = oracle_cls(g)
    pairs = _pairs_for(g.n, seed)
    got = o.query_many(pairs)
    want = o.query_many_scalar(pairs)
    assert np.array_equal(got, want), (
        f"{oracle_cls.__name__} on {name}: "
        f"{int(np.sum(got != want))} of {len(pairs)} pairs differ"
    )


@pytest.mark.parametrize("oracle_cls", ORACLES)
class TestBitIdentity:
    def test_corpus(self, oracle_cls, repro_seed):
        for name, g in strategies.corpus(count=CORPUS_COUNT, seed=repro_seed):
            if g.n == 0:
                continue
            assert_bit_identical(oracle_cls, g, name, repro_seed)

    def test_single_chain_cycle(self, oracle_cls, repro_seed):
        # A pure cycle reduces to one chain whose endpoints coincide — the
        # degenerate same-chain case where both closed-form anchors alias.
        for n in (3, 4, 7, 12):
            assert_bit_identical(oracle_cls, cycle_graph(n), f"cycle-{n}", repro_seed)

    def test_disconnected(self, oracle_cls, repro_seed):
        g = strategies.disconnected_graph(3, 5, isolated=2, seed=repro_seed)
        assert_bit_identical(oracle_cls, g, "disconnected", repro_seed)

    def test_star_of_cycles(self, oracle_cls, repro_seed):
        # Articulation-point-heavy: every cross-arm pair routes through
        # the hub's boundary articulation points.
        g = strategies.star_of_cycles(arms=4, cycle_len=5, seed=repro_seed)
        assert_bit_identical(oracle_cls, g, "star-of-cycles", repro_seed)

    def test_empty_pairs(self, oracle_cls):
        o = oracle_cls(strategies.theta_graph(3, 4, seed=0))
        out = o.query_many(np.empty((0, 2), dtype=np.int64))
        assert out.shape == (0,)


class TestRegistry:
    def test_bulk_paths_enrolled(self):
        assert "oracle-bulk" in APSP_REGISTRY
        assert "reduced-oracle-bulk" in APSP_REGISTRY

    def test_bulk_paths_agree_with_reference(self, repro_seed):
        graphs = strategies.corpus(count=20, seed=repro_seed)
        report = run_apsp_differential(
            graphs, impls=["dijkstra-scipy", "oracle-bulk", "reduced-oracle-bulk"]
        )
        assert report.ok, report.summary()


class TestCounters:
    def test_pair_classification_counters(self):
        g = strategies.star_of_cycles(arms=3, cycle_len=4, seed=5)
        o = DistanceOracle(g)
        pairs = _pairs_for(g.n, seed=5)
        before = metrics.counter("bulk_query.pairs").value
        o.query_many(pairs)
        assert metrics.counter("bulk_query.pairs").value - before == len(pairs)

    def test_delta_stepping_counters(self):
        g = strategies.theta_graph(3, 5, seed=7)
        before = metrics.counter("delta.edges_relaxed").value
        from repro.sssp.delta_stepping import delta_stepping

        delta_stepping(g, 0)
        assert metrics.counter("delta.edges_relaxed").value > before


class TestDeltaSteppingWeighted:
    """Delta-stepping vs the engine on explicitly re-weighted graphs."""

    @pytest.mark.parametrize("mode", ["ties", "few", "near-zero"])
    def test_weighted_corpus(self, mode, repro_seed):
        from repro.sssp import engine
        from repro.sssp.delta_stepping import delta_stepping

        for name, g in strategies.corpus(count=25, seed=repro_seed):
            if g.n == 0 or g.m == 0:
                continue
            gw = strategies.reweighted(g, mode, seed=repro_seed)
            np.testing.assert_allclose(
                delta_stepping(gw, 0),
                engine.sssp(gw, 0),
                rtol=1e-9,
                atol=1e-12,
                err_msg=f"{name} ({mode})",
            )
