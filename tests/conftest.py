"""Shared fixtures for the test suite."""

from __future__ import annotations

import hashlib
import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.graph import CSRGraph, cycle_graph, grid_graph


# ------------------------------------------------------------------ #
# Session seed: every randomized test derives its rng from one seed
# that is printed in the header and on failures, so any run can be
# reproduced with ``pytest --repro-seed=<N>``.
# ------------------------------------------------------------------ #


def pytest_addoption(parser):
    parser.addoption(
        "--repro-seed",
        type=int,
        default=None,
        help="session seed for randomized tests (default: drawn from os.urandom)",
    )


def pytest_configure(config):
    seed = config.getoption("--repro-seed")
    if seed is None:
        env = os.environ.get("REPRO_SEED")
        seed = int(env) if env else int.from_bytes(os.urandom(4), "little")
    config._repro_seed = int(seed)


def pytest_report_header(config):
    return f"repro-seed: {config._repro_seed} (rerun with --repro-seed={config._repro_seed})"


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    rep = outcome.get_result()
    if rep.when == "call" and rep.failed:
        seed = getattr(item.config, "_repro_seed", None)
        if seed is not None:
            rep.sections.append(
                (
                    "repro seed",
                    f"session seed {seed} — rerun this test with "
                    f"pytest --repro-seed={seed} {item.nodeid!r}",
                )
            )


def derive_seed(session_seed: int, name: str) -> int:
    """Stable per-test seed: a digest of the session seed and the test id."""
    h = hashlib.blake2b(f"{session_seed}:{name}".encode(), digest_size=8)
    return int.from_bytes(h.digest()[:4], "little")


@pytest.fixture(scope="session")
def repro_seed(request) -> int:
    """The session-wide seed behind every randomized test."""
    return request.config._repro_seed


@pytest.fixture
def test_seed(request, repro_seed) -> int:
    """A per-test seed derived from the session seed and the test's nodeid."""
    return derive_seed(repro_seed, request.node.nodeid)


@pytest.fixture
def rng(test_seed) -> np.random.Generator:
    """A per-test numpy generator reproducible from ``--repro-seed``."""
    return np.random.default_rng(test_seed)


# ------------------------------------------------------------------ #
# Shared graphs
# ------------------------------------------------------------------ #


@pytest.fixture
def grid():
    return grid_graph(5, 6)


@pytest.fixture
def ring():
    return cycle_graph(8)


@pytest.fixture
def multigraph():
    """Multigraph with parallel edges and self-loops (weights chosen so the
    MCB is computable by hand: loop 0.5, parallel pair 3.0, square 4.0)."""
    return CSRGraph(
        4,
        [0, 0, 1, 2, 3, 0],
        [1, 1, 2, 3, 0, 0],
        [1.0, 2.0, 1.0, 1.0, 1.0, 0.5],
    )
