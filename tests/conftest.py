"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.graph import CSRGraph, cycle_graph, grid_graph


@pytest.fixture
def grid():
    return grid_graph(5, 6)


@pytest.fixture
def ring():
    return cycle_graph(8)


@pytest.fixture
def multigraph():
    """Multigraph with parallel edges and self-loops (weights chosen so the
    MCB is computable by hand: loop 0.5, parallel pair 3.0, square 4.0)."""
    return CSRGraph(
        4,
        [0, 0, 1, 2, 3, 0],
        [1, 1, 2, 3, 0, 0],
        [1.0, 2.0, 1.0, 1.0, 1.0, 0.5],
    )
