"""repro.obs.report: the single-file HTML run report (REPORT_SECTIONS).

Every section must render (data or explicit "no data" note) from any
subset of inputs, the emitted document must pass ``validate_report`` (the
CI smoke contract: doctype, one anchor per section, balanced tags, no
network references), and the CLI must assemble reports from a ledgered
run's ``events_dir``/``trace_path``/``profile_dir`` meta alone.
"""

from __future__ import annotations

import json

from repro.obs.ledger import RunRecord
from repro.obs.report import (
    REPORT_SECTIONS,
    build_report,
    validate_report,
    write_report,
)


def _trace_doc():
    return {
        "traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "repro (parent)"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "tid 0"}},
            {"name": "preprocess", "cat": "apsp", "ph": "X",
             "ts": 0.0, "dur": 500.0, "pid": 1, "tid": 0},
            {"name": "sssp.chunk", "cat": "sssp", "ph": "X",
             "ts": 100.0, "dur": 200.0, "pid": 1, "tid": 0},
            {"name": "process_name", "ph": "M", "pid": 9_999_999, "tid": 0,
             "args": {"name": "virtual platform"}},
            {"name": "thread_name", "ph": "M", "pid": 9_999_999, "tid": 0,
             "args": {"name": "virtual gpu"}},
            {"name": "dijkstra", "cat": "virtual", "ph": "X",
             "ts": 0.0, "dur": 300.0, "pid": 9_999_999, "tid": 0},
        ]
    }


def _events():
    return [
        {"v": 1, "seq": 0, "ts_ns": 10, "pid": 1, "kind": "phase.start",
         "phase": "process", "cat": "apsp"},
        {"v": 1, "seq": 1, "ts_ns": 20, "pid": 1, "kind": "queue.grab",
         "end": "back", "batch": 3, "device": "gpu", "remaining": 5},
        {"v": 1, "seq": 2, "ts_ns": 30, "pid": 2, "kind": "worker.heartbeat",
         "status": "chunk_done"},
        {"v": 1, "seq": 3, "ts_ns": 40, "pid": 1, "kind": "phase.finish",
         "phase": "process", "cat": "apsp"},
    ]


def _record(**over):
    rec = RunRecord(
        kind="profile",
        phases={"preprocess": 0.1, "process": 0.5},
        git_sha="abcdef1234567890",
        counters={"engine.chunks_dispatched": 23, "queue.grabs.back": 4},
        memory={
            "gauges": {"memory.apsp.oracle_bytes": 1000.0,
                       "memory.apsp.dense_bytes": 2000.0},
            "table1_model": {"component_bytes": 900, "ap_bytes": 100,
                             "oracle_bytes": 1000, "reduced_oracle_bytes": 800,
                             "dense_bytes": 2000},
            "spans": {"apsp.process": {"count": 1, "delta_bytes": 1024,
                                       "peak_bytes": 4096,
                                       "rss_peak_bytes": None}},
        },
        meta={"workload": "apsp", "dataset": "OPF_3754"},
    )
    for k, v in over.items():
        setattr(rec, k, v)
    return rec


class TestBuildReport:
    def test_empty_inputs_still_yield_all_sections(self):
        doc = build_report()
        assert validate_report(doc) == []
        for name in REPORT_SECTIONS:
            assert f'id="section-{name}"' in doc
        assert doc.count("nodata") >= 4  # explicit notes, not silence

    def test_full_inputs_render_data(self):
        history = [
            _record(phases={"preprocess": 0.1, "process": 0.5 + 0.01 * i})
            for i in range(5)
        ]
        doc = build_report(
            title="test run",
            trace=_trace_doc(),
            events=_events(),
            record=history[-1],
            history=history,
        )
        assert validate_report(doc) == []
        assert "preprocess" in doc          # waterfall bars
        assert "virtual platform occupancy" in doc
        assert "queue · gpu" in doc         # timeline device lane
        assert "worker pid 2" in doc        # heartbeat lane
        assert "a² + Σ nᵢ²" in doc          # memory shape line
        assert "engine.chunks_dispatched" in doc
        assert 'class="spark"' in doc       # history sparklines
        assert "regression gate" in doc

    def test_profile_section_renders_top_stacks(self):
        profile = {
            ("main.py:main", "engine.py:all_pairs", "numeric.py:min"): 40,
            ("main.py:main", "oracle.py:query_many"): 10,
        }
        doc = build_report(profile=profile)
        assert validate_report(doc) == []
        assert "numeric.py:min" in doc      # hottest leaf frame
        assert "50" in doc                  # total sample count
        rec = _record(meta={"workload": "apsp", "profile_dir": "/tmp/prof"})
        doc = build_report(record=rec)      # no samples: explicit note
        assert validate_report(doc) == []
        assert 'id="section-profile"' in doc

    def test_exemplar_panel_renders_tail_queries(self):
        rec = _record(
            exemplars=[
                {"metric": "query", "dur_s": 0.004, "rank": 1, "pid": 7,
                 "ts_ns": 100, "u": 3, "v": 9, "pair_class": "cross-bcc",
                 "resolver": "ap-bridge", "component": -1,
                 "boundary_aps": [2, 5], "digest": "abc123def456"},
                {"metric": "query", "dur_s": 0.001, "rank": 2, "pid": 7,
                 "ts_ns": 200, "u": 1, "v": 2, "pair_class": "same-bcc",
                 "resolver": "table", "component": 0,
                 "boundary_aps": None, "digest": "fed654cba321"},
            ]
        )
        doc = build_report(record=rec)
        assert validate_report(doc) == []
        assert "cross-bcc" in doc
        assert "ap-bridge" in doc
        assert "abc123def456" in doc
        assert "(2, 5)" in doc              # boundary APs attribution

    def test_history_regression_verdict_flags_slowdown(self):
        history = [_record(phases={"process": 0.1}) for _ in range(6)]
        history.append(_record(phases={"process": 10.0}))  # 100x slower
        doc = build_report(history=history)
        assert "CONFIRMED REGRESSION" in doc

    def test_escapes_hostile_names(self):
        evil = {"traceEvents": [
            {"name": "<script>alert(1)</script>", "ph": "X",
             "ts": 0.0, "dur": 10.0, "pid": 1, "tid": 0},
        ]}
        doc = build_report(trace=evil)
        assert "<script>alert" not in doc
        assert "&lt;script&gt;" in doc


class TestValidateReport:
    def test_catches_missing_section(self):
        doc = build_report().replace('id="section-memory"', 'id="section-mem"')
        assert any("section-memory" in p for p in validate_report(doc))

    def test_catches_external_resources(self):
        doc = build_report().replace(
            "</body>", '<img src="http://evil.example/x.png"></body>'
        )
        assert any("external" in p for p in validate_report(doc))

    def test_catches_missing_doctype(self):
        assert any(
            "doctype" in p for p in validate_report("<html></html>")
        )


class TestWriteReport:
    def test_writes_single_file(self, tmp_path):
        out = tmp_path / "r.html"
        write_report(out, events=_events())
        doc = out.read_text()
        assert validate_report(doc) == []


class TestReportCLI:
    def test_report_from_ledger_meta(self, tmp_path, capsys):
        """`repro-bench report --ledger X` locates the run's trace and
        events from the ledgered record's meta alone."""
        from repro.cli import main
        from repro.obs.events import events_to
        from repro.obs.ledger import Ledger

        trace_path = tmp_path / "t.json"
        trace_path.write_text(json.dumps(_trace_doc()))
        ev_dir = tmp_path / "ev"
        with events_to(ev_dir):
            from repro.obs.events import emit

            emit("queue.grab", end="front", batch=1, device="cpu", remaining=0)
        ledger = Ledger(tmp_path / "ledger.jsonl")
        rec = _record()
        rec.meta["trace_path"] = str(trace_path)
        rec.meta["events_dir"] = str(ev_dir)
        ledger.append(rec)
        out = tmp_path / "report.html"
        rc = main([
            "report", "--ledger", str(tmp_path / "ledger.jsonl"),
            "--out", str(out),
        ])
        assert rc == 0
        doc = out.read_text()
        assert validate_report(doc) == []
        assert "queue · cpu" in doc           # events were found via meta
        assert "apsp on OPF_3754" in doc      # title from the record

    def test_report_with_no_inputs_still_valid(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        monkeypatch.chdir(tmp_path)
        rc = main(["report", "--out", "r.html"])
        assert rc == 0
        assert validate_report((tmp_path / "r.html").read_text()) == []

    def test_old_reader_tolerates_new_meta_fields(self, tmp_path):
        # The events_dir/trace_path meta keys ride in the free-form meta
        # dict: a reader that ignores them still parses the record.
        rec = _record()
        rec.meta["events_dir"] = "/somewhere"
        rec.meta["future_field"] = {"nested": True}
        doc = rec.to_dict()
        parsed = RunRecord.from_dict(json.loads(json.dumps(doc)))
        assert parsed.phases == rec.phases
        assert parsed.meta["events_dir"] == "/somewhere"
