"""Degree-2 chain contraction: structure, anchors, distances."""

import numpy as np
import pytest

from repro.decomposition import reduce_graph
from repro.graph import (
    CSRGraph,
    GraphError,
    cycle_graph,
    grid_graph,
    path_graph,
    randomize_weights,
    subdivide_edges,
)
from repro.sssp import dijkstra

from _support import biconnected_weighted, composite_graph


@pytest.mark.parametrize("seed", range(6))
def test_validate_on_composites(seed):
    red = reduce_graph(composite_graph(seed))
    red.validate()


@pytest.mark.parametrize("seed", range(4))
def test_validate_on_subdivided_biconnected(seed):
    g = subdivide_edges(biconnected_weighted(seed), 0.6, seed=seed)
    red = reduce_graph(g)
    red.validate()
    assert red.n_removed > 0


def test_no_degree2_is_identity_like():
    from repro.graph import complete_graph

    g = complete_graph(6)  # all degrees 5
    red = reduce_graph(g)
    assert red.n_removed == 0
    assert red.graph.n == g.n
    assert red.graph.m == g.m
    red.validate()


def test_all_interior_removed():
    base = grid_graph(4, 4)
    g = subdivide_edges(base, 0.8, seed=1)
    red = reduce_graph(g)
    # every inserted vertex plus the grid's four degree-2 corners go
    n_corners = int((base.degree == 2).sum())
    assert red.n_removed == (g.n - base.n) + n_corners
    assert red.removal_fraction == pytest.approx(red.n_removed / g.n)


def test_chain_weight_equals_edge_weight():
    g = randomize_weights(subdivide_edges(grid_graph(3, 3), 1.0, seed=2), seed=2)
    red = reduce_graph(g)
    for eid, chain in enumerate(red.chains):
        assert np.isclose(chain.weight, red.graph.edge_w[eid])
        assert np.isclose(chain.weight, g.edge_w[chain.edges].sum())


def test_anchor_distances():
    # path a - x1 - x2 - b with explicit weights
    g = CSRGraph(4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 4.0])
    red = reduce_graph(g)
    # endpoints have degree 1, interior degree 2
    assert not red.kept_mask[1] and not red.kept_mask[2]
    assert red.dist_left[1] == 1.0 and red.dist_right[1] == 6.0
    assert red.dist_left[2] == 3.0 and red.dist_right[2] == 4.0
    assert red.left_anchor(1) == 0 and red.right_anchor(2) == 3


def test_pure_cycle_becomes_self_loop(ring):
    red = reduce_graph(ring)
    red.validate()
    assert red.graph.n == 1
    assert red.graph.m == 1
    assert red.graph.has_self_loops
    assert np.isclose(red.graph.edge_w[0], ring.total_weight)


def test_two_disjoint_cycles():
    g = CSRGraph(6, [0, 1, 2, 3, 4, 5], [1, 2, 0, 4, 5, 3])
    red = reduce_graph(g)
    red.validate()
    assert red.graph.n == 2 and red.graph.m == 2
    assert red.graph.has_self_loops


def test_parallel_chains_become_multigraph():
    # theta graph: two vertices joined by three chains of degree-2 nodes
    edges = []
    nxt = 2
    for _ in range(3):
        edges.append((0, nxt))
        edges.append((nxt, 1))
        nxt += 1
    g = CSRGraph(5, [e[0] for e in edges], [e[1] for e in edges])
    red = reduce_graph(g)
    red.validate()
    assert red.graph.n == 2
    assert red.graph.m == 3
    assert red.graph.has_parallel_edges


def test_loop_vertex_always_kept():
    # degree-2 vertex whose edges are a single self-loop
    g = CSRGraph(3, [0, 1, 1], [1, 2, 1])
    red = reduce_graph(g)
    red.validate()
    assert red.kept_mask[1]


def test_keep_pinning():
    g = path_graph(5)
    keep = np.zeros(5, dtype=bool)
    keep[2] = True  # pin the middle vertex
    red = reduce_graph(g, keep=keep)
    red.validate()
    assert red.kept_mask[2]
    assert red.graph.n == 3  # endpoints + pinned middle


def test_keep_mask_wrong_shape_rejected(grid):
    with pytest.raises(GraphError):
        reduce_graph(grid, keep=np.zeros(3, dtype=bool))


def test_simple_graph_view_caches():
    g = subdivide_edges(cycle_graph(4), 1.0, seed=3)
    red = reduce_graph(g)
    assert red.simple_graph() is red.simple_graph()


def test_reduced_graph_preserves_kept_distances():
    for seed in range(4):
        g = subdivide_edges(biconnected_weighted(seed, n=20, extra=12), 0.5, seed=seed)
        red = reduce_graph(g)
        simple = red.simple_graph()
        # distance between kept vertices is identical in G and G^r
        src_r = 0
        src_g = int(red.kept_ids[src_r])
        d_r = dijkstra(simple, src_r)
        d_g = dijkstra(g, src_g)
        for r_id, g_id in enumerate(red.kept_ids):
            assert np.isclose(d_r[r_id], d_g[g_id], atol=1e-9), (seed, g_id)


def test_expand_cycle_concatenates_chains():
    g = subdivide_edges(cycle_graph(5), 1.0, seed=4)
    red = reduce_graph(g)
    eids = red.expand_cycle(np.arange(red.graph.m))
    assert sorted(eids.tolist()) == list(range(g.m))
    assert red.expand_cycle([]).size == 0


def test_isolated_vertices_kept():
    g = CSRGraph(4, [0], [1])
    red = reduce_graph(g)
    red.validate()
    assert red.kept_mask[2] and red.kept_mask[3]
