"""Opt-in smoke benchmark guard (``REPRO_BENCH_SMOKE=1 pytest -m benchsmoke``).

Runs ``scripts/bench_smoke.py`` at a tiny scale and checks the performance
claims the engine work is built on: the cached + chunked bulk path beats
rebuilding the adjacency per source by at least 2x, and the parallel
backend stays bit-identical (it only has to *win* when the host actually
has a second core).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

pytestmark = [
    pytest.mark.benchsmoke,
    pytest.mark.skipif(
        os.environ.get("REPRO_BENCH_SMOKE") != "1",
        reason="smoke benchmark is opt-in (REPRO_BENCH_SMOKE=1)",
    ),
]


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "BENCH_BASELINE.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [
            sys.executable,
            str(ROOT / "scripts" / "bench_smoke.py"),
            "--scale",
            "0.02",
            "--out",
            str(out),
            "--ledger",
            str(out.parent / "ledger.jsonl"),
        ],
        check=True,
        env=env,
        timeout=600,
    )
    return json.loads(out.read_text())


def test_cache_and_chunking_speedup(baseline):
    rs = baseline["repeated_sssp"]
    assert rs["cache"]["misses"] <= 1
    assert rs["speedup"] >= 2.0


def test_parallel_backend(baseline):
    pl = baseline["parallel"]
    assert pl["bit_identical"]
    if pl["host_cores"] >= 2 and pl["pool_live"]:
        assert pl["speedup"] > 1.0


def test_bulk_query_fast_path(baseline):
    bq = baseline["bulk_query"]
    assert bq["bit_identical"]
    assert bq["speedup"] >= 10.0
    assert {"smoke.bulk_query.scalar", "smoke.bulk_query.vectorized"} <= set(
        baseline["phases"]
    )


def test_sampler_overhead_section(baseline):
    sp = baseline["sampler"]
    assert sp["samples"] > 0
    assert sp["disabled_s"] > 0 and sp["enabled_s"] > 0
    assert {"smoke.sampler.disabled", "smoke.sampler.enabled"} <= set(
        baseline["phases"]
    )
    # The < 5% contract holds where the sampler thread gets its own
    # core; on a single-core host scheduler churn swamps the signal
    # (see bench_sampler_overhead's docstring), so judge presence only.
    if baseline["parallel"]["host_cores"] >= 2:
        assert sp["overhead_frac"] < 0.05


def test_paper_rows_present(baseline):
    assert {r["name"] for r in baseline["fig2"]} == {"nopoly", "OPF_3754"}
    assert {r["name"] for r in baseline["table2"]} == {"nopoly", "OPF_3754"}
    for r in baseline["table2"]:
        assert r["virtual_speedup_cpu_gpu"] > 1.0
