"""Path reconstruction through the ear reduction."""

import numpy as np
import pytest

from repro.apsp import EarPathReconstructor, dijkstra_apsp
from repro.graph import CSRGraph, cycle_graph, path_graph, randomize_weights

from _support import composite_graph


def check_walk(g, walk, d):
    total = sum(g.edge_weight(a, b) for a, b in zip(walk[:-1], walk[1:]))
    assert total == pytest.approx(d, abs=1e-8)


@pytest.mark.parametrize("seed", range(4))
def test_paths_exact_and_valid(seed):
    g = composite_graph(seed)
    pr = EarPathReconstructor(g)
    ref = dijkstra_apsp(g)
    rng = np.random.default_rng(seed)
    for _ in range(60):
        u, v = map(int, rng.integers(0, g.n, 2))
        d, walk = pr.path(u, v)
        if np.isinf(ref[u, v]):
            assert np.isinf(d) and walk == []
            continue
        assert d == pytest.approx(ref[u, v], abs=1e-8)
        assert walk[0] == u and walk[-1] == v
        check_walk(g, walk, d)


def test_identity():
    g = cycle_graph(5)
    pr = EarPathReconstructor(g)
    assert pr.path(2, 2) == (0.0, [2])
    assert pr.distance(2, 2) == 0.0


def test_same_chain_direct():
    g = path_graph(8)
    pr = EarPathReconstructor(g)
    d, walk = pr.path(2, 5)
    assert d == 3.0 and walk == [2, 3, 4, 5]


def test_ring_both_directions():
    g = randomize_weights(cycle_graph(9), seed=1, low=1.0, high=1.0)
    pr = EarPathReconstructor(g)
    d, walk = pr.path(1, 8)
    assert d == pytest.approx(2.0)
    assert walk == [1, 0, 8]


def test_disconnected():
    g = CSRGraph(4, [0, 2], [1, 3])
    pr = EarPathReconstructor(g)
    d, walk = pr.path(0, 3)
    assert np.isinf(d) and walk == []


def test_distance_matches_path():
    g = composite_graph(2)
    pr = EarPathReconstructor(g)
    rng = np.random.default_rng(0)
    for _ in range(40):
        u, v = map(int, rng.integers(0, g.n, 2))
        d, _ = pr.path(u, v)
        d2 = pr.distance(u, v)
        assert (np.isinf(d) and np.isinf(d2)) or d == pytest.approx(d2, abs=1e-9)
