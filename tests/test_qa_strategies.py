"""The graph-strategy library generates what it claims to generate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.decomposition import reduce_graph
from repro.qa import strategies

pytestmark = pytest.mark.qa


class TestFamilies:
    def test_theta_reduces_to_parallel_edges(self):
        g = strategies.theta_graph(n_chains=4, chain_len=6, seed=3)
        interior = np.nonzero(g.degree == 2)[0]
        assert interior.size == 4 * 5  # every non-hub vertex is contractible
        red = reduce_graph(g)
        assert red.graph.n == 2
        assert red.graph.m == 4
        assert red.graph.has_parallel_edges

    def test_cactus_one_bcc_per_cycle(self):
        from repro.decomposition import biconnected_components

        g = strategies.cactus_graph(n_cycles=5, cycle_len=4, seed=7)
        bcc = biconnected_components(g)
        cyclic = sum(
            1 for c in range(bcc.count) if bcc.component_edges[c].size > 1
        )
        assert cyclic == 5
        assert g.cycle_space_dimension() == 5

    def test_bridge_heavy_has_bridges_and_pendants(self):
        from repro.decomposition import find_bridges

        g = strategies.bridge_heavy_graph(n_blocks=4, block_size=4, seed=1)
        assert int(find_bridges(g).sum()) >= 3  # the block-joining edges at least
        assert np.any(g.degree == 1)  # the pendant tail

    def test_hairball_is_multigraph(self):
        g = strategies.parallel_hairball(n=4, m=20, seed=2)
        assert g.has_parallel_edges or g.has_self_loops

    def test_disconnected_has_isolates_and_components(self):
        g = strategies.disconnected_graph(n_parts=3, part_size=4, isolated=2, seed=5)
        count, _ = g.connected_components()
        assert count >= 5
        assert np.any(g.degree == 0)

    def test_star_of_cycles_single_cut_vertex(self):
        g = strategies.star_of_cycles(arms=3, cycle_len=4, seed=0)
        assert int(g.degree[0]) == 6  # three cycles through the centre
        assert g.cycle_space_dimension() == 3

    def test_reweighted_modes(self):
        g = strategies.theta_graph(3, 4, seed=0)
        assert np.all(strategies.reweighted(g, "ties").edge_w == 1.0)
        few = strategies.reweighted(g, "few", seed=1)
        assert set(np.unique(few.edge_w)) <= {1.0, 2.0}
        nz = strategies.reweighted(g, "near-zero", seed=1)
        assert np.all(nz.edge_w >= 1e-12) and np.all(nz.edge_w <= 1e-8)
        with pytest.raises(ValueError):
            strategies.reweighted(g, "nope")


class TestCorpus:
    def test_deterministic_in_seed(self):
        a = strategies.corpus(count=50, seed=9)
        b = strategies.corpus(count=50, seed=9)
        assert [n for n, _ in a] == [n for n, _ in b]
        assert all(x.fingerprint == y.fingerprint for (_, x), (_, y) in zip(a, b))

    def test_different_seed_different_graphs(self):
        a = strategies.corpus(count=50, seed=1)
        b = strategies.corpus(count=50, seed=2)
        assert any(x.fingerprint != y.fingerprint for (_, x), (_, y) in zip(a, b))

    def test_covers_adversarial_classes(self):
        graphs = [g for _, g in strategies.corpus(count=60, seed=0)]
        assert any(g.has_parallel_edges for g in graphs)
        assert any(g.has_self_loops for g in graphs)
        assert any(g.n == 0 for g in graphs)
        assert any(not g.is_connected() for g in graphs)
        assert any(np.all(g.edge_w == 1.0) and g.m > 0 for g in graphs)
        from repro.decomposition import find_bridges

        assert any(g.m > 0 and bool(find_bridges(g).any()) for g in graphs)

    def test_padding_to_count(self):
        assert len(strategies.corpus(count=5, seed=0)) == 5
        assert len(strategies.corpus(count=123, seed=0)) == 123

    def test_random_corpus_names_unique(self):
        names = [n for n, _ in strategies.random_corpus(40, seed=3)]
        assert len(set(names)) == 40


class TestHypothesisStrategy:
    def test_draws_valid_graphs(self):
        from hypothesis import given, settings

        seen = []

        @given(strategies.graph_strategy(max_n=12))
        @settings(max_examples=30, deadline=None)
        def inner(g):
            assert g.n >= 0 and g.m >= 0
            assert np.all(g.edge_w > 0)
            seen.append(g)

        inner()
        assert seen
