"""Delta-stepping and bidirectional Dijkstra vs the reference engine.

Both get cross-checked against ``repro.sssp.engine`` (scipy Dijkstra) on
the adversarial strategy corpus and on hypothesis-drawn graphs — ties,
near-zero weights, multigraphs, and disconnected graphs included.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.qa import strategies
from repro.sssp import engine
from repro.sssp.bidirectional import bidirectional_dijkstra
from repro.sssp.delta_stepping import delta_stepping

pytestmark = pytest.mark.qa

RTOL, ATOL = 1e-9, 1e-12


def corpus_graphs(seed: int, count: int = 40):
    return [(name, g) for name, g in strategies.corpus(count=count, seed=seed) if g.n]


class TestDeltaStepping:
    def test_matches_dijkstra_on_corpus(self, repro_seed):
        for name, g in corpus_graphs(repro_seed):
            want = engine.sssp(g, 0)
            got = delta_stepping(g, 0)
            np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL, err_msg=name)

    @pytest.mark.parametrize("delta", [1e-6, 0.1, 1.0, 100.0])
    def test_delta_choice_does_not_change_result(self, delta):
        g = strategies.theta_graph(4, 6, seed=11)
        want = engine.sssp(g, 0)
        np.testing.assert_allclose(
            delta_stepping(g, 0, delta=delta), want, rtol=RTOL, atol=ATOL
        )

    def test_near_zero_weights(self):
        g = strategies.reweighted(strategies.theta_graph(3, 5, seed=2), "near-zero", seed=2)
        np.testing.assert_allclose(
            delta_stepping(g, 1), engine.sssp(g, 1), rtol=RTOL, atol=ATOL
        )

    def test_unreachable_vertices_stay_infinite(self):
        g = strategies.disconnected_graph(2, 4, isolated=1, seed=3)
        got = delta_stepping(g, 0)
        want = engine.sssp(g, 0)
        assert np.array_equal(np.isinf(got), np.isinf(want))

    def test_hypothesis_graphs(self):
        from hypothesis import given, settings

        @given(strategies.graph_strategy(max_n=12))
        @settings(max_examples=25, deadline=None)
        def inner(g):
            if g.n == 0:
                return
            np.testing.assert_allclose(
                delta_stepping(g, 0), engine.sssp(g, 0), rtol=RTOL, atol=ATOL
            )

        inner()


class TestBidirectionalDijkstra:
    def assert_path_consistent(self, g, source, target, dist, path):
        want = engine.sssp(g, source)[target]
        if np.isinf(want):
            assert np.isinf(dist) and path == []
            return
        assert np.isclose(dist, want, rtol=RTOL, atol=ATOL)
        assert path[0] == source and path[-1] == target
        # The reported path must be walkable at the reported cost.
        total = 0.0
        for a, b in zip(path, path[1:]):
            step = np.inf
            for slot in range(g.indptr[a], g.indptr[a + 1]):
                if g.indices[slot] == b:
                    step = min(step, float(g.weights[slot]))
            assert np.isfinite(step), f"no edge {a}-{b} on reported path"
            total += step
        assert np.isclose(total, dist, rtol=RTOL, atol=ATOL)

    def test_matches_dijkstra_on_corpus(self, repro_seed, rng):
        for name, g in corpus_graphs(repro_seed, count=30):
            s = int(rng.integers(0, g.n))
            t = int(rng.integers(0, g.n))
            dist, path = bidirectional_dijkstra(g, s, t)
            self.assert_path_consistent(g, s, t, dist, path)

    def test_source_equals_target(self):
        g = strategies.theta_graph(3, 4, seed=0)
        assert bidirectional_dijkstra(g, 2, 2) == (0.0, [2])

    def test_disconnected_pair(self):
        g = strategies.disconnected_graph(2, 3, isolated=0, seed=1)
        dist, path = bidirectional_dijkstra(g, 0, g.n - 1)
        want = engine.sssp(g, 0)[g.n - 1]
        if np.isinf(want):
            assert np.isinf(dist) and path == []

    def test_all_pairs_on_tied_multigraph(self):
        g = strategies.reweighted(strategies.parallel_hairball(5, 12, seed=4), "ties")
        full = engine.all_pairs(g)
        for s in range(g.n):
            for t in range(g.n):
                dist, path = bidirectional_dijkstra(g, s, t)
                if np.isinf(full[s, t]):
                    assert np.isinf(dist)
                else:
                    assert np.isclose(dist, full[s, t], rtol=RTOL, atol=ATOL)

    def test_hypothesis_graphs(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(strategies.graph_strategy(max_n=10), st.integers(0, 10**6))
        @settings(max_examples=25, deadline=None)
        def inner(g, pick):
            if g.n == 0:
                return
            s, t = pick % g.n, (pick // g.n) % g.n
            dist, path = bidirectional_dijkstra(g, s, t)
            self.assert_path_consistent(g, s, t, dist, path)

        inner()
