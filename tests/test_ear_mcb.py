"""Ear-reduced MCB: Lemma 3.1 in executable form."""

import numpy as np
import pytest

from repro.decomposition import reduce_graph
from repro.graph import (
    CSRGraph,
    cycle_graph,
    randomize_weights,
    subdivide_edges,
)
from repro.mcb import (
    EarMCBReport,
    depina_mcb,
    horton_mcb,
    minimum_cycle_basis,
    verify_cycle_basis,
)

from _support import biconnected_weighted, composite_graph


def total(cycles):
    return float(sum(c.weight for c in cycles))


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("algorithm", ["mm", "depina"])
def test_ear_equals_no_ear(seed, algorithm):
    g = composite_graph(seed, n=22, m=32)
    with_ear = minimum_cycle_basis(g, algorithm=algorithm, use_ear=True)
    without = minimum_cycle_basis(g, algorithm=algorithm, use_ear=False)
    assert verify_cycle_basis(g, with_ear).ok
    assert verify_cycle_basis(g, without).ok
    assert total(with_ear) == pytest.approx(total(without), rel=1e-6)


@pytest.mark.parametrize("seed", range(4))
def test_matches_horton_oracle(seed):
    g = subdivide_edges(biconnected_weighted(seed, n=12, extra=6), 0.5, seed=seed)
    basis = minimum_cycle_basis(g)
    oracle = horton_mcb(g)
    assert total(basis) == pytest.approx(total(oracle), rel=1e-6)


def test_lemma31_dimension_and_weight():
    """dim(MCB(G)) == dim(MCB(G^r)) and W(MCB(G)) == W(MCB(G^r))."""
    g = subdivide_edges(biconnected_weighted(7, n=15, extra=9), 0.6, seed=7)
    red = reduce_graph(g)
    mcb_g = depina_mcb(g)
    mcb_r = depina_mcb(red.graph)
    assert len(mcb_g) == len(mcb_r)  # statement 3
    assert total(mcb_g) == pytest.approx(total(mcb_r), rel=1e-9)  # statement 4


def test_expanded_cycles_are_valid_in_original():
    g = subdivide_edges(biconnected_weighted(3, n=14, extra=8), 0.7, seed=3)
    basis = minimum_cycle_basis(g)
    for cyc in basis:
        assert cyc.is_valid_cycle(g)
        # recorded weight equals the support weight in G
        assert cyc.weight == pytest.approx(cyc.support_weight(g), rel=1e-9)


def test_pure_cycle_graph():
    g = randomize_weights(cycle_graph(12), seed=1)
    basis = minimum_cycle_basis(g)
    assert len(basis) == 1
    assert basis[0].weight == pytest.approx(g.total_weight)
    assert len(basis[0]) == g.m  # expanded back to all 12 edges


def test_cycles_never_span_components():
    g = composite_graph(2)
    from repro.decomposition import biconnected_components

    bcc = biconnected_components(g)
    basis = minimum_cycle_basis(g)
    for cyc in basis:
        comps = set(bcc.edge_component[cyc.edge_ids].tolist())
        assert len(comps) == 1
        assert cyc.meta["component"] in comps


def test_report_fields():
    g = subdivide_edges(biconnected_weighted(2, n=16, extra=10), 0.5, seed=2)
    rep = EarMCBReport()
    basis = minimum_cycle_basis(g, report=rep)
    assert rep.n == g.n and rep.m == g.m
    assert rep.f == len(basis)
    assert rep.n_removed > 0
    assert rep.n_solved_components >= 1
    assert rep.total > 0
    assert len(rep.solver_reports) == rep.n_solved_components


def test_forest_graph_empty_basis():
    from repro.graph import path_graph

    assert minimum_cycle_basis(path_graph(8)) == []


def test_unknown_algorithm():
    with pytest.raises(ValueError):
        minimum_cycle_basis(cycle_graph(4), algorithm="magic")


def test_solver_kwargs_forwarded():
    g = biconnected_weighted(5, n=14, extra=6)
    a = minimum_cycle_basis(g, algorithm="mm", block_size=8, lca_filter=False)
    b = minimum_cycle_basis(g, algorithm="mm")
    assert total(a) == pytest.approx(total(b), rel=1e-6)


def test_multigraph_input(multigraph):
    basis = minimum_cycle_basis(multigraph)
    rep = verify_cycle_basis(multigraph, basis)
    assert rep.ok
    assert rep.total_weight == pytest.approx(7.5)
