"""Query provenance: explain records bit-identical to ``query_many``.

``explain_many`` must return the *same distances, bit for bit* as
``query_many`` — provenance is attribution layered over the one shared
resolution path, never a second arithmetic path — while labelling every
pair with the class and resolving formula the paper's oracle actually
used (identity, component table, chain closed forms, AP bridge).

The corpus seed is the session ``--repro-seed``, so failures replay
exactly.  The same paths are enrolled in the differential registry as
``oracle-explain`` / ``reduced-oracle-explain``, which additionally
checks the distances against the scipy Dijkstra reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apsp.oracle import DistanceOracle
from repro.apsp.reduced_oracle import ReducedDistanceOracle
from repro.graph import cycle_graph
from repro.obs import metrics
from repro.obs.provenance import (
    PAIR_CLASSES,
    RESOLVER_NAMES,
    C_CROSS,
    C_SAME,
    C_SELF,
    C_UNREACHABLE,
    R_AP_BRIDGE,
    R_IDENTITY,
    R_NONE,
    R_SAME_CHAIN,
)
from repro.qa import strategies
from repro.qa.differential import APSP_REGISTRY, run_apsp_differential

pytestmark = pytest.mark.qa

CORPUS_COUNT = 60

ORACLES = [
    pytest.param(DistanceOracle, id="oracle"),
    pytest.param(ReducedDistanceOracle, id="reduced-oracle"),
]


def _pairs_for(n: int, seed: int) -> np.ndarray:
    if n <= 25:
        uu, vv = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        return np.column_stack([uu.ravel(), vv.ravel()]).astype(np.int64)
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=(600, 2), dtype=np.int64)


def assert_explain_matches_query(oracle_cls, g, name: str, seed: int) -> None:
    o = oracle_cls(g)
    pairs = _pairs_for(g.n, seed)
    want = o.query_many(pairs)
    prov = o.explain_many(pairs)
    assert np.array_equal(prov.distances, want), (
        f"{oracle_cls.__name__} on {name}: "
        f"{int(np.sum(prov.distances != want))} of {len(pairs)} "
        "explained distances differ from query_many"
    )


@pytest.mark.parametrize("oracle_cls", ORACLES)
class TestBitIdentity:
    def test_corpus(self, oracle_cls, repro_seed):
        for name, g in strategies.corpus(count=CORPUS_COUNT, seed=repro_seed):
            if g.n == 0:
                continue
            assert_explain_matches_query(oracle_cls, g, name, repro_seed)

    def test_single_chain_cycle(self, oracle_cls, repro_seed):
        for n in (3, 4, 7, 12):
            assert_explain_matches_query(
                oracle_cls, cycle_graph(n), f"cycle-{n}", repro_seed
            )

    def test_disconnected(self, oracle_cls, repro_seed):
        g = strategies.disconnected_graph(3, 5, isolated=2, seed=repro_seed)
        assert_explain_matches_query(oracle_cls, g, "disconnected", repro_seed)

    def test_star_of_cycles(self, oracle_cls, repro_seed):
        g = strategies.star_of_cycles(arms=4, cycle_len=5, seed=repro_seed)
        assert_explain_matches_query(oracle_cls, g, "star-of-cycles", repro_seed)

    def test_empty_pairs(self, oracle_cls):
        o = oracle_cls(strategies.theta_graph(3, 4, seed=0))
        prov = o.explain_many(np.empty((0, 2), dtype=np.int64))
        assert prov.distances.shape == (0,)
        assert prov.records() == []


@pytest.mark.parametrize("oracle_cls", ORACLES)
class TestAttribution:
    def test_self_pairs(self, oracle_cls):
        g = strategies.theta_graph(3, 5, seed=3)
        o = oracle_cls(g)
        pairs = np.column_stack([np.arange(g.n), np.arange(g.n)]).astype(np.int64)
        prov = o.explain_many(pairs)
        assert np.all(prov.cls == C_SELF)
        assert np.all(prov.resolver == R_IDENTITY)
        assert np.all(prov.distances == 0.0)

    def test_unreachable_pairs(self, oracle_cls):
        g = strategies.disconnected_graph(4, 6, isolated=1, seed=2)
        o = oracle_cls(g)
        pairs = _pairs_for(g.n, seed=2)
        prov = o.explain_many(pairs)
        unreach = np.isinf(prov.distances)
        assert unreach.any(), "disconnected corpus graph had no inf pairs"
        assert np.all(prov.cls[unreach] == C_UNREACHABLE)
        assert np.all(prov.resolver[unreach] == R_NONE)
        # and the reverse: every unreachable-classed pair really is inf
        assert np.all(np.isinf(prov.distances[prov.cls == C_UNREACHABLE]))

    def test_cross_bcc_carries_boundary_aps(self, oracle_cls):
        # Star of cycles: every cross-arm pair routes through the hub.
        g = strategies.star_of_cycles(arms=4, cycle_len=5, seed=1)
        o = oracle_cls(g)
        pairs = _pairs_for(g.n, seed=1)
        prov = o.explain_many(pairs)
        cross = prov.cls == C_CROSS
        assert cross.any(), "star of cycles produced no cross-BCC pairs"
        assert np.all(prov.resolver[cross] == R_AP_BRIDGE)
        assert np.all(prov.ap1[cross] >= 0)
        assert np.all(prov.ap2[cross] >= 0)
        i = int(np.flatnonzero(cross)[0])
        rec = prov.record(i)
        assert rec.pair_class == "cross-bcc"
        assert rec.boundary_aps is not None and len(rec.boundary_aps) == 2

    def test_same_bcc_component_ids(self, oracle_cls):
        g = strategies.theta_graph(3, 6, seed=4)
        o = oracle_cls(g)
        pairs = _pairs_for(g.n, seed=4)
        prov = o.explain_many(pairs)
        same = prov.cls == C_SAME
        assert same.any()
        assert np.all(prov.component[same] >= 0)
        # off-class pairs never carry a component id
        assert np.all(prov.component[~same] == -1)

    def test_class_sizes_partition_batch(self, oracle_cls, repro_seed):
        g = strategies.star_of_cycles(arms=3, cycle_len=4, seed=repro_seed)
        o = oracle_cls(g)
        pairs = _pairs_for(g.n, seed=repro_seed)
        prov = o.explain_many(pairs)
        sizes = prov.class_sizes()
        base = sum(sizes.get(c, 0) for c in PAIR_CLASSES)
        assert base == len(pairs)
        # the same-chain refinement counts a subset of same-bcc, not a
        # fifth partition cell
        assert sizes.get("same-chain", 0) <= sizes.get("same-bcc", 0)


class TestChainResolvers:
    def test_reduced_oracle_same_chain(self):
        # A bare cycle is one chain: interior pairs resolve via the
        # same-chain closed form at least somewhere.
        g = cycle_graph(9)
        o = ReducedDistanceOracle(g)
        pairs = _pairs_for(g.n, seed=0)
        prov = o.explain_many(pairs)
        names = {RESOLVER_NAMES[int(r)] for r in prov.resolver}
        assert "same-chain" in names, names
        same_chain = prov.resolver == R_SAME_CHAIN
        assert np.all(prov.cls[same_chain] == C_SAME)

    def test_full_oracle_never_uses_chain_forms(self):
        g = cycle_graph(9)
        o = DistanceOracle(g)
        prov = o.explain_many(_pairs_for(g.n, seed=0))
        names = {RESOLVER_NAMES[int(r)] for r in prov.resolver}
        assert names <= {"identity", "table", "none", "ap-shared", "ap-bridge"}, names


class TestSingleExplain:
    def test_explain_matches_query(self):
        g = strategies.star_of_cycles(arms=3, cycle_len=5, seed=6)
        o = ReducedDistanceOracle(g)
        for u, v in ((0, 1), (1, g.n - 1), (5, 5)):
            rec = o.explain(u, v)
            assert rec.u == u and rec.v == v
            assert rec.distance == o.query(u, v)
            assert rec.pair_class in PAIR_CLASSES or rec.pair_class == "same-chain"

    def test_digest_deterministic(self):
        g = strategies.theta_graph(3, 5, seed=8)
        o = ReducedDistanceOracle(g)
        a, b = o.explain(1, 7), o.explain(1, 7)
        assert a.digest() == b.digest()
        assert len(a.digest()) == 12
        assert a.digest() != o.explain(2, 7).digest()

    def test_as_dict_roundtrips_digest(self):
        g = strategies.theta_graph(3, 5, seed=8)
        rec = ReducedDistanceOracle(g).explain(0, 3)
        d = rec.as_dict()
        assert d["digest"] == rec.digest()
        assert d["pair_class"] == rec.pair_class

    def test_record_out_of_range(self):
        g = strategies.theta_graph(3, 4, seed=0)
        prov = ReducedDistanceOracle(g).explain_many(
            np.array([[0, 1]], dtype=np.int64)
        )
        with pytest.raises(IndexError):
            prov.record(1)


class TestRegistryAndCounters:
    def test_explain_paths_enrolled(self):
        assert "oracle-explain" in APSP_REGISTRY
        assert "reduced-oracle-explain" in APSP_REGISTRY

    def test_explain_paths_agree_with_reference(self, repro_seed):
        graphs = strategies.corpus(count=12, seed=repro_seed)
        report = run_apsp_differential(
            graphs,
            impls=["dijkstra-scipy", "oracle-explain", "reduced-oracle-explain"],
        )
        assert report.ok, report.summary()

    def test_explain_counters(self):
        g = strategies.theta_graph(3, 4, seed=0)
        o = ReducedDistanceOracle(g)
        pairs = _pairs_for(g.n, seed=0)
        before_e = metrics.counter("provenance.explains").value
        before_p = metrics.counter("provenance.pairs").value
        o.explain_many(pairs)
        assert metrics.counter("provenance.explains").value - before_e == 1
        assert metrics.counter("provenance.pairs").value - before_p == len(pairs)
