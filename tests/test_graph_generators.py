"""Generator invariants: determinism, structure, weight preservation."""

import numpy as np
import pytest

from repro.decomposition import biconnected_components
from repro.graph import (
    GraphError,
    attach_blocks,
    complete_graph,
    cycle_graph,
    delaunay_graph,
    gnm_random_graph,
    grid_graph,
    path_graph,
    planar_graph,
    preferential_attachment_graph,
    random_biconnected_graph,
    randomize_weights,
    subdivide_edges,
    subdivide_to_count,
)
from repro.sssp import dijkstra


class TestBasicShapes:
    def test_path(self):
        g = path_graph(5, weight=2.0)
        assert g.n == 5 and g.m == 4
        assert g.total_weight == 8.0
        with pytest.raises(GraphError):
            path_graph(0)

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.m == 6 and (g.degree == 2).all()
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(5)
        assert g.m == 10 and (g.degree == 4).all()

    def test_grid(self):
        g = grid_graph(4, 7)
        assert g.n == 28 and g.m == 3 * 7 + 4 * 6
        assert g.is_connected()
        with pytest.raises(GraphError):
            grid_graph(0, 3)


class TestRandomFamilies:
    def test_gnm_counts_and_determinism(self):
        g1 = gnm_random_graph(30, 50, seed=7)
        g2 = gnm_random_graph(30, 50, seed=7)
        assert g1 == g2
        assert g1.n == 30 and g1.m == 50 and g1.is_simple()

    def test_gnm_connected_flag(self):
        g = gnm_random_graph(40, 45, seed=3, connected=True)
        assert g.is_connected()

    def test_gnm_too_many_edges(self):
        with pytest.raises(GraphError):
            gnm_random_graph(4, 10)

    def test_gnm_too_few_for_connected(self):
        with pytest.raises(GraphError):
            gnm_random_graph(10, 5, connected=True)

    def test_random_biconnected_is_biconnected(self):
        for seed in range(4):
            g = random_biconnected_graph(25, 15, seed=seed)
            bcc = biconnected_components(g)
            assert bcc.count == 1
            assert len(bcc.articulation_points) == 0

    def test_preferential_attachment(self):
        g = preferential_attachment_graph(100, 3, seed=1)
        assert g.n == 100 and g.is_connected()
        assert g.m == 97 * 3
        with pytest.raises(GraphError):
            preferential_attachment_graph(3, 3)

    def test_delaunay_planar_edge_bound(self):
        g = delaunay_graph(150, seed=2)
        assert g.m <= 3 * g.n - 6  # planarity
        assert g.is_connected() and g.is_simple()

    def test_planar_graph_connected_with_degree2(self):
        g = planar_graph(200, seed=5)
        assert g.is_connected()
        assert (g.degree == 2).sum() > 0


class TestSubdivision:
    def test_preserves_distances(self):
        base = randomize_weights(grid_graph(4, 4), seed=1)
        sub = subdivide_edges(base, 0.5, seed=2)
        d_base = dijkstra(base, 0)
        d_sub = dijkstra(sub, 0)
        assert np.allclose(d_sub[: base.n], d_base, atol=1e-9)

    def test_zero_fraction_is_identity(self, grid):
        assert subdivide_edges(grid, 0.0) is grid

    def test_fraction_bounds(self, grid):
        with pytest.raises(GraphError):
            subdivide_edges(grid, 1.5)

    def test_inserted_nodes_have_degree_two(self, grid):
        sub = subdivide_edges(grid, 0.7, seed=3)
        assert (sub.degree[grid.n :] == 2).all()

    def test_subdivide_to_count_exact(self, grid):
        for k in (0, 1, 7, 40, 200):
            sub = subdivide_to_count(grid, k, seed=4)
            assert sub.n == grid.n + k
            if k:
                assert (sub.degree[grid.n :] == 2).all()

    def test_subdivide_to_count_preserves_distances(self):
        base = randomize_weights(grid_graph(4, 4), seed=9)
        sub = subdivide_to_count(base, 23, seed=5)
        assert np.allclose(dijkstra(sub, 0)[: base.n], dijkstra(base, 0), atol=1e-9)

    def test_subdivide_negative_rejected(self, grid):
        with pytest.raises(GraphError):
            subdivide_to_count(grid, -1)


class TestBlocks:
    def test_attach_blocks_increases_bcc_count(self, grid):
        g = attach_blocks(grid, 5, seed=1)
        bcc = biconnected_components(g)
        assert bcc.count == biconnected_components(grid).count + 5

    def test_clique_blocks_leave_no_degree2(self, grid):
        g = attach_blocks(grid, 5, seed=1, style="clique")
        assert (g.degree[grid.n :] >= 3).all()

    def test_unknown_style_rejected(self, grid):
        with pytest.raises(GraphError):
            attach_blocks(grid, 1, style="torus")


def test_randomize_weights_range_and_determinism(grid):
    g1 = randomize_weights(grid, seed=3, low=2.0, high=4.0)
    g2 = randomize_weights(grid, seed=3, low=2.0, high=4.0)
    assert g1 == g2
    assert (g1.edge_w >= 2.0).all() and (g1.edge_w < 4.0).all()
