"""Every example script must run to completion (they self-assert)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)

FAST = {"quickstart.py", "chemistry_rings.py", "electrical_network.py"}


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    if script.name not in FAST:
        pytest.skip("slow example covered by the benchmark stage")
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # produced some report


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "road_network_routing.py",
        "chemistry_rings.py",
        "social_network_analysis.py",
        "heterogeneous_scheduling.py",
        "electrical_network.py",
    } <= names
