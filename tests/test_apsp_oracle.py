"""Distance oracle: exactness and the Table-1 memory model."""

import numpy as np
import pytest

from repro.apsp import DistanceOracle, dijkstra_apsp, memory_model
from repro.graph import CSRGraph, path_graph, subdivide_edges

from _support import composite_graph


@pytest.mark.parametrize("seed", range(6))
def test_oracle_matches_full_matrix(seed):
    g = composite_graph(seed)
    oracle = DistanceOracle(g)
    ref = dijkstra_apsp(g)
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, g.n, size=(250, 2))
    got = oracle.query_many(pairs)
    want = ref[pairs[:, 0], pairs[:, 1]]
    assert np.allclose(
        np.nan_to_num(got, posinf=-1), np.nan_to_num(want, posinf=-1), atol=1e-8
    )


def test_oracle_all_pairs_small():
    g = composite_graph(0, n=12, m=16)
    oracle = DistanceOracle(g)
    ref = dijkstra_apsp(g)
    for u in range(g.n):
        for v in range(g.n):
            q = oracle.query(u, v)
            r = ref[u, v]
            assert (np.isinf(q) and np.isinf(r)) or np.isclose(q, r, atol=1e-8), (u, v)


def test_identity_and_isolated():
    g = CSRGraph(4, [0], [1])
    oracle = DistanceOracle(g)
    assert oracle.query(2, 2) == 0.0
    assert np.isinf(oracle.query(0, 2))
    assert np.isinf(oracle.query(2, 3))


def test_disconnected_components_inf():
    g = CSRGraph(6, [0, 1, 3, 4], [1, 2, 4, 5])
    oracle = DistanceOracle(g)
    assert np.isinf(oracle.query(0, 3))
    assert oracle.query(0, 2) == 2.0


def test_memory_smaller_than_dense():
    g = composite_graph(0)
    oracle = DistanceOracle(g)
    assert oracle.memory_bytes() <= oracle.full_matrix_bytes()


def test_memory_model_formula():
    g = path_graph(4)  # 3 bridges (2x2 tables), 2 APs
    mm = memory_model(g, dtype_bytes=4)
    expected_entries = 3 * 4 + 2 * 2
    assert mm.ours_mb == pytest.approx(expected_entries * 4 / 2**20)
    assert mm.max_mb == pytest.approx(16 * 4 / 2**20)
    # amusing identity: for a path, a² + Σ nᵢ² == n² exactly
    assert mm.saving_factor == pytest.approx(1.0)


def test_memory_model_star_saves():
    # star: n-1 bridge blocks of 4 entries + one AP -> far below n²
    from repro.graph import CSRGraph

    n = 9
    g = CSRGraph(n, [0] * (n - 1), list(range(1, n)))
    mm = memory_model(g, dtype_bytes=4)
    assert mm.saving_factor > 1.5


def test_memory_model_biconnected_equals_dense():
    from repro.graph import complete_graph

    mm = memory_model(complete_graph(8))
    assert mm.ours_mb == pytest.approx(mm.max_mb)


def test_memory_model_savings_grow_with_fragmentation():
    from repro.graph import CSRGraph

    base = composite_graph(0)
    star = CSRGraph(base.n, [0] * (base.n - 1), list(range(1, base.n)))
    assert memory_model(star).saving_factor > memory_model(base).saving_factor
