"""Floyd–Warshall (naive and blocked) against repeated Dijkstra."""

import numpy as np
import pytest

from repro.apsp import blocked_floyd_warshall, dijkstra_apsp, floyd_warshall
from repro.graph import CSRGraph, grid_graph, randomize_weights

from _support import close, composite_graph


@pytest.mark.parametrize("seed", range(4))
def test_fw_matches_dijkstra(seed):
    g = composite_graph(seed, n=18, m=26)
    assert close(floyd_warshall(g), dijkstra_apsp(g, engine="python"))


@pytest.mark.parametrize("block", [1, 3, 7, 16, 64])
def test_blocked_fw_block_sizes(block):
    g = randomize_weights(grid_graph(4, 5), seed=1)
    assert close(blocked_floyd_warshall(g, block=block), floyd_warshall(g))


def test_fw_empty_and_singleton():
    assert floyd_warshall(CSRGraph(0, [], [])).shape == (0, 0)
    m = floyd_warshall(CSRGraph(1, [], []))
    assert m.shape == (1, 1) and m[0, 0] == 0.0


def test_fw_disconnected_inf():
    g = CSRGraph(4, [0, 2], [1, 3])
    d = floyd_warshall(g)
    assert np.isinf(d[0, 2]) and d[0, 1] == 1.0


def test_fw_diagonal_zero():
    g = composite_graph(2)
    assert (np.diag(floyd_warshall(g)) == 0).all()


def test_fw_symmetry():
    g = composite_graph(0)
    d = floyd_warshall(g)
    assert np.allclose(np.nan_to_num(d, posinf=-1), np.nan_to_num(d.T, posinf=-1))


def test_dijkstra_apsp_engines_agree():
    g = composite_graph(4, n=15, m=22)
    assert close(dijkstra_apsp(g, engine="scipy"), dijkstra_apsp(g, engine="python"))


def test_dijkstra_apsp_bad_engine():
    with pytest.raises(ValueError):
        dijkstra_apsp(grid_graph(2, 2), engine="cuda")
