"""repro.obs.memory: memory spans, Table-1 byte accounting, pipeline gauges.

The Table-1 shape test is the ISSUE's acceptance criterion verbatim: on
every multi-BCC corpus stand-in, the oracle's ``a² + Σ nᵢ²`` distance
storage must undercut the dense ``n²`` matrix, and the measured bytes of
an actually-built table set must equal the model.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro import datasets
from repro.graph import grid_graph
from repro.obs import metrics as obs_metrics
from repro.obs.memory import (
    MemoryProfile,
    format_bytes,
    measured_component_bytes,
    memory_profiling,
    memory_profiling_enabled,
    memory_span,
    peak_rss_bytes,
    table1_bytes,
)

TINY = 0.012


class TestMemorySpan:
    def test_disabled_is_shared_null_singleton(self):
        assert not memory_profiling_enabled()
        a = memory_span("x")
        b = memory_span("y")
        assert a is b  # no allocation on the disabled path
        with a:
            pass

    def test_span_records_delta_and_peak(self):
        with memory_profiling() as mp:
            with memory_span("alloc"):
                block = bytearray(512 * 1024)
            del block
        spans = mp.by_name()["alloc"]
        assert len(spans) == 1
        assert spans[0].peak >= 512 * 1024
        assert spans[0].delta >= 0  # block still alive at span exit? freed after

    def test_nested_child_peak_propagates_to_parent(self):
        with memory_profiling() as mp:
            with memory_span("outer"):
                with memory_span("inner"):
                    block = bytearray(1024 * 1024)
                    del block
                # parent allocates little after the child
        spans = {sp.name: sp for sp in mp.spans}
        assert spans["inner"].peak >= 1024 * 1024
        # outer's peak must cover the child's peak despite peak resets
        assert spans["outer"].peak >= spans["inner"].peak

    def test_profiling_restores_prior_state(self):
        assert not tracemalloc.is_tracing()
        with memory_profiling():
            assert tracemalloc.is_tracing()
            assert memory_profiling_enabled()
        assert not tracemalloc.is_tracing()
        assert not memory_profiling_enabled()

    def test_nested_profiling_blocks(self):
        with memory_profiling() as outer:
            with memory_profiling() as inner:
                with memory_span("in-inner"):
                    pass
            with memory_span("in-outer"):
                pass
        assert [s.name for s in inner.spans] == ["in-inner"]
        assert [s.name for s in outer.spans] == ["in-outer"]

    def test_as_dict_aggregates(self):
        with memory_profiling() as mp:
            for _ in range(3):
                with memory_span("phase"):
                    pass
        agg = mp.as_dict()
        assert agg["phase"]["count"] == 3
        assert set(agg["phase"]) == {
            "count", "delta_bytes", "peak_bytes", "rss_peak_bytes"
        }

    def test_peak_rss_bytes_plausible_on_linux(self):
        rss = peak_rss_bytes()
        if rss is None:
            pytest.skip("no resource module on this platform")
        # A Python process with numpy/scipy loaded sits well above 10 MiB.
        assert rss > 10 * 1024 * 1024


class TestFormatBytes:
    def test_units(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert "MiB" in format_bytes(3 * 1024 * 1024)
        assert "GiB" in format_bytes(5 * 1024**3)


class TestTable1Bytes:
    def test_shape_on_every_multi_bcc_corpus_graph(self):
        """Acceptance: a² + Σ nᵢ² < n² wherever the graph decomposes."""
        seen_multi = 0
        for spec in datasets.TABLE1:
            g = spec.generate(TINY)
            tb = table1_bytes(g, spec.name)
            assert tb.dense_bytes == g.n * g.n * 8
            if tb.n_bcc > 1:
                seen_multi += 1
                assert tb.oracle_bytes < tb.dense_bytes, spec.name
                assert tb.reduced_oracle_bytes <= tb.oracle_bytes + 1, spec.name
        assert seen_multi >= 5  # the corpus genuinely exercises the claim

    def test_single_bcc_graph_model(self):
        g = grid_graph(4, 4)
        tb = table1_bytes(g, "grid", dtype_bytes=4)
        assert tb.n_bcc == 1
        assert tb.n_articulation == 0
        assert tb.ap_bytes == 0
        assert tb.component_bytes == 16 * 16 * 4
        assert tb.oracle_bytes == tb.dense_bytes
        assert tb.as_dict()["oracle_bytes"] == tb.oracle_bytes

    def test_measured_matches_model_on_built_tables(self):
        from repro.apsp.composition import build_component_tables

        g = datasets.load("ca-AstroPh", TINY)
        tb = table1_bytes(g, "ca-AstroPh")
        ct = build_component_tables(g)
        meas = measured_component_bytes(ct)
        assert meas["component_table_bytes"] == tb.component_bytes
        assert meas["ap_table_bytes"] == tb.ap_bytes
        assert meas["total_bytes"] == tb.oracle_bytes


class TestPipelineGauges:
    def test_apsp_runner_publishes_table_gauges(self):
        from repro.hetero.apsp_runner import apsp_with_trace

        g = datasets.load("ca-AstroPh", TINY)
        apsp_with_trace(g)
        snap = obs_metrics.snapshot("memory.apsp.")
        tb = table1_bytes(g)
        assert snap["memory.apsp.oracle_bytes"] == tb.oracle_bytes
        assert snap["memory.apsp.dense_bytes"] == tb.dense_bytes
        assert snap["memory.apsp.component_table_bytes"] == tb.component_bytes
        assert snap["memory.apsp.ap_table_bytes"] == tb.ap_bytes
        # ear reduction must never cost more storage than the full oracle
        assert 0 < snap["memory.apsp.reduced_table_bytes"] <= tb.oracle_bytes
        assert snap["memory.apsp.oracle_bytes"] < snap["memory.apsp.dense_bytes"]

    def test_mcb_runner_publishes_store_gauges(self):
        from repro.hetero.mcb_runner import mcb_with_trace

        g = datasets.load("nopoly", TINY)
        mcb_with_trace(g)
        snap = obs_metrics.snapshot("memory.mcb.")
        assert snap["memory.mcb.witness_bytes"] > 0
        assert snap["memory.mcb.candidate_store_bytes"] > 0

    def test_engine_cache_bytes_gauge_and_info(self):
        from repro.sssp import engine

        cache = engine.adjacency_cache()
        cache.clear()
        assert cache.info().bytes == 0
        g = grid_graph(5, 5)
        engine.multi_source(g, np.arange(4))
        info = cache.info()
        assert info.bytes > 0
        assert info.bytes == cache.memory_bytes()
        assert obs_metrics.snapshot("memory.engine.")[
            "memory.engine.adj_cache_bytes"
        ] == info.bytes
        cache.clear()
        assert cache.memory_bytes() == 0

    def test_candidate_store_memory_bytes(self):
        from repro.mcb.candidate_store import CandidateStore

        store = CandidateStore(np.arange(100, dtype=np.int64), block_size=16)
        total = store.memory_bytes()
        # 100 int64 ids + 100 bool alive flags, regardless of block count
        assert total == 100 * 8 + 100 * 1
