"""Differential-oracle conformance: every implementation pair agrees.

This is the acceptance surface of the QA subsystem: all registered APSP
and MCB implementations run on a ≥200-graph corpus (adversarial +
randomized families, multigraphs and bridge-heavy structures included)
with zero disagreements.  The corpus seed is the session ``--repro-seed``,
so every run explores a fresh slice of the space yet any failure
reproduces exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, cycle_graph, load_npz
from repro.qa import strategies
from repro.qa.differential import (
    APSP_REGISTRY,
    MCB_REGISTRY,
    Implementation,
    matrices_agree,
    register_apsp,
    register_mcb,
    run_apsp_differential,
    run_mcb_differential,
    run_suite,
)

pytestmark = pytest.mark.qa

#: Acceptance floor: the conformance sweep covers at least this many graphs.
CORPUS_COUNT = 200
#: MCB implementations are superlinear in the cycle space; they get the
#: first chunk of the same corpus (still covering every adversarial case —
#: the named cases lead the corpus).
MCB_COUNT = 100


@pytest.fixture(scope="module")
def qa_corpus(request):
    seed = request.config._repro_seed
    return strategies.corpus(count=CORPUS_COUNT, seed=seed)


class TestRegistry:
    def test_apsp_floor(self):
        assert len(APSP_REGISTRY) >= 5
        assert sum(1 for i in APSP_REGISTRY.values() if i.reference) == 1

    def test_mcb_floor(self):
        assert len(MCB_REGISTRY) >= 3
        assert sum(1 for i in MCB_REGISTRY.values() if i.reference) == 1

    def test_duplicate_reference_rejected(self):
        with pytest.raises(ValueError):
            register_apsp("second-ref", lambda g: None, reference=True)
        APSP_REGISTRY.pop("second-ref", None)

    def test_decorator_auto_enrolls(self):
        @register_apsp("enrolled-for-test")
        def impl(g):  # pragma: no cover - never called
            raise NotImplementedError

        try:
            assert APSP_REGISTRY["enrolled-for-test"].fn is impl
        finally:
            del APSP_REGISTRY["enrolled-for-test"]


class TestComparisonSemantics:
    def test_matrices_agree_exact(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert matrices_agree(a, a.copy()) is None

    def test_reachability_mismatch_detected(self):
        a = np.array([[0.0, np.inf], [np.inf, 0.0]])
        b = np.array([[0.0, 5.0], [5.0, 0.0]])
        assert "reachability" in matrices_agree(a, b)

    def test_value_drift_detected(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        b = a * (1 + 1e-6)
        assert "finite entries differ" in matrices_agree(a, b)

    def test_shape_mismatch_detected(self):
        assert "shape" in matrices_agree(np.zeros((2, 2)), np.zeros((3, 3)))


class TestAPSPConformance:
    def test_corpus_zero_disagreements(self, qa_corpus):
        report = run_apsp_differential(qa_corpus)
        assert report.graphs_run >= CORPUS_COUNT
        assert len(report.implementations) >= 5
        assert report.ok, report.summary()

    def test_corpus_includes_adversarial_classes(self, qa_corpus):
        graphs = [g for _, g in qa_corpus]
        assert any(g.has_parallel_edges for g in graphs)
        assert any(g.has_self_loops for g in graphs)
        from repro.decomposition import find_bridges

        assert any(g.m > 0 and bool(find_bridges(g).any()) for g in graphs)


class TestMCBConformance:
    def test_corpus_zero_disagreements(self, qa_corpus):
        report = run_mcb_differential(qa_corpus[:MCB_COUNT])
        assert report.graphs_run >= MCB_COUNT
        assert len(report.implementations) >= 3
        assert report.ok, report.summary()


class TestDisagreementCapture:
    """A deliberately wrong implementation is caught and serialized."""

    def test_broken_apsp_caught_and_artifact_saved(self, tmp_path):
        def skewed(g: CSRGraph) -> np.ndarray:
            from repro.apsp import dijkstra_apsp

            return dijkstra_apsp(g) * 1.001  # subtly wrong everywhere

        register_apsp("broken-for-test", skewed)
        try:
            report = run_apsp_differential(
                strategies.corpus(count=8, seed=0),
                impls=["dijkstra-scipy", "broken-for-test"],
                artifacts_dir=tmp_path,
            )
        finally:
            del APSP_REGISTRY["broken-for-test"]
        assert not report.ok
        bad = report.disagreements[0]
        assert bad.impl == "broken-for-test"
        assert bad.artifact is not None
        replayed = load_npz(bad.artifact)
        assert replayed == bad.graph  # the repro file round-trips exactly

    def test_broken_mcb_caught(self, tmp_path):
        def lossy(g: CSRGraph):
            from repro.mcb import depina_mcb

            return depina_mcb(g)[:-1]  # drop a basis element

        register_mcb("broken-for-test", lossy)
        try:
            report = run_mcb_differential(
                [("triangle-pair", strategies.cactus_graph(2, 3, seed=0))],
                impls=["depina", "broken-for-test"],
                artifacts_dir=tmp_path,
            )
        finally:
            del MCB_REGISTRY["broken-for-test"]
        assert not report.ok
        assert "not a cycle basis" in report.disagreements[0].detail
        assert list(tmp_path.glob("mcb-*.npz"))

    def test_env_artifact_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QA_ARTIFACTS", str(tmp_path / "art"))
        register_apsp("broken-env-test", lambda g: np.zeros((g.n, g.n)))
        try:
            report = run_apsp_differential(
                [("ring", cycle_graph(6))],
                impls=["dijkstra-scipy", "broken-env-test"],
            )
        finally:
            del APSP_REGISTRY["broken-env-test"]
        assert not report.ok
        assert list((tmp_path / "art").glob("apsp-*.npz"))


class TestSuiteEntry:
    def test_run_suite_small(self):
        reports = run_suite(count=20, seed=1, mcb_count=8)
        assert set(reports) == {"apsp", "mcb"}
        assert all(r.ok for r in reports.values()), {
            k: r.summary() for k, r in reports.items()
        }

    def test_stride_and_max_n_skips_counted(self):
        impl = Implementation(name="x", fn=lambda g: None, max_n=0, stride=2)
        assert impl.max_n == 0 and impl.stride == 2
        report = run_apsp_differential(
            strategies.corpus(count=6, seed=0), impls=["dijkstra-scipy", "dense-fw"]
        )
        assert report.ok
