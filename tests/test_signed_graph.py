"""Signed auxiliary graph and minimum odd-cycle search."""

import numpy as np
import pytest

from repro.graph import CSRGraph, cycle_graph, randomize_weights
from repro.mcb import gf2, min_odd_cycle, spanning_structure
from repro.mcb.signed_graph import build_signed_graph

from _support import biconnected_weighted


def s_edge_from_bits(g, ss, bits):
    s = np.zeros(g.m, dtype=np.int8)
    nt = ss.eprime_index >= 0
    s[nt] = np.asarray(bits, dtype=np.int8)[ss.eprime_index[nt]]
    return s


class TestBuild:
    def test_layer_structure_even_edge(self):
        g = CSRGraph(2, [0], [1])
        aux, orig = build_signed_graph(g, np.array([0]))
        assert aux.n == 4
        assert aux.has_edge(0, 1) and aux.has_edge(2, 3)
        assert not aux.has_edge(0, 3)

    def test_layer_structure_odd_edge(self):
        g = CSRGraph(2, [0], [1])
        aux, orig = build_signed_graph(g, np.array([1]))
        assert aux.has_edge(0, 3) and aux.has_edge(2, 1)
        assert not aux.has_edge(0, 1)

    def test_odd_self_loop_bridges_layers(self):
        g = CSRGraph(1, [0], [0])
        aux, orig = build_signed_graph(g, np.array([1]))
        assert aux.m == 1 and aux.has_edge(0, 1)

    def test_even_self_loop_dropped(self):
        g = CSRGraph(1, [0], [0])
        aux, _ = build_signed_graph(g, np.array([0]))
        assert aux.m == 0

    def test_orig_mapping(self):
        g = CSRGraph(3, [0, 1], [1, 2])
        aux, orig = build_signed_graph(g, np.array([0, 1]))
        assert len(orig) == aux.m
        assert set(orig.tolist()) == {0, 1}


class TestMinOddCycle:
    def test_ring_unit_witness(self, ring):
        ss = spanning_structure(ring)
        bits = np.zeros(ss.f, dtype=bool)
        bits[0] = True
        cyc = min_odd_cycle(ring, ss, bits, np.arange(ring.n))
        assert cyc is not None
        # the only cycle is the full ring
        assert len(cyc) == ring.m
        assert cyc.weight == pytest.approx(ring.total_weight)
        assert cyc.meta["walk_weight"] == pytest.approx(ring.total_weight)

    def test_fvs_roots_suffice(self):
        g = biconnected_weighted(3, n=20, extra=12)
        ss = spanning_structure(g)
        from repro.mcb import greedy_fvs

        bits = np.zeros(ss.f, dtype=bool)
        bits[ss.f // 2] = True
        all_roots = min_odd_cycle(g, ss, bits, np.arange(g.n))
        fvs_roots = min_odd_cycle(g, ss, bits, greedy_fvs(g))
        assert all_roots is not None and fvs_roots is not None
        assert fvs_roots.weight == pytest.approx(all_roots.weight)

    def test_returned_cycle_is_odd(self):
        g = biconnected_weighted(5, n=15, extra=10)
        ss = spanning_structure(g)
        rng = np.random.default_rng(0)
        for _ in range(5):
            bits = rng.integers(0, 2, ss.f).astype(bool)
            if not bits.any():
                continue
            cyc = min_odd_cycle(g, ss, bits, np.arange(g.n))
            assert cyc is not None
            assert cyc.is_valid_cycle(g)
            vec = ss.restricted_vector(cyc.edge_ids)
            assert gf2.dot(vec, gf2.pack(bits)) == 1

    def test_no_roots_returns_none(self, ring):
        ss = spanning_structure(ring)
        bits = np.ones(ss.f, dtype=bool)
        assert min_odd_cycle(ring, ss, bits, np.array([], dtype=np.int64)) is None

    def test_minimality_on_two_cycle_graph(self):
        # two triangles sharing an edge; witness selects the shared edge
        #   0-1 shared; triangle A via 2 (heavy), triangle B via 3 (light)
        g = CSRGraph(
            4,
            [0, 0, 1, 0, 1],
            [1, 2, 2, 3, 3],
            [1.0, 5.0, 5.0, 1.0, 1.0],
        )
        ss = spanning_structure(g)
        bits = np.ones(ss.f, dtype=bool)  # any odd combination
        cyc = min_odd_cycle(g, ss, bits, np.arange(g.n))
        assert cyc.weight <= 3.0 + 1e-9  # the light triangle

    def test_self_loop_cheapest(self, multigraph):
        ss = spanning_structure(multigraph)
        loop_eid = int(np.nonzero(multigraph.edge_u == multigraph.edge_v)[0][0])
        bits = np.zeros(ss.f, dtype=bool)
        bits[ss.eprime_index[loop_eid]] = True
        cyc = min_odd_cycle(multigraph, ss, bits, np.arange(multigraph.n))
        assert list(cyc.edge_ids) == [loop_eid]
        assert cyc.weight == pytest.approx(0.5)
