"""Single-source shortest path kernels (CPU reference, GPU-style, bulk)."""

from .bellman_ford import bellman_ford
from .bidirectional import bidirectional_dijkstra
from .delta_stepping import delta_stepping
from .dijkstra import dijkstra, dijkstra_tree, shortest_path
from .engine import (
    AdjacencyCache,
    CacheInfo,
    adjacency_cache,
    adjacency_matrix,
    all_pairs,
    multi_source,
    resolve_chunk_size,
    spt_forest,
    sssp,
)
from .frontier import FrontierStats, frontier_sssp, frontier_sssp_batch

__all__ = [
    "bellman_ford",
    "bidirectional_dijkstra",
    "delta_stepping",
    "dijkstra",
    "dijkstra_tree",
    "shortest_path",
    "AdjacencyCache",
    "CacheInfo",
    "adjacency_cache",
    "adjacency_matrix",
    "resolve_chunk_size",
    "all_pairs",
    "multi_source",
    "spt_forest",
    "sssp",
    "FrontierStats",
    "frontier_sssp",
    "frontier_sssp_batch",
]
