"""Bulk shortest-path engine.

Per the HPC-Python guides, the hot loop belongs in compiled code: this
engine dispatches multi-source Dijkstra to ``scipy.sparse.csgraph`` (a
C implementation operating directly on our CSR buffers) while exposing the
same array contract as the pure-Python kernels.  All APSP pipelines and
benchmarks go through here; tests cross-check it against
:mod:`repro.sssp.dijkstra`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from ..graph.csr import CSRGraph

__all__ = ["adjacency_matrix", "sssp", "multi_source", "all_pairs", "spt_forest"]


def adjacency_matrix(g: CSRGraph) -> sp.csr_matrix:
    """Symmetric scipy CSR adjacency (parallel edges collapse to min).

    Zero-weight edges are nudged to a tiny positive value because scipy's
    sparse format cannot distinguish an explicit zero from "no edge"; the
    nudge (1e-300) never changes which path is shortest on graphs whose
    remaining weights are ≥ 1e-12.
    """
    s = g.simplify()
    w = np.where(s.edge_w == 0.0, 1e-300, s.edge_w)
    row = np.concatenate([s.edge_u, s.edge_v])
    col = np.concatenate([s.edge_v, s.edge_u])
    dat = np.concatenate([w, w])
    return sp.coo_matrix((dat, (row, col)), shape=(g.n, g.n)).tocsr()


def sssp(g: CSRGraph, source: int) -> np.ndarray:
    """Single-source distances (compiled path)."""
    return multi_source(g, np.asarray([source]))[0]


def multi_source(g: CSRGraph, sources: np.ndarray) -> np.ndarray:
    """Distance matrix of shape ``(len(sources), n)``."""
    sources = np.asarray(sources, dtype=np.int64)
    if g.n == 0:
        return np.zeros((len(sources), 0))
    if len(sources) == 0:
        return np.zeros((0, g.n))
    mat = adjacency_matrix(g)
    out = csgraph.dijkstra(mat, directed=False, indices=sources)
    return np.asarray(out, dtype=np.float64)


def all_pairs(g: CSRGraph) -> np.ndarray:
    """Full ``n × n`` distance matrix (the baseline Phase II on ``G``)."""
    if g.n == 0:
        return np.zeros((0, 0))
    mat = adjacency_matrix(g)
    return np.asarray(csgraph.dijkstra(mat, directed=False), dtype=np.float64)


def spt_forest(g: CSRGraph, sources: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Shortest-path trees from each source.

    Returns ``(dist, parent)`` arrays of shape ``(len(sources), n)``;
    ``parent[i, v]`` is the predecessor of ``v`` in the tree rooted at
    ``sources[i]`` (``-9999`` for roots/unreachable, scipy's sentinel).
    """
    sources = np.asarray(sources, dtype=np.int64)
    mat = adjacency_matrix(g)
    dist, pred = csgraph.dijkstra(
        mat, directed=False, indices=sources, return_predecessors=True
    )
    return np.asarray(dist, dtype=np.float64), np.asarray(pred, dtype=np.int64)
