"""Bulk shortest-path engine: cached adjacency + chunked multi-source dispatch.

Per the HPC-Python guides, the hot loop belongs in compiled code: this
engine dispatches multi-source Dijkstra to ``scipy.sparse.csgraph`` (a
C implementation operating directly on our CSR buffers) while exposing the
same array contract as the pure-Python kernels.  All APSP pipelines and
benchmarks go through here; tests cross-check it against
:mod:`repro.sssp.dijkstra`.

Two bulk-execution mechanisms remove the repeated Python-side tax that
dominated per-BCC APSP workloads:

* **Adjacency caching** — the CSR→scipy conversion (simplify + COO build +
  sort) runs once per distinct graph.  :class:`CSRGraph` objects are frozen
  after construction, so the cache key is the graph's content
  :attr:`~repro.graph.csr.CSRGraph.fingerprint` and entries never need
  invalidation; an LRU bound (``REPRO_ADJ_CACHE`` entries, default 128)
  caps memory.
* **Chunked dispatch** — ``multi_source``/``spt_forest`` split their source
  sets into chunks of ``REPRO_SSSP_CHUNK`` (default 32) sources per
  compiled call.  Each scipy call amortises dispatch overhead over the
  whole chunk, chunk boundaries bound the size of transient predecessor
  buffers, and — because every source's Dijkstra is independent — the
  result is bit-identical for every chunk size.  Chunks are also the work
  units the process-parallel backend (:mod:`repro.hetero.parallel`) fans
  out over workers.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from ..graph.csr import CSRGraph, GraphError
from ..obs import events as _events
from ..obs import metrics as _metrics
from ..obs.trace import span as _span

# Preresolved instruments: the cache and chunk loops increment these
# unconditionally (see repro.obs.metrics for why counters stay on).
_C_HITS = _metrics.counter("engine.adj_cache.hits")
_C_MISSES = _metrics.counter("engine.adj_cache.misses")
_C_CHUNKS = _metrics.counter("engine.chunks_dispatched")
_C_SOURCES = _metrics.counter("engine.sources_dispatched")
# Resident bytes of the process-wide adjacency cache (Table-1 style
# memory accounting for the engine layer; see repro.obs.memory).
_G_CACHE_BYTES = _metrics.gauge("memory.engine.adj_cache_bytes")

__all__ = [
    "ZERO_WEIGHT_NUDGE",
    "MIN_POSITIVE_WEIGHT",
    "DEFAULT_CHUNK_SIZE",
    "AdjacencyCache",
    "CacheInfo",
    "adjacency_cache",
    "adjacency_matrix",
    "resolve_chunk_size",
    "sssp",
    "multi_source",
    "all_pairs",
    "spt_forest",
]

#: Value substituted for explicit zero-weight edges.  scipy's sparse format
#: cannot distinguish an explicit zero from "no edge", so zeros are nudged
#: to a tiny positive value that can never dominate a genuine weight.
ZERO_WEIGHT_NUDGE = 1e-300

#: The engine's weight contract: every *non-zero* edge weight must be at
#: least this large.  Below it, the :data:`ZERO_WEIGHT_NUDGE` applied to
#: zero-weight edges could compete with genuine weights and silently
#: mis-rank paths, so :func:`adjacency_matrix` raises instead.
MIN_POSITIVE_WEIGHT = 1e-12

#: Default number of sources per compiled dijkstra call
#: (``REPRO_SSSP_CHUNK`` overrides).
DEFAULT_CHUNK_SIZE = 32


def resolve_chunk_size(chunk_size: int | None = None) -> int:
    """Effective chunk size: explicit argument > env knob > default."""
    if chunk_size is None:
        chunk_size = int(os.environ.get("REPRO_SSSP_CHUNK", DEFAULT_CHUNK_SIZE))
    if chunk_size < 1:
        raise ValueError(f"chunk size must be positive, got {chunk_size}")
    return chunk_size


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of adjacency-cache effectiveness counters."""

    hits: int
    misses: int
    size: int
    maxsize: int
    bytes: int = 0  # resident scipy-CSR storage (data + indices + indptr)


def _csr_nbytes(mat: sp.csr_matrix) -> int:
    return int(mat.data.nbytes) + int(mat.indices.nbytes) + int(mat.indptr.nbytes)


class AdjacencyCache:
    """LRU cache of scipy CSR adjacency matrices keyed by graph fingerprint.

    Graphs are immutable, so entries are never invalidated — only evicted
    when the LRU bound is hit.  A process-wide instance backs the module
    functions; independent instances can be created for isolation (tests,
    worker processes).
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[str, sp.csr_matrix] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._bytes = 0

    def get(self, g: CSRGraph) -> sp.csr_matrix:
        """Cached adjacency of ``g`` (building + inserting on miss)."""
        key = g.fingerprint
        mat = self._entries.get(key)
        if mat is not None:
            self.hits += 1
            _C_HITS.inc()
            self._entries.move_to_end(key)
            return mat
        self.misses += 1
        _C_MISSES.inc()
        with _span("engine.adjacency_build", cat="sssp", n=g.n, m=g.m):
            mat = adjacency_matrix(g)
        self._entries[key] = mat
        self._bytes += _csr_nbytes(mat)
        if len(self._entries) > self.maxsize:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= _csr_nbytes(evicted)
        _G_CACHE_BYTES.set(self._bytes)
        return mat

    def memory_bytes(self) -> int:
        """Resident bytes of every cached scipy adjacency."""
        return self._bytes

    def info(self) -> CacheInfo:
        return CacheInfo(
            hits=self.hits,
            misses=self.misses,
            size=len(self._entries),
            maxsize=self.maxsize,
            bytes=self._bytes,
        )

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self._bytes = 0
        _G_CACHE_BYTES.set(0.0)


_GLOBAL_CACHE = AdjacencyCache(maxsize=int(os.environ.get("REPRO_ADJ_CACHE", 128)))


def adjacency_cache() -> AdjacencyCache:
    """The process-wide adjacency cache (counters, ``clear()``)."""
    return _GLOBAL_CACHE


def adjacency_matrix(g: CSRGraph) -> sp.csr_matrix:
    """Symmetric scipy CSR adjacency (parallel edges collapse to min).

    Zero-weight edges are nudged to :data:`ZERO_WEIGHT_NUDGE` because
    scipy's sparse format cannot distinguish an explicit zero from "no
    edge".  The nudge never changes which path is shortest **provided every
    non-zero weight is at least** :data:`MIN_POSITIVE_WEIGHT` (= 1e-12):
    then even ``n`` chained nudges stay astronomically below any genuine
    weight difference.  Graphs violating that contract raise
    :class:`~repro.graph.csr.GraphError` here rather than silently
    mis-ranking paths.

    This always rebuilds; hot paths go through the fingerprint-keyed cache
    (see :func:`adjacency_cache`) via :func:`multi_source` and friends.
    """
    s = g.simplify()
    tiny = (s.edge_w != 0.0) & (s.edge_w < MIN_POSITIVE_WEIGHT)
    if tiny.any():
        bad = int(np.nonzero(tiny)[0][0])
        raise GraphError(
            f"edge weight {s.edge_w[bad]!r} violates the engine contract: "
            f"non-zero weights must be >= {MIN_POSITIVE_WEIGHT} "
            "(the zero-weight nudge could otherwise mis-rank paths)"
        )
    w = np.where(s.edge_w == 0.0, ZERO_WEIGHT_NUDGE, s.edge_w)
    row = np.concatenate([s.edge_u, s.edge_v])
    col = np.concatenate([s.edge_v, s.edge_u])
    dat = np.concatenate([w, w])
    return sp.coo_matrix((dat, (row, col)), shape=(g.n, g.n)).tocsr()


def sssp(g: CSRGraph, source: int, cache: bool = True) -> np.ndarray:
    """Single-source distances (compiled path)."""
    return multi_source(g, np.asarray([source]), cache=cache)[0]


def multi_source(
    g: CSRGraph,
    sources: np.ndarray,
    chunk_size: int | None = None,
    cache: bool = True,
) -> np.ndarray:
    """Distance matrix of shape ``(len(sources), n)``.

    Sources are dispatched to compiled Dijkstra in chunks of ``chunk_size``
    (default: ``REPRO_SSSP_CHUNK`` / :data:`DEFAULT_CHUNK_SIZE`).  Every
    source's search is independent, so the output is bit-identical for any
    chunking.  ``cache=False`` bypasses the adjacency cache (used by the
    before/after benchmarks).
    """
    sources = np.asarray(sources, dtype=np.int64)
    if g.n == 0:
        return np.zeros((len(sources), 0))
    if len(sources) == 0:
        return np.zeros((0, g.n))
    mat = _GLOBAL_CACHE.get(g) if cache else adjacency_matrix(g)
    chunk = resolve_chunk_size(chunk_size)
    k = len(sources)
    _C_SOURCES.inc(k)
    # Captured once per call: disabled runs must not even build the
    # events' keyword dicts inside the chunk loop.
    ev = _events.enabled()
    if k <= chunk:
        _C_CHUNKS.inc()
        if ev:
            _events.emit("chunk.start", sources=k)
        with _span("sssp.chunk", cat="sssp", sources=k):
            out = csgraph.dijkstra(mat, directed=False, indices=sources)
        if ev:
            _events.emit("chunk.finish", sources=k)
        return np.asarray(out, dtype=np.float64)
    out = np.empty((k, g.n), dtype=np.float64)
    for lo in range(0, k, chunk):
        hi = min(lo + chunk, k)
        _C_CHUNKS.inc()
        if ev:
            _events.emit("chunk.start", sources=hi - lo)
        with _span("sssp.chunk", cat="sssp", sources=hi - lo):
            out[lo:hi] = csgraph.dijkstra(
                mat, directed=False, indices=sources[lo:hi]
            )
        if ev:
            _events.emit("chunk.finish", sources=hi - lo)
    return out


def all_pairs(
    g: CSRGraph, chunk_size: int | None = None, cache: bool = True
) -> np.ndarray:
    """Full ``n × n`` distance matrix (the baseline Phase II on ``G``)."""
    if g.n == 0:
        return np.zeros((0, 0))
    return multi_source(
        g, np.arange(g.n, dtype=np.int64), chunk_size=chunk_size, cache=cache
    )


def spt_forest(
    g: CSRGraph,
    sources: np.ndarray,
    chunk_size: int | None = None,
    cache: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Shortest-path trees from each source.

    Returns ``(dist, parent)`` arrays of shape ``(len(sources), n)``;
    ``parent[i, v]`` is the predecessor of ``v`` in the tree rooted at
    ``sources[i]`` (``-9999`` for roots/unreachable, scipy's sentinel).
    Chunked exactly like :func:`multi_source`.
    """
    sources = np.asarray(sources, dtype=np.int64)
    mat = _GLOBAL_CACHE.get(g) if cache else adjacency_matrix(g)
    chunk = resolve_chunk_size(chunk_size)
    k = len(sources)
    _C_SOURCES.inc(k)
    ev = _events.enabled()
    if k <= chunk:
        _C_CHUNKS.inc()
        if ev:
            _events.emit("chunk.start", sources=k)
        with _span("sssp.chunk", cat="sssp", sources=k, predecessors=True):
            dist, pred = csgraph.dijkstra(
                mat, directed=False, indices=sources, return_predecessors=True
            )
        if ev:
            _events.emit("chunk.finish", sources=k)
        return np.asarray(dist, dtype=np.float64), np.asarray(pred, dtype=np.int64)
    dist = np.empty((k, g.n), dtype=np.float64)
    pred = np.empty((k, g.n), dtype=np.int64)
    for lo in range(0, k, chunk):
        hi = min(lo + chunk, k)
        _C_CHUNKS.inc()
        if ev:
            _events.emit("chunk.start", sources=hi - lo)
        with _span("sssp.chunk", cat="sssp", sources=hi - lo, predecessors=True):
            d, p = csgraph.dijkstra(
                mat, directed=False, indices=sources[lo:hi], return_predecessors=True
            )
        if ev:
            _events.emit("chunk.finish", sources=hi - lo)
        dist[lo:hi] = d
        pred[lo:hi] = p
    return dist, pred
