"""Binary-heap Dijkstra (the per-thread CPU kernel of Phase II).

The paper runs "multiple instances of Dijkstra's algorithm from different
vertices ... each instance on an individual thread" (Section 2.1.2).  This
module is that per-instance kernel: a lazy-deletion binary-heap Dijkstra
with optional predecessor output and early exit.

For bulk APSP the scipy-backed :mod:`repro.sssp.engine` is faster; this
pure-Python version is the readable reference the tests trust.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph.csr import CSRGraph, GraphError

__all__ = ["dijkstra", "dijkstra_tree", "shortest_path"]


def dijkstra(
    g: CSRGraph,
    source: int,
    target: int | None = None,
) -> np.ndarray:
    """Distances from ``source`` to every vertex (``inf`` if unreachable).

    With ``target`` given, stops as soon as the target is settled; the
    remaining entries are then upper bounds, not exact distances.
    """
    dist = np.full(g.n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    indptr, indices, weights = g.indptr, g.indices, g.weights
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue  # stale heap entry (lazy deletion)
        if u == target:
            break
        for slot in range(indptr[u], indptr[u + 1]):
            v = int(indices[slot])
            nd = d + weights[slot]
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def dijkstra_tree(g: CSRGraph, source: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shortest-path tree from ``source``.

    Returns
    -------
    (dist, parent, parent_edge):
        ``parent[v]`` is the predecessor of ``v`` on a shortest path
        (``-1`` for the source and unreachable vertices); ``parent_edge[v]``
        the canonical edge id used.  Ties are broken by heap order, so the
        tree is deterministic for a given graph.
    """
    n = g.n
    dist = np.full(n, np.inf, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    indptr, indices, weights, eids = g.indptr, g.indices, g.weights, g.csr_eid
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for slot in range(indptr[u], indptr[u + 1]):
            v = int(indices[slot])
            nd = d + weights[slot]
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                parent_edge[v] = eids[slot]
                heapq.heappush(heap, (nd, v))
    return dist, parent, parent_edge


def shortest_path(g: CSRGraph, source: int, target: int) -> tuple[float, list[int]]:
    """``(distance, vertex path)`` from source to target.

    The path is empty when the target is unreachable.
    """
    dist, parent, _ = dijkstra_tree(g, source)
    if not np.isfinite(dist[target]):
        return float("inf"), []
    path = [target]
    # A well-formed parent chain reaches the source in < n hops; anything
    # longer means the parent array is corrupted (a cycle or a stray -1),
    # so raise instead of walking forever.
    while path[-1] != source:
        if len(path) > g.n:
            raise GraphError(
                f"parent chain from {target} exceeds {g.n} hops — corrupted tree"
            )
        nxt = int(parent[path[-1]])
        if nxt < 0:
            raise GraphError(
                f"parent chain from {target} hit -1 before reaching {source}"
            )
        path.append(nxt)
    path.reverse()
    return float(dist[target]), path
