"""Frontier-relaxation SSSP — the Harish–Narayanan CUDA kernel, vectorized.

The GPU SSSP the paper uses for Phase II ("the GPU implementation of
Dijkstra's algorithm due to Harish et al. [16]") is not a heap Dijkstra:
it is an iterative *frontier relaxation*.  Each kernel launch relaxes all
edges out of the current frontier mask in parallel and builds the next
frontier from the vertices whose tentative distance improved.

This module executes that exact algorithm with numpy doing the per-launch
data parallelism, and reports the launch/edge counters that the simulated
GPU device (:mod:`repro.hetero.simt`) converts into virtual time — so the
simulated GPU runs the *real* algorithm with a modeled clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["FrontierStats", "frontier_sssp", "frontier_sssp_batch"]


@dataclass
class FrontierStats:
    """Work counters of one frontier SSSP run (consumed by the cost model)."""

    launches: int = 0
    edges_relaxed: int = 0
    frontier_total: int = 0

    def merge(self, other: "FrontierStats") -> None:
        self.launches += other.launches
        self.edges_relaxed += other.edges_relaxed
        self.frontier_total += other.frontier_total


def frontier_sssp(
    g: CSRGraph,
    source: int,
    stats: FrontierStats | None = None,
) -> np.ndarray:
    """SSSP by repeated frontier relaxation (Harish & Narayanan style).

    Terminates when the frontier empties; with positive weights this takes
    at most ``n`` launches and computes exact distances.
    """
    n = g.n
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True
    indptr, indices, weights = g.indptr, g.indices, g.weights
    while frontier.any():
        active = np.nonzero(frontier)[0]
        # Gather all outgoing CSR slots of the frontier in one shot.
        starts = indptr[active]
        ends = indptr[active + 1]
        counts = ends - starts
        total = int(counts.sum())
        if stats is not None:
            stats.launches += 1
            stats.edges_relaxed += total
            stats.frontier_total += int(active.size)
        if total == 0:
            break
        # slot indices: ragged gather flattened with repeat/arange trick.
        offsets = np.repeat(starts - np.concatenate([[0], np.cumsum(counts)[:-1]]), counts)
        slots = np.arange(total, dtype=np.int64) + offsets
        srcs = np.repeat(active, counts)
        cand = dist[srcs] + weights[slots]
        targets = indices[slots]
        old = dist[targets].copy()
        np.minimum.at(dist, targets, cand)
        improved = np.zeros(n, dtype=bool)
        improved_targets = targets[dist[targets] < old]
        improved[improved_targets] = True
        frontier = improved
    return dist


def frontier_sssp_batch(
    g: CSRGraph,
    sources: np.ndarray,
    stats: FrontierStats | None = None,
) -> np.ndarray:
    """Run :func:`frontier_sssp` from many sources; rows follow ``sources``.

    On a real GPU the sources would be grid blocks; here they simply loop,
    with the counters accumulating across the batch.
    """
    out = np.empty((len(sources), g.n), dtype=np.float64)
    for i, s in enumerate(sources):
        out[i] = frontier_sssp(g, int(s), stats=stats)
    return out
