"""Vectorized Bellman–Ford.

Kept as a correctness baseline and as the fallback SSSP for graphs whose
weights an adversarial test sets to zero (Dijkstra handles zero weights
too, but Bellman–Ford is the classical reference).  Each relaxation round
is one fused numpy pass over all edges — the "one thread per edge" GPU
formulation of Harish & Narayanan [16].
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["bellman_ford"]


def bellman_ford(g: CSRGraph, source: int, max_rounds: int | None = None) -> np.ndarray:
    """Distances from ``source``; ``inf`` for unreachable vertices.

    Runs at most ``max_rounds`` (default ``n``) full-edge relaxation
    rounds, terminating early on a fixed point.
    """
    n = g.n
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    if g.m == 0:
        return dist
    eu, ev, ew = g.edge_u, g.edge_v, g.edge_w
    rounds = n if max_rounds is None else max_rounds
    for _ in range(rounds):
        old = dist.copy()
        cand_v = dist[eu] + ew
        cand_u = dist[ev] + ew
        np.minimum.at(dist, ev, cand_v)
        np.minimum.at(dist, eu, cand_u)
        if np.array_equal(
            np.nan_to_num(dist, posinf=-1.0), np.nan_to_num(old, posinf=-1.0)
        ):
            break
    return dist
