"""Delta-stepping SSSP (Meyer & Sanders).

The classic bucketed compromise between Dijkstra (work-efficient, serial)
and Bellman–Ford (parallel, work-heavy).  Included as a third SSSP kernel
for the heterogeneous executor: its bucket phases have the same
"launch a parallel relaxation round" shape as the frontier kernel but with
far fewer wasted relaxations on weighted graphs.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["delta_stepping"]


def delta_stepping(g: CSRGraph, source: int, delta: float | None = None) -> np.ndarray:
    """Distances from ``source`` with bucket width ``delta``.

    ``delta`` defaults to the mean edge weight, a standard heuristic.
    Light edges (w < delta) are relaxed iteratively inside the bucket;
    heavy edges once when the bucket settles.
    """
    n = g.n
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    if g.m == 0 or n == 0:
        return dist
    if delta is None:
        delta = float(g.edge_w.mean()) if g.m else 1.0
        delta = max(delta, 1e-12)

    indptr, indices, weights = g.indptr, g.indices, g.weights
    light_mask = weights < delta

    buckets: dict[int, set[int]] = {0: {source}}

    def bucket_id(d: float) -> int:
        return int(d / delta)

    def relax(v: int, nd: float) -> None:
        if nd < dist[v]:
            old = dist[v]
            if np.isfinite(old):
                b_old = bucket_id(float(old))
                buckets.get(b_old, set()).discard(v)
            dist[v] = nd
            buckets.setdefault(bucket_id(nd), set()).add(v)

    while buckets:
        i = min(buckets)
        settled: set[int] = set()
        # Phase 1: drain bucket i relaxing light edges (may reinsert).
        while buckets.get(i):
            current = buckets.pop(i)
            settled |= current
            for u in current:
                du = float(dist[u])
                for slot in range(indptr[u], indptr[u + 1]):
                    if light_mask[slot]:
                        relax(int(indices[slot]), du + float(weights[slot]))
            if i in buckets and not buckets[i]:
                del buckets[i]
        buckets.pop(i, None)
        # Phase 2: relax heavy edges of everything settled in bucket i.
        for u in settled:
            du = float(dist[u])
            for slot in range(indptr[u], indptr[u + 1]):
                if not light_mask[slot]:
                    relax(int(indices[slot]), du + float(weights[slot]))
        # Drop emptied buckets so `min` stays correct.
        for key in [k for k, s in buckets.items() if not s]:
            del buckets[key]
    return dist
