"""Delta-stepping SSSP (Meyer & Sanders), with array-based buckets.

The classic bucketed compromise between Dijkstra (work-efficient, serial)
and Bellman–Ford (parallel, work-heavy).  Included as a third SSSP kernel
for the heterogeneous executor: its bucket phases have the same
"launch a parallel relaxation round" shape as the frontier kernel but with
far fewer wasted relaxations on weighted graphs.

Buckets are represented as one integer array (``bucket_of[v]`` is the
bucket id of every queued vertex, ``-1`` when not queued) instead of a
dict of Python sets.  A bucket drain is then: select the bucket's
vertices with one mask, gather all their outgoing CSR slots with the
repeat/arange trick (as :mod:`repro.sssp.frontier` does per round), relax
every edge with ``np.minimum.at``, and re-bucket the improved vertices
with one ``np.floor_divide`` — a handful of array passes per round, no
per-edge Python.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..obs import metrics as _metrics

__all__ = ["delta_stepping"]

_C_ROUNDS = _metrics.counter("delta.bucket_rounds")
_C_RELAX = _metrics.counter("delta.edges_relaxed")


def _gather_slots(
    indptr: np.ndarray, active: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All CSR slots of ``active`` vertices: ``(slots, source per slot)``."""
    starts = indptr[active]
    counts = indptr[active + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    offsets = np.repeat(
        starts - np.concatenate([[0], np.cumsum(counts)[:-1]]), counts
    )
    slots = np.arange(total, dtype=np.int64) + offsets
    srcs = np.repeat(active, counts)
    return slots, srcs


def delta_stepping(g: CSRGraph, source: int, delta: float | None = None) -> np.ndarray:
    """Distances from ``source`` with bucket width ``delta``.

    ``delta`` defaults to the mean edge weight, a standard heuristic.
    Light edges (w < delta) are relaxed iteratively inside the bucket;
    heavy edges once when the bucket settles.
    """
    n = g.n
    dist = np.full(n, np.inf, dtype=np.float64)
    if n == 0:
        return dist
    dist[source] = 0.0
    if g.m == 0:
        return dist
    if delta is None:
        delta = float(g.edge_w.mean()) if g.m else 1.0
        delta = max(delta, 1e-12)

    indptr, indices, weights = g.indptr, g.indices, g.weights
    light_mask = weights < delta

    # bucket_of[v]: integer bucket id while v is queued, -1 otherwise.
    bucket_of = np.full(n, -1, dtype=np.int64)
    bucket_of[source] = 0

    def relax(slots: np.ndarray, srcs: np.ndarray) -> None:
        """Relax the given CSR slots in bulk and re-bucket improvements."""
        if slots.size == 0:
            return
        _C_RELAX.inc(int(slots.size))
        targets = indices[slots]
        cand = dist[srcs] + weights[slots]
        old = dist[targets].copy()
        np.minimum.at(dist, targets, cand)
        improved = np.unique(targets[dist[targets] < old])
        if improved.size:
            bucket_of[improved] = np.floor_divide(dist[improved], delta).astype(
                np.int64
            )

    while True:
        queued = bucket_of >= 0
        if not queued.any():
            break
        i = int(bucket_of[queued].min())
        settled = np.zeros(n, dtype=bool)
        # Phase 1: drain bucket i relaxing light edges (may reinsert).
        while True:
            current = np.nonzero(bucket_of == i)[0]
            if current.size == 0:
                break
            _C_ROUNDS.inc()
            bucket_of[current] = -1
            settled[current] = True
            slots, srcs = _gather_slots(indptr, current)
            light = light_mask[slots]
            relax(slots[light], srcs[light])
        # Phase 2: relax heavy edges of everything settled in bucket i.
        slots, srcs = _gather_slots(indptr, np.nonzero(settled)[0])
        heavy = ~light_mask[slots]
        relax(slots[heavy], srcs[heavy])
    return dist
