"""Bidirectional Dijkstra for point-to-point queries.

A classic complement to the oracle machinery: when only a handful of
``s → t`` queries is needed and no preprocessing is worthwhile, meeting
two search frontiers in the middle typically settles far fewer vertices
than a full one-sided run.  Exactness holds for non-negative weights with
the standard ``top(F) + top(B) ≥ μ`` stopping rule.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["bidirectional_dijkstra"]


def bidirectional_dijkstra(
    g: CSRGraph, source: int, target: int
) -> tuple[float, list[int]]:
    """``(distance, vertex path)``; ``(inf, [])`` when disconnected."""
    if source == target:
        return 0.0, [int(source)]
    n = g.n
    indptr, indices, weights = g.indptr, g.indices, g.weights

    dist = [np.full(n, np.inf), np.full(n, np.inf)]
    parent = [np.full(n, -1, dtype=np.int64), np.full(n, -1, dtype=np.int64)]
    settled = [np.zeros(n, dtype=bool), np.zeros(n, dtype=bool)]
    heaps: list[list[tuple[float, int]]] = [[(0.0, source)], [(0.0, target)]]
    dist[0][source] = 0.0
    dist[1][target] = 0.0

    best = np.inf
    meet = -1
    side = 0
    while heaps[0] and heaps[1]:
        # Stop once the two frontier minima cannot improve the meeting.
        top = heaps[0][0][0] + heaps[1][0][0]
        if top >= best:
            break
        side = 0 if heaps[0][0][0] <= heaps[1][0][0] else 1
        d, u = heapq.heappop(heaps[side])
        if settled[side][u] or d > dist[side][u]:
            continue
        settled[side][u] = True
        for slot in range(indptr[u], indptr[u + 1]):
            v = int(indices[slot])
            nd = d + weights[slot]
            if nd < dist[side][v]:
                dist[side][v] = nd
                parent[side][v] = u
                heapq.heappush(heaps[side], (nd, v))
            cand = dist[side][v] + dist[1 - side][v]
            if cand < best:
                best = float(cand)
                meet = v
    if not np.isfinite(best):
        return float("inf"), []

    fwd = [meet]
    while fwd[-1] != source:
        fwd.append(int(parent[0][fwd[-1]]))
    fwd.reverse()
    cur = meet
    while cur != target:
        cur = int(parent[1][cur])
        fwd.append(cur)
    return best, fwd
