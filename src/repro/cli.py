"""``repro-bench`` — regenerate the paper's tables and figures from the CLI.

Examples
--------
::

    repro-bench table1
    repro-bench fig2 --scale 0.03
    repro-bench table2 --datasets nopoly as-22july06
    repro-bench all --scale 0.02
    repro-bench profile apsp --trace-out trace.json
    repro-bench profile mcb --datasets nopoly --scale 0.02
"""

from __future__ import annotations

import argparse
import sys

from .bench import expected
from .bench.harness import (
    ear_speedup_by_impl,
    run_fig2,
    run_fig3,
    run_fig5,
    run_fig6,
    run_phase_breakdown,
    run_table1,
    run_table2,
)
from .bench.metrics import geometric_mean
from .bench.reporting import format_kv, format_table, ratio_note

__all__ = ["main"]


def _cmd_table1(args) -> None:
    rows = run_table1(scale=args.scale, names=args.datasets)
    print(
        format_table(
            ["graph", "|V|", "|E|", "#BCC", "largest%", "removed%", "ours MB", "max MB"],
            [
                (
                    r.name,
                    r.n,
                    r.m,
                    r.n_bcc,
                    r.largest_bcc_pct,
                    r.nodes_removed_pct,
                    r.ours_mb,
                    r.max_mb,
                )
                for r in rows
            ],
            title="Table 1 — dataset structure and APSP memory model",
        )
    )


def _cmd_fig2(args) -> None:
    rows = run_fig2(scale=args.scale, names=args.datasets)
    print(
        format_table(
            ["graph", "kind", "baseline", "t_ours(s)", "t_base(s)", "speedup", "removed%"],
            [
                (r.name, r.kind, r.baseline, r.t_ours, r.t_baseline, r.speedup, r.nodes_removed_pct)
                for r in rows
            ],
            title="Figure 2 — APSP: Our Approach vs baselines",
        )
    )
    gen = geometric_mean(r.speedup for r in rows if r.kind == "general")
    pla = geometric_mean(r.speedup for r in rows if r.kind == "planar")
    print()
    print(ratio_note("avg speedup vs Banerjee (general)", expected.FIG2_AVG_SPEEDUP["vs_banerjee_general"], gen))
    print(ratio_note("avg speedup vs Djidjev (planar)", expected.FIG2_AVG_SPEEDUP["vs_djidjev_planar"], pla))
    if args.mteps:
        print()
        mrows = run_fig3(rows)
        print(
            format_table(
                ["graph", "kind", "MTEPS ours", "MTEPS baseline"],
                [(d["name"], d["kind"], d["mteps_ours"], d["mteps_baseline"]) for d in mrows],
                title="Figure 3 — MTEPS",
            )
        )


def _cmd_table2(args) -> None:
    rows = run_table2(scale=args.scale, names=args.datasets)
    body = []
    for r in rows:
        body.append(
            (
                r.name,
                r.f,
                *(x for p in ("sequential", "multicore", "gpu", "cpu+gpu") for x in r.seconds[p]),
            )
        )
    print(
        format_table(
            ["graph", "f", "seq w", "seq w/o", "mc w", "mc w/o", "gpu w", "gpu w/o", "het w", "het w/o"],
            body,
            title="Table 2 — MCB virtual seconds (w = with ear decomposition)",
        )
    )
    print()
    sp = run_fig5(rows)
    for name, val in sp.items():
        print(ratio_note(f"Fig5 {name} speedup over sequential", expected.FIG5_AVG_SPEEDUP[name], val))
    print()
    for name, val in ear_speedup_by_impl(rows).items():
        print(ratio_note(f"ear speedup on {name}", expected.EAR_SPEEDUP_BY_IMPL[name], val))
    if args.fig6:
        print()
        print(
            format_table(
                ["graph", "sequential", "multicore", "gpu", "cpu+gpu"],
                [(d["name"], d["sequential"], d["multicore"], d["gpu"], d["cpu+gpu"]) for d in run_fig6(rows)],
                title="Figure 6 — absolute virtual seconds (with ear)",
            )
        )


def _cmd_phases(args) -> None:
    name = (args.datasets or ["cond_mat_2003"])[0]
    frac = run_phase_breakdown(name, scale=args.scale)
    print(format_kv(frac, title=f"MCB phase shares on {name} (model)"))
    print()
    for k, v in expected.PHASE_FRACTIONS.items():
        print(ratio_note(f"{k} share", v, frac.get(k, 0.0)))


def _cmd_datasets(args) -> None:
    from . import datasets
    from .graph.stats import table1_row

    rows = []
    for spec in datasets.TABLE1:
        if args.datasets and spec.name not in args.datasets:
            continue
        g = spec.generate(args.scale)
        st = table1_row(g, spec.name)
        rows.append(
            (spec.name, "planar" if spec.planar else "general", st.n, st.m,
             st.n_bcc, st.nodes_removed_pct, spec.removed_pct)
        )
    print(
        format_table(
            ["dataset", "kind", "|V|", "|E|", "#BCC", "removed%", "paper removed%"],
            rows,
            title=f"Table-1 stand-ins (scale={args.scale or 'default'})",
        )
    )


def _cmd_qa(args) -> None:
    from .obs import snapshot
    from .qa.differential import run_suite
    from .sssp.engine import adjacency_cache

    reports = run_suite(
        count=args.qa_count,
        seed=args.qa_seed,
        artifacts_dir=args.qa_artifacts,
    )
    failed = False
    for rep in reports.values():
        print(rep.summary())
        print()
        failed |= not rep.ok
    info = adjacency_cache().info()
    total = info.hits + info.misses
    rate = 100.0 * info.hits / total if total else 0.0
    print(
        f"adjacency cache: {info.hits} hits / {info.misses} misses "
        f"({rate:.1f}% hit rate, {info.size}/{info.maxsize} entries)"
    )
    counters = snapshot("engine.")
    counters.update(snapshot("qa."))
    print("counters: " + ", ".join(f"{k}={v}" for k, v in counters.items()))
    if failed:
        print("conformance FAILED — disagreeing graphs serialized above")
        raise SystemExit(1)
    print("conformance OK")


def _cmd_profile(args) -> None:
    """``repro-bench profile <workload>`` — trace one pipeline end to end.

    Runs the named workload under a fresh trace collector (ambient
    ``REPRO_TRACE`` is not required), writes a Chrome ``trace_event`` JSON
    when ``--trace-out`` is given, and prints the per-phase summary plus
    the counter table.
    """
    import numpy as np

    from . import datasets
    from .obs import snapshot, summary, tracing
    from .obs.metrics import metrics_diff

    workload = args.workload or "apsp"
    name = (args.datasets or ["OPF_3754"])[0]
    g = datasets.load(name, args.scale)
    before = snapshot()
    with tracing() as tr:
        if workload in ("apsp", "both"):
            from .hetero.apsp_runner import apsp_with_trace
            from .hetero.parallel import ParallelEngine

            apsp_with_trace(g)
            # A short parallel-backend burst so the trace carries
            # per-worker tracks alongside the serial pipeline spans.
            with ParallelEngine(g, workers=args.workers) as eng:
                eng.multi_source(np.arange(min(g.n, 128), dtype=np.int64))
        if workload in ("mcb", "both"):
            from .hetero.mcb_runner import mcb_with_trace

            mcb_with_trace(g)
    if args.trace_out:
        tr.write_chrome(args.trace_out)
        print(f"wrote Chrome trace to {args.trace_out} "
              f"({len(tr)} spans; open in chrome://tracing or ui.perfetto.dev)")
        print()
    print(f"profile of {workload!r} on {name} (n={g.n}, m={g.m})")
    print()
    print(summary(tr, metrics_diff(before, snapshot())))


def _cmd_all(args) -> None:
    for fn in (_cmd_table1, _cmd_fig2, _cmd_table2, _cmd_phases):
        fn(args)
        print("\n" + "=" * 72 + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables/figures of the ear-decomposition paper.",
    )
    parser.add_argument(
        "command",
        choices=["table1", "fig2", "table2", "phases", "datasets", "qa", "profile", "all"],
    )
    parser.add_argument(
        "workload",
        nargs="?",
        default=None,
        choices=["apsp", "mcb", "both"],
        help="profile: which pipeline to trace (default apsp)",
    )
    parser.add_argument("--scale", type=float, default=None, help="dataset scale factor")
    parser.add_argument("--datasets", nargs="*", default=None, help="restrict to named datasets")
    parser.add_argument("--mteps", action="store_true", help="also print Figure 3 (fig2)")
    parser.add_argument("--fig6", action="store_true", help="also print Figure 6 (table2)")
    parser.add_argument("--qa-count", type=int, default=200, help="qa: corpus size")
    parser.add_argument("--qa-seed", type=int, default=0, help="qa: corpus seed")
    parser.add_argument(
        "--qa-artifacts",
        default=None,
        help="qa: directory for disagreeing-graph repro files (default: REPRO_QA_ARTIFACTS)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="profile: path for the Chrome trace_event JSON",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="profile: worker count for the parallel-backend burst",
    )
    args = parser.parse_args(argv)
    {
        "table1": _cmd_table1,
        "fig2": _cmd_fig2,
        "table2": _cmd_table2,
        "phases": _cmd_phases,
        "datasets": _cmd_datasets,
        "qa": _cmd_qa,
        "profile": _cmd_profile,
        "all": _cmd_all,
    }[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
