"""``repro-bench`` — regenerate the paper's tables and figures from the CLI.

Examples
--------
::

    repro-bench table1
    repro-bench fig2 --scale 0.03
    repro-bench table2 --datasets nopoly as-22july06
    repro-bench all --scale 0.02
    repro-bench profile apsp --trace-out trace.json
    repro-bench profile apsp --events-out run-events --ledger RUN_LEDGER.jsonl
    repro-bench profile mcb --datasets nopoly --scale 0.02
    repro-bench regress --baseline BENCH_BASELINE.json --ledger BENCH_LEDGER.jsonl
    repro-bench regress --trace-a before.json --trace-b after.json
    repro-bench watch --once --events run-events
    repro-bench report --ledger RUN_LEDGER.jsonl --out run-report.html
    repro-bench critpath --trace trace.json --events run-events
    repro-bench critpath --json --out critpath.json --ledger RUN_LEDGER.jsonl
    repro-bench scenarios --config examples/scenario_smoke.json
    repro-bench scenarios --scenario clean-theta-apsp tight-deadline-query
    repro-bench slo --events scenario-events/clean-theta-apsp --budgets b.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .bench import expected
from .bench.harness import (
    ear_speedup_by_impl,
    run_fig2,
    run_fig3,
    run_fig5,
    run_fig6,
    run_phase_breakdown,
    run_table1,
    run_table2,
)
from .bench.metrics import geomean
from .bench.reporting import format_kv, format_table, ratio_note

__all__ = ["main"]


def _cmd_table1(args) -> None:
    rows = run_table1(scale=args.scale, names=args.datasets)
    print(
        format_table(
            ["graph", "|V|", "|E|", "#BCC", "largest%", "removed%", "ours MB", "max MB"],
            [
                (
                    r.name,
                    r.n,
                    r.m,
                    r.n_bcc,
                    r.largest_bcc_pct,
                    r.nodes_removed_pct,
                    r.ours_mb,
                    r.max_mb,
                )
                for r in rows
            ],
            title="Table 1 — dataset structure and APSP memory model",
        )
    )


def _cmd_fig2(args) -> None:
    rows = run_fig2(scale=args.scale, names=args.datasets)
    print(
        format_table(
            ["graph", "kind", "baseline", "t_ours(s)", "t_base(s)", "speedup", "removed%"],
            [
                (r.name, r.kind, r.baseline, r.t_ours, r.t_baseline, r.speedup, r.nodes_removed_pct)
                for r in rows
            ],
            title="Figure 2 — APSP: Our Approach vs baselines",
        )
    )
    gen = [r.speedup for r in rows if r.kind == "general"]
    pla = [r.speedup for r in rows if r.kind == "planar"]
    print()
    # geomean() raises on empty input, so only summarize kinds that are
    # actually present in the (possibly --datasets restricted) row set.
    if gen:
        print(ratio_note("avg speedup vs Banerjee (general)", expected.FIG2_AVG_SPEEDUP["vs_banerjee_general"], geomean(gen)))
    if pla:
        print(ratio_note("avg speedup vs Djidjev (planar)", expected.FIG2_AVG_SPEEDUP["vs_djidjev_planar"], geomean(pla)))
    if args.mteps:
        print()
        mrows = run_fig3(rows)
        print(
            format_table(
                ["graph", "kind", "MTEPS ours", "MTEPS baseline"],
                [(d["name"], d["kind"], d["mteps_ours"], d["mteps_baseline"]) for d in mrows],
                title="Figure 3 — MTEPS",
            )
        )


def _cmd_table2(args) -> None:
    rows = run_table2(scale=args.scale, names=args.datasets)
    body = []
    for r in rows:
        body.append(
            (
                r.name,
                r.f,
                *(x for p in ("sequential", "multicore", "gpu", "cpu+gpu") for x in r.seconds[p]),
            )
        )
    print(
        format_table(
            ["graph", "f", "seq w", "seq w/o", "mc w", "mc w/o", "gpu w", "gpu w/o", "het w", "het w/o"],
            body,
            title="Table 2 — MCB virtual seconds (w = with ear decomposition)",
        )
    )
    print()
    sp = run_fig5(rows)
    for name, val in sp.items():
        print(ratio_note(f"Fig5 {name} speedup over sequential", expected.FIG5_AVG_SPEEDUP[name], val))
    print()
    for name, val in ear_speedup_by_impl(rows).items():
        print(ratio_note(f"ear speedup on {name}", expected.EAR_SPEEDUP_BY_IMPL[name], val))
    if args.fig6:
        print()
        print(
            format_table(
                ["graph", "sequential", "multicore", "gpu", "cpu+gpu"],
                [(d["name"], d["sequential"], d["multicore"], d["gpu"], d["cpu+gpu"]) for d in run_fig6(rows)],
                title="Figure 6 — absolute virtual seconds (with ear)",
            )
        )


def _cmd_phases(args) -> None:
    name = (args.datasets or ["cond_mat_2003"])[0]
    frac = run_phase_breakdown(name, scale=args.scale)
    print(format_kv(frac, title=f"MCB phase shares on {name} (model)"))
    print()
    for k, v in expected.PHASE_FRACTIONS.items():
        print(ratio_note(f"{k} share", v, frac.get(k, 0.0)))


def _cmd_datasets(args) -> None:
    from . import datasets
    from .graph.stats import table1_row

    rows = []
    for spec in datasets.TABLE1:
        if args.datasets and spec.name not in args.datasets:
            continue
        g = spec.generate(args.scale)
        st = table1_row(g, spec.name)
        rows.append(
            (spec.name, "planar" if spec.planar else "general", st.n, st.m,
             st.n_bcc, st.nodes_removed_pct, spec.removed_pct)
        )
    print(
        format_table(
            ["dataset", "kind", "|V|", "|E|", "#BCC", "removed%", "paper removed%"],
            rows,
            title=f"Table-1 stand-ins (scale={args.scale or 'default'})",
        )
    )


def _resolve_ledger(args):
    """The run ledger to append to: ``--ledger`` flag or ``REPRO_LEDGER``."""
    from .obs.ledger import Ledger, default_ledger_path

    path = Path(args.ledger) if getattr(args, "ledger", None) else default_ledger_path()
    return Ledger(path) if path is not None else None


def _cmd_qa(args) -> None:
    import time as _time

    from .obs import metrics_diff, snapshot
    from .qa.differential import run_suite
    from .sssp.engine import adjacency_cache

    before = snapshot()
    t0 = _time.perf_counter()
    reports = run_suite(
        count=args.qa_count,
        seed=args.qa_seed,
        artifacts_dir=args.qa_artifacts,
    )
    qa_seconds = _time.perf_counter() - t0
    failed = False
    for rep in reports.values():
        print(rep.summary())
        print()
        failed |= not rep.ok
    info = adjacency_cache().info()
    total = info.hits + info.misses
    rate = 100.0 * info.hits / total if total else 0.0
    print(
        f"adjacency cache: {info.hits} hits / {info.misses} misses "
        f"({rate:.1f}% hit rate, {info.size}/{info.maxsize} entries)"
    )
    counters = snapshot("engine.")
    counters.update(snapshot("qa."))
    print("counters: " + ", ".join(f"{k}={v}" for k, v in counters.items()))
    ledger = _resolve_ledger(args)
    if ledger is not None:
        from .obs.ledger import RunRecord

        ledger.append(
            RunRecord.new(
                kind="qa",
                phases={"qa.suite": qa_seconds},
                counters={
                    k: v
                    for k, v in metrics_diff(before, snapshot()).items()
                    if not isinstance(v, dict)
                },
                meta={
                    "count": args.qa_count,
                    "seed": args.qa_seed,
                    "ok": not failed,
                },
            )
        )
        print(f"ledger: appended qa record to {ledger.path}")
    if failed:
        print("conformance FAILED — disagreeing graphs serialized above")
        raise SystemExit(1)
    print("conformance OK")


def _print_table1_measured(name: str, g, mem_gauges: dict) -> None:
    """The measured-vs-model Table 1 block of ``profile apsp``.

    Prints distance-table bytes for the per-BCC oracle (``a² + Σ nᵢ²``),
    the ear-reduced oracle, and the dense ``n²`` matrix — the model from
    the decompositions alongside the bytes actually allocated this run.
    """
    from .obs.memory import format_bytes, table1_bytes

    tb = table1_bytes(g, name=name)
    meas_comp = mem_gauges.get("memory.apsp.component_table_bytes", 0.0)
    meas_ap = mem_gauges.get("memory.apsp.ap_table_bytes", 0.0)
    meas_oracle = mem_gauges.get("memory.apsp.oracle_bytes", 0.0)
    meas_reduced = mem_gauges.get("memory.apsp.reduced_table_bytes", 0.0)
    meas_dense = mem_gauges.get("memory.apsp.dense_bytes", 0.0)
    print(
        format_table(
            ["distance storage", "model bytes", "measured bytes", "human"],
            [
                ("component tables (Σ nᵢ²)", tb.component_bytes,
                 int(meas_comp), format_bytes(meas_comp or tb.component_bytes)),
                ("articulation table (a²)", tb.ap_bytes,
                 int(meas_ap), format_bytes(meas_ap or tb.ap_bytes)),
                ("oracle total (a² + Σ nᵢ²)", tb.oracle_bytes,
                 int(meas_oracle), format_bytes(meas_oracle or tb.oracle_bytes)),
                ("reduced oracle (ear)", tb.reduced_oracle_bytes,
                 int(meas_reduced), format_bytes(meas_reduced or tb.reduced_oracle_bytes)),
                ("dense matrix (n²)", tb.dense_bytes,
                 int(meas_dense), format_bytes(meas_dense or tb.dense_bytes)),
            ],
            title=(
                f"Table 1 (measured) — {name}: n={tb.n}, #BCC={tb.n_bcc}, "
                f"a={tb.n_articulation}"
            ),
        )
    )
    rel = "<" if tb.oracle_bytes < tb.dense_bytes else ">="
    print(
        f"shape: a² + Σ nᵢ² = {tb.oracle_bytes} {rel} n² = {tb.dense_bytes} "
        f"(saving {tb.saving_factor:.2f}x; reduced oracle "
        f"{tb.dense_bytes / max(tb.reduced_oracle_bytes, 1):.2f}x)"
    )


def _cmd_profile(args) -> None:
    """``repro-bench profile <workload>`` — trace one pipeline end to end.

    Runs the named workload under a fresh trace collector *and* a memory
    profile (ambient ``REPRO_TRACE`` is not required), writes a Chrome
    ``trace_event`` JSON when ``--trace-out`` is given (with the
    simulated platform's virtual device clocks as extra tracks), records
    a structured event stream when ``--events-out`` is given, and prints
    the per-phase wall/memory summaries, the counter table, and — for the
    APSP workload — the measured Table 1 byte accounting.  With a ledger
    configured (``--ledger`` or ``REPRO_LEDGER``) the run is appended as
    a schema-versioned record that also points at the event stream and
    trace file, so ``repro-bench report`` can reassemble the run later.
    """
    import contextlib

    import numpy as np

    from . import datasets
    from .obs import (
        format_bytes,
        memory_profiling,
        phase_totals,
        snapshot,
        summary,
        tracing,
    )
    from .obs.events import events_to
    from .obs.metrics import metrics_diff

    workload = args.workload or "apsp"
    name = (args.datasets or ["OPF_3754"])[0]
    g = datasets.load(name, args.scale)
    before = snapshot()
    clocks: dict | None = None
    ev_ctx = events_to(args.events_out) if args.events_out else contextlib.nullcontext()
    sample_hz = getattr(args, "sample_hz", None)
    if sample_hz:
        from .obs.sampler import sampling_to

        profile_dir = getattr(args, "profile_out", None) or "repro-profile"
        smp_ctx = sampling_to(profile_dir, hz=sample_hz)
    else:
        profile_dir = None
        smp_ctx = contextlib.nullcontext()
    with ev_ctx, smp_ctx, tracing() as tr, memory_profiling() as mp:
        if workload in ("apsp", "both"):
            from .hetero.apsp_runner import apsp_with_trace
            from .hetero.executor import Platform
            from .hetero.parallel import ParallelEngine
            from .hetero.trace import simulate_trace

            _, work_trace = apsp_with_trace(g)
            # A short parallel-backend burst so the trace carries
            # per-worker tracks alongside the serial pipeline spans.
            with ParallelEngine(g, workers=args.workers) as eng:
                eng.multi_source(np.arange(min(g.n, 128), dtype=np.int64))
            # Replay on the simulated CPU+GPU platform with per-interval
            # clock accounting: the virtual device tracks ride along in
            # the Chrome trace (and the report's occupancy timeline).
            platform = Platform.heterogeneous()
            simulate_trace(work_trace, platform, record_samples=True)
            clocks = {d.name: d.clock for d in platform.devices}
        if workload in ("mcb", "both"):
            from .hetero.mcb_runner import mcb_with_trace

            mcb_with_trace(g)
    counters = metrics_diff(before, snapshot())
    if args.events_out:
        from .obs.events import EventLog

        log = EventLog(args.events_out)
        n_events = len(log.read())
        print(f"wrote {n_events} events to {args.events_out}/ "
              f"({len(log.shards())} shard(s); view with repro-bench watch --once)")
    if profile_dir:
        from .obs.sampler import read_profile

        merged = read_profile(profile_dir)
        print(
            f"sampler: {sum(merged.values())} samples / "
            f"{len(merged)} unique stack(s) at {sample_hz:g} Hz -> "
            f"{profile_dir}/ (collapsed-stack shards; feed to flamegraph.pl)"
        )
    if args.trace_out:
        tr.write_chrome(args.trace_out, clocks=clocks)
        print(f"wrote Chrome trace to {args.trace_out} "
              f"({len(tr)} spans; open in chrome://tracing or ui.perfetto.dev)")
        print()
    print(f"profile of {workload!r} on {name} (n={g.n}, m={g.m})")
    print()
    print(summary(tr, counters))
    print()
    # Critical-path headline (full tables via ``repro-bench critpath``).
    from .obs.critpath import analyze_collector

    cp = analyze_collector(tr)
    print(
        f"critical path: {cp.total_ns / 1e9:.6f} s over {cp.span_count} "
        f"span(s); parallel efficiency {cp.parallel_efficiency:.3f}; "
        f"{cp.stragglers} straggler(s) "
        "(details: repro-bench critpath)"
    )
    print()
    mem = mp.as_dict()
    if mem:
        print(
            format_table(
                ["memory span", "count", "alloc Δ", "alloc peak", "rss peak"],
                [
                    (
                        phase,
                        row["count"],
                        format_bytes(row["delta_bytes"]),
                        format_bytes(row["peak_bytes"]),
                        "-" if row["rss_peak_bytes"] is None
                        else format_bytes(row["rss_peak_bytes"]),
                    )
                    for phase, row in mem.items()
                ],
                title="per-phase memory (tracemalloc; RSS is a process high-water)",
            )
        )
        print()
    memory_block = {"spans": mem, "gauges": snapshot("memory.")}
    if workload in ("apsp", "both"):
        _print_table1_measured(name, g, snapshot("memory."))
        from .obs.memory import table1_bytes

        memory_block["table1_model"] = table1_bytes(g, name=name).as_dict()
    ledger = _resolve_ledger(args)
    if ledger is not None:
        from .obs.ledger import RunRecord

        # events_dir / trace_path are free-form meta keys: old readers
        # ignore them, the report command uses them to locate this run's
        # event stream and Chrome trace from the ledger alone.
        meta = {"workload": workload, "dataset": name, "scale": args.scale}
        if args.events_out:
            meta["events_dir"] = str(Path(args.events_out).resolve())
        if args.trace_out:
            meta["trace_path"] = str(Path(args.trace_out).resolve())
        if profile_dir:
            meta["profile_dir"] = str(Path(profile_dir).resolve())
            meta["sampler_hz"] = float(sample_hz)
        # The two critpath headline numbers ride in phases so the
        # regression gate holds the line on critical-path length and
        # parallel efficiency, not just aggregate phase medians.
        phases = dict(phase_totals(tr))
        phases["critpath.length_ns"] = float(cp.total_ns)
        phases["critpath.parallel_efficiency"] = float(cp.parallel_efficiency)
        ledger.append(
            RunRecord.new(
                kind="profile",
                phases=phases,
                counters={
                    k: v for k, v in counters.items() if not isinstance(v, dict)
                },
                memory=memory_block,
                meta=meta,
            )
        )
        print()
        print(f"ledger: appended profile record to {ledger.path}")


def _cmd_regress(args) -> None:
    """``repro-bench regress`` — the noise-aware benchmark gate.

    Compares a candidate run (``--candidate`` record, or a fresh
    median-of-``--repeats`` measurement of the profile workload) against
    the per-phase history assembled from the run ledger and/or a stamped
    ``BENCH_BASELINE.json``.  Exits 0 when no phase clears both the
    relative-tolerance and MAD noise bands, 1 on a confirmed regression,
    2 when there is no baseline data to compare against.  With
    ``--trace-a/--trace-b`` it instead diffs two Chrome trace files and
    reports which span moved.
    """
    from .obs.ledger import Ledger, RunRecord
    from .obs.regress import (
        compare,
        diff_chrome_traces,
        extract_phases,
        measure_profile_phases,
    )

    if args.trace_a or args.trace_b:
        if not (args.trace_a and args.trace_b):
            raise SystemExit("regress: --trace-a and --trace-b are both required")
        with open(args.trace_a) as fh:
            doc_a = json.load(fh)
        with open(args.trace_b) as fh:
            doc_b = json.load(fh)
        rows = diff_chrome_traces(doc_a, doc_b)
        print(
            format_table(
                ["span", "A (s)", "B (s)", "delta (s)", "B/A"],
                [
                    (r["name"], r["a_s"], r["b_s"], r["delta_s"], r["ratio"])
                    for r in rows
                ],
                title=f"Chrome-trace diff: {args.trace_a} -> {args.trace_b}",
            )
        )
        return

    history: dict[str, list[float]] = {}
    ledger = None
    if args.ledger:
        ledger = Ledger(args.ledger)
        history = ledger.phase_history(limit=args.history)
        if ledger.skipped:
            print(f"ledger: skipped {ledger.skipped} unreadable record(s)")
    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is not None and baseline_path.exists():
        with open(baseline_path) as fh:
            doc = json.load(fh)
        for phase, secs in extract_phases(doc).items():
            history.setdefault(phase, []).append(secs)
    if not history:
        print(
            "regress: no baseline data (no readable --ledger records and no "
            "--baseline file) — nothing to gate against"
        )
        raise SystemExit(2)

    if args.candidate:
        with open(args.candidate) as fh:
            candidate = extract_phases(json.load(fh))
        cand_desc = args.candidate
    else:
        workload = args.workload or "apsp"
        name = (args.datasets or ["OPF_3754"])[0]
        candidate = measure_profile_phases(
            workload=workload, dataset=name, scale=args.scale,
            repeats=args.repeats,
        )
        cand_desc = f"median of {args.repeats} fresh {workload!r} run(s) on {name}"
    print(f"candidate: {cand_desc}")
    print()
    report = compare(
        history,
        candidate,
        rel_tol=args.rel_tol,
        mad_k=args.mad_k,
        min_seconds=args.min_seconds,
        tail_rel_tol=args.tail_rel_tol,
    )
    print(report.render())
    if report.compared == 0:
        print("regress: baseline and candidate share no comparable phases")
        raise SystemExit(2)
    if args.record and ledger is not None:
        ledger.append(RunRecord.new(kind="regress", phases=candidate))
        print(f"ledger: appended candidate record to {ledger.path}")
    if not report.ok:
        raise SystemExit(1)


def _cmd_watch(args) -> None:
    """``repro-bench watch`` — live terminal view over an event stream.

    Renders one status frame per ``--interval`` seconds from the event
    directory (``--events``, or ``REPRO_EVENTS``): open pipeline phases,
    per-device queue grabs and shares, queue depth, sssp chunk
    throughput, and per-worker heartbeat ages with stall flags.
    ``--once`` renders a single frame and exits — recorded streams are
    rendered with end-of-run ages rather than wall-clock-since ages.
    """
    import time as _time

    from .obs.events import EventLog, default_events_dir
    from .obs.watch import render_status

    events_dir = args.events or default_events_dir()
    if events_dir is None:
        raise SystemExit(
            "watch: no event directory (pass --events DIR or set REPRO_EVENTS)"
        )
    log = EventLog(events_dir)
    if args.once:
        events = log.read()
        print(f"watching {events_dir} (single frame)")
        if not events:
            # A distinct exit code for "stream held nothing": CI can tell
            # a mis-pointed REPRO_EVENTS from a rendered-but-idle run.
            from .obs.slo import EXIT_EMPTY_STREAM
            from .obs.watch import empty_stream_hint

            print(empty_stream_hint(events_dir))
            if log.skipped:
                print(f"({log.skipped} unreadable line(s) skipped)")
            raise SystemExit(EXIT_EMPTY_STREAM)
        frame = render_status(events, stall_after=args.stall_after)
        print(frame)
        if log.skipped:
            print(f"({log.skipped} unreadable line(s) skipped)")
        return
    try:
        while True:
            frame = render_status(
                log.read(),
                now_ns=_time.perf_counter_ns(),
                stall_after=args.stall_after,
            )
            print("\x1b[2J\x1b[H", end="")  # clear screen, home cursor
            print(f"watching {events_dir} (ctrl-c to stop)")
            print(frame)
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        pass


def _cmd_report(args) -> None:
    """``repro-bench report`` — self-contained single-file HTML run report.

    Assembles the report sections from whatever inputs exist: the
    Chrome trace (``--trace``), the event stream (``--events``), and the
    run ledger (``--ledger`` / ``REPRO_LEDGER``) for counters, memory,
    history, and the regression verdict.  When a ledgered profile record
    carries ``events_dir`` / ``trace_path`` meta (written by ``profile``
    runs), those are used automatically unless overridden.
    """
    from .obs.events import EventLog
    from .obs.ledger import Ledger, default_ledger_path
    from .obs.report import validate_report, write_report

    record = None
    history = None
    ledger_path = Path(args.ledger) if args.ledger else default_ledger_path()
    if ledger_path is not None and Path(ledger_path).exists():
        ledger = Ledger(ledger_path)
        history = ledger.records(kind="profile") or None
        record = history[-1] if history else ledger.latest()
        if ledger.skipped:
            print(f"ledger: skipped {ledger.skipped} unreadable record(s)")

    trace_path = args.trace
    events_dir = args.events
    profile_dir = getattr(args, "profile", None)
    if record is not None:
        if trace_path is None:
            trace_path = record.meta.get("trace_path")
        if events_dir is None:
            events_dir = record.meta.get("events_dir")
        if profile_dir is None:
            profile_dir = record.meta.get("profile_dir")

    trace = None
    if trace_path and Path(trace_path).exists():
        with open(trace_path) as fh:
            trace = json.load(fh)
    events = None
    if events_dir and Path(events_dir).is_dir():
        log = EventLog(events_dir)
        events = log.read()
        if log.skipped:
            print(f"events: skipped {log.skipped} unreadable line(s)")
    profile = None
    if profile_dir and Path(profile_dir).is_dir():
        from .obs.sampler import read_profile

        profile = read_profile(profile_dir) or None

    title = "repro run report"
    if record is not None:
        wl = record.meta.get("workload")
        ds = record.meta.get("dataset")
        if wl or ds:
            title = f"repro run report — {wl or '?'} on {ds or '?'}"
    out = args.out or "run-report.html"
    write_report(
        out,
        title=title,
        trace=trace,
        events=events,
        record=record,
        history=history,
        profile=profile,
    )
    with open(out) as fh:
        problems = validate_report(fh.read())
    if problems:
        for p in problems:
            print(f"report INVALID: {p}")
        raise SystemExit(1)
    srcs = [
        f"trace={trace_path}" if trace is not None else None,
        f"events={events_dir}" if events is not None else None,
        f"profile={profile_dir}" if profile is not None else None,
        f"ledger={ledger_path}" if record is not None else None,
    ]
    print(f"wrote report to {out} ({', '.join(s for s in srcs if s) or 'no inputs'})")


def _cmd_critpath(args) -> None:
    """``repro-bench critpath`` — critical-path attribution over a trace.

    Reads a recorded Chrome trace (``--trace``, or the newest ledgered
    profile record's ``trace_path``) plus, when available, the matching
    event stream, and prints which spans actually bound end-to-end time:
    the critical path with per-category attribution, inclusive-vs-self
    rollups, per-dispatch straggler flags, per-worker busy/idle, and the
    Amdahl-style what-if estimates.  ``--json`` emits the full
    schema-versioned analysis instead of tables.  Exits 2 when the trace
    carries no analyzable spans.
    """
    from .obs.critpath import analyze_chrome, render_text
    from .obs.events import EventLog
    from .obs.ledger import Ledger, default_ledger_path

    trace_path = args.trace
    events_dir = args.events
    if trace_path is None or events_dir is None:
        ledger_path = Path(args.ledger) if args.ledger else default_ledger_path()
        if ledger_path is not None and Path(ledger_path).exists():
            ledger = Ledger(ledger_path)
            records = ledger.records(kind="profile")
            record = records[-1] if records else ledger.latest()
            if record is not None:
                if trace_path is None:
                    trace_path = record.meta.get("trace_path")
                if events_dir is None:
                    events_dir = record.meta.get("events_dir")
    if not trace_path or not Path(trace_path).exists():
        raise SystemExit(
            "critpath: no Chrome trace (pass --trace, or run "
            "repro-bench profile --trace-out with a ledger configured)"
        )
    with open(trace_path) as fh:
        trace = json.load(fh)
    events = None
    if events_dir and Path(events_dir).is_dir():
        log = EventLog(events_dir)
        events = log.read()
        if log.skipped and not args.json:
            print(f"events: skipped {log.skipped} unreadable line(s)")
    result = analyze_chrome(trace, events=events, straggler_k=args.straggler_k)
    if not result.span_count:
        print(f"critpath: {trace_path} carries no analyzable spans")
        raise SystemExit(2)
    if args.json:
        doc = json.dumps(result.as_dict(), indent=1)
        if args.out:
            Path(args.out).write_text(doc + "\n")
            print(f"wrote critpath analysis to {args.out}")
        else:
            print(doc)
        return
    print(f"critpath over {trace_path}"
          + (f" + {len(events)} event(s)" if events else ""))
    print()
    print(render_text(result))


def _cmd_slo(args) -> None:
    """``repro-bench slo`` — judge an event stream against SLO budgets.

    Reads the merged event stream (``--events`` / ``REPRO_EVENTS``),
    extracts per-phase/per-chunk/per-query latency distributions, and —
    when ``--budgets`` names a JSON budget list — gates them.  Exit
    codes: 0 all budgets met, 1 violated, 2 a budget named a metric the
    stream lacks, 3 the stream held no events at all.
    """
    from .obs.events import EventLog, default_events_dir
    from .obs.slo import (
        EXIT_EMPTY_STREAM,
        parse_budgets,
        slo_from_events,
    )
    from .obs.watch import empty_stream_hint

    events_dir = args.events or default_events_dir()
    if events_dir is None:
        raise SystemExit(
            "slo: no event directory (pass --events DIR or set REPRO_EVENTS)"
        )
    budgets = []
    if args.budgets:
        with open(args.budgets) as fh:
            doc = json.load(fh)
        if isinstance(doc, dict) and "scenarios" in doc:
            raise SystemExit(
                f"slo: {args.budgets} is a scenario-matrix config; run it "
                "with 'repro-bench scenarios --config', or point --budgets "
                "at a budget list / single scenario object"
            )
        if isinstance(doc, dict) and "slo" in doc:
            doc = doc["slo"]  # accept a single scenario object's slo block
        budgets = parse_budgets(doc)
    log = EventLog(events_dir)
    events = log.read()
    if log.skipped:
        print(f"events: skipped {log.skipped} unreadable line(s)")
    if not events:
        print(empty_stream_hint(events_dir))
        raise SystemExit(EXIT_EMPTY_STREAM)
    report = slo_from_events(events, budgets)
    print(f"slo gate over {events_dir} ({len(events)} events)")
    print()
    print(report.render())
    if not budgets:
        print()
        print("(no --budgets file: distributions reported, nothing gated)")
    if report.exit_code:
        raise SystemExit(report.exit_code)


def _cmd_scenarios(args) -> None:
    """``repro-bench scenarios`` — run the deadline-driven scenario matrix.

    ``--config`` loads a JSON/TOML scenario file (see ``examples/``);
    ``--scenario`` picks builtin library scenarios by name; with neither,
    the whole builtin library runs.  Each scenario executes through the
    real engine/hetero runners (fault profiles included) into its own
    event directory under ``--events-out``, is judged against its SLO
    budgets, and — with a ledger configured — appends a ``scenario``
    record carrying the verdict and tail percentiles.  Exit code is the
    worst per-scenario SLO exit code.
    """
    from .scenarios import (
        builtin_scenarios,
        get_scenario,
        load_config,
        render_matrix,
        run_matrix,
    )

    if args.config:
        configs = load_config(args.config)
        source = args.config
    elif args.scenario:
        configs = [get_scenario(name) for name in args.scenario]
        source = "builtin library (selected)"
    else:
        configs = builtin_scenarios()
        source = "builtin library"
    events_root = args.events_out or "scenario-events"
    ledger = _resolve_ledger(args)
    print(f"running {len(configs)} scenario(s) from {source} -> {events_root}/")
    print()
    results = run_matrix(configs, events_root, ledger=ledger)
    print(render_matrix(results))
    worst = max(r.slo.exit_code for r in results)
    for r in results:
        if not r.ok:
            print()
            print(f"--- {r.config.name} ---")
            print(r.slo.render())
    if ledger is not None:
        print()
        print(f"ledger: appended {len(results)} scenario record(s) to {ledger.path}")
    if worst:
        raise SystemExit(worst)


def _cmd_all(args) -> None:
    for fn in (_cmd_table1, _cmd_fig2, _cmd_table2, _cmd_phases):
        fn(args)
        print("\n" + "=" * 72 + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables/figures of the ear-decomposition paper.",
    )
    parser.add_argument(
        "command",
        choices=[
            "table1", "fig2", "table2", "phases", "datasets", "qa",
            "profile", "regress", "watch", "report", "critpath",
            "scenarios", "slo", "all",
        ],
    )
    parser.add_argument(
        "workload",
        nargs="?",
        default=None,
        choices=["apsp", "mcb", "both"],
        help="profile/regress: which pipeline to trace (default apsp)",
    )
    parser.add_argument("--scale", type=float, default=None, help="dataset scale factor")
    parser.add_argument("--datasets", nargs="*", default=None, help="restrict to named datasets")
    parser.add_argument("--mteps", action="store_true", help="also print Figure 3 (fig2)")
    parser.add_argument("--fig6", action="store_true", help="also print Figure 6 (table2)")
    parser.add_argument("--qa-count", type=int, default=200, help="qa: corpus size")
    parser.add_argument("--qa-seed", type=int, default=0, help="qa: corpus seed")
    parser.add_argument(
        "--qa-artifacts",
        default=None,
        help="qa: directory for disagreeing-graph repro files (default: REPRO_QA_ARTIFACTS)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="profile: path for the Chrome trace_event JSON",
    )
    parser.add_argument(
        "--events-out",
        default=None,
        help="profile/scenarios: directory for the structured event stream "
             "(per-pid JSONL shards; scenarios nests one subdir per scenario)",
    )
    parser.add_argument(
        "--sample-hz",
        type=float,
        default=None,
        help="profile: arm the continuous stack sampler at this rate "
             "(collapsed-stack shards land in --profile-out)",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        help="profile: directory for collapsed-stack sampler shards "
             "(default repro-profile/ when --sample-hz is set)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        help="report: collapsed-stack profile directory to render "
             "(default: the ledgered run's profile_dir)",
    )
    parser.add_argument(
        "--config",
        default=None,
        help="scenarios: JSON/TOML scenario config file (see examples/)",
    )
    parser.add_argument(
        "--scenario",
        nargs="*",
        default=None,
        help="scenarios: builtin scenario name(s) to run "
             "(default: the whole builtin library)",
    )
    parser.add_argument(
        "--budgets",
        default=None,
        help="slo: JSON file with the budget list (or a scenario object; "
             "its 'slo' block is used)",
    )
    parser.add_argument(
        "--events",
        default=None,
        help="watch/report/critpath: event-stream directory to read "
             "(default: REPRO_EVENTS, or the ledgered run's events_dir)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        help="report/critpath: Chrome trace JSON to analyze "
             "(default: the ledgered run's trace_path)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="report: output HTML path (default run-report.html); "
             "critpath --json: output JSON path (default stdout)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="critpath: emit the full schema-versioned JSON analysis "
             "instead of text tables",
    )
    parser.add_argument(
        "--straggler-k",
        type=float,
        default=4.0,
        help="critpath: MAD multiplier for the straggler band "
             "(finish > median + k*MAD)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="watch: render a single frame and exit",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="watch: seconds between frames",
    )
    parser.add_argument(
        "--stall-after",
        type=float,
        default=None,
        help="watch: heartbeat age (s) past which a worker is flagged "
             "stalled (default: REPRO_WATCH_STALL or 5)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="profile: worker count for the parallel-backend burst",
    )
    parser.add_argument(
        "--ledger",
        default=None,
        help="path of the append-only JSONL run ledger "
             "(default: REPRO_LEDGER; unset = no ledger writes)",
    )
    parser.add_argument(
        "--baseline",
        default="BENCH_BASELINE.json",
        help="regress: stamped BENCH_BASELINE.json to gate against",
    )
    parser.add_argument(
        "--candidate",
        default=None,
        help="regress: candidate run record / baseline JSON "
             "(default: measure a fresh candidate now)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="regress: repeats for the median-of-repeats fresh candidate",
    )
    parser.add_argument(
        "--history",
        type=int,
        default=20,
        help="regress: newest ledger records to build the noise model from",
    )
    parser.add_argument(
        "--rel-tol",
        type=float,
        default=0.25,
        help="regress: relative slowdown tolerance per phase",
    )
    parser.add_argument(
        "--tail-rel-tol",
        type=float,
        default=0.75,
        help="regress: relative tolerance for tail-latency phases "
             "(.p90/.p99/.p999/.jitter names; wider because tail "
             "estimates are noisier)",
    )
    parser.add_argument(
        "--mad-k",
        type=float,
        default=5.0,
        help="regress: MAD-band multiplier (noise model width)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=1e-3,
        help="regress: absolute noise floor below which phases never flag",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="regress: append the judged candidate to the ledger",
    )
    parser.add_argument(
        "--trace-a",
        default=None,
        help="regress: first Chrome trace for the span-level differ",
    )
    parser.add_argument(
        "--trace-b",
        default=None,
        help="regress: second Chrome trace for the span-level differ",
    )
    args = parser.parse_args(argv)
    {
        "table1": _cmd_table1,
        "fig2": _cmd_fig2,
        "table2": _cmd_table2,
        "phases": _cmd_phases,
        "datasets": _cmd_datasets,
        "qa": _cmd_qa,
        "profile": _cmd_profile,
        "regress": _cmd_regress,
        "watch": _cmd_watch,
        "report": _cmd_report,
        "critpath": _cmd_critpath,
        "scenarios": _cmd_scenarios,
        "slo": _cmd_slo,
        "all": _cmd_all,
    }[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
