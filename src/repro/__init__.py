"""repro — ear-decomposition based heterogeneous shortest-path/cycle algorithms.

Reproduction of Dutta, Chaitanya, Kothapalli, Bera:
*"Applications of Ear Decomposition to Efficient Heterogeneous Algorithms
for Shortest Path/Cycle Problems"* (IPDPS-W 2017 / IJNC 2018).

Public API highlights
---------------------
- :class:`repro.graph.CSRGraph` — the CSR graph substrate.
- :func:`repro.decomposition.reduce_graph` — degree-2 chain contraction.
- :func:`repro.apsp.ear_apsp_full` — the paper's Algorithm 1 (+ general graphs).
- :class:`repro.apsp.DistanceOracle` / :class:`repro.apsp.ReducedDistanceOracle`
  — the O(a² + Σ nᵢ²) distance stores.
- :func:`repro.mcb.minimum_cycle_basis` — ear-reduced MCB (Section 3).
- :mod:`repro.hetero` — work-queue based heterogeneous (CPU+simulated GPU)
  execution platform.
- :mod:`repro.datasets` — Table-1 dataset stand-ins.
"""

from . import apsp, bench, centrality, datasets, decomposition, graph, hetero, mcb, partition, sssp

__version__ = "1.0.0"

__all__ = [
    "apsp",
    "bench",
    "centrality",
    "datasets",
    "decomposition",
    "graph",
    "hetero",
    "mcb",
    "partition",
    "sssp",
    "__version__",
]
