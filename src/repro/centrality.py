"""Betweenness centrality (Brandes) on the CSR substrate.

The paper's conclusion points at betweenness as the next path-based
problem for ear techniques (the authors' companion work [32]; GPU
betweenness is related work [34]).  This module provides the exact
weighted/unweighted Brandes algorithm as the substrate for that line:
one dependency-accumulation per source, which is precisely the work-unit
granularity the heterogeneous executor schedules
(:func:`hetero_betweenness`).

Conventions match ``networkx.betweenness_centrality`` (undirected:
each unordered pair contributes once; optional pair-count normalisation).
"""

from __future__ import annotations

import heapq

import numpy as np

from .graph.csr import CSRGraph

__all__ = ["brandes_betweenness", "betweenness_source_pass", "hetero_betweenness"]


def betweenness_source_pass(g: CSRGraph, s: int) -> np.ndarray:
    """Brandes dependency accumulation for one source.

    Returns the per-vertex dependency vector ``δ_s(·)``; summing over all
    sources and halving gives undirected betweenness.  One call is one
    heterogeneous work unit.
    """
    n = g.n
    dist = np.full(n, np.inf)
    sigma = np.zeros(n)
    delta = np.zeros(n)
    preds: list[list[int]] = [[] for _ in range(n)]
    dist[s] = 0.0
    sigma[s] = 1.0
    heap: list[tuple[float, int]] = [(0.0, s)]
    order: list[int] = []
    done = np.zeros(n, dtype=bool)
    indptr, indices, weights = g.indptr, g.indices, g.weights
    while heap:
        d, u = heapq.heappop(heap)
        if done[u] or d > dist[u]:
            continue
        done[u] = True
        order.append(u)
        for slot in range(indptr[u], indptr[u + 1]):
            v = int(indices[slot])
            if v == u:
                continue  # self-loops never lie on shortest paths
            nd = d + weights[slot]
            if nd < dist[v] - 1e-14:
                dist[v] = nd
                sigma[v] = sigma[u]
                preds[v] = [u]
                heapq.heappush(heap, (nd, v))
            elif abs(nd - dist[v]) <= 1e-14:
                sigma[v] += sigma[u]
                preds[v].append(u)
    for w in reversed(order):
        for p in preds[w]:
            delta[p] += sigma[p] / sigma[w] * (1.0 + delta[w])
        # (source excluded from its own centrality by construction)
    delta[s] = 0.0
    return delta


def brandes_betweenness(g: CSRGraph, normalized: bool = False) -> np.ndarray:
    """Exact betweenness centrality of every vertex."""
    bc = np.zeros(g.n)
    for s in range(g.n):
        bc += betweenness_source_pass(g, s)
    bc /= 2.0  # each unordered pair was counted from both endpoints
    if normalized and g.n > 2:
        bc *= 2.0 / ((g.n - 1) * (g.n - 2))
    return bc


def hetero_betweenness(g: CSRGraph, platform=None, normalized: bool = False):
    """Betweenness with per-source work units on a heterogeneous platform.

    Returns ``(bc, stage_report)``.  Default platform: CPU+GPU.
    """
    from .hetero.executor import HeterogeneousExecutor, Platform
    from .hetero.workqueue import WorkUnit

    if platform is None:
        platform = Platform.heterogeneous()
    ex = HeterogeneousExecutor(platform)
    units = [
        WorkUnit(
            uid=s,
            fn=(lambda s=s: betweenness_source_pass(g, s)),
            work=float(max(g.m, 1)) * 48.0,
            items=g.n,
            label="brandes",
        )
        for s in range(g.n)
    ]
    report = ex.run_stage(units)
    bc = np.zeros(g.n)
    for s in range(g.n):
        bc += ex.results[s]
    bc /= 2.0
    if normalized and g.n > 2:
        bc *= 2.0 / ((g.n - 1) * (g.n - 2))
    return bc, report
