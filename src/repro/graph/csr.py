"""Compressed-sparse-row graph substrate.

Every algorithm in this package operates on :class:`CSRGraph`, an immutable,
undirected, weighted (multi)graph stored in CSR layout.  The layout follows
the HPC idiom used throughout the paper's CUDA/OpenMP kernels: three flat
arrays (``indptr``, ``indices``, ``weights``) that allow fully vectorized
frontier relaxations and cache-friendly sequential scans.

Edges are *canonically* stored once in ``(edge_u, edge_v, edge_w)`` arrays of
length ``m`` (the number of undirected edges) and mirrored in both CSR
directions.  Each CSR slot carries the id of its canonical edge in
``csr_eid`` so that algorithms which reason about edges (minimum cycle basis,
spanning trees) can map an adjacency traversal back to a unique edge.

Parallel edges and self-loops are permitted: the reduced multigraphs produced
by ear decomposition (Section 3.3.1 of the paper) require both.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["CSRGraph", "GraphError"]


class GraphError(ValueError):
    """Raised when graph construction or validation fails."""


class CSRGraph:
    """Immutable undirected weighted multigraph in CSR form.

    Parameters
    ----------
    n:
        Number of vertices; vertices are ``0 .. n-1``.
    edge_u, edge_v:
        Integer endpoint arrays of length ``m`` (one entry per undirected
        edge).  Order within a pair is irrelevant.
    edge_w:
        Positive edge weights of length ``m``.  Defaults to all ones.

    Notes
    -----
    Self-loops (``u == v``) appear once in the adjacency of ``u`` and
    contribute 2 to :attr:`degree` (the usual graph-theoretic convention,
    and the one that keeps the cycle-space dimension formula
    ``m - n + c`` correct).
    """

    __slots__ = (
        "n",
        "m",
        "edge_u",
        "edge_v",
        "edge_w",
        "indptr",
        "indices",
        "weights",
        "csr_eid",
        "_degree",
        "_fingerprint",
    )

    def __init__(
        self,
        n: int,
        edge_u: Sequence[int] | np.ndarray,
        edge_v: Sequence[int] | np.ndarray,
        edge_w: Sequence[float] | np.ndarray | None = None,
    ) -> None:
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        eu = np.ascontiguousarray(edge_u, dtype=np.int64)
        ev = np.ascontiguousarray(edge_v, dtype=np.int64)
        if eu.ndim != 1 or ev.ndim != 1 or eu.shape != ev.shape:
            raise GraphError("edge endpoint arrays must be 1-D and equal length")
        m = int(eu.shape[0])
        if edge_w is None:
            ew = np.ones(m, dtype=np.float64)
        else:
            ew = np.ascontiguousarray(edge_w, dtype=np.float64)
            if ew.shape != (m,):
                raise GraphError("edge weight array length must match edge count")
        if m:
            lo = min(eu.min(), ev.min())
            hi = max(eu.max(), ev.max())
            if lo < 0 or hi >= n:
                raise GraphError(
                    f"edge endpoint out of range: saw [{lo}, {hi}] for n={n}"
                )
            if not np.all(np.isfinite(ew)):
                raise GraphError("edge weights must be finite")
            if np.any(ew < 0):
                raise GraphError("edge weights must be non-negative")

        self.n = int(n)
        self.m = m
        self.edge_u = eu
        self.edge_v = ev
        self.edge_w = ew

        # Build the CSR mirror: every non-loop edge appears in both endpoint
        # rows, every self-loop appears once.  A counting sort on the source
        # endpoint keeps construction O(n + m) with pure vectorized numpy.
        loop = eu == ev
        src = np.concatenate([eu, ev[~loop]])
        dst = np.concatenate([ev, eu[~loop]])
        wts = np.concatenate([ew, ew[~loop]])
        eid = np.concatenate([np.arange(m, dtype=np.int64), np.nonzero(~loop)[0]])

        counts = np.bincount(src, minlength=n).astype(np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(src, kind="stable")
        self.indptr = indptr
        self.indices = np.ascontiguousarray(dst[order])
        self.weights = np.ascontiguousarray(wts[order])
        self.csr_eid = np.ascontiguousarray(eid[order])

        # Graph-theoretic degree: loops count twice.
        deg = np.diff(indptr).astype(np.int64)
        if m and loop.any():
            deg += np.bincount(eu[loop], minlength=n)
        self._degree = deg
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int] | tuple[int, int, float]],
    ) -> "CSRGraph":
        """Build from an iterable of ``(u, v)`` or ``(u, v, w)`` tuples."""
        us: list[int] = []
        vs: list[int] = []
        ws: list[float] = []
        for e in edges:
            if len(e) == 2:
                u, v = e  # type: ignore[misc]
                w = 1.0
            else:
                u, v, w = e  # type: ignore[misc]
            us.append(int(u))
            vs.append(int(v))
            ws.append(float(w))
        return cls(n, us, vs, ws)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def fingerprint(self) -> str:
        """Content digest of ``(n, edge_u, edge_v, edge_w)``, computed lazily.

        Graphs are frozen after construction, so the digest is a stable
        identity for derived-artifact caches (e.g. the bulk-SSSP engine's
        scipy adjacency cache) that survives distinct ``CSRGraph`` objects
        holding the same edge multiset in the same order.
        """
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(np.int64(self.n).tobytes())
            h.update(self.edge_u.tobytes())
            h.update(self.edge_v.tobytes())
            h.update(self.edge_w.tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    @property
    def degree(self) -> np.ndarray:
        """Graph-theoretic degree per vertex (self-loops count twice)."""
        return self._degree

    def neighbors(self, u: int) -> np.ndarray:
        """Adjacent vertex ids of ``u`` (a CSR slice view — do not mutate)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def incident(self, u: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(neighbors, weights, edge_ids)`` slices for vertex ``u``."""
        s, e = self.indptr[u], self.indptr[u + 1]
        return self.indices[s:e], self.weights[s:e], self.csr_eid[s:e]

    def edge_endpoints(self, eid: int) -> tuple[int, int]:
        """Canonical endpoints of edge ``eid``."""
        return int(self.edge_u[eid]), int(self.edge_v[eid])

    def has_edge(self, u: int, v: int) -> bool:
        """True if at least one edge joins ``u`` and ``v``."""
        return bool(np.any(self.neighbors(u) == v))

    def edge_weight(self, u: int, v: int) -> float:
        """Minimum weight among parallel ``u–v`` edges.

        Raises
        ------
        KeyError
            If no such edge exists.
        """
        nbrs, wts, _ = self.incident(u)
        mask = nbrs == v
        if not mask.any():
            raise KeyError(f"no edge between {u} and {v}")
        return float(wts[mask].min())

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over canonical edges as ``(u, v, w)``."""
        for i in range(self.m):
            yield int(self.edge_u[i]), int(self.edge_v[i]), float(self.edge_w[i])

    @property
    def total_weight(self) -> float:
        """Sum of all canonical edge weights."""
        return float(self.edge_w.sum())

    @property
    def has_parallel_edges(self) -> bool:
        """True if any vertex pair is joined by more than one edge."""
        if self.m == 0:
            return False
        lo = np.minimum(self.edge_u, self.edge_v)
        hi = np.maximum(self.edge_u, self.edge_v)
        keys = lo * self.n + hi
        return bool(np.unique(keys).size < self.m)

    @property
    def has_self_loops(self) -> bool:
        """True if any edge joins a vertex to itself."""
        return bool(np.any(self.edge_u == self.edge_v))

    def is_simple(self) -> bool:
        """True if the graph has no parallel edges and no self-loops."""
        return not (self.has_parallel_edges or self.has_self_loops)

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def simplify(self) -> "CSRGraph":
        """Collapse parallel edges (keeping minimum weight) and drop loops.

        This is the transformation applied to the reduced graph before the
        APSP processing phase (Section 2.1.1: "we retain the edge with the
        shortest weight and discard the remaining edges").
        """
        if self.m == 0:
            return CSRGraph(self.n, [], [], [])
        lo = np.minimum(self.edge_u, self.edge_v)
        hi = np.maximum(self.edge_u, self.edge_v)
        keep = lo != hi
        lo, hi, w = lo[keep], hi[keep], self.edge_w[keep]
        # Sort by (pair, weight) and take the first of each pair group.
        keys = lo * self.n + hi
        order = np.lexsort((w, keys))
        keys, lo, hi, w = keys[order], lo[order], hi[order], w[order]
        first = np.ones(keys.shape[0], dtype=bool)
        first[1:] = keys[1:] != keys[:-1]
        return CSRGraph(self.n, lo[first], hi[first], w[first])

    def subgraph(self, vertices: Sequence[int] | np.ndarray) -> tuple["CSRGraph", np.ndarray]:
        """Vertex-induced subgraph.

        Returns
        -------
        (sub, vmap):
            ``sub`` is the induced subgraph with vertices relabelled
            ``0 .. len(vertices)-1`` in the given order; ``vmap`` is the
            array of original vertex ids (``vmap[new] == old``).
        """
        vmap = np.ascontiguousarray(vertices, dtype=np.int64)
        if np.unique(vmap).size != vmap.size:
            raise GraphError("subgraph vertex list contains duplicates")
        inv = np.full(self.n, -1, dtype=np.int64)
        inv[vmap] = np.arange(vmap.size)
        keep = (inv[self.edge_u] >= 0) & (inv[self.edge_v] >= 0)
        sub = CSRGraph(
            int(vmap.size),
            inv[self.edge_u[keep]],
            inv[self.edge_v[keep]],
            self.edge_w[keep],
        )
        return sub, vmap

    def edge_subgraph(self, edge_ids: Sequence[int] | np.ndarray) -> "CSRGraph":
        """Subgraph on the same vertex set keeping only the given edges."""
        eids = np.ascontiguousarray(edge_ids, dtype=np.int64)
        return CSRGraph(self.n, self.edge_u[eids], self.edge_v[eids], self.edge_w[eids])

    def with_weights(self, edge_w: np.ndarray) -> "CSRGraph":
        """Copy of this graph with replaced edge weights."""
        return CSRGraph(self.n, self.edge_u, self.edge_v, edge_w)

    def reverse_permutation(self, perm: np.ndarray) -> "CSRGraph":
        """Relabel vertices: new id of old vertex ``v`` is ``perm[v]``."""
        perm = np.ascontiguousarray(perm, dtype=np.int64)
        if perm.shape != (self.n,) or np.unique(perm).size != self.n:
            raise GraphError("perm must be a permutation of 0..n-1")
        return CSRGraph(self.n, perm[self.edge_u], perm[self.edge_v], self.edge_w)

    # ------------------------------------------------------------------ #
    # Connectivity
    # ------------------------------------------------------------------ #

    def connected_components(self) -> tuple[int, np.ndarray]:
        """``(count, labels)`` via vectorized label propagation on edges."""
        labels = np.arange(self.n, dtype=np.int64)
        if self.m:
            eu, ev = self.edge_u, self.edge_v
            while True:
                lu = labels[eu]
                lv = labels[ev]
                new = labels.copy()
                np.minimum.at(new, eu, lv)
                np.minimum.at(new, ev, lu)
                # Pointer-jump until stable to shortcut long chains.
                while True:
                    nxt = new[new]
                    if np.array_equal(nxt, new):
                        break
                    new = nxt
                if np.array_equal(new, labels):
                    break
                labels = new
        roots, labels = np.unique(labels, return_inverse=True)
        return int(roots.size), labels.astype(np.int64)

    def is_connected(self) -> bool:
        """True for the empty graph, singletons, and connected graphs."""
        if self.n <= 1:
            return True
        count, _ = self.connected_components()
        return count == 1

    def cycle_space_dimension(self) -> int:
        """``m - n + c``: dimension of the GF(2) cycle space."""
        c, _ = self.connected_components()
        return self.m - self.n + c

    # ------------------------------------------------------------------ #
    # Dunder & debug
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "multigraph" if not self.is_simple() else "graph"
        return f"CSRGraph(n={self.n}, m={self.m}, {kind})"

    def __eq__(self, other: object) -> bool:
        """Structural equality on the canonical sorted edge multiset."""
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if self.n != other.n or self.m != other.m:
            return False

        def canon(g: CSRGraph) -> np.ndarray:
            lo = np.minimum(g.edge_u, g.edge_v)
            hi = np.maximum(g.edge_u, g.edge_v)
            order = np.lexsort((g.edge_w, hi, lo))
            return np.stack([lo[order], hi[order], g.edge_w[order]])

        return bool(np.allclose(canon(self), canon(other)))

    __hash__ = None  # type: ignore[assignment]
