"""Structural statistics matching the columns of Table 1.

The paper characterises each dataset by: |V|, |E|, number of biconnected
components, size of the largest BCC as a fraction of |E|, and the fraction
of vertices removed by ear reduction (the degree-2 vertices inside BCCs).
:func:`table1_row` computes all of them for any graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["GraphStats", "table1_row", "degree_histogram"]


@dataclass(frozen=True)
class GraphStats:
    """One row of Table 1 (structure columns)."""

    name: str
    n: int
    m: int
    n_bcc: int
    largest_bcc_edge_pct: float
    nodes_removed_pct: float
    degree2_pct: float

    def as_row(self) -> tuple:
        return (
            self.name,
            self.n,
            self.m,
            self.n_bcc,
            round(self.largest_bcc_edge_pct, 2),
            round(self.nodes_removed_pct, 2),
        )


def degree_histogram(g: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices of degree ``d``."""
    if g.n == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(g.degree)


def table1_row(g: CSRGraph, name: str = "") -> GraphStats:
    """Compute the structure columns of Table 1 for ``g``.

    "Nodes removed" counts vertices that ear reduction prunes: degree-2
    vertices interior to a biconnected component chain (computed exactly by
    running the reduction).
    """
    # Imported here to avoid a package import cycle (decomposition uses graph).
    from ..decomposition.biconnected import biconnected_components
    from ..decomposition.reduce import reduce_graph

    bcc = biconnected_components(g)
    sizes = [len(edges) for edges in bcc.component_edges]
    largest = 100.0 * max(sizes, default=0) / g.m if g.m else 0.0
    removed = 0
    for comp_id in range(bcc.count):
        sub, vmap = bcc.component_subgraph(g, comp_id)
        red = reduce_graph(sub, keep=bcc.component_keep_mask(g, comp_id))
        removed += int((~red.kept_mask).sum())
    removed_pct = 100.0 * removed / g.n if g.n else 0.0
    deg2 = 100.0 * float((g.degree == 2).sum()) / g.n if g.n else 0.0
    return GraphStats(
        name=name or f"graph_{g.n}_{g.m}",
        n=g.n,
        m=g.m,
        n_bcc=bcc.count,
        largest_bcc_edge_pct=largest,
        nodes_removed_pct=removed_pct,
        degree2_pct=deg2,
    )
