"""Conversions between :class:`CSRGraph` and external representations."""

from __future__ import annotations

import networkx as nx
import numpy as np
import scipy.sparse as sp

from .csr import CSRGraph, GraphError

__all__ = [
    "from_networkx",
    "to_networkx",
    "from_scipy",
    "to_scipy",
    "from_adjacency",
    "to_adjacency",
]


def from_networkx(g: "nx.Graph", weight: str = "weight", default: float = 1.0) -> CSRGraph:
    """Convert a networkx (multi)graph.

    Vertices must be hashable; they are relabelled ``0..n-1`` in
    ``sorted(g.nodes)`` order when they are not already a 0-based integer
    range, so the conversion is deterministic.
    """
    nodes = list(g.nodes)
    if all(isinstance(v, (int, np.integer)) for v in nodes) and sorted(nodes) == list(
        range(len(nodes))
    ):
        relabel = {v: int(v) for v in nodes}
    else:
        relabel = {v: i for i, v in enumerate(sorted(nodes, key=repr))}
    us, vs, ws = [], [], []
    if g.is_multigraph():
        edge_iter = ((u, v, d) for u, v, _, d in g.edges(keys=True, data=True))
    else:
        edge_iter = g.edges(data=True)
    for u, v, data in edge_iter:
        us.append(relabel[u])
        vs.append(relabel[v])
        ws.append(float(data.get(weight, default)))
    return CSRGraph(len(nodes), us, vs, ws)


def to_networkx(g: CSRGraph) -> "nx.Graph":
    """Convert to networkx; a ``MultiGraph`` when not simple.

    Isolated vertices are preserved.  When the graph has parallel edges and
    the caller converts back, edge multiplicity round-trips exactly.
    """
    out: nx.Graph = nx.MultiGraph() if not g.is_simple() else nx.Graph()
    out.add_nodes_from(range(g.n))
    for u, v, w in g.edges():
        out.add_edge(u, v, weight=w)
    return out


def from_scipy(mat: sp.spmatrix | sp.sparray) -> CSRGraph:
    """Convert a symmetric scipy sparse matrix (upper triangle is read).

    The matrix is interpreted as a weighted adjacency matrix; explicit zeros
    are treated as absent edges, diagonal entries as self-loops.
    """
    coo = sp.coo_matrix(mat)
    if coo.shape[0] != coo.shape[1]:
        raise GraphError("adjacency matrix must be square")
    mask = (coo.row <= coo.col) & (coo.data != 0)
    return CSRGraph(coo.shape[0], coo.row[mask], coo.col[mask], coo.data[mask])


def to_scipy(g: CSRGraph) -> sp.csr_matrix:
    """Symmetric CSR adjacency matrix (parallel edges collapse to min weight)."""
    s = g.simplify() if not g.is_simple() else g
    row = np.concatenate([s.edge_u, s.edge_v])
    col = np.concatenate([s.edge_v, s.edge_u])
    dat = np.concatenate([s.edge_w, s.edge_w])
    return sp.coo_matrix((dat, (row, col)), shape=(g.n, g.n)).tocsr()


def from_adjacency(a: np.ndarray) -> CSRGraph:
    """Convert a dense symmetric adjacency matrix (0 = no edge)."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise GraphError("adjacency matrix must be square")
    if not np.allclose(a, a.T):
        raise GraphError("adjacency matrix must be symmetric")
    iu = np.triu_indices(a.shape[0])
    mask = a[iu] != 0
    return CSRGraph(a.shape[0], iu[0][mask], iu[1][mask], a[iu][mask])


def to_adjacency(g: CSRGraph, absent: float = 0.0) -> np.ndarray:
    """Dense adjacency matrix with ``absent`` where there is no edge."""
    out = np.full((g.n, g.n), absent, dtype=np.float64)
    s = g.simplify()
    out[s.edge_u, s.edge_v] = s.edge_w
    out[s.edge_v, s.edge_u] = s.edge_w
    return out
