"""Graph file formats.

Supports the three formats relevant to the paper's data sources:

* **Matrix Market** (``.mtx``) — the University of Florida Sparse Matrix
  Collection distributes graphs this way.
* **Edge list** — whitespace separated ``u v [w]`` lines, ``#`` comments.
* **DIMACS shortest-path** (``.gr``) — the classic challenge format.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import TextIO

import numpy as np

from .csr import CSRGraph, GraphError

__all__ = [
    "read_matrix_market",
    "write_matrix_market",
    "read_edge_list",
    "write_edge_list",
    "read_dimacs",
    "write_dimacs",
    "read_metis",
    "write_metis",
    "save_npz",
    "load_npz",
]


def _open(path_or_file: str | Path | TextIO, mode: str):
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode), True
    return path_or_file, False


def read_matrix_market(path_or_file: str | Path | TextIO) -> CSRGraph:
    """Read a symmetric/general MatrixMarket coordinate file as a graph.

    Only the lower-or-upper triangle is used for symmetric files; for
    ``general`` files, both ``(i, j)`` and ``(j, i)`` entries are expected
    and deduplicated.  Pattern matrices get unit weights.  Entries on the
    diagonal become self-loops.
    """
    fh, close = _open(path_or_file, "r")
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphError("not a MatrixMarket file")
        tokens = header.lower().split()
        if "coordinate" not in tokens:
            raise GraphError("only coordinate MatrixMarket files are supported")
        pattern = "pattern" in tokens
        symmetric = "symmetric" in tokens
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        rows, cols, nnz = (int(t) for t in line.split())
        if rows != cols:
            raise GraphError("adjacency MatrixMarket file must be square")
        us = np.empty(nnz, dtype=np.int64)
        vs = np.empty(nnz, dtype=np.int64)
        ws = np.ones(nnz, dtype=np.float64)
        k = 0
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            us[k] = int(parts[0]) - 1
            vs[k] = int(parts[1]) - 1
            if not pattern and len(parts) > 2:
                ws[k] = abs(float(parts[2]))
            k += 1
        us, vs, ws = us[:k], vs[:k], ws[:k]
    finally:
        if close:
            fh.close()
    lo = np.minimum(us, vs)
    hi = np.maximum(us, vs)
    keys = lo * rows + hi
    _, first = np.unique(keys, return_index=True)
    if not symmetric:
        lo, hi, ws = lo[first], hi[first], ws[first]
    else:
        lo, hi, ws = lo, hi, ws
    ws = np.where(ws <= 0, 1.0, ws)
    return CSRGraph(rows, lo, hi, ws)


def write_matrix_market(g: CSRGraph, path_or_file: str | Path | TextIO) -> None:
    """Write as a symmetric real coordinate MatrixMarket file."""
    fh, close = _open(path_or_file, "w")
    try:
        fh.write("%%MatrixMarket matrix coordinate real symmetric\n")
        fh.write(f"% written by repro\n{g.n} {g.n} {g.m}\n")
        lo = np.minimum(g.edge_u, g.edge_v)
        hi = np.maximum(g.edge_u, g.edge_v)
        for a, b, w in zip(hi, lo, g.edge_w):
            fh.write(f"{a + 1} {b + 1} {w:.17g}\n")
    finally:
        if close:
            fh.close()


def read_edge_list(path_or_file: str | Path | TextIO, n: int | None = None) -> CSRGraph:
    """Read ``u v [w]`` lines; vertex count inferred when ``n`` is None."""
    fh, close = _open(path_or_file, "r")
    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    try:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            us.append(int(parts[0]))
            vs.append(int(parts[1]))
            ws.append(float(parts[2]) if len(parts) > 2 else 1.0)
    finally:
        if close:
            fh.close()
    if n is None:
        n = (max(max(us), max(vs)) + 1) if us else 0
    return CSRGraph(n, us, vs, ws)


def write_edge_list(g: CSRGraph, path_or_file: str | Path | TextIO) -> None:
    """Write ``u v w`` lines with a vertex-count header comment."""
    fh, close = _open(path_or_file, "w")
    try:
        fh.write(f"# nodes={g.n} edges={g.m}\n")
        for u, v, w in g.edges():
            fh.write(f"{u} {v} {w:.17g}\n")
    finally:
        if close:
            fh.close()


def read_dimacs(path_or_file: str | Path | TextIO) -> CSRGraph:
    """Read the DIMACS ``.gr`` shortest-path format (arcs deduplicated)."""
    fh, close = _open(path_or_file, "r")
    n = 0
    seen: dict[tuple[int, int], float] = {}
    try:
        for line in fh:
            if line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                n = int(parts[2])
            elif line.startswith("a"):
                _, u, v, w = line.split()
                a, b = int(u) - 1, int(v) - 1
                key = (min(a, b), max(a, b))
                wt = float(w)
                if key not in seen or wt < seen[key]:
                    seen[key] = wt
    finally:
        if close:
            fh.close()
    us = [k[0] for k in seen]
    vs = [k[1] for k in seen]
    ws = list(seen.values())
    return CSRGraph(n, us, vs, ws)


def write_dimacs(g: CSRGraph, path_or_file: str | Path | TextIO, comment: str = "") -> None:
    """Write the DIMACS ``.gr`` format (both arc directions emitted)."""
    fh, close = _open(path_or_file, "w")
    try:
        if comment:
            fh.write(f"c {comment}\n")
        fh.write(f"p sp {g.n} {2 * g.m}\n")
        for u, v, w in g.edges():
            fh.write(f"a {u + 1} {v + 1} {w:.17g}\n")
            fh.write(f"a {v + 1} {u + 1} {w:.17g}\n")
    finally:
        if close:
            fh.close()


def loads_edge_list(text: str) -> CSRGraph:
    """Parse an edge list from a string (convenience for tests/examples)."""
    return read_edge_list(_io.StringIO(text))


def read_metis(path_or_file: str | Path | TextIO) -> CSRGraph:
    """Read the METIS ``.graph`` format (1-indexed adjacency lists).

    Supports the plain format and ``fmt=001`` (edge weights).  Vertex
    weights (``fmt=010``/``011``) are skipped.  Each edge must appear in
    both endpoint lists, as the format requires.
    """
    fh, close = _open(path_or_file, "r")
    try:
        header = fh.readline().split()
        if len(header) < 2:
            raise GraphError("malformed METIS header")
        n, m = int(header[0]), int(header[1])
        fmt = header[2] if len(header) > 2 else "000"
        fmt = fmt.zfill(3)
        has_vw = fmt[1] == "1"
        has_ew = fmt[2] == "1"
        ncon = int(header[3]) if len(header) > 3 else (1 if has_vw else 0)
        seen: dict[tuple[int, int], float] = {}
        u = 0
        for line in fh:
            line = line.strip()
            if line.startswith("%"):
                continue
            tokens = line.split()
            idx = ncon if has_vw else 0
            while idx < len(tokens):
                v = int(tokens[idx]) - 1
                idx += 1
                w = 1.0
                if has_ew:
                    w = float(tokens[idx])
                    idx += 1
                key = (min(u, v), max(u, v))
                if key not in seen or w < seen[key]:
                    seen[key] = w
            u += 1
        if u != n:
            raise GraphError(f"METIS file declared {n} vertices, found {u}")
        if len(seen) != m:
            raise GraphError(
                f"METIS file declared {m} edges, found {len(seen)}"
            )
    finally:
        if close:
            fh.close()
    us = [k[0] for k in seen]
    vs = [k[1] for k in seen]
    return CSRGraph(n, us, vs, list(seen.values()))


def write_metis(g: CSRGraph, path_or_file: str | Path | TextIO) -> None:
    """Write the METIS ``.graph`` format with edge weights (``fmt=001``).

    METIS cannot represent self-loops or parallel edges; the graph is
    simplified first (minimum-weight parallel edge kept, loops dropped).
    """
    s = g.simplify()
    fh, close = _open(path_or_file, "w")
    try:
        fh.write(f"{s.n} {s.m} 001\n")
        for u in range(s.n):
            nbrs, wts, _ = s.incident(u)
            parts = []
            for v, w in zip(nbrs, wts):
                parts.append(f"{int(v) + 1} {w:.17g}")
            fh.write(" ".join(parts) + "\n")
    finally:
        if close:
            fh.close()


def save_npz(g: CSRGraph, path: str | Path) -> None:
    """Binary persistence: canonical edge arrays in one ``.npz`` file."""
    np.savez_compressed(
        path,
        n=np.asarray(g.n, dtype=np.int64),
        edge_u=g.edge_u,
        edge_v=g.edge_v,
        edge_w=g.edge_w,
    )


def load_npz(path: str | Path) -> CSRGraph:
    """Load a graph written by :func:`save_npz`."""
    with np.load(path) as data:
        return CSRGraph(
            int(data["n"]), data["edge_u"], data["edge_v"], data["edge_w"]
        )
