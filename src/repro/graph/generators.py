"""Deterministic synthetic graph generators.

These provide the building blocks for the Table-1 dataset stand-ins (see
``repro.datasets``): biconnected cores (meshes, Delaunay triangulations,
random regular-ish graphs), degree-2 chain injection via edge subdivision,
and grafting of extra biconnected components to control the block structure.

All generators take an integer ``seed`` and are reproducible across runs.
"""

from __future__ import annotations

import numpy as np
import scipy.spatial

from .csr import CSRGraph, GraphError

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "grid_graph",
    "delaunay_graph",
    "gnm_random_graph",
    "random_biconnected_graph",
    "preferential_attachment_graph",
    "subdivide_edges",
    "attach_blocks",
    "randomize_weights",
    "planar_graph",
]


def path_graph(n: int, weight: float = 1.0) -> CSRGraph:
    """Simple path ``0 - 1 - ... - n-1``."""
    if n < 1:
        raise GraphError("path needs at least one vertex")
    idx = np.arange(n - 1)
    return CSRGraph(n, idx, idx + 1, np.full(n - 1, weight))


def cycle_graph(n: int, weight: float = 1.0) -> CSRGraph:
    """Simple cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise GraphError("cycle needs at least three vertices")
    idx = np.arange(n)
    return CSRGraph(n, idx, (idx + 1) % n, np.full(n, weight))


def complete_graph(n: int, weight: float = 1.0) -> CSRGraph:
    """Complete graph K_n."""
    iu = np.triu_indices(n, k=1)
    return CSRGraph(n, iu[0], iu[1], np.full(iu[0].size, weight))


def grid_graph(rows: int, cols: int) -> CSRGraph:
    """2-D grid mesh (biconnected for rows, cols >= 2)."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    ids = np.arange(rows * cols).reshape(rows, cols)
    us = np.concatenate([ids[:, :-1].ravel(), ids[:-1, :].ravel()])
    vs = np.concatenate([ids[:, 1:].ravel(), ids[1:, :].ravel()])
    return CSRGraph(rows * cols, us, vs)


def delaunay_graph(n: int, seed: int = 0) -> CSRGraph:
    """Delaunay triangulation of ``n`` random points in the unit square.

    This is the stand-in for the ``delaunay_nXX`` rows of Table 1: planar,
    biconnected, and with essentially zero degree-2 vertices.  Edge weights
    are the Euclidean lengths scaled to the ``(0, 2]`` range.
    """
    if n < 3:
        raise GraphError("Delaunay needs at least three points")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    tri = scipy.spatial.Delaunay(pts)
    sim = tri.simplices
    pairs = np.concatenate([sim[:, [0, 1]], sim[:, [1, 2]], sim[:, [0, 2]]])
    lo = pairs.min(axis=1)
    hi = pairs.max(axis=1)
    keys = lo.astype(np.int64) * n + hi
    _, first = np.unique(keys, return_index=True)
    lo, hi = lo[first], hi[first]
    w = np.linalg.norm(pts[lo] - pts[hi], axis=1)
    w = np.maximum(w / max(w.max(), 1e-12) * 2.0, 1e-6)
    return CSRGraph(n, lo, hi, w)


def gnm_random_graph(n: int, m: int, seed: int = 0, connected: bool = True) -> CSRGraph:
    """Erdos–Renyi G(n, m) simple graph; optionally forced connected.

    Connectivity is enforced by first laying down a uniform random spanning
    tree (random-walk free variant: random parent among earlier vertices),
    then sampling the remaining edges without replacement.
    """
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise GraphError(f"too many edges requested: {m} > {max_m}")
    rng = np.random.default_rng(seed)
    chosen: set[tuple[int, int]] = set()
    us: list[int] = []
    vs: list[int] = []
    if connected:
        if m < n - 1:
            raise GraphError("connected graph needs at least n-1 edges")
        perm = rng.permutation(n)
        for i in range(1, n):
            j = int(rng.integers(0, i))
            a, b = int(perm[i]), int(perm[j])
            key = (min(a, b), max(a, b))
            chosen.add(key)
            us.append(key[0])
            vs.append(key[1])
    while len(chosen) < m:
        batch = rng.integers(0, n, size=(max(64, m - len(chosen)), 2))
        for a, b in batch:
            if a == b:
                continue
            key = (int(min(a, b)), int(max(a, b)))
            if key in chosen:
                continue
            chosen.add(key)
            us.append(key[0])
            vs.append(key[1])
            if len(chosen) == m:
                break
    return CSRGraph(n, us, vs, rng.random(m) + 0.5)


def random_biconnected_graph(n: int, extra_edges: int, seed: int = 0) -> CSRGraph:
    """Random biconnected graph: a Hamiltonian cycle plus random chords.

    A cycle is 2-connected and adding chords preserves that, so the result
    is biconnected by construction — the precondition of Algorithm 1.
    """
    if n < 3:
        raise GraphError("biconnected graph needs at least three vertices")
    rng = np.random.default_rng(seed)
    base = cycle_graph(n)
    chosen = {
        (min(int(u), int(v)), max(int(u), int(v)))
        for u, v in zip(base.edge_u, base.edge_v)
    }
    us = list(base.edge_u)
    vs = list(base.edge_v)
    target = len(chosen) + extra_edges
    max_m = n * (n - 1) // 2
    target = min(target, max_m)
    while len(chosen) < target:
        a, b = rng.integers(0, n, size=2)
        if a == b:
            continue
        key = (int(min(a, b)), int(max(a, b)))
        if key in chosen:
            continue
        chosen.add(key)
        us.append(key[0])
        vs.append(key[1])
    return CSRGraph(n, us, vs, rng.random(len(us)) + 0.5)


def preferential_attachment_graph(n: int, m_per_node: int, seed: int = 0) -> CSRGraph:
    """Barabasi–Albert style scale-free graph (stand-in for social/AS nets)."""
    if m_per_node < 1 or n <= m_per_node:
        raise GraphError("need n > m_per_node >= 1")
    rng = np.random.default_rng(seed)
    targets = list(range(m_per_node))
    repeated: list[int] = list(range(m_per_node))
    us: list[int] = []
    vs: list[int] = []
    for v in range(m_per_node, n):
        # Sample m distinct targets proportional to degree.
        picks: set[int] = set()
        while len(picks) < m_per_node:
            picks.add(int(repeated[rng.integers(0, len(repeated))]))
        for t in picks:
            us.append(v)
            vs.append(t)
            repeated.append(v)
            repeated.append(t)
        targets.append(v)
    w = rng.random(len(us)) + 0.5
    return CSRGraph(n, us, vs, w)


def subdivide_edges(
    g: CSRGraph,
    fraction: float,
    seed: int = 0,
    chain_length: tuple[int, int] = (1, 3),
) -> CSRGraph:
    """Replace a random fraction of edges by degree-2 chains.

    Each selected edge ``(u, v, w)`` becomes a path ``u - x1 - ... - xk - v``
    whose edge weights sum to ``w`` (so all pairwise distances are exactly
    preserved), with ``k`` drawn uniformly from ``chain_length``.

    This is the principal knob for matching the paper's "Nodes Removed (%)"
    column: subdivision inserts exactly the degree-2 vertices that ear
    decomposition later removes.
    """
    if not 0.0 <= fraction <= 1.0:
        raise GraphError("fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n_sel = int(round(fraction * g.m))
    if n_sel == 0:
        return g
    sel = rng.choice(g.m, size=n_sel, replace=False)
    sel_mask = np.zeros(g.m, dtype=bool)
    sel_mask[sel] = True
    us = list(g.edge_u[~sel_mask])
    vs = list(g.edge_v[~sel_mask])
    ws = list(g.edge_w[~sel_mask])
    nxt = g.n
    lo, hi = chain_length
    for eid in sel:
        u, v = int(g.edge_u[eid]), int(g.edge_v[eid])
        w = float(g.edge_w[eid])
        k = int(rng.integers(lo, hi + 1))
        cuts = np.sort(rng.random(k)) * w
        bounds = np.concatenate([[0.0], cuts, [w]])
        seg = np.maximum(np.diff(bounds), w * 1e-9)
        seg *= w / seg.sum()
        chain = [u] + list(range(nxt, nxt + k)) + [v]
        nxt += k
        for (a, b), sw in zip(zip(chain[:-1], chain[1:]), seg):
            us.append(a)
            vs.append(b)
            ws.append(float(sw))
    return CSRGraph(nxt, us, vs, ws)


def subdivide_to_count(
    g: CSRGraph,
    n_insert: int,
    seed: int = 0,
    chain_length: tuple[int, int] = (1, 3),
) -> CSRGraph:
    """Subdivide random edges until exactly ``n_insert`` vertices are added.

    Like :func:`subdivide_edges` but targeting an absolute vertex budget —
    the knob the Table-1 stand-ins use to hit a "Nodes Removed %" column
    value exactly.
    """
    if n_insert < 0:
        raise GraphError("n_insert must be non-negative")
    if n_insert == 0 or g.m == 0:
        return g
    rng = np.random.default_rng(seed)
    us = list(g.edge_u)
    vs = list(g.edge_v)
    ws = list(g.edge_w)
    nxt = g.n
    remaining = n_insert
    # Pick distinct original edges first; fall back to re-subdividing new
    # chain edges if the budget exceeds the edge count.
    order = list(rng.permutation(g.m))
    cursor = 0
    lo, hi = chain_length
    while remaining > 0:
        if cursor < len(order):
            eid = int(order[cursor])
            cursor += 1
        else:
            eid = int(rng.integers(0, len(us)))
        u, v, w = us[eid], vs[eid], ws[eid]
        k = int(min(remaining, rng.integers(lo, hi + 1)))
        cuts = np.sort(rng.random(k)) * w
        bounds = np.concatenate([[0.0], cuts, [w]])
        seg = np.maximum(np.diff(bounds), w * 1e-9)
        seg *= w / seg.sum() if seg.sum() else 1.0
        chain = [u] + list(range(nxt, nxt + k)) + [v]
        nxt += k
        remaining -= k
        # Replace the picked edge in place with the first chain segment,
        # append the rest.
        us[eid], vs[eid], ws[eid] = chain[0], chain[1], float(seg[0])
        for (a, b), sw in zip(zip(chain[1:-1], chain[2:]), seg[1:]):
            us.append(a)
            vs.append(b)
            ws.append(float(sw))
    return CSRGraph(nxt, us, vs, ws)


def attach_blocks(
    g: CSRGraph,
    n_blocks: int,
    seed: int = 0,
    block_size: tuple[int, int] = (3, 8),
    style: str = "cycle",
) -> CSRGraph:
    """Graft ``n_blocks`` small biconnected blocks onto random vertices.

    Each grafted block shares exactly one vertex with the host graph, so it
    becomes a separate biconnected component and the shared vertex becomes an
    articulation point.  This controls the "#BCCs" column of Table 1.

    ``style="cycle"`` grafts rings (their interiors are degree-2 and will be
    removed by ear reduction); ``style="clique"`` grafts complete blocks
    (degree ≥ 3 interiors survive reduction, so the grafts leave the
    "Nodes Removed" column untouched).
    """
    if style not in ("cycle", "clique"):
        raise GraphError(f"unknown block style {style!r}")
    rng = np.random.default_rng(seed)
    us = list(g.edge_u)
    vs = list(g.edge_v)
    ws = list(g.edge_w)
    nxt = g.n
    for _ in range(n_blocks):
        anchor = int(rng.integers(0, g.n))
        size = int(rng.integers(block_size[0], block_size[1] + 1))
        if style == "clique":
            size = max(size, 4)  # K3 interiors would be degree 2
        ring = [anchor] + list(range(nxt, nxt + size - 1))
        nxt += size - 1
        if style == "cycle":
            pairs = list(zip(ring, ring[1:] + [anchor]))
        else:
            pairs = [
                (ring[i], ring[j])
                for i in range(len(ring))
                for j in range(i + 1, len(ring))
            ]
        for a, b in pairs:
            us.append(a)
            vs.append(b)
            ws.append(float(rng.random() + 0.5))
    return CSRGraph(nxt, us, vs, ws)


def randomize_weights(g: CSRGraph, seed: int = 0, low: float = 0.5, high: float = 1.5) -> CSRGraph:
    """Replace all edge weights by uniform randoms in ``[low, high)``."""
    rng = np.random.default_rng(seed)
    return g.with_weights(rng.uniform(low, high, size=g.m))


def planar_graph(
    n: int,
    seed: int = 0,
    subdivision_fraction: float = 0.1,
    deletion_fraction: float = 0.15,
) -> CSRGraph:
    """OGDF-style random connected planar graph.

    A Delaunay triangulation is planar; deleting a random subset of its
    edges (keeping connectivity via a spanning-tree guard) and subdividing a
    fraction of the rest preserves planarity while introducing degree-2
    vertices, matching the Planar_1..5 rows of Table 1.
    """
    base = delaunay_graph(max(n, 4), seed=seed)
    rng = np.random.default_rng(seed + 1)
    # Guard a spanning tree so that deletions keep the graph connected.
    import scipy.sparse.csgraph as csgraph

    from .builders import to_scipy

    mst = csgraph.minimum_spanning_tree(to_scipy(base))
    mst_coo = mst.tocoo()
    tree_pairs = {
        (min(int(a), int(b)), max(int(a), int(b)))
        for a, b in zip(mst_coo.row, mst_coo.col)
    }
    keep = np.ones(base.m, dtype=bool)
    for eid in range(base.m):
        a, b = base.edge_endpoints(eid)
        if (min(a, b), max(a, b)) in tree_pairs:
            continue
        if rng.random() < deletion_fraction:
            keep[eid] = False
    pruned = base.edge_subgraph(np.nonzero(keep)[0])
    return subdivide_edges(pruned, subdivision_fraction, seed=seed + 2)
