"""Event-driven heterogeneous executor.

Devices race for batches from the double-ended work queue: at every step
the device whose virtual clock is furthest behind grabs its next batch
from its end, executes it for real, and advances its clock by the modeled
cost.  The makespan (max device clock at drain, relative to the common
start) is the stage's heterogeneous runtime; per-device busy time gives
the utilisation split.

``Platform`` bundles device sets for the four Table-2 implementations:
sequential, multicore CPU, GPU-only, and CPU+GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import Device, cpu_device, sequential_device
from .simt import gpu_device
from .workqueue import DequeWorkQueue, WorkUnit

__all__ = ["StageReport", "Platform", "HeterogeneousExecutor"]


@dataclass
class StageReport:
    """Outcome of draining one work-unit stage."""

    makespan: float
    per_device_busy: dict[str, float]
    per_device_units: dict[str, int]
    n_units: int

    @property
    def bottleneck(self) -> str:
        return max(self.per_device_busy, key=self.per_device_busy.get)  # type: ignore[arg-type]


@dataclass
class Platform:
    """A named set of devices sharing one work queue."""

    name: str
    devices: list[Device] = field(default_factory=list)

    # ------------------------------------------------------------- #
    # The four implementations of Table 2 / Figures 5-6.
    # ------------------------------------------------------------- #

    @staticmethod
    def sequential() -> "Platform":
        return Platform("sequential", [sequential_device()])

    @staticmethod
    def multicore(n_threads: int = 40) -> "Platform":
        return Platform("multicore", [cpu_device(n_threads)])

    @staticmethod
    def gpu() -> "Platform":
        return Platform("gpu", [gpu_device()])

    @staticmethod
    def heterogeneous(n_threads: int = 40) -> "Platform":
        return Platform("cpu+gpu", [cpu_device(n_threads), gpu_device()])

    @property
    def total_time(self) -> float:
        return max((d.clock.now for d in self.devices), default=0.0)

    def reset(self) -> None:
        for d in self.devices:
            d.clock.reset()


class HeterogeneousExecutor:
    """Drains stages of work units through a platform's devices."""

    def __init__(self, platform: Platform) -> None:
        if not platform.devices:
            raise ValueError("platform needs at least one device")
        self.platform = platform
        self.results: dict[int, object] = {}

    def run_stage(self, units: list[WorkUnit], sort: bool = True) -> StageReport:
        """Drain ``units``; returns the stage report.

        A stage is a synchronisation barrier: all devices first align to
        the same virtual time (dependent stages cannot overlap — the
        paper notes this limits available parallelism), then race the
        queue until it is empty.
        """
        devices = self.platform.devices
        start = max(d.clock.now for d in devices)
        for d in devices:
            d.clock.wait_until(start)
        queue = DequeWorkQueue(units, sort=sort)
        busy = {d.name: 0.0 for d in devices}
        count = {d.name: 0 for d in devices}
        while not queue.empty:
            dev = min(devices, key=lambda d: d.clock.now)
            batch = queue.grab(dev.batch_size, dev.takes_from_back, device=dev.name)
            if not batch:
                break
            t0 = dev.clock.now
            results = dev.execute(batch)
            busy[dev.name] += dev.clock.now - t0
            count[dev.name] += len(batch)
            for u, r in zip(batch, results):
                self.results[u.uid] = r
        end = max(d.clock.now for d in devices)
        for d in devices:
            d.clock.wait_until(end)
        return StageReport(
            makespan=end - start,
            per_device_busy=busy,
            per_device_units=count,
            n_units=len(units),
        )

    def map(self, fn, items, work, items_width=None, label: str = "") -> list:
        """Convenience: one work unit per item, results in item order."""
        units = [
            WorkUnit(
                uid=i,
                fn=(lambda x=x: fn(x)),
                work=float(work(x) if callable(work) else work),
                items=int(items_width(x)) if callable(items_width) else int(items_width or 1),
                label=label,
            )
            for i, x in enumerate(items)
        ]
        self.results = {}
        self.run_stage(units)
        return [self.results[i] for i in range(len(units))]
