"""The double-ended work queue of Indarapu et al. [19].

Sections 2.3 and 3.4: work units are sorted by size and placed in a
double-ended queue; the GPU grabs batches from the big end, the CPU from
the small end, each in proportion to its thread count, until the queue
drains.  This dynamic scheme replaces any static CPU/GPU split — "arriving
at this proportion analytically is not easy".

The queue itself is execution-agnostic; the event-driven simulation that
drives devices against it lives in :mod:`repro.hetero.executor`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..obs import events as _events
from ..obs import metrics as _metrics

__all__ = ["WorkUnit", "DequeWorkQueue"]

_C_GRABS_FRONT = _metrics.counter("queue.grabs.front")
_C_GRABS_BACK = _metrics.counter("queue.grabs.back")
_H_BATCH = _metrics.histogram("queue.grab.batch")


@dataclass
class WorkUnit:
    """One schedulable unit.

    ``work`` is the cost-model size (bytes touched); ``items`` the
    parallel width (for GPU occupancy); ``fn`` produces the real result.
    """

    uid: int
    fn: Callable[[], Any]
    work: float
    items: int = 1
    label: str = ""
    meta: dict = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn()


class DequeWorkQueue:
    """Size-sorted double-ended queue with two-sided batch grabs."""

    def __init__(self, units: list[WorkUnit], sort: bool = True) -> None:
        ordered = sorted(units, key=lambda u: u.work) if sort else list(units)
        # Ascending order: front = smallest (CPU side), back = biggest (GPU).
        self._q: deque[WorkUnit] = deque(ordered)
        self.total_work = float(sum(u.work for u in units))
        self.grabs_front = 0
        self.grabs_back = 0

    def __len__(self) -> int:
        return len(self._q)

    @property
    def empty(self) -> bool:
        return not self._q

    def grab(
        self, batch_size: int, from_back: bool, device: str = ""
    ) -> list[WorkUnit]:
        """Atomically take up to ``batch_size`` units from one end.

        ``device`` is the grabbing device's name, threaded through purely
        for telemetry: per-device grab/unit counters and — when events
        are enabled — one ``queue.grab`` event per non-empty grab.
        """
        out: list[WorkUnit] = []
        for _ in range(max(1, batch_size)):
            if not self._q:
                break
            out.append(self._q.pop() if from_back else self._q.popleft())
        if out:
            if from_back:
                self.grabs_back += 1
                _C_GRABS_BACK.inc()
            else:
                self.grabs_front += 1
                _C_GRABS_FRONT.inc()
            _H_BATCH.observe(len(out))
            if device:
                _metrics.counter(f"queue.device.{device}.units").inc(len(out))
            if _events.enabled():
                _events.emit(
                    "queue.grab",
                    end="back" if from_back else "front",
                    batch=len(out),
                    device=device,
                    remaining=len(self._q),
                )
        return out
