"""Heterogeneous MCB driver: Table 2 and Figures 5/6.

Runs the ear-reduced Mehlhorn–Michail pipeline once, recording every work
unit into a :class:`WorkTrace` with memory-traffic estimates, then replays
the trace on the four platforms (sequential / multicore / GPU / CPU+GPU).
Work-byte constants reflect the per-element traffic of each kernel:

* SPT construction touches each adjacency entry plus heap traffic
  (~40 B/edge);
* one Algorithm-3 label pass reads a parent edge index, a witness bit and
  writes a label (~24 B/vertex);
* a candidate test reads ids + two labels + a witness bit (~16 B);
* a witness xor sweep streams three packed rows (~24 B/word).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..decomposition.biconnected import biconnected_components
from ..decomposition.reduce import reduce_graph
from ..graph.csr import CSRGraph
from ..mcb import gf2
from ..mcb.cycle import Cycle
from ..mcb.mehlhorn_michail import MMContext
from ..obs import events as _events
from ..obs import metrics as _metrics
from ..obs.memory import memory_span as _memory_span
from ..obs.trace import span as _span
from .executor import Platform
from .trace import SimulationResult, WorkTrace, simulate_trace

__all__ = [
    "BYTES_SPT_PER_EDGE",
    "BYTES_LABEL_PER_VERTEX",
    "BYTES_SCAN_PER_CANDIDATE",
    "BYTES_UPDATE_PER_WORD",
    "mcb_with_trace",
    "HeteroMCBResult",
    "run_mcb_on_platforms",
]

BYTES_SPT_PER_EDGE = 40.0
BYTES_LABEL_PER_VERTEX = 24.0
BYTES_SCAN_PER_CANDIDATE = 16.0
BYTES_UPDATE_PER_WORD = 24.0
BYTES_REDUCE_PER_EDGE = 24.0

# Per-run peaks of the GF(2) witness matrix and the Horton candidate
# store, in actual bytes; zeroed at the top of every mcb_with_trace run
# and raised per component (the biggest BCC dominates).
_G_WITNESS_BYTES = _metrics.gauge("memory.mcb.witness_bytes")
_G_STORE_BYTES = _metrics.gauge("memory.mcb.candidate_store_bytes")


def mcb_with_trace(
    g: CSRGraph,
    use_ear: bool = True,
    lca_filter: bool = True,
    block_size: int = 512,
) -> tuple[list[Cycle], WorkTrace]:
    """One real ear-MCB execution plus its recorded work trace."""
    trace = WorkTrace(meta={"n": g.n, "m": g.m, "use_ear": use_ear})
    # Same Section 2.4 phase names as the APSP driver: preprocess
    # (decompose + reduce), process (the MM phases), postprocess (Lemma 3.1
    # cycle expansion back onto G).
    _G_WITNESS_BYTES.set(0.0)
    _G_STORE_BYTES.set(0.0)
    with _span("preprocess", cat="mcb", stage="decompose", n=g.n, m=g.m), \
            _memory_span("mcb.preprocess"), \
            _events.emitting("phase", phase="preprocess", cat="mcb", stage="decompose"):
        bcc = biconnected_components(g)
    trace.new_stage("decompose").add(g.m * BYTES_REDUCE_PER_EDGE, g.m)

    basis: list[Cycle] = []
    # Biggest components first: the [19] queue serves them to the GPU end.
    order = sorted(
        range(bcc.count), key=lambda c: -bcc.component_edges[c].size
    )
    for cid in order:
        comp_eids = bcc.component_edges[cid]
        sub, _ = bcc.component_subgraph(g, cid)
        if sub.cycle_space_dimension() == 0:
            continue
        if use_ear:
            with _span("preprocess", cat="mcb", stage="reduce", n=sub.n), \
                    _memory_span("mcb.preprocess"), \
                    _events.emitting("phase", phase="preprocess", cat="mcb", stage="reduce"):
                red = reduce_graph(sub)
            solve_on = red.graph
            trace.new_stage("reduce").add(sub.m * BYTES_REDUCE_PER_EDGE, sub.m)
        else:
            red = None
            solve_on = sub
        with _span("process", cat="mcb", stage="mehlhorn_michail", n=solve_on.n), \
                _memory_span("mcb.process"), \
                _events.emitting("phase", phase="process", cat="mcb", stage="mehlhorn_michail"):
            cycles = _mm_traced(solve_on, trace, lca_filter, block_size)
        with _span("postprocess", cat="mcb", stage="expand", cycles=len(cycles)), \
                _memory_span("mcb.postprocess"), \
                _events.emitting("phase", phase="postprocess", cat="mcb", stage="expand"):
            for cyc in cycles:
                sub_eids = (
                    red.expand_cycle(cyc.edge_ids) if red is not None else cyc.edge_ids
                )
                basis.append(
                    Cycle(
                        edge_ids=np.sort(comp_eids[sub_eids]),
                        weight=cyc.weight,
                        meta={"component": cid, **cyc.meta},
                    )
                )
    return basis, trace


def _mm_traced(
    g: CSRGraph, trace: WorkTrace, lca_filter: bool, block_size: int
) -> list[Cycle]:
    """Mehlhorn–Michail with per-stage work recording."""
    ctx = MMContext(g, lca_filter=lca_filter, block_size=block_size)
    if ctx.f == 0:
        return []
    n, f = ctx.n, ctx.f
    words = gf2.n_words(f)

    spt_stage = trace.new_stage("spt")
    for _ in range(len(ctx.fvs)):
        spt_stage.add(max(g.m, 1) * BYTES_SPT_PER_EDGE, n)

    store = ctx.new_store()
    witnesses = gf2.identity(f)
    _G_WITNESS_BYTES.set(max(_G_WITNESS_BYTES.value, int(witnesses.nbytes)))
    _G_STORE_BYTES.set(max(_G_STORE_BYTES.value, store.memory_bytes()))

    cycles: list[Cycle] = []
    for i in range(f):
        s_pad = ctx.witness_edge_bits(witnesses[i])
        labels = ctx.compute_labels(s_pad)
        label_stage = trace.new_stage("labels")
        for _ in range(len(ctx.fvs)):
            label_stage.add(n * BYTES_LABEL_PER_VERTEX, n)

        tested_before = store.stats.candidates_tested
        cand = store.scan_and_remove(ctx.scan_predicate(labels, s_pad))
        tested = store.stats.candidates_tested - tested_before
        trace.new_stage("scan", divisible=True).add(
            max(tested, 1) * BYTES_SCAN_PER_CANDIDATE, max(tested, 1)
        )
        if cand is None:
            raise RuntimeError("candidate family does not span the cycle space")
        cyc, c_vec = ctx.reconstruct(cand)
        cycles.append(cyc)
        rows = f - i - 1
        ctx.update_witnesses(witnesses, i, c_vec)
        if rows:
            # Parallel width is word-ops (each packed word is a lane on the
            # GPU's per-block reduce), not witness rows.
            trace.new_stage("update", divisible=True).add(
                rows * words * BYTES_UPDATE_PER_WORD, rows * words
            )
    return cycles


@dataclass
class HeteroMCBResult:
    """MCB output plus the virtual timings of all four implementations."""

    cycles: list[Cycle]
    trace: WorkTrace
    timings: dict[str, SimulationResult]

    @property
    def total_weight(self) -> float:
        return float(sum(c.weight for c in self.cycles))

    def speedups_vs_sequential(self) -> dict[str, float]:
        seq = self.timings["sequential"].total_time
        return {
            name: seq / r.total_time if r.total_time else float("inf")
            for name, r in self.timings.items()
        }


def run_mcb_on_platforms(
    g: CSRGraph,
    use_ear: bool = True,
    platforms: list[Platform] | None = None,
    **kwargs,
) -> HeteroMCBResult:
    """Execute once, replay on every platform (the Table 2 row builder)."""
    if platforms is None:
        platforms = [
            Platform.sequential(),
            Platform.multicore(),
            Platform.gpu(),
            Platform.heterogeneous(),
        ]
    cycles, trace = mcb_with_trace(g, use_ear=use_ear, **kwargs)
    timings = {p.name: simulate_trace(trace, p) for p in platforms}
    return HeteroMCBResult(cycles=cycles, trace=trace, timings=timings)
