"""Work traces: record real algorithm work once, replay on any platform.

Running the full MCB/APSP pipeline once per platform would repeat the
(identical) numerical work four times.  Instead the pipeline runs *once*,
recording every schedulable unit (a shortest-path tree build, one tree's
Algorithm-3 label pass, a candidate-scan burst, a witness-update sweep) as
``(work_bytes, parallel_items)``; the trace is then replayed through each
platform's devices and work queue to obtain its virtual makespan.

Replays exercise the real queue dynamics — batch grabs from both ends,
occupancy-dependent GPU costs, per-stage barriers — so platform
differences (Figures 5/6, Table 2) come from scheduling, exactly as on the
paper's machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .executor import HeterogeneousExecutor, Platform
from .workqueue import WorkUnit

__all__ = ["Stage", "WorkTrace", "simulate_trace", "SimulationResult"]


@dataclass
class Stage:
    """One barrier-separated stage of work units.

    ``divisible=True`` models work that splits perfectly across devices
    (e.g. the batched witness xor sweep), scheduled as bandwidth-
    proportional shares rather than discrete queue grabs.
    """

    kind: str
    units: list[tuple[float, int]] = field(default_factory=list)  # (work, items)
    divisible: bool = False

    def add(self, work: float, items: int = 1) -> None:
        self.units.append((float(work), int(items)))

    @property
    def total_work(self) -> float:
        return float(sum(w for w, _ in self.units))


@dataclass
class WorkTrace:
    """Ordered stages recorded from one real pipeline execution."""

    stages: list[Stage] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def new_stage(self, kind: str, divisible: bool = False) -> Stage:
        st = Stage(kind=kind, divisible=divisible)
        self.stages.append(st)
        return st

    @property
    def total_work(self) -> float:
        return float(sum(s.total_work for s in self.stages))

    def merged(self, kinds: set[str] | None = None) -> dict[str, float]:
        """Total work per stage kind (for phase-breakdown reporting)."""
        out: dict[str, float] = {}
        for s in self.stages:
            if kinds is None or s.kind in kinds:
                out[s.kind] = out.get(s.kind, 0.0) + s.total_work
        return out


@dataclass
class SimulationResult:
    """Virtual-time outcome of replaying a trace on a platform."""

    platform: str
    total_time: float
    stage_times: dict[str, float]
    device_busy: dict[str, float]

    def speedup_over(self, other: "SimulationResult") -> float:
        return other.total_time / self.total_time if self.total_time else float("inf")


def simulate_trace(
    trace: WorkTrace, platform: Platform, record_samples: bool = False
) -> SimulationResult:
    """Replay ``trace`` through ``platform``; returns its virtual makespan.

    ``record_samples=True`` switches every device clock to per-interval
    accounting, so after the replay ``{d.name: d.clock for d in
    platform.devices}`` can be handed to
    :func:`repro.obs.export.write_chrome_trace` as virtual device tracks.
    """
    platform.reset()
    if record_samples:
        for d in platform.devices:
            d.clock.record_samples = True
    ex = HeterogeneousExecutor(platform)
    stage_times: dict[str, float] = {}
    uid = 0
    for stage in trace.stages:
        if not stage.units:
            continue
        start = platform.total_time
        if stage.divisible:
            _run_divisible(platform, stage)
        else:
            units = []
            for work, items in stage.units:
                units.append(
                    WorkUnit(uid=uid, fn=_noop, work=work, items=items, label=stage.kind)
                )
                uid += 1
            ex.run_stage(units)
        stage_times[stage.kind] = (
            stage_times.get(stage.kind, 0.0) + platform.total_time - start
        )
    busy = {d.name: d.clock.busy for d in platform.devices}
    return SimulationResult(
        platform=platform.name,
        total_time=platform.total_time,
        stage_times=stage_times,
        device_busy=busy,
    )


def _run_divisible(platform: Platform, stage: Stage) -> None:
    """Perfectly-divisible stage: bandwidth-proportional shares."""
    devices = platform.devices
    start = max(d.clock.now for d in devices)
    for d in devices:
        d.clock.wait_until(start)
    work = stage.total_work
    items = sum(i for _, i in stage.units)
    # Effective rate of each device on this stage (GPU occupancy applies).
    rates = []
    for d in devices:
        probe = WorkUnit(uid=-1, fn=_noop, work=1.0, items=max(1, items // len(devices)))
        # cost(work=1) - overhead == 1/bandwidth_effective
        inv_bw = d.cost([probe]) - d.dispatch_overhead
        rates.append(1.0 / inv_bw if inv_bw > 0 else d.effective_bandwidth)
    total_rate = sum(rates)
    duration = work / total_rate if total_rate else 0.0
    for d, r in zip(devices, rates):
        d.clock.advance(duration + d.dispatch_overhead, label=stage.kind)


def _noop() -> None:
    return None
