"""Simulated heterogeneous (CPU + GPU) execution platform.

Real work, modeled clocks: devices execute work units for real while
charging bandwidth-model costs to per-device virtual clocks; the
double-ended work queue of [19] arbitrates.  See DESIGN.md §2.
"""

from .apsp_runner import HeteroAPSPResult, apsp_with_trace, run_apsp_on_platforms
from .device import (
    CPU_CORE_BW,
    CPU_SOCKET_BW,
    Device,
    GPU_EFFECTIVE_BW,
    cpu_device,
    local_cpu_device,
    sequential_device,
)
from .executor import HeterogeneousExecutor, Platform, StageReport
from .live_runner import LiveMCBResult, live_hetero_mcb
from .mcb_runner import HeteroMCBResult, mcb_with_trace, run_mcb_on_platforms
from .parallel import (
    ParallelEngine,
    SharedCSRBuffers,
    parallel_all_pairs,
    parallel_multi_source,
    parallel_spt_forest,
    resolve_workers,
)
from .simt import SIMTDevice, gpu_device
from .timing import ClockSample, VirtualClock
from .trace import SimulationResult, Stage, WorkTrace, simulate_trace
from .workqueue import DequeWorkQueue, WorkUnit

__all__ = [
    "HeteroAPSPResult",
    "apsp_with_trace",
    "run_apsp_on_platforms",
    "CPU_CORE_BW",
    "CPU_SOCKET_BW",
    "Device",
    "GPU_EFFECTIVE_BW",
    "cpu_device",
    "local_cpu_device",
    "sequential_device",
    "ParallelEngine",
    "SharedCSRBuffers",
    "parallel_all_pairs",
    "parallel_multi_source",
    "parallel_spt_forest",
    "resolve_workers",
    "HeterogeneousExecutor",
    "Platform",
    "StageReport",
    "HeteroMCBResult",
    "LiveMCBResult",
    "live_hetero_mcb",
    "mcb_with_trace",
    "run_mcb_on_platforms",
    "SIMTDevice",
    "gpu_device",
    "ClockSample",
    "VirtualClock",
    "SimulationResult",
    "Stage",
    "WorkTrace",
    "simulate_trace",
    "DequeWorkQueue",
    "WorkUnit",
]
