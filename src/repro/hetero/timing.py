"""Virtual clocks for the simulated heterogeneous platform.

The container this reproduction runs in has one CPU core and no GPU, so
the paper's CPU+GPU timings cannot be measured on real silicon.  Instead
every device executes its work units *for real* (results are exact) while
charging a modeled cost to a per-device virtual clock.  Makespans, device
utilisation, and speedups are then read off the clocks.

See DESIGN.md §2 for why this substitution preserves the paper's
observable behaviour (speedup shapes are determined by work division and
queue dynamics, both of which run for real).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VirtualClock", "ClockSample"]


@dataclass
class ClockSample:
    """One accounted interval on a device clock."""

    label: str
    start: float
    duration: float


@dataclass
class VirtualClock:
    """Monotone virtual clock with per-interval accounting."""

    now: float = 0.0
    busy: float = 0.0
    samples: list[ClockSample] = field(default_factory=list)
    record_samples: bool = False

    def advance(self, seconds: float, label: str = "") -> None:
        """Charge ``seconds`` of busy time."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        if self.record_samples:
            self.samples.append(ClockSample(label, self.now, seconds))
        self.now += seconds
        self.busy += seconds

    def wait_until(self, t: float) -> None:
        """Idle (synchronise) until virtual time ``t``."""
        if t > self.now:
            self.now = t

    @property
    def utilisation(self) -> float:
        """Busy fraction of elapsed virtual time."""
        return self.busy / self.now if self.now > 0 else 0.0

    def reset(self) -> None:
        self.now = 0.0
        self.busy = 0.0
        self.samples.clear()
