"""SIMT (GPU) device model.

Extends the bandwidth cost model with the two GPU-specific effects that
shape the paper's Table 2/Figure 5 numbers:

* **occupancy** — a kernel with fewer parallel items than the card's
  resident-thread capacity cannot saturate the memory channels, so the
  effective bandwidth scales down with the batch's parallel width;
* **divergence** — irregular per-item work (ragged adjacency rows) costs a
  constant-factor warp-divergence penalty.

The K40c constants: 15 SMs × 2048 resident threads, 32-wide warps.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import Device, GPU_EFFECTIVE_BW, GPU_LAUNCH_OVERHEAD
from .workqueue import WorkUnit

__all__ = ["SIMTDevice", "gpu_device"]


@dataclass
class SIMTDevice(Device):
    """GPU with occupancy- and divergence-aware batch costs."""

    n_sm: int = 15
    warp_size: int = 32
    resident_threads_per_sm: int = 2048
    divergence_penalty: float = 1.15
    min_occupancy: float = 0.02
    #: Bandwidth saturates well below full residency: ~8 warps per SM of
    #: in-flight loads suffice on Kepler, i.e. a quarter of residency.
    saturation_fraction: float = 0.25

    @property
    def saturation_items(self) -> int:
        """Parallel items needed to saturate the memory channels."""
        return int(self.n_sm * self.resident_threads_per_sm * self.saturation_fraction)

    def occupancy(self, items: int) -> float:
        """Fraction of peak effective bandwidth a batch can reach."""
        if items <= 0:
            return self.min_occupancy
        return max(self.min_occupancy, min(1.0, items / self.saturation_items))

    def cost(self, units: list[WorkUnit]) -> float:
        work = sum(u.work for u in units)
        items = sum(max(u.items, 1) for u in units)
        bw = self.effective_bandwidth * self.occupancy(items)
        return self.dispatch_overhead + self.divergence_penalty * work / bw


def gpu_device(batch_size: int = 32) -> SIMTDevice:
    """The Tesla K40c model; takes the big end of the work queue."""
    return SIMTDevice(
        name="gpu",
        effective_bandwidth=GPU_EFFECTIVE_BW,
        dispatch_overhead=GPU_LAUNCH_OVERHEAD,
        batch_size=batch_size,
        takes_from_back=True,
    )
