"""Heterogeneous APSP driver (Algorithm 1 on the CPU+GPU platform).

Phase II's work units are one Dijkstra source each ("if the graph is
already biconnected ... the workunits can correspond to the processing
required with respect to a vertex", Section 2.3); for general graphs the
units are whole biconnected components sorted by size.  Phase III's
anchor-formula sweep is perfectly divisible (pure broadcast arithmetic).

Like the MCB runner, the computation executes once for real and its trace
replays on every platform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apsp.composition import assemble_full_matrix, build_component_tables
from ..apsp.ear_apsp import extend_reduced_distances
from ..decomposition.reduce import reduce_graph
from ..graph.csr import CSRGraph
from ..sssp.engine import multi_source
from .executor import Platform
from .trace import SimulationResult, WorkTrace, simulate_trace

__all__ = ["HeteroAPSPResult", "apsp_with_trace", "run_apsp_on_platforms"]

BYTES_DIJKSTRA_PER_EDGE = 40.0
BYTES_POSTPROCESS_PER_ENTRY = 24.0
BYTES_REDUCE_PER_EDGE = 24.0


def apsp_with_trace(g: CSRGraph, use_ear: bool = True) -> tuple[np.ndarray, WorkTrace]:
    """Full APSP matrix plus the recorded heterogeneous work trace."""
    trace = WorkTrace(meta={"n": g.n, "m": g.m, "use_ear": use_ear})
    from ..decomposition.biconnected import biconnected_components

    bcc = biconnected_components(g)
    trace.new_stage("decompose").add(g.m * BYTES_REDUCE_PER_EDGE, g.m)

    def traced_solver(sub: CSRGraph) -> np.ndarray:
        if use_ear:
            red = reduce_graph(sub)
            trace.new_stage("reduce").add(sub.m * BYTES_REDUCE_PER_EDGE, sub.m)
            simple = red.simple_graph()
            stage = trace.new_stage("dijkstra")
            for _ in range(simple.n):
                stage.add(max(simple.m, 1) * BYTES_DIJKSTRA_PER_EDGE, simple.n)
            s_r = multi_source(simple, np.arange(simple.n))
            full = extend_reduced_distances(red, s_r)
            trace.new_stage("postprocess", divisible=True).add(
                sub.n * sub.n * BYTES_POSTPROCESS_PER_ENTRY, sub.n * sub.n
            )
            return full
        stage = trace.new_stage("dijkstra")
        for _ in range(sub.n):
            stage.add(max(sub.m, 1) * BYTES_DIJKSTRA_PER_EDGE, sub.n)
        return multi_source(sub, np.arange(sub.n))

    ct = build_component_tables(g, solver=traced_solver, bcc=bcc)
    mat = assemble_full_matrix(g, ct)
    a = len(ct.ap_ids)
    if a:
        trace.new_stage("ap_table", divisible=True).add(
            max(a * a, 1) * BYTES_POSTPROCESS_PER_ENTRY, a * a
        )
    return mat, trace


@dataclass
class HeteroAPSPResult:
    """APSP matrix plus virtual timings per platform."""

    matrix: np.ndarray
    trace: WorkTrace
    timings: dict[str, SimulationResult]

    def speedups_vs_sequential(self) -> dict[str, float]:
        seq = self.timings["sequential"].total_time
        return {
            name: seq / r.total_time if r.total_time else float("inf")
            for name, r in self.timings.items()
        }


def run_apsp_on_platforms(
    g: CSRGraph,
    use_ear: bool = True,
    platforms: list[Platform] | None = None,
) -> HeteroAPSPResult:
    """Execute once, replay the trace on every platform."""
    if platforms is None:
        platforms = [
            Platform.sequential(),
            Platform.multicore(),
            Platform.gpu(),
            Platform.heterogeneous(),
        ]
    matrix, trace = apsp_with_trace(g, use_ear=use_ear)
    timings = {p.name: simulate_trace(trace, p) for p in platforms}
    return HeteroAPSPResult(matrix=matrix, trace=trace, timings=timings)
