"""Heterogeneous APSP driver (Algorithm 1 on the CPU+GPU platform).

Phase II's work units are one Dijkstra source each ("if the graph is
already biconnected ... the workunits can correspond to the processing
required with respect to a vertex", Section 2.3); for general graphs the
units are whole biconnected components sorted by size.  Phase III's
anchor-formula sweep is perfectly divisible (pure broadcast arithmetic).

Like the MCB runner, the computation executes once for real and its trace
replays on every platform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apsp.composition import assemble_full_matrix, build_component_tables
from ..apsp.ear_apsp import extend_reduced_distances
from ..decomposition.reduce import reduce_graph
from ..graph.csr import CSRGraph
from ..obs import events as _events
from ..obs import metrics as _metrics
from ..obs.memory import memory_span as _memory_span, publish_apsp_table_gauges
from ..obs.trace import span as _span
from ..sssp.engine import multi_source, resolve_chunk_size
from .executor import Platform
from .trace import SimulationResult, WorkTrace, simulate_trace

__all__ = ["HeteroAPSPResult", "apsp_with_trace", "run_apsp_on_platforms"]

BYTES_DIJKSTRA_PER_EDGE = 40.0
BYTES_POSTPROCESS_PER_ENTRY = 24.0
BYTES_REDUCE_PER_EDGE = 24.0


def _record_dijkstra(trace: WorkTrace, n: int, m: int, chunk: int) -> None:
    """One trace unit per batched dispatch of ``chunk`` Dijkstra sources.

    Batching amortises the per-call dispatch cost, so a chunk — not a
    single source — is the atomic grab on a device queue.  Each unit is
    still marked divisible: the sources inside a chunk are independent,
    so a device with internal lanes (the GPU model) can split it.
    """
    stage = trace.new_stage("dijkstra", divisible=True)
    for lo in range(0, n, chunk):
        k = min(chunk, n - lo)
        stage.add(k * max(m, 1) * BYTES_DIJKSTRA_PER_EDGE, k * n)


def apsp_with_trace(
    g: CSRGraph, use_ear: bool = True, chunk_size: int | None = None
) -> tuple[np.ndarray, WorkTrace]:
    """Full APSP matrix plus the recorded heterogeneous work trace."""
    chunk = resolve_chunk_size(chunk_size)
    trace = WorkTrace(meta={"n": g.n, "m": g.m, "use_ear": use_ear, "chunk": chunk})
    from ..decomposition.biconnected import biconnected_components

    # Wall-clock spans use the paper's Section 2.4 phase names, so a
    # Chrome trace of this driver reads as the preprocess / process /
    # post-process split directly.  Memory spans mirror them: with
    # obs.memory profiling active, each phase also records its tracemalloc
    # delta/peak and the process RSS high-water (docs/OBSERVABILITY.md).
    # Phase events (repro.obs.events) bracket the same transitions, so a
    # live `repro-bench watch` shows which phase a run is in.
    with _span("preprocess", cat="apsp", stage="decompose", n=g.n, m=g.m), \
            _memory_span("apsp.preprocess"), \
            _events.emitting("phase", phase="preprocess", cat="apsp", stage="decompose"):
        bcc = biconnected_components(g)
    trace.new_stage("decompose").add(g.m * BYTES_REDUCE_PER_EDGE, g.m)

    # Measured Table 1: the reduced per-component solve matrices actually
    # allocated this run (Σ nᵢʳ² entries at 8 B), vs the per-BCC tables
    # and the dense n² matrix published below.
    reduced_bytes = 0

    def traced_solver(sub: CSRGraph) -> np.ndarray:
        nonlocal reduced_bytes
        if use_ear:
            with _span("preprocess", cat="apsp", stage="reduce", n=sub.n), \
                    _memory_span("apsp.preprocess"), \
                    _events.emitting("phase", phase="preprocess", cat="apsp", stage="reduce"):
                red = reduce_graph(sub)
            trace.new_stage("reduce").add(sub.m * BYTES_REDUCE_PER_EDGE, sub.m)
            simple = red.simple_graph()
            _record_dijkstra(trace, simple.n, simple.m, chunk)
            with _span("process", cat="apsp", stage="dijkstra", n=simple.n), \
                    _memory_span("apsp.process"), \
                    _events.emitting("phase", phase="process", cat="apsp", stage="dijkstra"):
                s_r = multi_source(simple, np.arange(simple.n), chunk_size=chunk)
            reduced_bytes += int(s_r.nbytes) + 3 * red.n_removed * 8
            with _span("postprocess", cat="apsp", stage="extend", n=sub.n), \
                    _memory_span("apsp.postprocess"), \
                    _events.emitting("phase", phase="postprocess", cat="apsp", stage="extend"):
                full = extend_reduced_distances(red, s_r)
            trace.new_stage("postprocess", divisible=True).add(
                sub.n * sub.n * BYTES_POSTPROCESS_PER_ENTRY, sub.n * sub.n
            )
            return full
        _record_dijkstra(trace, sub.n, sub.m, chunk)
        with _span("process", cat="apsp", stage="dijkstra", n=sub.n), \
                _memory_span("apsp.process"), \
                _events.emitting("phase", phase="process", cat="apsp", stage="dijkstra"):
            out = multi_source(sub, np.arange(sub.n), chunk_size=chunk)
        reduced_bytes += int(out.nbytes)
        return out

    ct = build_component_tables(g, solver=traced_solver, bcc=bcc)
    publish_apsp_table_gauges(ct, g.n)
    _metrics.gauge("memory.apsp.reduced_table_bytes").set(
        reduced_bytes + int(ct.ap_matrix.nbytes)
    )
    with _span("postprocess", cat="apsp", stage="assemble", n=g.n), \
            _memory_span("apsp.postprocess"), \
            _events.emitting("phase", phase="postprocess", cat="apsp", stage="assemble"):
        mat = assemble_full_matrix(g, ct)
    a = len(ct.ap_ids)
    if a:
        trace.new_stage("ap_table", divisible=True).add(
            max(a * a, 1) * BYTES_POSTPROCESS_PER_ENTRY, a * a
        )
    return mat, trace


@dataclass
class HeteroAPSPResult:
    """APSP matrix plus virtual timings per platform."""

    matrix: np.ndarray
    trace: WorkTrace
    timings: dict[str, SimulationResult]

    def speedups_vs_sequential(self) -> dict[str, float]:
        seq = self.timings["sequential"].total_time
        return {
            name: seq / r.total_time if r.total_time else float("inf")
            for name, r in self.timings.items()
        }


def run_apsp_on_platforms(
    g: CSRGraph,
    use_ear: bool = True,
    platforms: list[Platform] | None = None,
    chunk_size: int | None = None,
) -> HeteroAPSPResult:
    """Execute once, replay the trace on every platform."""
    if platforms is None:
        platforms = [
            Platform.sequential(),
            Platform.multicore(),
            Platform.gpu(),
            Platform.heterogeneous(),
        ]
    matrix, trace = apsp_with_trace(g, use_ear=use_ear, chunk_size=chunk_size)
    timings = {p.name: simulate_trace(trace, p) for p in platforms}
    return HeteroAPSPResult(matrix=matrix, trace=trace, timings=timings)
