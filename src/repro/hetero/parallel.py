"""True process-parallel CPU backend for the bulk-SSSP engine.

The virtual-time devices of :mod:`repro.hetero.device` *model* the paper's
platform; this module adds a backend that is genuinely parallel on the
host: source chunks of a multi-source Dijkstra fan out over a
``multiprocessing`` worker pool, and the scipy CSR adjacency buffers
(``data`` / ``indices`` / ``indptr``) are placed in POSIX shared memory so
workers attach to them **zero-copy and pickle-free** — only the small
per-chunk source arrays and the per-chunk result rows cross process
boundaries.

The backend degrades gracefully: with ``workers <= 1``, an empty graph, or
a pool that cannot be created (restricted sandboxes), every call runs
through the serial :mod:`repro.sssp.engine` path and returns bit-identical
results.  ``REPRO_WORKERS`` selects the default worker count.

This is the process arm of the execution-backend seam (serial scipy /
thread device / process pool / virtual GPU) the multi-backend roadmap
builds on.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import warnings
from multiprocessing import shared_memory

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from ..graph.csr import CSRGraph
from ..sssp import engine as _engine

__all__ = [
    "resolve_workers",
    "SharedCSRBuffers",
    "ParallelEngine",
    "parallel_multi_source",
    "parallel_all_pairs",
    "parallel_spt_forest",
]


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: explicit argument > ``REPRO_WORKERS`` > cores.

    Values below 2 mean "serial" (no pool is created at all).
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        if env is not None:
            workers = int(env)
        else:
            try:
                workers = len(os.sched_getaffinity(0))
            except AttributeError:  # pragma: no cover - non-Linux
                workers = os.cpu_count() or 1
    return max(1, int(workers))


class SharedCSRBuffers:
    """A scipy CSR matrix exported into named shared-memory segments.

    The parent process owns the segments (creates and unlinks them);
    workers attach by name through :meth:`attach` and wrap the raw buffers
    in a ``csr_matrix`` without copying.
    """

    _FIELDS = ("data", "indices", "indptr")

    def __init__(self, mat: sp.csr_matrix) -> None:
        self.shape = mat.shape
        self._shms: list[shared_memory.SharedMemory] = []
        self.spec: dict = {"shape": mat.shape, "fields": {}}
        for name in self._FIELDS:
            arr = np.ascontiguousarray(getattr(mat, name))
            shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[:] = arr
            self._shms.append(shm)
            self.spec["fields"][name] = (shm.name, arr.shape, arr.dtype.str)

    @staticmethod
    def attach(
        spec: dict, untrack: bool = False
    ) -> tuple[sp.csr_matrix, list[shared_memory.SharedMemory]]:
        """Rebuild the matrix over the named segments (zero-copy).

        Returns the matrix plus the segment handles, which the caller must
        keep alive for as long as the matrix is used.  ``untrack=True``
        removes the segments from the attaching process's resource tracker
        and is only for *independently launched* attachers, whose private
        tracker would otherwise destroy the parent-owned segments at exit.
        Pool workers — fork and spawn alike — inherit the parent's tracker
        fd and must leave the registration alone (it is the parent's).
        """
        arrays = {}
        shms = []
        for name, (shm_name, shape, dtype) in spec["fields"].items():
            shm = shared_memory.SharedMemory(name=shm_name)
            if untrack:
                _untrack(shm)
            shms.append(shm)
            arrays[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        mat = sp.csr_matrix(
            (arrays["data"], arrays["indices"], arrays["indptr"]),
            shape=spec["shape"],
            copy=False,
        )
        return mat, shms

    def close(self) -> None:
        """Release and unlink the segments (parent side, idempotent)."""
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._shms = []


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop a segment from this process's resource tracker.

    Attachers must not unlink segments they did not create; an
    independently launched attacher uses this so its tracker does not try
    to destroy (and warn about) the parent-owned segments at exit.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker internals shifted
        pass


# ------------------------------------------------------------------ #
# Worker-process side
# ------------------------------------------------------------------ #

_worker_mat: sp.csr_matrix | None = None
_worker_shms: list[shared_memory.SharedMemory] = []


def _worker_init(spec: dict) -> None:
    global _worker_mat, _worker_shms
    _worker_mat, _worker_shms = SharedCSRBuffers.attach(spec)


def _worker_dijkstra(task: tuple[np.ndarray, bool]):
    sources, want_pred = task
    out = csgraph.dijkstra(
        _worker_mat, directed=False, indices=sources, return_predecessors=want_pred
    )
    if want_pred:
        dist, pred = out
        return np.asarray(dist, dtype=np.float64), np.asarray(pred, dtype=np.int64)
    return np.asarray(out, dtype=np.float64)


# ------------------------------------------------------------------ #
# Parent-process engine
# ------------------------------------------------------------------ #


class ParallelEngine:
    """Multi-source Dijkstra fanned out over a process pool.

    Construction pins the graph: its scipy adjacency is built once (via the
    engine's fingerprint cache), exported to shared memory, and a pool of
    ``workers`` processes attaches to it.  Subsequent calls only ship
    source chunks and receive distance rows.  Use as a context manager, or
    call :meth:`close` explicitly, to tear the pool and segments down.

    With fewer than 2 effective workers the engine is a thin façade over
    the serial :mod:`repro.sssp.engine` — same results, no processes.
    """

    def __init__(
        self,
        g: CSRGraph,
        workers: int | None = None,
        chunk_size: int | None = None,
        start_method: str | None = None,
    ) -> None:
        self.graph = g
        self.workers = resolve_workers(workers)
        self.chunk_size = _engine.resolve_chunk_size(chunk_size)
        self._pool = None
        self._buffers: SharedCSRBuffers | None = None
        if self.workers < 2 or g.n == 0:
            return
        try:
            mat = _engine.adjacency_cache().get(g)
            self._buffers = SharedCSRBuffers(mat)
            methods = mp.get_all_start_methods()
            method = start_method or ("fork" if "fork" in methods else methods[0])
            ctx = mp.get_context(method)
            self._pool = ctx.Pool(
                processes=self.workers,
                initializer=_worker_init,
                initargs=(self._buffers.spec,),
            )
        except (OSError, ValueError) as exc:  # restricted sandbox / no shm
            warnings.warn(
                f"ParallelEngine falling back to serial execution: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            if self._buffers is not None:
                self._buffers.close()
                self._buffers = None
            self._pool = None

    # -------------------------------------------------------------- #

    @property
    def is_parallel(self) -> bool:
        """True when a live worker pool backs this engine."""
        return self._pool is not None

    def _chunks(self, sources: np.ndarray) -> list[np.ndarray]:
        return [
            sources[lo : lo + self.chunk_size]
            for lo in range(0, len(sources), self.chunk_size)
        ]

    def multi_source(self, sources: np.ndarray) -> np.ndarray:
        """Distance matrix ``(len(sources), n)`` — bit-identical to the
        serial engine for any worker count or chunking."""
        sources = np.asarray(sources, dtype=np.int64)
        if self._pool is None or len(sources) == 0:
            return _engine.multi_source(self.graph, sources, self.chunk_size)
        rows = self._pool.map(
            _worker_dijkstra, [(c, False) for c in self._chunks(sources)]
        )
        return np.vstack(rows)

    def all_pairs(self) -> np.ndarray:
        """Full ``n × n`` matrix (one Dijkstra per vertex, chunk-parallel)."""
        return self.multi_source(np.arange(self.graph.n, dtype=np.int64))

    def spt_forest(self, sources: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(dist, parent)`` forests, same contract as the serial engine."""
        sources = np.asarray(sources, dtype=np.int64)
        if self._pool is None or len(sources) == 0:
            return _engine.spt_forest(self.graph, sources, self.chunk_size)
        parts = self._pool.map(
            _worker_dijkstra, [(c, True) for c in self._chunks(sources)]
        )
        dist = np.vstack([d for d, _ in parts])
        pred = np.vstack([p for _, p in parts])
        return dist, pred

    # -------------------------------------------------------------- #

    def close(self) -> None:
        """Terminate the pool and release the shared segments (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        if self._buffers is not None:
            self._buffers.close()
            self._buffers = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


# ------------------------------------------------------------------ #
# One-shot conveniences
# ------------------------------------------------------------------ #


def parallel_multi_source(
    g: CSRGraph,
    sources: np.ndarray,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> np.ndarray:
    """One-shot :meth:`ParallelEngine.multi_source` (pool torn down after)."""
    with ParallelEngine(g, workers=workers, chunk_size=chunk_size) as eng:
        return eng.multi_source(sources)


def parallel_all_pairs(
    g: CSRGraph, workers: int | None = None, chunk_size: int | None = None
) -> np.ndarray:
    """One-shot parallel APSP over all vertices."""
    with ParallelEngine(g, workers=workers, chunk_size=chunk_size) as eng:
        return eng.all_pairs()


def parallel_spt_forest(
    g: CSRGraph,
    sources: np.ndarray,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One-shot parallel shortest-path forests."""
    with ParallelEngine(g, workers=workers, chunk_size=chunk_size) as eng:
        return eng.spt_forest(sources)
