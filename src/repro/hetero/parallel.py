"""True process-parallel CPU backend for the bulk-SSSP engine.

The virtual-time devices of :mod:`repro.hetero.device` *model* the paper's
platform; this module adds a backend that is genuinely parallel on the
host: source chunks of a multi-source Dijkstra fan out over a
``multiprocessing`` worker pool, and the scipy CSR adjacency buffers
(``data`` / ``indices`` / ``indptr``) are placed in POSIX shared memory so
workers attach to them **zero-copy and pickle-free** — only the small
per-chunk source arrays and the per-chunk result rows cross process
boundaries.

The backend degrades gracefully: with ``workers <= 1``, an empty graph, a
pool that cannot be created (restricted sandboxes), a worker that raises
mid-chunk, or a dispatch that exceeds ``timeout`` seconds
(``REPRO_PARALLEL_TIMEOUT``), every call runs through the serial
:mod:`repro.sssp.engine` path and returns bit-identical results — per-
source Dijkstra runs are independent, so the serial recomputation is the
same arithmetic.  ``REPRO_WORKERS`` selects the default worker count.

Failure paths are covered by the fault-injection harness
(:mod:`repro.qa.faultinject`): the ``REPRO_FAULTS`` environment variable
arms crash/hang/allocation faults at the seams marked ``_inject`` below,
and the conformance suite asserts that every armed fault still yields the
serial engine's exact matrices with no leaked shared-memory segments.

This is the process arm of the execution-backend seam (serial scipy /
thread device / process pool / virtual GPU) the multi-backend roadmap
builds on.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import time
import warnings
from multiprocessing import shared_memory

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from ..graph.csr import CSRGraph
from ..obs import events as _events
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs import watch as _watch
from ..sssp import engine as _engine

_C_SHM_BYTES = _metrics.counter("parallel.shm_bytes")
_C_CHUNKS = _metrics.counter("parallel.chunks_dispatched")
_C_DEGRADED = _metrics.counter("parallel.degraded")
_G_WORKERS = _metrics.gauge("parallel.workers")
_G_UTIL = _metrics.gauge("parallel.worker_utilisation")
_H_DISPATCH_UTIL = _metrics.histogram("parallel.dispatch_utilisation")

# Process-wide dispatch sequence: stamped on the parent's dispatch span
# and threaded through every task so worker-chunk spans carry the same id.
# This is the causal edge repro.obs.critpath uses to re-attach the
# cross-process chunk spans to their dispatch bracket.
_dispatch_seq = itertools.count(1)

__all__ = [
    "resolve_workers",
    "resolve_timeout",
    "SharedCSRBuffers",
    "ParallelEngine",
    "parallel_multi_source",
    "parallel_all_pairs",
    "parallel_spt_forest",
]


def _inject(seam: str, first_source: int | None = None) -> None:
    """Fault-injection seam: no-op unless ``REPRO_FAULTS`` is armed."""
    if os.environ.get("REPRO_FAULTS"):
        from ..qa import faultinject

        faultinject.fire(seam, first_source=first_source)


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: explicit argument > ``REPRO_WORKERS`` > cores.

    Values below 2 mean "serial" (no pool is created at all).
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        if env is not None:
            workers = int(env)
        else:
            try:
                workers = len(os.sched_getaffinity(0))
            except AttributeError:  # pragma: no cover - non-Linux
                workers = os.cpu_count() or 1
    return max(1, int(workers))


def resolve_timeout(timeout: float | None = None) -> float | None:
    """Per-dispatch timeout: explicit argument > ``REPRO_PARALLEL_TIMEOUT``.

    ``None`` (the default) waits indefinitely; a positive value bounds each
    pool dispatch and triggers the serial degradation path on expiry.
    """
    if timeout is None:
        env = os.environ.get("REPRO_PARALLEL_TIMEOUT")
        if env:
            timeout = float(env)
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    return timeout


class SharedCSRBuffers:
    """A scipy CSR matrix exported into named shared-memory segments.

    The parent process owns the segments (creates and unlinks them);
    workers attach by name through :meth:`attach` and wrap the raw buffers
    in a ``csr_matrix`` without copying.
    """

    _FIELDS = ("data", "indices", "indptr")

    def __init__(self, mat: sp.csr_matrix) -> None:
        self.shape = mat.shape
        self._shms: list[shared_memory.SharedMemory] = []
        self.spec: dict = {"shape": mat.shape, "fields": {}}
        try:
            for name in self._FIELDS:
                _inject("shm.create")
                arr = np.ascontiguousarray(getattr(mat, name))
                shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
                _C_SHM_BYTES.inc(max(1, arr.nbytes))
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[:] = arr
                self._shms.append(shm)
                self.spec["fields"][name] = (shm.name, arr.shape, arr.dtype.str)
        except BaseException:
            # Failing on the 2nd/3rd segment must not leak the earlier ones.
            self.close()
            raise

    @staticmethod
    def attach(
        spec: dict, untrack: bool = False
    ) -> tuple[sp.csr_matrix, list[shared_memory.SharedMemory]]:
        """Rebuild the matrix over the named segments (zero-copy).

        Returns the matrix plus the segment handles, which the caller must
        keep alive for as long as the matrix is used.  ``untrack=True``
        removes the segments from the attaching process's resource tracker
        and is only for *independently launched* attachers, whose private
        tracker would otherwise destroy the parent-owned segments at exit.
        Pool workers — fork and spawn alike — inherit the parent's tracker
        fd and must leave the registration alone (it is the parent's).
        """
        arrays = {}
        shms: list[shared_memory.SharedMemory] = []
        try:
            for name, (shm_name, shape, dtype) in spec["fields"].items():
                shm = shared_memory.SharedMemory(name=shm_name)
                if untrack:
                    _untrack(shm)
                shms.append(shm)
                arrays[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        except BaseException:
            # A partial attach must release what it already mapped.
            for shm in shms:
                try:
                    shm.close()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
            raise
        mat = sp.csr_matrix(
            (arrays["data"], arrays["indices"], arrays["indptr"]),
            shape=spec["shape"],
            copy=False,
        )
        return mat, shms

    def close(self) -> None:
        """Release and unlink the segments (parent side, idempotent)."""
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._shms = []


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop a segment from this process's resource tracker.

    Attachers must not unlink segments they did not create; an
    independently launched attacher uses this so its tracker does not try
    to destroy (and warn about) the parent-owned segments at exit.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker internals shifted
        pass


# ------------------------------------------------------------------ #
# Worker-process side
# ------------------------------------------------------------------ #

_worker_mat: sp.csr_matrix | None = None
_worker_shms: list[shared_memory.SharedMemory] = []


def _worker_init(spec: dict) -> None:
    global _worker_mat, _worker_shms
    try:
        _worker_mat, _worker_shms = SharedCSRBuffers.attach(spec)
    except BaseException:
        # A worker that raises before serving must not hold segment handles
        # (attach() already released partial maps; reset the globals so a
        # re-initialised worker starts clean).
        _worker_mat, _worker_shms = None, []
        raise


def _worker_dijkstra(task: tuple[np.ndarray, bool, bool, int, int]):
    """One chunk in a pool worker.

    When the parent is tracing (``want_spans``), the chunk runs under a
    private worker-local collector and the recorded spans ride back with
    the result as a picklable payload; the parent ingests them with their
    worker ``pid`` intact, which the Chrome export turns into per-worker
    tracks.  The ``dispatch``/``chunk`` ids stamped into the span args
    are the causal link back to the parent's dispatch bracket (worker
    spans live on their own pid track, so containment alone cannot pair
    them).  A crashing chunk returns nothing — the parent's trace only
    ever receives complete, well-formed spans.
    """
    sources, want_pred, want_spans, dispatch_id, chunk_idx = task
    if not want_spans:
        return _worker_chunk(sources, want_pred)
    with _trace.tracing() as col:
        with _trace.span(
            "parallel.worker_chunk",
            cat="parallel",
            sources=int(len(sources)),
            first_source=int(sources[0]) if len(sources) else -1,
            dispatch=int(dispatch_id),
            chunk=int(chunk_idx),
        ):
            out = _worker_chunk(sources, want_pred)
    return out, col.export_spans()


def _worker_chunk(sources: np.ndarray, want_pred: bool):
    # The heartbeat precedes the fault seam on purpose: a worker hung by
    # the ``worker.hang`` fault leaves a ``chunk_start`` beat whose age
    # keeps growing, which is exactly what the stall watchdog keys on.
    ev = _events.enabled()
    if ev:
        _events.emit(
            "worker.heartbeat", status="chunk_start", sources=int(len(sources))
        )
    _inject(
        "worker.chunk",
        first_source=int(sources[0]) if len(sources) else None,
    )
    out = csgraph.dijkstra(
        _worker_mat, directed=False, indices=sources, return_predecessors=want_pred
    )
    if ev:
        _events.emit(
            "worker.heartbeat", status="chunk_done", sources=int(len(sources))
        )
    if want_pred:
        dist, pred = out
        return np.asarray(dist, dtype=np.float64), np.asarray(pred, dtype=np.int64)
    return np.asarray(out, dtype=np.float64)


# ------------------------------------------------------------------ #
# Parent-process engine
# ------------------------------------------------------------------ #


class ParallelEngine:
    """Multi-source Dijkstra fanned out over a process pool.

    Construction pins the graph: its scipy adjacency is built once (via the
    engine's fingerprint cache), exported to shared memory, and a pool of
    ``workers`` processes attaches to it.  Subsequent calls only ship
    source chunks and receive distance rows.  Use as a context manager, or
    call :meth:`close` explicitly, to tear the pool and segments down.

    With fewer than 2 effective workers the engine is a thin façade over
    the serial :mod:`repro.sssp.engine` — same results, no processes.  Any
    pool failure after construction (a worker raising mid-chunk, a dispatch
    exceeding ``timeout`` seconds) permanently degrades the engine to that
    same serial path: the in-flight request is recomputed serially, so the
    caller still receives the exact matrices, and the pool plus its
    shared-memory segments are torn down.
    """

    def __init__(
        self,
        g: CSRGraph,
        workers: int | None = None,
        chunk_size: int | None = None,
        start_method: str | None = None,
        timeout: float | None = None,
    ) -> None:
        self.graph = g
        self.workers = resolve_workers(workers)
        self.chunk_size = _engine.resolve_chunk_size(chunk_size)
        self.timeout = resolve_timeout(timeout)
        self._pool = None
        self._buffers: SharedCSRBuffers | None = None
        if self.workers < 2 or g.n == 0:
            return
        try:
            mat = _engine.adjacency_cache().get(g)
            self._buffers = SharedCSRBuffers(mat)
            methods = mp.get_all_start_methods()
            method = start_method or ("fork" if "fork" in methods else methods[0])
            ctx = mp.get_context(method)
            self._pool = ctx.Pool(
                processes=self.workers,
                initializer=_worker_init,
                initargs=(self._buffers.spec,),
            )
            _G_WORKERS.set(self.workers)
        except (OSError, ValueError) as exc:  # restricted sandbox / no shm
            warnings.warn(
                f"ParallelEngine falling back to serial execution: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            if self._buffers is not None:
                self._buffers.close()
                self._buffers = None
            self._pool = None

    # -------------------------------------------------------------- #

    @property
    def is_parallel(self) -> bool:
        """True when a live worker pool backs this engine."""
        return self._pool is not None

    def _chunks(self, sources: np.ndarray) -> list[np.ndarray]:
        return [
            sources[lo : lo + self.chunk_size]
            for lo in range(0, len(sources), self.chunk_size)
        ]

    def _dispatch(self, chunks: list[np.ndarray], want_pred: bool) -> list:
        """Fan chunks out, bounded by ``timeout`` when one is configured.

        When tracing is active, worker-recorded spans piggy-back on each
        chunk result and are merged into the parent collector here, with a
        parent-side ``parallel.dispatch`` span bracketing the whole fan-out
        and a utilisation gauge computed from the merged busy time.
        """
        col = _trace.current_collector()
        did = next(_dispatch_seq)
        tasks = [
            (c, want_pred, col is not None, did, idx)
            for idx, c in enumerate(chunks)
        ]
        _C_CHUNKS.inc(len(tasks))
        # With events enabled, a watchdog thread consumes the workers'
        # heartbeat shards for the duration of the fan-out: a hung worker
        # is flagged (watch.stalls, engine.stall_detected) while the
        # dispatch is still waiting, before any timeout degradation.
        sink = _events.current_sink()
        watchdog = None
        if sink is not None:
            _events.emit(
                "dispatch.start",
                chunks=len(tasks),
                workers=self.workers,
                dispatch=did,
            )
            watchdog = _watch.Watchdog(
                _watch.heartbeats_from_events(sink.dir),
                stall_after=_watch.resolve_stall_after(None, self.timeout),
            ).start()
        t0 = time.perf_counter_ns()
        try:
            with _trace.span(
                "parallel.dispatch", cat="parallel",
                chunks=len(tasks), workers=self.workers, dispatch=did,
            ):
                if self.timeout is None:
                    raw = self._pool.map(_worker_dijkstra, tasks)
                else:
                    raw = self._pool.map_async(_worker_dijkstra, tasks).get(
                        self.timeout
                    )
        finally:
            if watchdog is not None:
                watchdog.stop()
                _events.emit(
                    "dispatch.finish",
                    chunks=len(tasks),
                    workers=self.workers,
                    stalls=len(watchdog.stalled),
                    dispatch=did,
                )
        if col is None:
            return raw
        wall = max(1, time.perf_counter_ns() - t0)
        results = []
        busy = 0
        for res, payload in raw:
            results.append(res)
            # Only root spans count toward busy time (children are nested).
            busy += sum(t[3] for t in payload if t[6] == 0)
            col.ingest(payload)
        util = busy / (wall * max(1, self.workers))
        _G_UTIL.set(util)
        # The gauge is last-write-wins; the histogram keeps every
        # dispatch so utilisation tails survive multi-dispatch runs.
        _H_DISPATCH_UTIL.observe(util)
        return results

    def _degrade(self, exc: BaseException) -> None:
        """Tear the pool down after a failure; the engine stays usable serially.

        ``terminate`` rather than ``close``: the workers may be hung (the
        timeout path) or mid-crash, so a graceful join could block forever.
        """
        warnings.warn(
            f"ParallelEngine degrading to serial execution: {exc!r}",
            RuntimeWarning,
            stacklevel=3,
        )
        _C_DEGRADED.inc()
        if _events.enabled():
            _events.emit("engine.degraded", error=type(exc).__name__)
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._buffers is not None:
            self._buffers.close()
            self._buffers = None

    def multi_source(self, sources: np.ndarray) -> np.ndarray:
        """Distance matrix ``(len(sources), n)`` — bit-identical to the
        serial engine for any worker count, chunking, or pool failure."""
        sources = np.asarray(sources, dtype=np.int64)
        if self._pool is None or len(sources) == 0:
            return _engine.multi_source(self.graph, sources, self.chunk_size)
        try:
            rows = self._dispatch(self._chunks(sources), want_pred=False)
        except Exception as exc:
            self._degrade(exc)
            return _engine.multi_source(self.graph, sources, self.chunk_size)
        return np.vstack(rows)

    def all_pairs(self) -> np.ndarray:
        """Full ``n × n`` matrix (one Dijkstra per vertex, chunk-parallel)."""
        return self.multi_source(np.arange(self.graph.n, dtype=np.int64))

    def spt_forest(self, sources: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(dist, parent)`` forests, same contract as the serial engine."""
        sources = np.asarray(sources, dtype=np.int64)
        if self._pool is None or len(sources) == 0:
            return _engine.spt_forest(self.graph, sources, self.chunk_size)
        try:
            parts = self._dispatch(self._chunks(sources), want_pred=True)
        except Exception as exc:
            self._degrade(exc)
            return _engine.spt_forest(self.graph, sources, self.chunk_size)
        dist = np.vstack([d for d, _ in parts])
        pred = np.vstack([p for _, p in parts])
        return dist, pred

    # -------------------------------------------------------------- #

    def close(self) -> None:
        """Terminate the pool and release the shared segments (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        if self._buffers is not None:
            self._buffers.close()
            self._buffers = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


# ------------------------------------------------------------------ #
# One-shot conveniences
# ------------------------------------------------------------------ #


def parallel_multi_source(
    g: CSRGraph,
    sources: np.ndarray,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> np.ndarray:
    """One-shot :meth:`ParallelEngine.multi_source` (pool torn down after)."""
    with ParallelEngine(g, workers=workers, chunk_size=chunk_size) as eng:
        return eng.multi_source(sources)


def parallel_all_pairs(
    g: CSRGraph, workers: int | None = None, chunk_size: int | None = None
) -> np.ndarray:
    """One-shot parallel APSP over all vertices."""
    with ParallelEngine(g, workers=workers, chunk_size=chunk_size) as eng:
        return eng.all_pairs()


def parallel_spt_forest(
    g: CSRGraph,
    sources: np.ndarray,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One-shot parallel shortest-path forests."""
    with ParallelEngine(g, workers=workers, chunk_size=chunk_size) as eng:
        return eng.spt_forest(sources)
