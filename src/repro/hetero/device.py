"""Device models for the simulated heterogeneous platform.

Graph kernels (SSSP frontiers, label propagation, witness xors) are
memory-bandwidth bound, so the first-principles cost model is bytes moved
over sustained bandwidth plus fixed per-dispatch overhead:

``t(batch) = overhead + Σ work_bytes / effective_bandwidth``

with the effective bandwidth of a multicore CPU capped by the socket
bandwidth (this cap — not core count — is why the paper's 20-core runs
only reach ≈3× over sequential) and the GPU's discounted for irregular,
uncoalesced access.  The default constants model the paper's platform
(dual E5-2650 + Tesla K40c); docstrings give the derivation.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from .timing import VirtualClock
from .workqueue import WorkUnit

__all__ = [
    "Device",
    "CPUDevice",
    "cpu_device",
    "sequential_device",
    "local_cpu_device",
]


@dataclass
class Device:
    """A compute device with a bandwidth cost model and a virtual clock.

    Parameters
    ----------
    name:
        Display name ("cpu", "gpu", ...).
    effective_bandwidth:
        Sustained bytes/second the device moves on irregular graph
        kernels.
    dispatch_overhead:
        Seconds charged per batch handed to the device (thread wake-up /
        kernel launch).
    batch_size:
        Work units taken from the queue per grab — "in proportion to the
        number of threads supported" ([19]).
    takes_from_back:
        True for the GPU end of the double-ended queue (it starts with
        the *biggest* units).
    pool:
        Optional *real* execution backend: a callable mapping a list of
        zero-argument thunks to their results.  When set, a batch's work
        units run concurrently on the host (e.g. a thread pool — the scipy
        and numpy kernels release the GIL) while the virtual clock still
        charges the modeled cost.  ``None`` keeps the default in-process
        sequential execution of the virtual-time devices.
    """

    name: str
    effective_bandwidth: float
    dispatch_overhead: float = 0.0
    batch_size: int = 1
    takes_from_back: bool = False
    clock: VirtualClock = field(default_factory=VirtualClock)
    pool: Callable[[list], list] | None = None

    def cost(self, units: list[WorkUnit]) -> float:
        """Modeled seconds to execute ``units`` as one batch."""
        work = sum(u.work for u in units)
        return self.dispatch_overhead + work / self.effective_bandwidth

    def execute(self, units: list[WorkUnit]) -> list:
        """Run the batch for real, charge the modeled cost. Returns results."""
        if self.pool is not None and len(units) > 1:
            results = self.pool([u.run for u in units])
        else:
            results = [u.run() for u in units]
        self.clock.advance(self.cost(units), label=units[0].label if units else "")
        return results


# --------------------------------------------------------------------- #
# The paper's platform (Section 2.4.1), derived constants
# --------------------------------------------------------------------- #

#: Sustained single-core bandwidth of a Sandy-Bridge-class Xeon on
#: irregular (pointer-chasing) graph kernels, bytes/s.
CPU_CORE_BW = 14e9

#: The dual-socket E5-2650 machine's aggregate memory bandwidth (68 GB/s
#: per the paper) derated by a 0.65 parallel-efficiency factor for
#: synchronisation and NUMA imbalance — yielding the ≈3.1× multicore
#: scaling the paper measures.
CPU_SOCKET_BW = 68e9 * 0.65

#: Tesla K40c: 288 GB/s GDDR5 derated to 50% for uncoalesced graph
#: access — ≈10× a single CPU core, matching the paper's ≈9× GPU speedup
#: once kernel-launch overhead is charged.
GPU_EFFECTIVE_BW = 288e9 * 0.5

#: CUDA kernel launch + transfer setup per dispatched batch.
GPU_LAUNCH_OVERHEAD = 3e-6

#: OpenMP parallel-for fork/join cost per batch.
CPU_DISPATCH_OVERHEAD = 2e-6


def sequential_device() -> Device:
    """One CPU core — the Table 2 "Sequential" implementation."""
    return Device(
        name="sequential",
        effective_bandwidth=CPU_CORE_BW,
        dispatch_overhead=0.0,
        batch_size=1,
    )


def cpu_device(n_threads: int = 40) -> Device:
    """The 20-core / 40-thread multicore CPU (bandwidth-capped scaling)."""
    bw = min(n_threads * CPU_CORE_BW * 0.65, CPU_SOCKET_BW)
    return Device(
        name="cpu",
        effective_bandwidth=bw,
        dispatch_overhead=CPU_DISPATCH_OVERHEAD,
        batch_size=max(1, n_threads // 8),
        takes_from_back=False,
    )


def local_cpu_device(n_workers: int | None = None) -> Device:
    """A CPU device whose batches *really* run concurrently on this host.

    Work units in a batch are dispatched to a thread pool (the compiled
    scipy/numpy kernels release the GIL, so threads give genuine overlap
    without the pickling constraints of processes; the process-parallel
    bulk-SSSP backend lives in :mod:`repro.hetero.parallel`).  Virtual-time
    accounting is unchanged — the clock still charges the bandwidth model —
    so traces replayed through this device stay comparable with the purely
    simulated ones.
    """
    if n_workers is None:
        from .parallel import resolve_workers

        n_workers = resolve_workers()
    n_workers = max(1, int(n_workers))
    executor = ThreadPoolExecutor(max_workers=n_workers)

    def pool_map(thunks: list) -> list:
        return list(executor.map(lambda f: f(), thunks))

    dev = cpu_device(n_threads=n_workers)
    dev.name = "cpu-local"
    dev.pool = pool_map
    dev.batch_size = max(1, n_workers)
    return dev


class CPUDevice(Device):
    """Alias kept for readability in user code."""
