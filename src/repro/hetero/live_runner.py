"""Live heterogeneous MCB: devices execute the real per-phase work units.

Unlike the trace-replay drivers (which run the pipeline once and replay
recorded costs), this driver pushes every Algorithm-3 label pass and every
witness-update block through the :class:`HeterogeneousExecutor` *as it
happens* — the queue grabs, device batching, and barriers all interleave
with the actual numpy kernels.  Used by tests to prove the executor
machinery composes with the MCB pipeline, and by anyone who wants the
platform counters for a single real run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..decomposition.biconnected import biconnected_components
from ..decomposition.reduce import reduce_graph
from ..graph.csr import CSRGraph
from ..mcb import gf2
from ..mcb.cycle import Cycle
from ..mcb.mehlhorn_michail import MMContext
from .executor import HeterogeneousExecutor, Platform
from .mcb_runner import BYTES_LABEL_PER_VERTEX, BYTES_UPDATE_PER_WORD

__all__ = ["LiveMCBResult", "live_hetero_mcb"]


@dataclass
class LiveMCBResult:
    cycles: list[Cycle]
    virtual_seconds: float
    device_busy: dict[str, float] = field(default_factory=dict)

    @property
    def total_weight(self) -> float:
        return float(sum(c.weight for c in self.cycles))


def live_hetero_mcb(
    g: CSRGraph,
    platform: Platform | None = None,
    use_ear: bool = True,
    lca_filter: bool = True,
) -> LiveMCBResult:
    """Ear-reduced MCB with executor-scheduled label/update stages."""
    if platform is None:
        platform = Platform.heterogeneous()
    platform.reset()
    ex = HeterogeneousExecutor(platform)

    def label_map(fn, items):
        return ex.map(
            fn,
            items,
            work=lambda _zi: n_solve * BYTES_LABEL_PER_VERTEX,
            items_width=lambda _zi: n_solve,
            label="labels",
        )

    def update_map(fn, spans):
        return ex.map(
            fn,
            spans,
            work=lambda se: max(se[1] - se[0], 1) * words * BYTES_UPDATE_PER_WORD,
            items_width=lambda se: max(se[1] - se[0], 1) * words,
            label="update",
        )

    bcc = biconnected_components(g)
    basis: list[Cycle] = []
    for cid in range(bcc.count):
        comp_eids = bcc.component_edges[cid]
        sub, _ = bcc.component_subgraph(g, cid)
        if sub.cycle_space_dimension() == 0:
            continue
        red = reduce_graph(sub) if use_ear else None
        solve_on = red.graph if red is not None else sub
        ctx = MMContext(solve_on, lca_filter=lca_filter)
        if ctx.f == 0:
            continue
        n_solve = ctx.n
        words = gf2.n_words(ctx.f)
        store = ctx.new_store()
        witnesses = gf2.identity(ctx.f)
        for i in range(ctx.f):
            s_pad = ctx.witness_edge_bits(witnesses[i])
            labels = ctx.compute_labels(s_pad, parallel_map=label_map)
            cand = store.scan_and_remove(ctx.scan_predicate(labels, s_pad))
            if cand is None:
                raise RuntimeError("candidate family does not span the cycle space")
            cyc, c_vec = ctx.reconstruct(cand)
            ctx.update_witnesses(witnesses, i, c_vec, parallel_map=update_map)
            sub_eids = red.expand_cycle(cyc.edge_ids) if red is not None else cyc.edge_ids
            basis.append(
                Cycle(
                    edge_ids=np.sort(comp_eids[sub_eids]),
                    weight=cyc.weight,
                    meta={"component": cid, **cyc.meta},
                )
            )
    return LiveMCBResult(
        cycles=basis,
        virtual_seconds=platform.total_time,
        device_busy={d.name: d.clock.busy for d in platform.devices},
    )
