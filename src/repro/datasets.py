"""Table-1 dataset stand-ins.

The paper evaluates on ten University-of-Florida sparse graphs and five
OGDF-generated planar graphs (Table 1).  Those files are not available in
this offline environment, so each row gets a *structural stand-in*: a
synthetic graph matched on the columns that drive the paper's results —
|V|, |E|, number of biconnected components, and the fraction of vertices
ear reduction removes.  (DESIGN.md §2 discusses why matching these knobs
preserves the experiments' behaviour.)

All stand-ins are deterministic and support a global ``scale`` factor
(default from ``$REPRO_BENCH_SCALE``) so the benchmark suite can run the
whole table in minutes: structure percentages are scale-invariant, raw
sizes shrink linearly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from .graph.csr import CSRGraph
from .graph.generators import (
    attach_blocks,
    delaunay_graph,
    preferential_attachment_graph,
    random_biconnected_graph,
    randomize_weights,
    subdivide_to_count,
)

__all__ = [
    "DatasetSpec",
    "TABLE1",
    "MCB_DATASETS",
    "PLANAR_DATASETS",
    "GENERAL_DATASETS",
    "default_scale",
    "load",
]

#: Default fraction of the paper's graph sizes used by the benchmarks.
DEFAULT_SCALE = 0.04


@dataclass(frozen=True)
class DatasetSpec:
    """One Table-1 row: paper-reported structure + stand-in recipe knobs."""

    name: str
    n: int                   # paper |V|
    m: int                   # paper |E|
    n_bcc: int               # paper #BCCs
    largest_bcc_pct: float   # paper largest BCC (% of |E|)
    removed_pct: float       # paper nodes removed by ear reduction (% |V|)
    planar: bool = False
    seed: int = 0

    def generate(self, scale: float | None = None) -> CSRGraph:
        """Build the stand-in at ``scale`` times the paper's size."""
        s = default_scale() if scale is None else scale
        n = max(60, int(round(self.n * s)))
        m = max(int(1.2 * n), int(round(self.m * s)))
        n_bcc = max(1, int(round(self.n_bcc * min(1.0, s * 4))))
        return _synthesize(
            n=n,
            m=m,
            n_bcc=n_bcc,
            removed_frac=self.removed_pct / 100.0,
            planar=self.planar,
            seed=self.seed,
        )


def default_scale() -> float:
    """Benchmark scale factor, overridable via ``$REPRO_BENCH_SCALE``."""
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def _synthesize(
    n: int,
    m: int,
    n_bcc: int,
    removed_frac: float,
    planar: bool,
    seed: int,
) -> CSRGraph:
    """Recipe: biconnected core + grafted blocks + targeted subdivision."""
    n_insert = int(round(removed_frac * n))
    n_blocks = max(0, n_bcc - 1)
    # Keep the core at least half the vertex budget: many-BCC rows
    # (Rajat26, cond_mat) scale their block count down to fit.
    budget = max(20, n - n_insert)
    n_blocks = min(n_blocks, budget // 10)
    block_nodes = n_blocks * 4   # grafted K5-ish cliques, one shared vertex
    block_edges = n_blocks * 10
    core_n = max(10, n - n_insert - block_nodes)
    core_m = max(int(core_n * 1.05), m - n_insert - block_edges)
    if planar:
        core = delaunay_graph(core_n, seed=seed)
        # Delaunay gives ~3|V| edges — the planar rows of Table 1 all have
        # m/n ≈ 2.5-3.1, so no thinning is needed.
    elif core_m > core_n * 8:
        mpn = int(min(max(2, core_m // core_n), max(2, core_n // 2)))
        core = preferential_attachment_graph(core_n, mpn, seed=seed)
    else:
        core = random_biconnected_graph(core_n, core_m - core_n, seed=seed)
    # Cliques leave "Nodes Removed" untouched; only subdivision adds
    # degree-2 vertices, so the removed fraction is hit exactly.
    g = attach_blocks(core, n_blocks, seed=seed + 1, block_size=(4, 6), style="clique")
    g = subdivide_to_count(g, n_insert, seed=seed + 2)
    return randomize_weights(g, seed=seed + 3)


#: The fifteen rows of Table 1, in paper order.
TABLE1: list[DatasetSpec] = [
    DatasetSpec("nopoly", 10_000, 30_000, 1, 100.0, 0.018, seed=11),
    DatasetSpec("OPF_3754", 15_000, 86_000, 1, 100.0, 1.98, seed=12),
    DatasetSpec("ca-AstroPh", 18_000, 198_000, 647, 98.43, 15.85, seed=13),
    DatasetSpec("as-22july06", 22_000, 48_000, 13, 99.9, 77.60, seed=14),
    DatasetSpec("c-50", 22_000, 90_000, 1, 100.0, 52.04, seed=15),
    DatasetSpec("cond_mat_2003", 31_000, 120_000, 2157, 80.52, 26.88, seed=16),
    DatasetSpec("delaunay_n15", 32_000, 98_000, 1, 100.0, 0.0, seed=17),
    DatasetSpec("Rajat26", 51_000, 247_000, 5053, 95.17, 32.92, seed=18),
    DatasetSpec("Wordnet3", 82_000, 132_000, 156, 98.92, 77.24, seed=19),
    DatasetSpec("soc-signs-epinions", 131_000, 841_000, 609, 99.7, 67.86, seed=20),
    DatasetSpec("Planar_1", 19_000, 54_000, 46, 99.55, 12.42, planar=True, seed=21),
    DatasetSpec("Planar_2", 25_000, 64_000, 164, 93.65, 5.63, planar=True, seed=22),
    DatasetSpec("Planar_3", 30_000, 70_000, 298, 96.53, 19.72, planar=True, seed=23),
    DatasetSpec("Planar_4", 36_000, 94_000, 175, 98.37, 18.56, planar=True, seed=24),
    DatasetSpec("Planar_5", 41_000, 128_000, 223, 95.63, 16.34, planar=True, seed=25),
]

_BY_NAME = {spec.name: spec for spec in TABLE1}

#: "For our experiments, we use the first seven graphs listed in Table 1"
#: (Section 3.5 — the MCB evaluation set).
MCB_DATASETS = [s.name for s in TABLE1[:7]]

#: The planar rows (the Djidjev comparison of Figure 2).
PLANAR_DATASETS = [s.name for s in TABLE1 if s.planar]

#: The general-graph rows (the Banerjee comparison of Figure 2).
GENERAL_DATASETS = [s.name for s in TABLE1 if not s.planar]


def load(name: str, scale: float | None = None) -> CSRGraph:
    """Generate the stand-in for a Table 1 row by name."""
    try:
        spec = _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(_BY_NAME)}"
        ) from None
    return spec.generate(scale)
