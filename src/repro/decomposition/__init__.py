"""Structural decompositions: biconnectivity, block-cut tree, ears, reduction."""

from .biconnected import BCCDecomposition, biconnected_components
from .block_cut_tree import BlockCutTree
from .bridges import (
    BridgeDecomposition,
    find_bridges,
    is_two_edge_connected,
    two_edge_connected_components,
)
from .ear import Ear, EarDecomposition, ear_decomposition
from .reduce import Chain, ReducedGraph, reduce_graph

__all__ = [
    "BCCDecomposition",
    "biconnected_components",
    "BlockCutTree",
    "BridgeDecomposition",
    "find_bridges",
    "is_two_edge_connected",
    "two_edge_connected_components",
    "Ear",
    "EarDecomposition",
    "ear_decomposition",
    "Chain",
    "ReducedGraph",
    "reduce_graph",
]
