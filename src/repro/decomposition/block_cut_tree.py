"""Block-cut tree (as used by Banerjee et al. [4] and Section 2.2).

The block-cut tree of a graph ``G`` is the bipartite forest whose nodes are
the biconnected components ("blocks") and the articulation points ("cuts"),
with a block adjacent to every cut vertex it contains.  Any path between
vertices in different blocks traverses exactly the cut vertices lying on the
tree path between the two block nodes — which is what makes the
``d(n1, n2) = d(n1, a1) + A[a1, a2] + d(a2, n2)`` post-processing formula of
Stage 2 valid.

LCA queries use binary lifting so oracle distance queries stay
``O(log n)`` per pair.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .biconnected import BCCDecomposition

__all__ = ["BlockCutTree"]


class BlockCutTree:
    """Block-cut forest with LCA support.

    Node numbering: block nodes are ``0 .. n_blocks-1`` (matching component
    ids of the :class:`BCCDecomposition`), cut nodes are
    ``n_blocks + k`` for the ``k``-th articulation point in sorted order.
    """

    def __init__(self, g: CSRGraph, bcc: BCCDecomposition) -> None:
        self.bcc = bcc
        self.n_blocks = bcc.count
        self.ap_ids = bcc.articulation_points
        self.ap_index = {int(v): i for i, v in enumerate(self.ap_ids)}
        n_nodes = self.n_blocks + len(self.ap_ids)
        self.n_nodes = n_nodes

        adj: list[list[int]] = [[] for _ in range(n_nodes)]
        for cid in range(bcc.count):
            for v in bcc.component_vertices[cid]:
                k = self.ap_index.get(int(v))
                if k is not None:
                    cut = self.n_blocks + k
                    adj[cid].append(cut)
                    adj[cut].append(cid)
        self.adj = adj

        # For every non-articulation vertex, its home block.  A vertex with
        # self-loops additionally sits in one single-vertex block per loop;
        # those never reach any other vertex, so the multi-vertex block (if
        # any) must win — hence the two passes.
        self._vertex_block = np.full(g.n, -1, dtype=np.int64)
        for multi in (False, True):
            for cid in range(bcc.count):
                if (len(bcc.component_vertices[cid]) > 1) != multi:
                    continue
                for v in bcc.component_vertices[cid]:
                    if not bcc.is_articulation[v]:
                        self._vertex_block[v] = cid

        # BFS forest + binary lifting tables.
        self.parent = np.full(n_nodes, -1, dtype=np.int64)
        self.depth = np.zeros(n_nodes, dtype=np.int64)
        self.tree_id = np.full(n_nodes, -1, dtype=np.int64)
        tid = 0
        order: list[int] = []
        for root in range(n_nodes):
            if self.tree_id[root] != -1:
                continue
            self.tree_id[root] = tid
            queue = [root]
            while queue:
                u = queue.pop()
                order.append(u)
                for w in adj[u]:
                    if self.tree_id[w] == -1:
                        self.tree_id[w] = tid
                        self.parent[w] = u
                        self.depth[w] = self.depth[u] + 1
                        queue.append(w)
            tid += 1
        self.n_trees = tid

        levels = max(1, int(np.ceil(np.log2(max(2, n_nodes)))))
        up = np.full((levels, n_nodes), -1, dtype=np.int64)
        up[0] = self.parent
        for k in range(1, levels):
            prev = up[k - 1]
            mask = prev >= 0
            up[k, mask] = prev[prev[mask]]
        self._up = up

    # ------------------------------------------------------------------ #

    def node_for_vertex(self, v: int) -> int:
        """Tree node representing graph vertex ``v``.

        Articulation points map to their cut node; other vertices map to
        their unique block node.  Raises for isolated vertices (they belong
        to no block).
        """
        k = self.ap_index.get(int(v))
        if k is not None:
            return self.n_blocks + k
        b = int(self._vertex_block[v])
        if b < 0:
            raise KeyError(f"vertex {v} is isolated — not in any block")
        return b

    def lca(self, a: int, b: int) -> int:
        """Lowest common ancestor of tree nodes ``a`` and ``b``.

        Returns ``-1`` when the nodes live in different trees of the forest.
        """
        if self.tree_id[a] != self.tree_id[b]:
            return -1
        da, db = int(self.depth[a]), int(self.depth[b])
        if da < db:
            a, b = b, a
            da, db = db, da
        diff = da - db
        k = 0
        while diff:
            if diff & 1:
                a = int(self._up[k, a])
            diff >>= 1
            k += 1
        if a == b:
            return a
        for k in range(self._up.shape[0] - 1, -1, -1):
            ua, ub = int(self._up[k, a]), int(self._up[k, b])
            if ua != ub:
                a, b = ua, ub
        return int(self.parent[a])

    def _first_cut_towards(self, start: int, anc: int, other: int) -> int:
        """First cut node on the path ``start -> ... -> other`` via ``anc``."""
        if start >= self.n_blocks:
            return start  # start is itself a cut node
        if start != anc:
            return int(self.parent[start])  # parent of a block node is a cut
        # start is the LCA block; the path descends towards `other`: the
        # first step down is the child of `start` on the path, which is a
        # cut node.  Find it by lifting `other` to depth(start)+1.
        node = other
        diff = int(self.depth[other]) - int(self.depth[start]) - 1
        k = 0
        while diff:
            if diff & 1:
                node = int(self._up[k, node])
            diff >>= 1
            k += 1
        return node

    def boundary_aps(self, u: int, v: int) -> tuple[int, int] | None:
        """Articulation points bracketing every ``u``–``v`` path.

        Returns ``(a1, a2)`` as *graph vertex ids*: ``a1`` is the cut vertex
        through which every path leaves ``u``'s block, ``a2`` the one through
        which it enters ``v``'s block.  Returns ``None`` when both vertices
        share a block (no cut vertex is forced) and raises
        :class:`ValueError` when they are in different connected components.
        """
        nu = self.node_for_vertex(u)
        nv = self.node_for_vertex(v)
        if nu == nv:
            return None
        anc = self.lca(nu, nv)
        if anc < 0:
            raise ValueError(f"vertices {u} and {v} are not connected")
        # Adjacent block/cut nodes mean a shared block: cut vertex u or v
        # itself lies in the other's block.
        if self.parent[nu] == nv or self.parent[nv] == nu:
            # One is a cut node contained in the other's block, or a block
            # adjacent to the cut: both vertices are in one block.
            if nu >= self.n_blocks or nv >= self.n_blocks:
                return None
        c1 = self._first_cut_towards(nu, anc, nv)
        c2 = self._first_cut_towards(nv, anc, nu)
        a1 = int(self.ap_ids[c1 - self.n_blocks])
        a2 = int(self.ap_ids[c2 - self.n_blocks])
        return a1, a2

    # ------------------------------------------------------------------ #
    # Vectorised batch kernels (the bulk-query fast path)
    # ------------------------------------------------------------------ #

    def node_for_vertices(self) -> np.ndarray:
        """``node_for_vertex`` for every graph vertex, ``-1`` for isolated."""
        out = self._vertex_block.copy()
        for v, k in self.ap_index.items():
            out[v] = self.n_blocks + k
        return out

    def _lift(self, nodes: np.ndarray, steps: np.ndarray) -> np.ndarray:
        """Lift each tree node up by its own number of ``steps`` (binary)."""
        nodes = nodes.copy()
        steps = steps.copy()
        for k in range(self._up.shape[0]):
            sel = (steps & 1).astype(bool)
            if sel.any():
                nodes[sel] = self._up[k, nodes[sel]]
            steps >>= 1
            if not steps.any():
                break
        return nodes

    def lca_many(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`lca` over equal-length node arrays.

        ``-1`` marks pairs in different trees of the forest.  One pass of
        binary lifting runs over *all* pairs at once, so the per-pair cost
        is a handful of gathers rather than a Python loop.
        """
        a = np.asarray(a, dtype=np.int64).copy()
        b = np.asarray(b, dtype=np.int64).copy()
        out = np.full(a.shape, -1, dtype=np.int64)
        same_tree = self.tree_id[a] == self.tree_id[b]
        if not same_tree.any():
            return out
        # Equalise depths (swap so a is the deeper side).
        swap = self.depth[a] < self.depth[b]
        a[swap], b[swap] = b[swap], a[swap]
        diff = (self.depth[a] - self.depth[b]).astype(np.int64)
        a = self._lift(a, np.where(same_tree, diff, 0))
        done = same_tree & (a == b)
        out[done] = a[done]
        live = same_tree & ~done
        if live.any():
            la, lb = a[live], b[live]
            for k in range(self._up.shape[0] - 1, -1, -1):
                ua, ub = self._up[k, la], self._up[k, lb]
                step = ua != ub
                la = np.where(step, ua, la)
                lb = np.where(step, ub, lb)
            out[live] = self.parent[la]
        return out

    def _first_cut_towards_many(
        self, start: np.ndarray, anc: np.ndarray, other: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`_first_cut_towards` over node arrays."""
        out = start.copy()
        is_block = start < self.n_blocks
        up_parent = is_block & (start != anc)
        out[up_parent] = self.parent[start[up_parent]]
        descend = is_block & (start == anc)
        if descend.any():
            node = other[descend]
            diff = (self.depth[node] - self.depth[start[descend]] - 1).astype(np.int64)
            out[descend] = self._lift(node, diff)
        return out

    def boundary_aps_many(
        self, u: np.ndarray, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`boundary_aps` over vertex arrays.

        Returns ``(a1, a2, same_block, disconnected)``: per-pair boundary
        articulation points as *AP indices* (``-1`` where not applicable),
        plus the two classification masks the scalar method signals via
        ``None`` / :class:`ValueError`.  Callers are expected to have
        resolved shared-component pairs already (matching the scalar
        ``query`` flow, where ``boundary_aps`` only sees cross-block pairs).
        """
        node_of = self.node_for_vertices()
        nu = node_of[np.asarray(u, dtype=np.int64)]
        nv = node_of[np.asarray(v, dtype=np.int64)]
        k = nu.shape[0]
        a1 = np.full(k, -1, dtype=np.int64)
        a2 = np.full(k, -1, dtype=np.int64)
        same_block = nu == nv
        disconnected = np.zeros(k, dtype=bool)
        live = ~same_block
        if live.any():
            anc = np.full(k, -1, dtype=np.int64)
            anc[live] = self.lca_many(nu[live], nv[live])
            disconnected = live & (anc < 0)
            # Adjacent cut/block nodes share a block: no bracketing AP.
            adjacent = (self.parent[nu] == nv) | (self.parent[nv] == nu)
            cut_side = (nu >= self.n_blocks) | (nv >= self.n_blocks)
            same_block |= live & adjacent & cut_side
            live &= ~disconnected & ~same_block
        if live.any():
            c1 = self._first_cut_towards_many(nu[live], anc[live], nv[live])
            c2 = self._first_cut_towards_many(nv[live], anc[live], nu[live])
            a1[live] = c1 - self.n_blocks
            a2[live] = c2 - self.n_blocks
        return a1, a2, same_block, disconnected

    def blocks_of_vertex(self, v: int) -> list[int]:
        """All block ids containing graph vertex ``v``."""
        k = self.ap_index.get(int(v))
        if k is None:
            b = int(self._vertex_block[v])
            return [b] if b >= 0 else []
        return [b for b in self.adj[self.n_blocks + k]]

    def same_block(self, u: int, v: int) -> int | None:
        """A block id containing both vertices, or ``None``."""
        bu = set(self.blocks_of_vertex(u))
        for b in self.blocks_of_vertex(v):
            if b in bu:
                return b
        return None
