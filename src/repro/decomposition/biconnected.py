"""Biconnected components and articulation points.

Iterative Hopcroft–Tarjan with an explicit edge stack.  The implementation
tracks *edge ids* rather than parent vertices, which makes it correct on
multigraphs: parallel edges form a 2-edge cycle (hence a biconnected
component), and each self-loop is assigned a singleton component of its own.

This is the Stage-0 preprocessing of both Algorithm 1 (Section 2.2: "we
start by partitioning G into its biconnected components") and the MCB
pipeline (Section 3.3.1: "we process each biconnected component
separately").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["BCCDecomposition", "biconnected_components"]


@dataclass
class BCCDecomposition:
    """Result of :func:`biconnected_components`.

    Attributes
    ----------
    count:
        Number of biconnected components (including single-edge bridge
        components and singleton self-loop components).
    edge_component:
        Array of length ``m``: component id of each edge.  Every edge
        belongs to exactly one component.
    component_edges:
        ``component_edges[c]`` is the array of edge ids in component ``c``.
    component_vertices:
        ``component_vertices[c]`` is the sorted array of vertex ids touched
        by component ``c``.
    is_articulation:
        Boolean mask over vertices: True when the vertex belongs to two or
        more non-self-loop components.
    """

    count: int
    edge_component: np.ndarray
    component_edges: list[np.ndarray]
    component_vertices: list[np.ndarray] = field(default_factory=list)
    is_articulation: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))

    @property
    def articulation_points(self) -> np.ndarray:
        """Sorted vertex ids of all articulation points."""
        return np.nonzero(self.is_articulation)[0]

    def component_subgraph(self, g: CSRGraph, comp_id: int) -> tuple[CSRGraph, np.ndarray]:
        """Extract component ``comp_id`` as a standalone graph.

        Returns ``(sub, vmap)`` with vertices relabelled ``0..k-1``;
        ``vmap[new] == old``.
        """
        eids = self.component_edges[comp_id]
        vmap = self.component_vertices[comp_id]
        inv = {int(v): i for i, v in enumerate(vmap)}
        us = np.fromiter((inv[int(g.edge_u[e])] for e in eids), dtype=np.int64, count=len(eids))
        vs = np.fromiter((inv[int(g.edge_v[e])] for e in eids), dtype=np.int64, count=len(eids))
        sub = CSRGraph(len(vmap), us, vs, g.edge_w[eids])
        return sub, vmap

    def component_keep_mask(self, g: CSRGraph, comp_id: int) -> np.ndarray:
        """Vertices of component ``comp_id`` that ear reduction must keep.

        A vertex stays in the reduced graph when its degree *within the
        component* differs from two, or when it is an articulation point of
        the whole graph (articulation points anchor the block-cut tree and
        must survive reduction for the cross-component post-processing of
        Section 2.2).
        """
        sub, vmap = self.component_subgraph(g, comp_id)
        return (sub.degree != 2) | self.is_articulation[vmap]


def biconnected_components(g: CSRGraph) -> BCCDecomposition:
    """Decompose ``g`` into biconnected components.

    Runs in ``O(n + m)``; purely iterative, so deep DFS trees (long chains)
    do not hit the Python recursion limit.
    """
    n, m = g.n, g.m
    indptr, indices, eids = g.indptr, g.indices, g.csr_eid

    disc = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    edge_component = np.full(m, -1, dtype=np.int64)
    components: list[np.ndarray] = []

    timer = 0
    # Explicit DFS stack entries: [vertex, next CSR slot, parent edge id].
    for root in range(n):
        if disc[root] != -1:
            continue
        disc[root] = low[root] = timer
        timer += 1
        stack: list[list[int]] = [[root, int(indptr[root]), -1]]
        estack: list[int] = []
        while stack:
            frame = stack[-1]
            u, ptr, parent_eid = frame
            if ptr < indptr[u + 1]:
                frame[1] = ptr + 1
                v = int(indices[ptr])
                eid = int(eids[ptr])
                if v == u:
                    # Self-loop: its own singleton component.
                    if edge_component[eid] == -1:
                        edge_component[eid] = len(components)
                        components.append(np.array([eid], dtype=np.int64))
                    continue
                if eid == parent_eid:
                    continue  # the unique tree edge back to the DFS parent
                if disc[v] == -1:
                    estack.append(eid)
                    disc[v] = low[v] = timer
                    timer += 1
                    stack.append([v, int(indptr[v]), eid])
                elif disc[v] < disc[u]:
                    # Genuine back edge (towards an ancestor): push once.
                    estack.append(eid)
                    if disc[v] < low[u]:
                        low[u] = disc[v]
                # disc[v] > disc[u]: forward edge to a finished subtree;
                # it was already pushed when traversed from the other side.
            else:
                stack.pop()
                if not stack:
                    continue
                p = stack[-1][0]
                if low[u] < low[p]:
                    low[p] = low[u]
                if low[u] >= disc[p]:
                    # p separates the subtree rooted at u: pop one component.
                    comp: list[int] = []
                    while True:
                        e = estack.pop()
                        comp.append(e)
                        if e == parent_eid:
                            break
                    cid = len(components)
                    for e in comp:
                        edge_component[e] = cid
                    components.append(np.asarray(comp, dtype=np.int64))

    # Vertex membership per component, articulation points by membership.
    comp_vertices: list[np.ndarray] = []
    member_count = np.zeros(n, dtype=np.int64)
    for cid, comp in enumerate(components):
        verts = np.unique(
            np.concatenate([g.edge_u[comp], g.edge_v[comp]])
        )
        comp_vertices.append(verts)
        loop_only = bool(np.all(g.edge_u[comp] == g.edge_v[comp]))
        if not loop_only:
            member_count[verts] += 1
    is_articulation = member_count >= 2

    return BCCDecomposition(
        count=len(components),
        edge_component=edge_component,
        component_edges=components,
        component_vertices=comp_vertices,
        is_articulation=is_articulation,
    )
