"""Degree-2 chain contraction: the reduced graph ``G^r`` (Section 2.1.1).

Given a graph (in practice one biconnected component) the reduction keeps
every vertex of degree ≠ 2 (plus any vertices the caller pins, e.g.
articulation points) and contracts each maximal chain of degree-2 vertices
into a single weighted edge.  The result is in general a **multigraph**:
two kept vertices joined by several chains yield parallel edges, and a
chain that starts and ends at the same kept vertex yields a self-loop —
both are required verbatim by the MCB reduction (Lemma 3.1: "the graph G^r
may contain multiple edges and self-loops").

Alongside the reduced graph we retain, for every removed vertex ``x``, the
anchors ``left(x)``/``right(x)`` and its distances to them along the chain —
exactly the tables consumed by the APSP post-processing formulas of
Section 2.1.3.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph, GraphError
from ..obs import metrics as _metrics
from ..obs.trace import span as _span

__all__ = ["Chain", "ReducedGraph", "reduce_graph"]

_C_REDUCTIONS = _metrics.counter("reduce.calls")
_C_CHAINS = _metrics.counter("reduce.chains")
_C_REMOVED = _metrics.counter("reduce.vertices_removed")


@dataclass(frozen=True)
class Chain:
    """One contracted degree-2 chain.

    ``vertices`` runs from the left kept endpoint to the right kept endpoint
    (inclusive) in original vertex ids; ``edges`` are the original edge ids
    along it; ``prefix[i]`` is the distance from the left endpoint to
    ``vertices[i]`` (so ``prefix[-1]`` is the chain weight).
    """

    vertices: np.ndarray
    edges: np.ndarray
    prefix: np.ndarray

    @property
    def left(self) -> int:
        return int(self.vertices[0])

    @property
    def right(self) -> int:
        return int(self.vertices[-1])

    @property
    def weight(self) -> float:
        return float(self.prefix[-1])

    @property
    def interior(self) -> np.ndarray:
        """Removed (interior) vertices of this chain."""
        return self.vertices[1:-1]

    def __len__(self) -> int:
        return int(self.edges.size)


@dataclass
class ReducedGraph:
    """Output of :func:`reduce_graph`.

    Attributes
    ----------
    original:
        The input graph ``G``.
    graph:
        The reduced multigraph ``G^r``; its vertex ``i`` is original vertex
        ``kept_ids[i]``, and its edge ``e`` contracts ``chains[e]``.
    kept_mask / kept_ids / reduced_id:
        Vertex bookkeeping.  ``reduced_id[old] == -1`` for removed vertices.
    chains:
        One :class:`Chain` per reduced edge (same indexing).
    chain_of / pos_in_chain / dist_left / dist_right:
        Per *original* vertex: for removed vertices, the chain id, position
        of the vertex inside ``chains[c].vertices``, and distances to the
        chain's two anchors.  Entries for kept vertices are ``-1`` / 0.
    chain_left_rid / chain_right_rid / chain_weight:
        Per *chain* (same indexing as ``chains``): reduced ids of the two
        anchors and the total chain weight, as flat arrays.  These are the
        build-time prefix summaries the vectorized postprocess kernels
        gather from (``dist_left[x]`` is the per-vertex chain prefix, so
        ``|dist_left[x] − dist_left[y]|`` is the same-chain closed form).
    """

    original: CSRGraph
    graph: CSRGraph
    kept_mask: np.ndarray
    kept_ids: np.ndarray
    reduced_id: np.ndarray
    chains: list[Chain]
    chain_of: np.ndarray
    pos_in_chain: np.ndarray
    dist_left: np.ndarray
    dist_right: np.ndarray
    chain_left_rid: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    chain_right_rid: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    chain_weight: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.float64))
    _simple_cache: CSRGraph | None = field(default=None, repr=False)

    @property
    def n_removed(self) -> int:
        """Number of vertices contracted away."""
        return int((~self.kept_mask).sum())

    @property
    def removal_fraction(self) -> float:
        """Fraction of vertices removed (the Table 1 "Nodes Removed" knob)."""
        return self.n_removed / self.original.n if self.original.n else 0.0

    def left_anchor(self, x: int) -> int:
        """``left(x)`` in original vertex ids (Section 2.1.1)."""
        return self.chains[int(self.chain_of[x])].left

    def right_anchor(self, x: int) -> int:
        """``right(x)`` in original vertex ids."""
        return self.chains[int(self.chain_of[x])].right

    def simple_graph(self) -> CSRGraph:
        """Simple view of ``G^r`` (min-weight parallel edge, loops dropped).

        This is the graph the APSP processing phase runs Dijkstra on
        ("we retain the edge with the shortest weight").  Cached.
        """
        if self._simple_cache is None:
            self._simple_cache = self.graph.simplify()
        return self._simple_cache

    def expand_edge(self, reduced_eid: int) -> np.ndarray:
        """Original edge ids contracted into reduced edge ``reduced_eid``."""
        return self.chains[reduced_eid].edges

    def expand_cycle(self, reduced_eids: np.ndarray | list[int]) -> np.ndarray:
        """Map a cycle in ``G^r`` (reduced edge ids) to original edge ids.

        Per Lemma 3.1 this substitution turns any cycle of ``MCB(G^r)``
        into the corresponding cycle of ``MCB(G)`` with identical weight.
        """
        if len(reduced_eids) == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([self.chains[int(e)].edges for e in reduced_eids])

    def validate(self) -> None:
        """Internal consistency checks (used by tests and examples)."""
        g, r = self.original, self.graph
        if int(self.kept_mask.sum()) != r.n:
            raise GraphError("kept count mismatch")
        seen = np.zeros(g.m, dtype=bool)
        for e, chain in enumerate(self.chains):
            if seen[chain.edges].any():
                raise GraphError("chains overlap on an original edge")
            seen[chain.edges] = True
            if not np.isclose(chain.weight, float(r.edge_w[e])):
                raise GraphError("chain weight mismatch with reduced edge")
            a = self.reduced_id[chain.left]
            b = self.reduced_id[chain.right]
            ru, rv = r.edge_endpoints(e)
            if {int(a), int(b)} != {ru, rv}:
                raise GraphError("chain endpoints mismatch with reduced edge")
        if not seen.all():
            raise GraphError("some original edge belongs to no chain")


def reduce_graph(g: CSRGraph, keep: np.ndarray | None = None) -> ReducedGraph:
    """Contract maximal degree-2 chains of ``g``.

    Parameters
    ----------
    g:
        Input graph.  Typically one biconnected component, but the routine
        is defined for any graph.
    keep:
        Optional boolean mask of vertices that must survive.  It is always
        *extended* with: vertices of degree ≠ 2, vertices carrying
        self-loops, and — for any cycle consisting purely of degree-2
        vertices — the smallest vertex id on the cycle (an anchor, so the
        cycle becomes a self-loop in ``G^r``).
    """
    with _span("decomposition.reduce", cat="decomposition", n=g.n, m=g.m):
        out = _reduce_graph(g, keep)
    _C_REDUCTIONS.inc()
    _C_CHAINS.inc(len(out.chains))
    _C_REMOVED.inc(out.n_removed)
    return out


def _reduce_graph(g: CSRGraph, keep: np.ndarray | None = None) -> ReducedGraph:
    n = g.n
    deg = g.degree
    caller_keep = keep is not None
    if keep is None:
        keep = np.zeros(n, dtype=bool)
    else:
        keep = np.asarray(keep, dtype=bool).copy()
        if keep.shape != (n,):
            raise GraphError("keep mask must have one entry per vertex")
    keep |= deg != 2
    if g.m and g.has_self_loops:
        loop_vertices = g.edge_u[g.edge_u == g.edge_v]
        keep[loop_vertices] = True

    # Promote one anchor per pure degree-2 cycle: walk unkept vertices.
    keep = _promote_cycle_anchors(g, keep)

    kept_ids = np.nonzero(keep)[0]
    reduced_id = np.full(n, -1, dtype=np.int64)
    reduced_id[kept_ids] = np.arange(kept_ids.size)

    indptr, indices, eids = g.indptr, g.indices, g.csr_eid
    edge_w = g.edge_w
    edge_done = np.zeros(g.m, dtype=bool)

    chains: list[Chain] = []
    chain_of = np.full(n, -1, dtype=np.int64)
    pos_in_chain = np.full(n, -1, dtype=np.int64)
    dist_left = np.zeros(n, dtype=np.float64)
    dist_right = np.zeros(n, dtype=np.float64)
    r_us: list[int] = []
    r_vs: list[int] = []
    r_ws: list[float] = []

    for u in kept_ids:
        for slot in range(indptr[u], indptr[u + 1]):
            eid = int(eids[slot])
            if edge_done[eid]:
                continue
            v = int(indices[slot])
            # Walk the chain u - v - ... until the next kept vertex.
            chain_v = [int(u), v]
            chain_e = [eid]
            edge_done[eid] = True
            prev_eid = eid
            cur = v
            while not keep[cur]:
                s, e = indptr[cur], indptr[cur + 1]
                # Degree-2 interior vertex: exactly two incident slots.
                e0, e1 = int(eids[s]), int(eids[s + 1])
                nxt_eid = e1 if e0 == prev_eid else e0
                nxt_slot = s + (1 if e0 == prev_eid else 0)
                cur = int(indices[nxt_slot])
                chain_e.append(nxt_eid)
                chain_v.append(cur)
                edge_done[nxt_eid] = True
                prev_eid = nxt_eid
            verts = np.asarray(chain_v, dtype=np.int64)
            edges_arr = np.asarray(chain_e, dtype=np.int64)
            prefix = np.concatenate([[0.0], np.cumsum(edge_w[edges_arr])])
            chain = Chain(vertices=verts, edges=edges_arr, prefix=prefix)
            cid = len(chains)
            chains.append(chain)
            interior = verts[1:-1]
            if interior.size:
                chain_of[interior] = cid
                pos_in_chain[interior] = np.arange(1, verts.size - 1)
                dist_left[interior] = prefix[1:-1]
                dist_right[interior] = prefix[-1] - prefix[1:-1]
            r_us.append(int(reduced_id[verts[0]]))
            r_vs.append(int(reduced_id[verts[-1]]))
            r_ws.append(float(prefix[-1]))

    reduced = CSRGraph(kept_ids.size, r_us, r_vs, r_ws)
    out = ReducedGraph(
        original=g,
        graph=reduced,
        kept_mask=keep,
        kept_ids=kept_ids,
        reduced_id=reduced_id,
        chains=chains,
        chain_of=chain_of,
        pos_in_chain=pos_in_chain,
        dist_left=dist_left,
        dist_right=dist_right,
        chain_left_rid=np.asarray(r_us, dtype=np.int64),
        chain_right_rid=np.asarray(r_vs, dtype=np.int64),
        chain_weight=np.asarray(r_ws, dtype=np.float64),
    )
    if os.environ.get("REPRO_CHECK_INVARIANTS"):
        # Opt-in contract check (see repro.qa.invariants); a forced keep
        # mask legitimately leaves contractible vertices, so maximality is
        # only asserted for the default reduction.
        from ..qa.invariants import maybe_check_reduction

        maybe_check_reduction(out, strict_degree=not caller_keep)
    return out


def _promote_cycle_anchors(g: CSRGraph, keep: np.ndarray) -> np.ndarray:
    """Pin one vertex of every cycle made purely of degree-2 vertices.

    Without an anchor such a cycle would have no kept endpoint for its
    chain; with one, it contracts to a single self-loop.  (A biconnected
    component that is a bare cycle hits this case, e.g. the grafted blocks
    of the Table 1 stand-ins when the shared vertex is removed.)
    """
    indptr, indices, eids = g.indptr, g.indices, g.csr_eid
    visited = keep.copy()
    for start in range(g.n):
        if visited[start] or g.degree[start] != 2:
            continue
        # Walk the degree-2 run containing `start`; if it closes on itself
        # without meeting a kept vertex, it is a pure cycle.
        run = [start]
        visited[start] = True
        prev_eid = -1
        cur = start
        closed = True
        while True:
            s = indptr[cur]
            e0, e1 = int(eids[s]), int(eids[s + 1])
            nxt_eid = e1 if e0 == prev_eid else e0
            nxt_slot = s + (1 if e0 == prev_eid else 0)
            nxt = int(indices[nxt_slot])
            if nxt == start and nxt_eid != prev_eid:
                break  # closed the cycle
            if keep[nxt]:
                closed = False
                break
            run.append(nxt)
            visited[nxt] = True
            prev_eid = nxt_eid
            cur = nxt
        if not closed:
            # Walk the other direction is unnecessary: the run will be
            # reached from its kept endpoint during chain contraction.
            continue
        keep[min(run)] = True
    return keep
