"""Bridges and 2-edge-connected components.

A graph has an ear decomposition iff it is 2-edge-connected [33] — this
module provides that criterion directly: bridge edges (via the same
low-link machinery as the biconnectivity pass) and the 2-edge-connected
components obtained by deleting them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["BridgeDecomposition", "find_bridges", "two_edge_connected_components", "is_two_edge_connected"]


@dataclass
class BridgeDecomposition:
    """Bridges plus the 2-edge-connected component labelling."""

    bridge_mask: np.ndarray       # bool per edge
    component: np.ndarray         # 2ecc id per vertex
    count: int

    @property
    def bridges(self) -> np.ndarray:
        return np.nonzero(self.bridge_mask)[0]


def find_bridges(g: CSRGraph) -> np.ndarray:
    """Boolean mask of bridge edges (iterative low-link DFS).

    Parallel edges and self-loops are never bridges.
    """
    n, m = g.n, g.m
    indptr, indices, eids = g.indptr, g.indices, g.csr_eid
    disc = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    bridge = np.zeros(m, dtype=bool)
    timer = 0
    for root in range(n):
        if disc[root] != -1:
            continue
        disc[root] = low[root] = timer
        timer += 1
        stack: list[list[int]] = [[root, int(indptr[root]), -1]]
        while stack:
            frame = stack[-1]
            u, ptr, parent_eid = frame
            if ptr < indptr[u + 1]:
                frame[1] = ptr + 1
                v = int(indices[ptr])
                eid = int(eids[ptr])
                if v == u or eid == parent_eid:
                    continue
                if disc[v] == -1:
                    disc[v] = low[v] = timer
                    timer += 1
                    stack.append([v, int(indptr[v]), eid])
                elif disc[v] < low[u]:
                    low[u] = disc[v]
            else:
                stack.pop()
                if stack:
                    p = stack[-1][0]
                    if low[u] < low[p]:
                        low[p] = low[u]
                    if low[u] > disc[p]:
                        bridge[parent_eid] = True
    return bridge


def two_edge_connected_components(g: CSRGraph) -> BridgeDecomposition:
    """Label vertices by 2-edge-connected component (bridges removed)."""
    bridge = find_bridges(g)
    keep = np.nonzero(~bridge)[0]
    residual = g.edge_subgraph(keep)
    count, labels = residual.connected_components()
    return BridgeDecomposition(bridge_mask=bridge, component=labels, count=count)


def is_two_edge_connected(g: CSRGraph) -> bool:
    """True iff connected with no bridges — i.e. an ear decomposition exists."""
    if g.n <= 1:
        return True
    if not g.is_connected():
        return False
    return not find_bridges(g).any()
