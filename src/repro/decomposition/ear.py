"""Open ear decomposition via Schmidt's chain decomposition.

An ear decomposition partitions the edges of a 2-edge-connected graph into
a first cycle ``P0 ∪ P1`` and simple paths (ears) whose endpoints lie on
earlier ears (Section 2.1.1).  We compute it with Schmidt's linear-time
chain decomposition: DFS the graph, then for every back edge (taken in DFS
order of its ancestor endpoint) walk tree edges from the descendant end
upward until hitting an already-visited vertex.

Properties (verified by the test-suite):

* every chain after the first is an open ear iff the graph is biconnected;
* the chains partition ``E`` iff the graph is 2-edge-connected;
* interior vertices of an ear have all their other incident edges on
  *later* ears, which is what justifies removing degree-2 vertices.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph, GraphError
from ..obs import metrics as _metrics
from ..obs.trace import span as _span

__all__ = ["Ear", "EarDecomposition", "ear_decomposition"]

_C_DECOMPOSITIONS = _metrics.counter("ear.decompositions")
_C_EARS = _metrics.counter("ear.ears_found")


@dataclass(frozen=True)
class Ear:
    """One ear: an ordered walk ``vertices[0] - ... - vertices[-1]``.

    ``edges[i]`` joins ``vertices[i]`` and ``vertices[i+1]``.  A *closed*
    ear has ``vertices[0] == vertices[-1]``.
    """

    vertices: np.ndarray
    edges: np.ndarray

    @property
    def is_cycle(self) -> bool:
        return bool(self.vertices[0] == self.vertices[-1])

    def weight(self, g: CSRGraph) -> float:
        return float(g.edge_w[self.edges].sum())

    def __len__(self) -> int:
        return int(self.edges.size)


@dataclass
class EarDecomposition:
    """Ears in discovery order; ``ears[0]`` is the initial cycle."""

    ears: list[Ear]
    is_open: bool  # True when no ear after the first is a cycle (biconnected)

    @property
    def count(self) -> int:
        return len(self.ears)

    def edge_ear(self, m: int) -> np.ndarray:
        """Array mapping each edge id to its ear index."""
        out = np.full(m, -1, dtype=np.int64)
        for i, ear in enumerate(self.ears):
            out[ear.edges] = i
        return out


def ear_decomposition(g: CSRGraph, root: int = 0) -> EarDecomposition:
    """Compute an (open, when biconnected) ear decomposition of ``g``.

    Raises
    ------
    GraphError
        If the graph is not connected or not 2-edge-connected (a bridge
        leaves some edge on no chain), or is empty.  Self-loops are
        rejected: they belong to no ear.
    """
    if g.m == 0 or g.n == 0:
        raise GraphError("ear decomposition needs a non-empty graph")
    if g.has_self_loops:
        raise GraphError("ear decomposition is undefined on self-loops")
    with _span("decomposition.ear", cat="decomposition", n=g.n, m=g.m):
        dec = _ear_decomposition(g, root)
    _C_DECOMPOSITIONS.inc()
    _C_EARS.inc(dec.count)
    return dec


def _ear_decomposition(g: CSRGraph, root: int) -> EarDecomposition:
    n = g.n
    indptr, indices, eids = g.indptr, g.indices, g.csr_eid

    disc = np.full(n, -1, dtype=np.int64)
    parent_vertex = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    is_tree_edge = np.zeros(g.m, dtype=bool)
    order: list[int] = []
    # Back edges keyed by their *ancestor* endpoint, recorded in DFS order
    # of the descendant so traversal order is deterministic.
    back_edges: list[list[tuple[int, int]]] = [[] for _ in range(n)]

    disc[root] = 0
    timer = 1
    stack: list[list[int]] = [[root, int(indptr[root])]]
    order.append(root)
    while stack:
        frame = stack[-1]
        u, ptr = frame
        if ptr < indptr[u + 1]:
            frame[1] = ptr + 1
            v = int(indices[ptr])
            eid = int(eids[ptr])
            if eid == parent_edge[u]:
                continue
            if disc[v] == -1:
                disc[v] = timer
                timer += 1
                parent_vertex[v] = u
                parent_edge[v] = eid
                is_tree_edge[eid] = True
                order.append(v)
                stack.append([v, int(indptr[v])])
            elif disc[v] < disc[u]:
                # back edge from descendant u to ancestor v
                back_edges[v].append((u, eid))
        else:
            stack.pop()

    if timer != n:
        raise GraphError("ear decomposition needs a connected graph")

    visited = np.zeros(n, dtype=bool)
    used_edge = np.zeros(g.m, dtype=bool)
    ears: list[Ear] = []
    is_open = True
    for v in order:
        for u, eid in back_edges[v]:
            visited[v] = True
            chain_v = [v, u]
            chain_e = [eid]
            used_edge[eid] = True
            cur = u
            while not visited[cur]:
                visited[cur] = True
                pe = int(parent_edge[cur])
                chain_e.append(pe)
                used_edge[pe] = True
                cur = int(parent_vertex[cur])
                chain_v.append(cur)
            ear = Ear(
                vertices=np.asarray(chain_v, dtype=np.int64),
                edges=np.asarray(chain_e, dtype=np.int64),
            )
            if ears and ear.is_cycle:
                is_open = False
            ears.append(ear)

    if not used_edge.all():
        raise GraphError(
            "graph is not 2-edge-connected: "
            f"{int((~used_edge).sum())} bridge edge(s) lie on no ear"
        )
    if not ears[0].is_cycle:
        raise GraphError("internal error: first chain must be a cycle")
    dec = EarDecomposition(ears=ears, is_open=is_open)
    if os.environ.get("REPRO_CHECK_INVARIANTS"):
        from ..qa.invariants import maybe_check_ear_decomposition

        maybe_check_ear_decomposition(g, dec)
    return dec
