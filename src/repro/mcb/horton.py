"""Horton's MCB algorithm (the original O(m³n) construction, test oracle).

Generate the Horton set — for every vertex ``x`` and edge ``e = (u, v)``
the cycle ``SP(x,u) + e + SP(v,x)`` — sort by weight, and greedily keep
cycles that are GF(2)-independent of those already chosen.  Simple, slow,
and trustworthy: the suite uses it as the ground truth on small graphs
(including the multigraphs with parallel edges and self-loops produced by
ear reduction).

Ties are broken by a deterministic per-edge perturbation so shortest paths
are unique, which Horton's proof requires; reported weights are exact.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..sssp.dijkstra import dijkstra_tree
from . import gf2
from .cycle import Cycle
from .spanning import spanning_structure

__all__ = ["perturbed_weights", "horton_set", "horton_mcb"]


def perturbed_weights(g: CSRGraph, scale: float = 1e-9) -> np.ndarray:
    """Deterministic tie-breaking perturbation ``w'_e = w_e + ε·(e+1)``.

    ``ε`` is ``scale`` times the mean weight divided by ``m²``, so the sum
    of all perturbations stays far below any genuine weight difference of
    the original instance.
    """
    if g.m == 0:
        return g.edge_w.copy()
    base = float(g.edge_w.mean()) or 1.0
    eps = scale * base / (g.m * g.m + 1)
    return g.edge_w + eps * (np.arange(g.m) + 1)


def horton_set(g: CSRGraph) -> list[Cycle]:
    """All valid Horton candidate cycles, sorted by (true) weight.

    A candidate ``(x, e)`` is valid when the two tree paths meet only at
    ``x`` (then the candidate is a simple cycle).  Self-loops contribute
    their singleton cycles.
    """
    pg = g.with_weights(perturbed_weights(g))
    cycles: list[Cycle] = []
    seen: set[bytes] = set()
    loops = np.nonzero(g.edge_u == g.edge_v)[0]
    for e in loops:
        cycles.append(Cycle(np.asarray([e], dtype=np.int64), float(g.edge_w[e])))

    for x in range(g.n):
        dist, parent, parent_edge = dijkstra_tree(pg, x)
        for e in range(g.m):
            u, v = g.edge_endpoints(e)
            if u == v:
                continue
            if not (np.isfinite(dist[u]) and np.isfinite(dist[v])):
                continue
            # Collect the two root paths; reject if they share a vertex
            # other than x (the candidate would not be a simple cycle).
            path_u = _root_path(parent, parent_edge, u)
            path_v = _root_path(parent, parent_edge, v)
            if path_u is None or path_v is None:
                continue
            verts_u, edges_u = path_u
            verts_v, edges_v = path_v
            if set(verts_u) & set(verts_v) != {x}:
                continue
            if e in edges_u or e in edges_v:
                continue
            support = np.asarray(sorted(edges_u + edges_v + [e]), dtype=np.int64)
            key = support.tobytes()
            if key in seen:
                continue
            seen.add(key)
            cycles.append(Cycle(support, float(g.edge_w[support].sum())))
    cycles.sort(key=lambda c: (c.weight, len(c)))
    return cycles


def _root_path(
    parent: np.ndarray, parent_edge: np.ndarray, v: int
) -> tuple[list[int], list[int]] | None:
    verts = [int(v)]
    edges: list[int] = []
    cur = int(v)
    while parent[cur] != -1:
        edges.append(int(parent_edge[cur]))
        cur = int(parent[cur])
        verts.append(cur)
    return verts, edges


def horton_mcb(g: CSRGraph) -> list[Cycle]:
    """Exact MCB by greedy independence over the sorted Horton set."""
    f = g.cycle_space_dimension()
    if f == 0:
        return []
    ss = spanning_structure(g)
    basis_rows = np.zeros((0, gf2.n_words(f)), dtype=np.uint64)
    # Incremental Gaussian elimination: keep reduced rows + pivot columns.
    reduced: list[np.ndarray] = []
    pivots: list[int] = []
    chosen: list[Cycle] = []
    for cyc in horton_set(g):
        vec = ss.restricted_vector(cyc.edge_ids)
        work = vec.copy()
        for row, piv in zip(reduced, pivots):
            if gf2.get_bit(work, piv):
                gf2.xor_inplace(work, row)
        nz = np.nonzero(work)[0]
        if nz.size == 0:
            continue  # dependent on already chosen cycles
        word = int(nz[0])
        bit = int(np.log2(float(work[word] & (~work[word] + np.uint64(1)))))
        pivots.append(word * 64 + bit)
        reduced.append(work)
        chosen.append(cyc)
        if len(chosen) == f:
            break
    if len(chosen) != f:
        raise RuntimeError(
            f"Horton set spanned only {len(chosen)} of {f} dimensions"
        )
    del basis_rows
    return chosen
