"""Weighted girth and shortest cycles through a vertex.

Built from the same ingredients as the MCB pipeline: the candidate
``SP(x,u) + (u,v) + SP(v,x)`` over a shortest-path tree at ``x`` (Horton's
construction) realises the minimum-weight cycle through ``x``; minimising
over an FVS gives the graph's weighted girth (every cycle meets the FVS).
Deterministic tie-breaking perturbation keeps the trees unique.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..sssp.dijkstra import dijkstra_tree
from .cycle import Cycle
from .fvs import greedy_fvs
from .horton import perturbed_weights

__all__ = ["shortest_cycle_through", "weighted_girth"]


def shortest_cycle_through(g: CSRGraph, x: int) -> Cycle | None:
    """Minimum-weight simple cycle containing vertex ``x`` (or ``None``).

    Self-loops at ``x`` count; candidates whose two root paths intersect
    away from ``x`` are rejected (they contain a cycle *avoiding* ``x``).
    """
    best: Cycle | None = None
    loops = np.nonzero((g.edge_u == g.edge_v) & (g.edge_u == x))[0]
    for e in loops:
        c = Cycle(np.asarray([e], dtype=np.int64), float(g.edge_w[e]))
        if best is None or c.weight < best.weight:
            best = c
    pg = g.with_weights(perturbed_weights(g))
    dist, parent, parent_edge = dijkstra_tree(pg, x)
    for e in range(g.m):
        u, v = g.edge_endpoints(e)
        if u == v:
            continue
        if not (np.isfinite(dist[u]) and np.isfinite(dist[v])):
            continue
        if parent_edge[u] == e or parent_edge[v] == e:
            continue  # tree arc: the "cycle" would be degenerate
        pu = _root_path(parent, parent_edge, u)
        pv = _root_path(parent, parent_edge, v)
        if pu is None or pv is None:
            continue
        verts_u, edges_u = pu
        verts_v, edges_v = pv
        if set(verts_u) & set(verts_v) != {x}:
            continue
        support = np.asarray(sorted(edges_u + edges_v + [e]), dtype=np.int64)
        w = float(g.edge_w[support].sum())
        if best is None or w < best.weight:
            best = Cycle(support, w, meta={"through": int(x), "chord": int(e)})
    return best


def _root_path(parent, parent_edge, v):
    verts = [int(v)]
    edges: list[int] = []
    cur = int(v)
    while parent[cur] != -1:
        edges.append(int(parent_edge[cur]))
        cur = int(parent[cur])
        verts.append(cur)
    return verts, edges


def weighted_girth(g: CSRGraph) -> tuple[float, Cycle | None]:
    """``(weight, cycle)`` of a minimum-weight cycle; ``(inf, None)`` if acyclic.

    Minimises :func:`shortest_cycle_through` over a feedback vertex set.
    """
    if g.cycle_space_dimension() == 0:
        return float("inf"), None
    best: Cycle | None = None
    for z in greedy_fvs(g):
        c = shortest_cycle_through(g, int(z))
        if c is not None and (best is None or c.weight < best.weight):
            best = c
    if best is None:  # pragma: no cover - FVS of a cyclic graph is nonempty
        return float("inf"), None
    return best.weight, best
