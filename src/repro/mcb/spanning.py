"""Spanning forest, non-tree edge indexing, and fundamental cycles.

The de Pina framework represents every cycle as its incidence vector
restricted to the non-tree edges ``E' = E \\ T`` of an arbitrary spanning
forest ``T`` (Section 3.2): this is a faithful coordinate system because
the fundamental cycles form a basis and each contains exactly one edge of
``E'``.  This module fixes that coordinate system for one graph, and maps
arbitrary edge multisets to packed GF(2) vectors in it.

Works on multigraphs: parallel edges beyond the first and all self-loops
are automatically non-tree (required by the reduced graphs of Lemma 3.1:
"multiple edges and self-loops appear as nontree edges").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from . import gf2

__all__ = ["SpanningStructure", "spanning_structure"]


@dataclass
class SpanningStructure:
    """A spanning forest of ``g`` and the induced E' coordinate system."""

    graph: CSRGraph
    tree_mask: np.ndarray      # bool per edge: in the forest
    parent: np.ndarray         # parent vertex in the rooted forest (-1 root)
    parent_edge: np.ndarray    # edge id to parent (-1 at roots)
    depth: np.ndarray          # depth in the rooted forest
    eprime_index: np.ndarray   # per edge: index in E' or -1 for tree edges
    eprime_edges: np.ndarray   # E' edge ids in index order

    @property
    def f(self) -> int:
        """Cycle space dimension ``|E'| = m - n + c``."""
        return int(self.eprime_edges.size)

    # ------------------------------------------------------------------ #

    def restricted_vector(self, edge_ids: np.ndarray) -> np.ndarray:
        """Packed GF(2) vector of an edge multiset, restricted to E'.

        Edges appearing an even number of times cancel.
        """
        bits = np.zeros(self.f, dtype=np.int64)
        eids = np.asarray(edge_ids, dtype=np.int64)
        idx = self.eprime_index[eids]
        sel = idx[idx >= 0]
        if sel.size:
            np.add.at(bits, sel, 1)
        return gf2.pack(bits & 1)

    def tree_path_edges(self, u: int, v: int) -> list[int]:
        """Edge ids of the forest path between ``u`` and ``v``.

        Raises when the vertices are in different trees.
        """
        pu: list[int] = []
        pv: list[int] = []
        a, b = int(u), int(v)
        while self.depth[a] > self.depth[b]:
            pu.append(int(self.parent_edge[a]))
            a = int(self.parent[a])
        while self.depth[b] > self.depth[a]:
            pv.append(int(self.parent_edge[b]))
            b = int(self.parent[b])
        while a != b:
            if self.parent[a] == -1 or self.parent[b] == -1:
                raise ValueError(f"vertices {u} and {v} are in different trees")
            pu.append(int(self.parent_edge[a]))
            pv.append(int(self.parent_edge[b]))
            a = int(self.parent[a])
            b = int(self.parent[b])
        return pu + pv[::-1]

    def fundamental_cycle(self, eprime_i: int) -> np.ndarray:
        """Edge ids of the fundamental cycle of the ``i``-th non-tree edge.

        A self-loop's fundamental cycle is just the loop itself.
        """
        eid = int(self.eprime_edges[eprime_i])
        u, v = self.graph.edge_endpoints(eid)
        if u == v:
            return np.asarray([eid], dtype=np.int64)
        return np.asarray([eid] + self.tree_path_edges(u, v), dtype=np.int64)


def spanning_structure(g: CSRGraph) -> SpanningStructure:
    """Build a BFS spanning forest and the E' coordinate system."""
    n = g.n
    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    tree_mask = np.zeros(g.m, dtype=bool)
    visited = np.zeros(n, dtype=bool)
    indptr, indices, eids = g.indptr, g.indices, g.csr_eid
    for root in range(n):
        if visited[root]:
            continue
        visited[root] = True
        queue = [root]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            for slot in range(indptr[u], indptr[u + 1]):
                v = int(indices[slot])
                if visited[v]:
                    continue
                e = int(eids[slot])
                visited[v] = True
                parent[v] = u
                parent_edge[v] = e
                depth[v] = depth[u] + 1
                tree_mask[e] = True
                queue.append(v)
    eprime_edges = np.nonzero(~tree_mask)[0]
    eprime_index = np.full(g.m, -1, dtype=np.int64)
    eprime_index[eprime_edges] = np.arange(eprime_edges.size)
    return SpanningStructure(
        graph=g,
        tree_mask=tree_mask,
        parent=parent,
        parent_edge=parent_edge,
        depth=depth,
        eprime_index=eprime_index,
        eprime_edges=eprime_edges,
    )
