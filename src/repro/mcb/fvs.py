"""Feedback vertex sets.

The Mehlhorn–Michail candidate generation roots its shortest-path trees at
a feedback vertex set ``Z`` (Section 3.2: a minimum FVS is NP-complete
[20], so an approximation is used).  We provide the standard practical
construction: peel degree-≤1 vertices, repeatedly take the highest-degree
remaining vertex, re-peel.  The output is a *guaranteed* FVS — every cycle
contains a member (verified by :func:`is_feedback_vertex_set`) — typically
within the 2-approximation ballpark of Bafna et al. [3] on sparse graphs.

Self-loop vertices are always included: the loop is a cycle containing
only them.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["greedy_fvs", "is_feedback_vertex_set"]


def greedy_fvs(g: CSRGraph) -> np.ndarray:
    """Sorted vertex ids of a feedback vertex set of ``g``."""
    n = g.n
    deg = np.zeros(n, dtype=np.int64)
    # Live-degree bookkeeping over a mutable adjacency multiset.
    alive_edge = np.ones(g.m, dtype=bool)
    in_fvs = np.zeros(n, dtype=bool)
    removed = np.zeros(n, dtype=bool)
    indptr, indices, eids = g.indptr, g.indices, g.csr_eid

    for e in range(g.m):
        u, v = int(g.edge_u[e]), int(g.edge_v[e])
        if u == v:
            in_fvs[u] = True  # self-loop: forced
        deg[u] += 1
        deg[v] += 1

    def peel(start: list[int]) -> None:
        stack = list(start)
        while stack:
            v = stack.pop()
            if removed[v] or deg[v] > 1:
                continue
            removed[v] = True
            for slot in range(indptr[v], indptr[v + 1]):
                e = int(eids[slot])
                if not alive_edge[e]:
                    continue
                alive_edge[e] = False
                w = int(indices[slot])
                deg[v] -= 1
                deg[w] -= 1
                if not removed[w] and deg[w] <= 1:
                    stack.append(w)

    # Remove forced loop vertices first, then peel the forest fringe.
    for v in np.nonzero(in_fvs)[0]:
        removed[v] = True
        for slot in range(indptr[v], indptr[v + 1]):
            e = int(eids[slot])
            if alive_edge[e]:
                alive_edge[e] = False
                w = int(indices[slot])
                deg[v] -= 1
                if w != v:
                    deg[w] -= 1
    peel([v for v in range(n) if not removed[v] and deg[v] <= 1])

    while True:
        live = np.nonzero(~removed)[0]
        if live.size == 0:
            break
        candidate = live[np.argmax(deg[live])]
        if deg[candidate] <= 1:
            break  # only trees remain
        v = int(candidate)
        in_fvs[v] = True
        removed[v] = True
        neighbors_to_peel: list[int] = []
        for slot in range(indptr[v], indptr[v + 1]):
            e = int(eids[slot])
            if not alive_edge[e]:
                continue
            alive_edge[e] = False
            w = int(indices[slot])
            deg[v] -= 1
            if w != v:
                deg[w] -= 1
                if not removed[w] and deg[w] <= 1:
                    neighbors_to_peel.append(w)
        peel(neighbors_to_peel)
    return np.nonzero(in_fvs)[0]


def is_feedback_vertex_set(g: CSRGraph, fvs: np.ndarray) -> bool:
    """True when ``g`` minus ``fvs`` is a forest (no cycle survives)."""
    mask = np.ones(g.n, dtype=bool)
    mask[np.asarray(fvs, dtype=np.int64)] = False
    keep_edges = np.nonzero(mask[g.edge_u] & mask[g.edge_v])[0]
    sub = g.edge_subgraph(keep_edges)
    # A forest has m = n - c; compare on the vertex-induced live part.
    c, _ = sub.connected_components()
    return sub.m == sub.n - c
