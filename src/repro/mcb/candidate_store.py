"""Hybrid array/linked-list candidate container (Section 3.3.2).

The paper stores the weight-sorted candidate cycles in "a hybrid of
linked-list as well as linear arrays ... each linked-list node consists of
a constant sized array as its base element and has a single next pointer.
We first check within each position of the linked-list node and if not
found skip to the next node.  We mark the removal of elements by setting
off the MSB and reorder the cycles within nodes when half of those in a
node are removed."

This is that structure: blocks of a fixed size scanned batch-by-batch with
a vectorized predicate, tombstone removal, and per-block compaction once
half the entries are dead.  Scanning early-exits at the first block that
contains a match — the "logical batches B₁, B₂, …" of the search step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs import metrics as _metrics

__all__ = ["CandidateStore", "ScanStats"]

_C_SCANNED = _metrics.counter("mcb.candidates_scanned")
_C_BATCHES = _metrics.counter("mcb.scan_batches")


@dataclass
class ScanStats:
    """Counters describing the scanning work performed (for cost models)."""

    batches_visited: int = 0
    candidates_tested: int = 0
    compactions: int = 0


class _Block:
    __slots__ = ("ids", "alive", "n_alive", "next")

    def __init__(self, ids: np.ndarray) -> None:
        self.ids = ids
        self.alive = np.ones(ids.size, dtype=bool)
        self.n_alive = int(ids.size)
        self.next: "_Block | None" = None


class CandidateStore:
    """Weight-ordered candidate ids with vectorized first-match scans."""

    def __init__(self, ordered_ids: np.ndarray, block_size: int = 512) -> None:
        if block_size < 1:
            raise ValueError("block size must be positive")
        self.block_size = block_size
        ordered_ids = np.asarray(ordered_ids, dtype=np.int64)
        self._head: _Block | None = None
        self._size = int(ordered_ids.size)
        prev: _Block | None = None
        for start in range(0, ordered_ids.size, block_size):
            blk = _Block(ordered_ids[start : start + block_size].copy())
            if prev is None:
                self._head = blk
            else:
                prev.next = blk
            prev = blk
        self.stats = ScanStats()

    def __len__(self) -> int:
        return self._size

    def memory_bytes(self) -> int:
        """Actual bytes held by the block chain (id arrays + alive masks).

        Feeds the ``memory.mcb.candidate_store_bytes`` gauge so Table-1
        style memory accounting covers the MCB side of the pipeline too.
        """
        total = 0
        blk = self._head
        while blk is not None:
            total += int(blk.ids.nbytes) + int(blk.alive.nbytes)
            blk = blk.next
        return total

    def scan_and_remove(
        self, predicate: Callable[[np.ndarray], np.ndarray]
    ) -> int | None:
        """First live candidate (in weight order) matching ``predicate``.

        ``predicate`` receives a batch of candidate ids and returns a
        boolean mask.  The match is removed from the store.  ``None`` when
        nothing matches.
        """
        blk = self._head
        prev: _Block | None = None
        while blk is not None:
            if blk.n_alive == 0:
                # Unlink empty blocks lazily during traversal.
                nxt = blk.next
                if prev is None:
                    self._head = nxt
                else:
                    prev.next = nxt
                blk = nxt
                continue
            live_pos = np.nonzero(blk.alive)[0]
            live_ids = blk.ids[live_pos]
            self.stats.batches_visited += 1
            self.stats.candidates_tested += int(live_ids.size)
            _C_BATCHES.inc()
            _C_SCANNED.inc(int(live_ids.size))
            mask = predicate(live_ids)
            hits = np.nonzero(mask)[0]
            if hits.size:
                pos = int(live_pos[hits[0]])
                found = int(blk.ids[pos])
                blk.alive[pos] = False
                blk.n_alive -= 1
                self._size -= 1
                if 0 < blk.n_alive <= blk.ids.size // 2:
                    self._compact(blk)
                return found
            prev, blk = blk, blk.next
        return None

    def scan_and_remove_parallel(
        self,
        predicate: Callable[[np.ndarray], np.ndarray],
        n_lanes: int = 4,
    ) -> int | None:
        """Parallel-batch variant of the scan (§3.3.2).

        The paper checks "each batch in parallel ... if no cycle is found
        in batch B₁, then we move to check in batch B₂": each round
        dispatches ``n_lanes`` consecutive blocks (on the paper's machine,
        to different devices), then takes the globally first hit.  The
        result is identical to the serial scan; the counters reflect the
        extra speculative tests a parallel round performs past the match.
        """
        if n_lanes < 1:
            raise ValueError("need at least one lane")
        cursor = self._head
        while cursor is not None:
            # Collect up to n_lanes live blocks for this round (empty
            # blocks are skipped; the serial scan handles unlinking).
            round_blocks: list[_Block] = []
            while cursor is not None and len(round_blocks) < n_lanes:
                if cursor.n_alive:
                    round_blocks.append(cursor)
                cursor = cursor.next
            if not round_blocks:
                return None
            # Evaluate every lane (speculatively), take the first hit.
            for lane in round_blocks:
                live_pos = np.nonzero(lane.alive)[0]
                live_ids = lane.ids[live_pos]
                self.stats.batches_visited += 1
                self.stats.candidates_tested += int(live_ids.size)
                _C_BATCHES.inc()
                _C_SCANNED.inc(int(live_ids.size))
                hits = np.nonzero(predicate(live_ids))[0]
                if hits.size:
                    pos = int(live_pos[hits[0]])
                    found = int(lane.ids[pos])
                    lane.alive[pos] = False
                    lane.n_alive -= 1
                    self._size -= 1
                    if 0 < lane.n_alive <= lane.ids.size // 2:
                        self._compact(lane)
                    return found
        return None

    def _compact(self, blk: _Block) -> None:
        """Reorder a half-dead block down to its live entries."""
        blk.ids = blk.ids[blk.alive]
        blk.alive = np.ones(blk.ids.size, dtype=bool)
        blk.n_alive = int(blk.ids.size)
        self.stats.compactions += 1

    def remaining_ids(self) -> np.ndarray:
        """All live candidate ids in weight order (mainly for tests)."""
        out: list[np.ndarray] = []
        blk = self._head
        while blk is not None:
            if blk.n_alive:
                out.append(blk.ids[blk.alive])
            blk = blk.next
        return np.concatenate(out) if out else np.empty(0, dtype=np.int64)
