"""Isometric cycles (Amaldi et al. [1]).

A cycle is *isometric* when, for every pair of its vertices, one of the
two arcs along the cycle is a shortest path in the whole graph.  Amaldi
et al. showed every MCB consists of isometric cycles only, so filtering
the Horton set down to isometric candidates shrinks the search space the
paper's Section 3.2 sweeps — this module provides that filter and an MCB
built on top of it, cross-validated against de Pina by the test-suite.
"""

from __future__ import annotations

import numpy as np

from ..apsp.ear_apsp import ear_apsp_full
from ..graph.csr import CSRGraph
from . import gf2
from .cycle import Cycle
from .horton import horton_set
from .spanning import spanning_structure

__all__ = ["is_isometric", "filter_isometric", "isometric_mcb"]


def is_isometric(
    g: CSRGraph, cycle: Cycle, dist: np.ndarray, rtol: float = 1e-9
) -> bool:
    """Exact isometry test for a simple cycle.

    ``dist`` is the full APSP matrix of ``g``.  Ties are kept (arc within
    ``rtol`` of the true distance counts as shortest) so the filtered set
    remains a safe superset of every MCB.
    """
    if len(cycle) == 1:  # self-loop: trivially isometric
        return True
    try:
        seq = cycle.vertex_sequence(g)
    except ValueError:
        return False  # not a single simple cycle: can never be in an MCB
    k = len(seq)
    # Arc prefix sums along the traversal order.
    prefix = np.zeros(k + 1)
    for i in range(k):
        a, b = seq[i], seq[(i + 1) % k]
        prefix[i + 1] = prefix[i] + g.edge_weight(a, b)
    total = prefix[k]
    tol = rtol * max(total, 1.0)
    for i in range(k):
        for j in range(i + 1, k):
            arc = prefix[j] - prefix[i]
            best_arc = min(arc, total - arc)
            if best_arc > dist[seq[i], seq[j]] + tol:
                return False
    return True


def filter_isometric(
    g: CSRGraph, cycles: list[Cycle], dist: np.ndarray | None = None
) -> list[Cycle]:
    """Keep only the isometric members of a candidate list."""
    if dist is None:
        dist = ear_apsp_full(g)
    return [c for c in cycles if is_isometric(g, c, dist)]


def isometric_mcb(g: CSRGraph) -> list[Cycle]:
    """MCB by greedy GF(2) independence over isometric Horton candidates."""
    f = g.cycle_space_dimension()
    if f == 0:
        return []
    dist = ear_apsp_full(g)
    candidates = filter_isometric(g, horton_set(g), dist)
    ss = spanning_structure(g)
    reduced: list[np.ndarray] = []
    pivots: list[int] = []
    chosen: list[Cycle] = []
    for cyc in candidates:
        vec = ss.restricted_vector(cyc.edge_ids)
        work = vec.copy()
        for row, piv in zip(reduced, pivots):
            if gf2.get_bit(work, piv):
                gf2.xor_inplace(work, row)
        nz = np.nonzero(work)[0]
        if nz.size == 0:
            continue
        word = int(nz[0])
        low = work[word] & (~work[word] + np.uint64(1))
        pivots.append(word * 64 + int(np.log2(float(low))))
        reduced.append(work)
        chosen.append(cyc)
        if len(chosen) == f:
            return chosen
    raise RuntimeError(
        f"isometric candidates spanned only {len(chosen)} of {f} dimensions"
    )
