"""Packed GF(2) linear algebra.

Witness vectors and cycle incidence vectors live in ``{0,1}^f`` over the
non-tree edge set ``E'`` (Section 3.2).  We pack 64 coordinates per
``uint64`` word so that the inner products of Step 5 and the symmetric
differences of Step 6 of Algorithm 2 are single fused numpy passes —
the same bit-parallel trick the paper's CUDA witness kernels use with
warp-wide ballots.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "n_words",
    "pack",
    "unpack",
    "zeros",
    "unit",
    "identity",
    "dot",
    "dot_many",
    "xor_inplace",
    "xor_many",
    "pivot_update",
    "get_bit",
    "set_bit",
    "rank",
    "is_independent",
]


if hasattr(np, "bitwise_count"):
    _popcount = np.bitwise_count
else:  # numpy < 2.0: byte-table fallback (pyproject floor is numpy>=1.24)
    _POP8 = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(
        axis=1, dtype=np.uint8
    )

    def _popcount(a: np.ndarray) -> np.ndarray:
        by = np.ascontiguousarray(a).view(np.uint8)
        return _POP8[by].reshape(a.shape + (8,)).sum(axis=-1, dtype=np.uint64)


def n_words(f: int) -> int:
    """Number of 64-bit words needed for ``f`` coordinates."""
    return max(1, (f + 63) // 64)


def zeros(f: int) -> np.ndarray:
    """The zero vector of dimension ``f`` (packed)."""
    return np.zeros(n_words(f), dtype=np.uint64)


def unit(f: int, i: int) -> np.ndarray:
    """Standard basis vector ``e_i`` (the initial witness S_i of Step 1)."""
    v = zeros(f)
    v[i >> 6] = np.uint64(1) << np.uint64(i & 63)
    return v


def identity(f: int) -> np.ndarray:
    """Packed ``(f, words)`` identity matrix — the Step-1 witness matrix
    ``[S_1 .. S_f]`` built in one vectorized scatter instead of ``f``
    :func:`unit` calls."""
    idx = np.arange(f, dtype=np.int64)
    mat = np.zeros((f, n_words(f)), dtype=np.uint64)
    mat[idx, idx >> 6] = np.uint64(1) << (idx & 63).astype(np.uint64)
    return mat


def pack(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean/0-1 array into uint64 words (little-endian bits).

    The zero-padded bit buffer is always ``words * 64`` bits long, so the
    byte view is always a whole number of uint64 words — one reshape-safe
    path with no remainder branch.
    """
    bits = np.asarray(bits, dtype=bool)
    f = bits.size
    padded = np.zeros(n_words(f) * 64, dtype=np.uint8)
    padded[:f] = bits
    return np.packbits(padded, bitorder="little").view(np.uint64)


def unpack(v: np.ndarray, f: int) -> np.ndarray:
    """Inverse of :func:`pack`: boolean array of length ``f``."""
    by = np.ascontiguousarray(v).view(np.uint8)
    return np.unpackbits(by, count=f, bitorder="little").astype(bool)


def get_bit(v: np.ndarray, i: int) -> int:
    """Coordinate ``i`` of a packed vector."""
    return int((v[i >> 6] >> np.uint64(i & 63)) & np.uint64(1))


def set_bit(v: np.ndarray, i: int, value: int = 1) -> None:
    """Set coordinate ``i`` in place."""
    mask = np.uint64(1) << np.uint64(i & 63)
    if value:
        v[i >> 6] |= mask
    else:
        v[i >> 6] &= ~mask


def dot(a: np.ndarray, b: np.ndarray) -> int:
    """GF(2) inner product ``⟨a, b⟩`` (parity of the AND popcount)."""
    return int(_popcount(a & b).sum() & 1)


def dot_many(mat: np.ndarray, v: np.ndarray) -> np.ndarray:
    """``⟨row_j, v⟩`` for every row of a packed ``(k, words)`` matrix.

    This is the vectorised independence test of Steps 4–5: one AND, one
    popcount, one reduction for *all* remaining witnesses at once.
    """
    if mat.size == 0:
        return np.zeros(mat.shape[0], dtype=np.uint8)
    return (_popcount(mat & v[None, :]).sum(axis=1) & 1).astype(np.uint8)


def xor_inplace(target: np.ndarray, source: np.ndarray) -> None:
    """``target ^= source`` (Step 6's symmetric difference)."""
    np.bitwise_xor(target, source, out=target)


def xor_many(mat: np.ndarray, mask: np.ndarray, v: np.ndarray) -> None:
    """``mat[j] ^= v`` for every row with ``mask[j]`` — one fused pass.

    The ``where=`` form XORs selected rows in place without the gather /
    scatter round-trip of fancy indexing (``mat[mask] ^= v`` materialises a
    ``(k, words)`` copy twice); this is the batched Step-6 sweep the
    paper's GPU runs as one grid launch over the 2-D witness matrix.
    """
    if mat.size == 0:
        return
    sel = np.asarray(mask, dtype=bool)
    np.bitwise_xor(mat, v[None, :], out=mat, where=sel[:, None])


def pivot_update(mat: np.ndarray, v: np.ndarray, pivot: np.ndarray) -> np.ndarray:
    """Steps 4–6 of Algorithm 2 over a packed witness block, fully batched.

    Computes ``odd[j] = ⟨mat[j], v⟩`` for every row (one AND + popcount +
    reduce pass), then XORs ``pivot`` into exactly the odd rows (one fused
    masked XOR).  Returns the boolean ``odd`` mask.  ``mat`` may be a view
    (e.g. ``witnesses[i+1:]``); it is updated in place.
    """
    odd = dot_many(mat, v).astype(bool)
    xor_many(mat, odd, pivot)
    return odd


def rank(rows: np.ndarray, f: int | None = None) -> int:
    """GF(2) rank of a packed ``(k, words)`` matrix by Gaussian elimination.

    ``f`` bounds the scan to the first ``f`` coordinates (vectors packed
    from dimension ``f`` carry zero padding up to the word boundary —
    without the bound the padded columns are scanned for nothing).  Pivot
    *selection* is vectorized: instead of probing columns one by one, the
    OR of all remaining rows jumps straight to the next column holding a
    pivot, so all-zero column runs cost one reduction rather than one
    Python iteration each.
    """
    if rows.size == 0:
        return 0
    work = rows.copy()
    r = 0
    k, words = work.shape
    limit = words * 64 if f is None else min(int(f), words * 64)
    col = 0
    while r < k and col < limit:
        word, bit = col >> 6, np.uint64(col & 63)
        hits = np.nonzero((work[r:, word] >> bit) & np.uint64(1))[0]
        if hits.size == 0:
            # Vectorized pivot scan: OR the remaining rows, mask off the
            # columns already processed, and jump to the lowest set bit.
            orv = np.bitwise_or.reduce(work[r:], axis=0)
            if col & 63:
                orv[word] &= ~np.uint64(0) << np.uint64(col & 63)
            orv[:word] = 0
            nz = np.nonzero(orv)[0]
            if nz.size == 0:
                break
            w = int(nz[0])
            v = int(orv[w])
            col = (w << 6) + ((v & -v).bit_length() - 1)
            continue
        pivot = r + int(hits[0])
        work[[r, pivot]] = work[[pivot, r]]
        below = (work[r + 1 :, word] >> bit) & np.uint64(1)
        sel = np.nonzero(below)[0]
        if sel.size:
            work[r + 1 + sel] ^= work[r]
        r += 1
        col += 1
    return r


def is_independent(rows: np.ndarray, f: int | None = None) -> bool:
    """True when the packed rows are linearly independent over GF(2)."""
    return rank(rows, f=f) == rows.shape[0]
