"""Ear-decomposition based minimum cycle basis (Section 3.3, Lemma 3.1).

Pipeline per biconnected component (no MCB cycle spans two components):

1. contract degree-2 chains → reduced **multigraph** ``G^r`` (parallel
   chain edges and self-loops kept — they become non-tree edges);
2. run the MCB solver (Mehlhorn–Michail by default, de Pina as the exact
   reference) on ``G^r``;
3. expand every basis cycle by substituting each contracted edge ``e_P``
   with its chain ``P`` — weight is preserved edge-for-edge, so by
   Lemma 3.1 the result is an MCB of the original graph.

The work saved is the paper's headline: with ``n₂`` degree-2 vertices
removed, only ``n − n₂`` shortest-path trees are built and every tree,
label pass, and scan runs on the smaller graph.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from ..decomposition.biconnected import biconnected_components
from ..decomposition.reduce import reduce_graph
from ..graph.csr import CSRGraph
from .cycle import Cycle
from .depina import depina_mcb
from .mehlhorn_michail import MMReport, mm_mcb

__all__ = ["EarMCBReport", "minimum_cycle_basis"]


@dataclass
class EarMCBReport:
    """Stage instrumentation for one ear-MCB run."""

    n: int = 0
    m: int = 0
    f: int = 0
    n_components: int = 0
    n_solved_components: int = 0
    n_removed: int = 0
    t_decompose: float = 0.0
    t_reduce: float = 0.0
    t_solve: float = 0.0
    t_expand: float = 0.0
    solver_reports: list = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.t_decompose + self.t_reduce + self.t_solve + self.t_expand


def minimum_cycle_basis(
    g: CSRGraph,
    algorithm: str = "mm",
    use_ear: bool = True,
    report: EarMCBReport | None = None,
    **solver_kwargs,
) -> list[Cycle]:
    """Minimum-weight cycle basis of ``g``.

    Parameters
    ----------
    algorithm:
        ``"mm"`` (Mehlhorn–Michail labelled trees, the paper's processing
        phase) or ``"depina"`` (exact signed-graph reference).
    use_ear:
        When False, each biconnected component is solved *without* the
        degree-2 reduction — the "w/o" ablation columns of Table 2.
    solver_kwargs:
        Forwarded to the selected solver (e.g. ``lca_filter``,
        ``block_size`` for ``"mm"``).
    """
    if report is not None:
        report.n, report.m = g.n, g.m
        report.f = g.cycle_space_dimension()

    t0 = time.perf_counter()
    bcc = biconnected_components(g)
    t1 = time.perf_counter()
    if report is not None:
        report.t_decompose += t1 - t0
        report.n_components = bcc.count

    basis: list[Cycle] = []
    for cid in range(bcc.count):
        comp_eids = bcc.component_edges[cid]
        if comp_eids.size < 2 and not _has_loop(g, comp_eids):
            continue  # a bridge: acyclic, contributes nothing
        sub, _ = bcc.component_subgraph(g, cid)
        if sub.cycle_space_dimension() == 0:
            continue
        if report is not None:
            report.n_solved_components += 1

        ta = time.perf_counter()
        if use_ear:
            red = reduce_graph(sub)
            solve_on = red.graph
        else:
            red = None
            solve_on = sub
        tb = time.perf_counter()

        sub_report = MMReport() if algorithm == "mm" else None
        if algorithm == "mm":
            sub_cycles = mm_mcb(solve_on, report=sub_report, **solver_kwargs)
        elif algorithm == "depina":
            sub_cycles = depina_mcb(solve_on, **solver_kwargs)
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        tc = time.perf_counter()

        for cyc in sub_cycles:
            if red is not None:
                sub_eids = red.expand_cycle(cyc.edge_ids)
            else:
                sub_eids = cyc.edge_ids
            g_eids = comp_eids[sub_eids]
            basis.append(
                Cycle(
                    edge_ids=np.sort(g_eids),
                    weight=cyc.weight,
                    meta={"component": cid, **cyc.meta},
                )
            )
        td = time.perf_counter()
        if report is not None:
            report.t_reduce += tb - ta
            report.t_solve += tc - tb
            report.t_expand += td - tc
            if red is not None:
                report.n_removed += red.n_removed
            if sub_report is not None:
                report.solver_reports.append(sub_report)
    if os.environ.get("REPRO_CHECK_INVARIANTS"):
        # Opt-in contract check: the composed, re-expanded basis must be a
        # genuine GF(2) cycle basis of the *original* graph (Lemma 3.1).
        from ..qa.invariants import maybe_check_cycle_basis

        maybe_check_cycle_basis(g, basis)
    return basis


def _has_loop(g: CSRGraph, eids: np.ndarray) -> bool:
    return bool(np.any(g.edge_u[eids] == g.edge_v[eids]))
