"""Minimum-weight odd cycle via the signed (auxiliary) graph.

Section 3.2.1: to find the lightest cycle ``C`` with ``⟨C, S⟩ = 1``, build
a two-layer graph — edges with ``S(e) = 0`` connect like-signed copies,
edges with ``S(e) = 1`` cross layers — and take the shortest ``x+ → x−``
path.  Every such path is a closed walk in ``G`` crossing an odd number of
``S``-edges, and the minimum over roots ``x`` realises the minimum odd
cycle [24, 26].

Because every cycle contains a feedback vertex, restricting the roots to
an FVS preserves the minimum; callers pass the FVS they already have.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from ..graph.csr import CSRGraph
from ..sssp.dijkstra import dijkstra_tree
from ..sssp.engine import ZERO_WEIGHT_NUDGE
from .cycle import Cycle
from .spanning import SpanningStructure

__all__ = ["build_signed_graph", "min_odd_cycle"]


def build_signed_graph(
    g: CSRGraph, s_edge: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Two-layer signed graph.

    ``s_edge`` is the 0/1 witness value per *edge* of ``g`` (tree edges are
    0 by construction).  Returns ``(aux, orig_eid)`` where ``aux`` has
    ``2n`` vertices (``x+`` = ``x``, ``x−`` = ``x + n``) and ``orig_eid``
    maps each aux edge back to its original edge id.
    """
    n = g.n
    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    orig: list[int] = []
    for e in range(g.m):
        u, v, w = int(g.edge_u[e]), int(g.edge_v[e]), float(g.edge_w[e])
        s = int(s_edge[e])
        if u == v:
            if s:  # an odd self-loop connects the two copies of u
                us.append(u)
                vs.append(u + n)
                ws.append(w)
                orig.append(e)
            continue  # even self-loops can never shorten an odd walk
        if s == 0:
            us += [u, u + n]
            vs += [v, v + n]
        else:
            us += [u, u + n]
            vs += [v + n, v]
        ws += [w, w]
        orig += [e, e]
    aux = CSRGraph(2 * n, us, vs, ws)
    return aux, np.asarray(orig, dtype=np.int64)


def min_odd_cycle(
    g: CSRGraph,
    ss: SpanningStructure,
    s_bits: np.ndarray,
    roots: np.ndarray,
) -> Cycle | None:
    """Lightest cycle with odd intersection with the witness ``s_bits``.

    ``s_bits`` is boolean over E' (length ``ss.f``); ``roots`` the vertex
    ids to try (an FVS suffices).  Returns the cycle (support reduced mod
    2, walk weight recorded in ``meta['walk_weight']``) or ``None`` when no
    odd cycle exists.
    """
    n = g.n
    s_edge = np.zeros(g.m, dtype=np.int8)
    idx = ss.eprime_index
    nontree = idx >= 0
    s_edge[nontree] = np.asarray(s_bits, dtype=np.int8)[idx[nontree]]
    aux, orig_eid = build_signed_graph(g, s_edge)
    if aux.m == 0:
        return None

    roots = np.asarray(roots, dtype=np.int64)
    if roots.size == 0:
        return None
    # Bulk distances from every root's plus copy (compiled path), then an
    # exact predecessor run from the best root only.
    mat = _aux_matrix(aux)
    dist = csgraph.dijkstra(mat, directed=False, indices=roots)
    closing = dist[np.arange(roots.size), roots + n]
    best = int(np.argmin(closing))
    if not np.isfinite(closing[best]):
        return None
    x = int(roots[best])
    _, parent, parent_edge = dijkstra_tree(aux, x)
    walk: list[int] = []
    cur = x + n
    while cur != x:
        ae = int(parent_edge[cur])
        walk.append(int(orig_eid[ae]))
        cur = int(parent[cur])
    walk_weight = float(closing[best])
    return Cycle.from_multiset(g, np.asarray(walk), weight=None, walk_weight=walk_weight)


def _aux_matrix(aux: CSRGraph) -> sp.csr_matrix:
    w = np.where(aux.edge_w == 0.0, ZERO_WEIGHT_NUDGE, aux.edge_w)
    row = np.concatenate([aux.edge_u, aux.edge_v])
    col = np.concatenate([aux.edge_v, aux.edge_u])
    dat = np.concatenate([w, w])
    # Duplicate (parallel) entries: scipy sums them on CSR conversion,
    # which would corrupt distances — deduplicate keeping the minimum.
    order = np.lexsort((dat, col, row))
    row, col, dat = row[order], col[order], dat[order]
    keys = row * aux.n + col
    first = np.ones(keys.size, dtype=bool)
    first[1:] = keys[1:] != keys[:-1]
    return sp.coo_matrix(
        (dat[first], (row[first], col[first])), shape=(aux.n, aux.n)
    ).tocsr()
