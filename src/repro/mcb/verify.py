"""Cycle-basis verification.

Any claimed MCB is checked structurally (each element is a genuine cycle-
space vector), dimensionally (``m - n + c`` independent elements over
GF(2)), and — against an oracle — for weight minimality.  Benchmarks call
:func:`verify_cycle_basis` after every run so reported timings are always
for *correct* outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from . import gf2
from .cycle import Cycle
from .spanning import spanning_structure

__all__ = ["BasisReport", "verify_cycle_basis"]


@dataclass(frozen=True)
class BasisReport:
    """Outcome of a basis verification."""

    ok: bool
    dimension: int
    expected_dimension: int
    independent: bool
    all_cycles_valid: bool
    total_weight: float
    message: str = ""


def verify_cycle_basis(g: CSRGraph, cycles: list[Cycle]) -> BasisReport:
    """Verify that ``cycles`` is a cycle basis of ``g``.

    Checks (in order): every element has even-degree support; the count
    equals the cycle space dimension; the restricted vectors are linearly
    independent over GF(2).  Weight minimality is not decidable without an
    oracle — compare ``total_weight`` against one in the caller.
    """
    expected = g.cycle_space_dimension()
    all_valid = all(c.is_valid_cycle(g) for c in cycles)
    total = float(sum(c.weight for c in cycles))
    if len(cycles) != expected:
        return BasisReport(
            ok=False,
            dimension=len(cycles),
            expected_dimension=expected,
            independent=False,
            all_cycles_valid=all_valid,
            total_weight=total,
            message=f"cardinality {len(cycles)} != cycle space dimension {expected}",
        )
    if expected == 0:
        return BasisReport(True, 0, 0, True, True, 0.0)
    ss = spanning_structure(g)
    mat = np.stack([ss.restricted_vector(c.edge_ids) for c in cycles])
    indep = gf2.is_independent(mat, f=ss.f)
    ok = indep and all_valid
    return BasisReport(
        ok=ok,
        dimension=len(cycles),
        expected_dimension=expected,
        independent=indep,
        all_cycles_valid=all_valid,
        total_weight=total,
        message="" if ok else "dependent rows" if not indep else "invalid cycle",
    )
