"""Mehlhorn–Michail MCB: FVS-rooted candidates + label-propagated scans.

This is the paper's *processing phase* (Section 3.3.2) in full:

* shortest-path trees ``T_z`` from every vertex of a feedback vertex set;
* the candidate family ``A = {C_ze}`` (optionally restricted to pairs with
  ``lca_{T_z}(u, v) = z`` — the Mehlhorn–Michail reduction — in which case
  every candidate is a simple cycle), sorted by weight into the hybrid
  array/linked-list :class:`CandidateStore`;
* per phase, **Algorithm 3**: labels ``l_z(u) = ⟨path_z(u), S⟩`` computed
  by two tree passes (a gather of witness bits onto parent edges, then a
  level-order prefix-xor), making each candidate's orthogonality test O(1):
  ``⟨C_ze, S⟩ = l_z(u) ⊕ l_z(v) ⊕ S(e)``;
* batched scanning of the store for the first (lightest) odd candidate;
* the vectorized witness update (independence test).

The work is factored into :class:`MMContext` methods — one shortest-path
tree's labels, one batch scan, one witness-block update — precisely the
work units the heterogeneous executor schedules across CPU and (simulated)
GPU for Table 2 / Figures 5–6.

Weight ordering uses a deterministic tie-breaking perturbation (see
:func:`repro.mcb.horton.perturbed_weights`); reported cycle weights are
exact, and the suite checks totals against de Pina.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..obs import metrics as _metrics
from ..obs.trace import span as _span
from ..sssp.engine import spt_forest
from . import gf2
from .candidate_store import CandidateStore
from .cycle import Cycle
from .fvs import greedy_fvs
from .horton import perturbed_weights
from .spanning import SpanningStructure, spanning_structure

__all__ = ["MMReport", "MMContext", "mm_mcb"]

_C_XORS = _metrics.counter("mcb.witness_xors")
_C_ORTHO = _metrics.counter("mcb.orthogonality_checks")
_C_PHASES = _metrics.counter("mcb.mm.phases")

_NO_PRED = -9999  # scipy's predecessor sentinel


@dataclass
class MMReport:
    """Instrumentation matching the paper's Section 3.5 phase breakdown."""

    f: int = 0
    n_fvs: int = 0
    n_candidates: int = 0
    t_setup: float = 0.0
    t_labels: float = 0.0
    t_scan: float = 0.0
    t_update: float = 0.0
    t_reconstruct: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        return (
            self.t_setup + self.t_labels + self.t_scan + self.t_update + self.t_reconstruct
        )

    def fractions(self) -> dict[str, float]:
        """Per-phase share of the processing time (cf. 76% / 14% / 8%)."""
        proc = self.t_labels + self.t_scan + self.t_update
        if proc == 0:
            return {"labels": 0.0, "scan": 0.0, "update": 0.0}
        return {
            "labels": self.t_labels / proc,
            "scan": self.t_scan / proc,
            "update": self.t_update / proc,
        }


class MMContext:
    """Precomputed state for one Mehlhorn–Michail run.

    All heavy per-phase operations are exposed as methods over explicit
    work-unit granularity (one tree, one witness block) so that execution
    policy — sequential, thread pool, simulated GPU, heterogeneous queue —
    is chosen by the caller.
    """

    def __init__(
        self,
        g: CSRGraph,
        lca_filter: bool = True,
        perturb: bool = True,
        block_size: int = 512,
    ) -> None:
        self.graph = g
        self.ss: SpanningStructure = spanning_structure(g)
        self.f = self.ss.f
        if self.f == 0:
            self.fvs = np.empty(0, dtype=np.int64)
            self.n = g.n
            return
        self.fvs = greedy_fvs(g)
        self.n = g.n
        pw = perturbed_weights(g) if perturb else g.edge_w
        self._pg = g.with_weights(pw)

        # Shortest-path trees from every FVS root (compiled bulk call).
        # Perturbed weights make each tree the unique SPT, which the
        # lca-filtered candidate theorem of [29] requires.
        self.dist, self.parent = spt_forest(self._pg, self.fvs)

        # Min-weight representative edge per vertex pair (perturbation makes
        # it unique), for mapping tree arcs back to edge ids.
        self._pair_edge: dict[tuple[int, int], int] = {}
        order = np.argsort(pw)[::-1]  # heavier first so lightest wins last
        for e in order:
            u, v = g.edge_endpoints(int(e))
            if u != v:
                self._pair_edge[(min(u, v), max(u, v))] = int(e)

        self._build_tree_tables()
        self._build_candidates(lca_filter)
        self.block_size = block_size

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    def _build_tree_tables(self) -> None:
        """Depths, level ordering, and parent-edge E' indices per tree."""
        k, n = self.parent.shape
        self.depth = np.full((k, n), -1, dtype=np.int64)
        self.parent_ep = np.full((k, n), -1, dtype=np.int64)
        self.parent_eid = np.full((k, n), -1, dtype=np.int64)
        self.levels: list[list[np.ndarray]] = []
        ep_of_edge = self.ss.eprime_index
        for zi in range(k):
            par = self.parent[zi]
            root = int(self.fvs[zi])
            reachable = np.isfinite(self.dist[zi])
            order = np.argsort(self.dist[zi], kind="stable")
            depth = self.depth[zi]
            depth[root] = 0
            for v in order:
                v = int(v)
                if v == root or not reachable[v]:
                    continue
                p = int(par[v])
                if p == _NO_PRED:
                    continue
                depth[v] = depth[p] + 1
                eid = self._pair_edge[(min(v, p), max(v, p))]
                self.parent_eid[zi, v] = eid
                self.parent_ep[zi, v] = ep_of_edge[eid]
            max_d = int(depth.max())
            lv = [
                np.nonzero(depth == d)[0] for d in range(1, max_d + 1)
            ] if max_d >= 1 else []
            self.levels.append(lv)

        # Flattened cross-tree level schedule: one numpy gather/xor per
        # depth covers that depth in *every* tree at once.  This is still
        # Algorithm 3's level-order second pass, executed for all |Z|
        # trees simultaneously (what the CUDA grid does spatially).
        self._flat_parent_ep = self.parent_ep.reshape(-1)
        max_depth = int(self.depth.max()) if self.depth.size else 0
        self._flat_levels: list[tuple[np.ndarray, np.ndarray]] = []
        flat_parent = np.where(
            self.parent == _NO_PRED, 0, self.parent
        ) + (np.arange(k)[:, None] * n)
        for d in range(1, max_depth + 1):
            sel = np.nonzero(self.depth.reshape(-1) == d)[0]
            if sel.size:
                self._flat_levels.append((sel, flat_parent.reshape(-1)[sel]))

    def _build_candidates(self, lca_filter: bool) -> None:
        """Candidate family A, weight-sorted into the hybrid store."""
        g = self.graph
        cz: list[int] = []
        ce: list[int] = []
        cu: list[int] = []
        cv: list[int] = []
        cw: list[float] = []
        pw = self._pg.edge_w
        loops = np.nonzero(g.edge_u == g.edge_v)[0]
        for e in loops:
            cz.append(-1)
            ce.append(int(e))
            cu.append(int(g.edge_u[e]))
            cv.append(int(g.edge_u[e]))
            cw.append(float(pw[e]))
        for zi in range(len(self.fvs)):
            dist = self.dist[zi]
            depth = self.depth[zi]
            par = self.parent[zi]
            for e in range(g.m):
                u, v = int(g.edge_u[e]), int(g.edge_v[e])
                if u == v:
                    continue
                if not (np.isfinite(dist[u]) and np.isfinite(dist[v])):
                    continue
                if self.parent_eid[zi, u] == e or self.parent_eid[zi, v] == e:
                    continue  # tree arc of T_z: not a candidate chord
                if lca_filter and self._lca(par, depth, u, v) != int(self.fvs[zi]):
                    continue
                cz.append(zi)
                ce.append(e)
                cu.append(u)
                cv.append(v)
                cw.append(float(dist[u] + pw[e] + dist[v]))
        self.cand_z = np.asarray(cz, dtype=np.int64)
        self.cand_e = np.asarray(ce, dtype=np.int64)
        self.cand_u = np.asarray(cu, dtype=np.int64)
        self.cand_v = np.asarray(cv, dtype=np.int64)
        self.cand_w = np.asarray(cw, dtype=np.float64)
        self.cand_ep = self.ss.eprime_index[self.cand_e]
        self.order = np.argsort(self.cand_w, kind="stable")

    @staticmethod
    def _lca(par: np.ndarray, depth: np.ndarray, u: int, v: int) -> int:
        a, b = u, v
        da, db = int(depth[a]), int(depth[b])
        while da > db:
            a = int(par[a])
            da -= 1
        while db > da:
            b = int(par[b])
            db -= 1
        while a != b:
            a = int(par[a])
            b = int(par[b])
        return a

    # ------------------------------------------------------------------ #
    # Per-phase work units
    # ------------------------------------------------------------------ #

    def witness_edge_bits(self, s_packed: np.ndarray) -> np.ndarray:
        """Expand a packed witness into per-E'-index bits, padded so that
        index ``-1`` (tree edges of G, always orthogonal) reads as 0."""
        bits = gf2.unpack(s_packed, self.f).astype(np.uint8)
        return np.concatenate([bits, np.zeros(1, dtype=np.uint8)])

    def labels_for_tree(self, zi: int, s_pad: np.ndarray) -> np.ndarray:
        """Algorithm 3 for one tree ``T_z``: the two passes over ``T_z``.

        Pass 1 gathers the witness bit of each parent edge (``c_z``);
        pass 2 is a level-order prefix-xor producing ``l_z``.
        One call = one work unit of the heterogeneous label stage.
        """
        c = s_pad[self.parent_ep[zi]]
        labels = np.zeros(self.n, dtype=np.uint8)
        par = self.parent[zi]
        for level in self.levels[zi]:
            labels[level] = labels[par[level]] ^ c[level]
        return labels

    def compute_labels(self, s_pad: np.ndarray, parallel_map=None) -> np.ndarray:
        """Labels for all trees: ``(|Z|, n)`` uint8 matrix.

        The default path runs the flattened cross-tree level schedule (one
        vectorized gather/xor per depth).  ``parallel_map`` switches to
        per-tree work units instead (used when an executor wants to own
        the tree-level parallelism).
        """
        k = len(self.fvs)
        if k == 0:
            return np.zeros((0, self.n), dtype=np.uint8)
        if parallel_map is not None:
            rows = parallel_map(
                lambda zi: self.labels_for_tree(zi, s_pad), list(range(k))
            )
            return np.stack(rows)
        c = s_pad[self._flat_parent_ep]
        labels = np.zeros(k * self.n, dtype=np.uint8)
        for sel, par in self._flat_levels:
            labels[sel] = labels[par] ^ c[sel]
        return labels.reshape(k, self.n)

    def scan_predicate(self, labels: np.ndarray, s_pad: np.ndarray):
        """Vectorized O(1)-per-candidate orthogonality test over a batch."""

        def predicate(ids: np.ndarray) -> np.ndarray:
            z = self.cand_z[ids]
            se = s_pad[self.cand_ep[ids]]
            tree = z >= 0
            parity = se.copy()
            if tree.any():
                zt = z[tree]
                parity[tree] ^= (
                    labels[zt, self.cand_u[ids][tree]]
                    ^ labels[zt, self.cand_v[ids][tree]]
                )
            return parity == 1

        return predicate

    def reconstruct(self, cand_id: int) -> tuple[Cycle, np.ndarray]:
        """Selected candidate → (cycle with true weight, packed E' vector)."""
        e = int(self.cand_e[cand_id])
        zi = int(self.cand_z[cand_id])
        if zi < 0:
            support = np.asarray([e], dtype=np.int64)
        else:
            par = self.parent[zi]
            root = int(self.fvs[zi])
            walk = [e]
            for x in (int(self.cand_u[cand_id]), int(self.cand_v[cand_id])):
                cur = x
                while cur != root:
                    p = int(par[cur])
                    walk.append(self.parent_eid[zi, cur])
                    cur = p
            support = np.asarray(walk, dtype=np.int64)
        cyc = Cycle.from_multiset(
            self.graph, support, weight=None, z=int(self.fvs[zi]) if zi >= 0 else -1, e=e
        )
        return cyc, self.ss.restricted_vector(support)

    def update_witnesses(
        self, witnesses: np.ndarray, i: int, c_vec: np.ndarray, parallel_map=None
    ) -> int:
        """Steps 4–6 of Algorithm 2 on rows ``i+1 .. f-1``.

        Returns the number of witnesses flipped.  ``parallel_map``, when
        given, receives per-row-block closures (the per-thread /
        per-GPU-block split described in Section 3.3.2).
        """
        rest = witnesses[i + 1 :]
        if rest.size == 0:
            return 0
        _C_ORTHO.inc(len(rest))
        if parallel_map is None:
            odd = gf2.pivot_update(rest, c_vec, witnesses[i])
        else:
            nblocks = max(1, min(len(rest), 8))
            bounds = np.linspace(0, len(rest), nblocks + 1, dtype=int)
            parts = parallel_map(
                lambda se: gf2.dot_many(rest[se[0] : se[1]], c_vec),
                [(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])],
            )
            odd = np.concatenate(parts).astype(bool)
            gf2.xor_many(rest, odd, witnesses[i])
        flipped = int(odd.sum())
        _C_XORS.inc(flipped)
        return flipped

    def new_store(self) -> CandidateStore:
        """Fresh weight-ordered candidate store for one run."""
        return CandidateStore(self.order, block_size=self.block_size)


def mm_mcb(
    g: CSRGraph,
    lca_filter: bool = True,
    perturb: bool = True,
    block_size: int = 512,
    report: MMReport | None = None,
) -> list[Cycle]:
    """Sequential driver for the Mehlhorn–Michail pipeline."""
    t0 = time.perf_counter()
    ctx = MMContext(g, lca_filter=lca_filter, perturb=perturb, block_size=block_size)
    if ctx.f == 0:
        return []
    store = ctx.new_store()
    witnesses = gf2.identity(ctx.f)
    t1 = time.perf_counter()
    if report is not None:
        report.f = ctx.f
        report.n_fvs = len(ctx.fvs)
        report.n_candidates = len(ctx.cand_e)
        report.t_setup += t1 - t0

    cycles: list[Cycle] = []
    for i in range(ctx.f):
        _C_PHASES.inc()
        ta = time.perf_counter()
        with _span("mm.labels", cat="mcb", phase=i):
            s_pad = ctx.witness_edge_bits(witnesses[i])
            labels = ctx.compute_labels(s_pad)
        tb = time.perf_counter()
        with _span("mm.scan", cat="mcb", phase=i):
            cand = store.scan_and_remove(ctx.scan_predicate(labels, s_pad))
        tc = time.perf_counter()
        if cand is None:
            raise RuntimeError(
                "candidate family does not span the cycle space "
                "(disable lca_filter or report a bug)"
            )
        with _span("mm.reconstruct", cat="mcb", phase=i):
            cyc, c_vec = ctx.reconstruct(cand)
        td = time.perf_counter()
        assert gf2.dot(c_vec, witnesses[i]) == 1
        cycles.append(cyc)
        with _span("mm.update", cat="mcb", phase=i):
            ctx.update_witnesses(witnesses, i, c_vec)
        te = time.perf_counter()
        if report is not None:
            report.t_labels += tb - ta
            report.t_scan += tc - tb
            report.t_reconstruct += td - tc
            report.t_update += te - td
    return cycles
