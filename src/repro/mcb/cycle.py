"""Cycle representation shared by all MCB algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["Cycle"]


@dataclass(frozen=True)
class Cycle:
    """A GF(2) cycle-space element of a graph.

    ``edge_ids`` is the *support*: each edge appears exactly once (closed
    walks found by the signed-graph search are reduced mod 2 before being
    stored).  ``weight`` is the walk weight the algorithm accounted for —
    equal to the support weight for simple cycles.
    """

    edge_ids: np.ndarray
    weight: float
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    @staticmethod
    def from_multiset(g: CSRGraph, edge_ids: np.ndarray, weight: float | None = None, **meta) -> "Cycle":
        """Reduce an edge multiset mod 2 and build a cycle.

        With ``weight=None`` the support weight is used.
        """
        eids = np.asarray(edge_ids, dtype=np.int64)
        uniq, counts = np.unique(eids, return_counts=True)
        support = uniq[counts % 2 == 1]
        w = float(g.edge_w[support].sum()) if weight is None else float(weight)
        return Cycle(edge_ids=support, weight=w, meta=dict(meta))

    def support_weight(self, g: CSRGraph) -> float:
        """Total weight of the support edges."""
        return float(g.edge_w[self.edge_ids].sum())

    def is_valid_cycle(self, g: CSRGraph) -> bool:
        """Every vertex of the support has even degree (self-loops add 2)."""
        if self.edge_ids.size == 0:
            return False
        deg = np.zeros(g.n, dtype=np.int64)
        np.add.at(deg, g.edge_u[self.edge_ids], 1)
        np.add.at(deg, g.edge_v[self.edge_ids], 1)
        return bool(np.all(deg % 2 == 0))

    def vertex_sequence(self, g: CSRGraph) -> list[int]:
        """Walk the support as a closed vertex sequence.

        Only defined for connected, simple cycles (every support vertex of
        degree exactly 2, or a single self-loop); raises otherwise.
        """
        eids = self.edge_ids
        if eids.size == 1 and g.edge_u[eids[0]] == g.edge_v[eids[0]]:
            return [int(g.edge_u[eids[0]])]
        adj: dict[int, list[tuple[int, int]]] = {}
        for e in eids:
            u, v = g.edge_endpoints(int(e))
            adj.setdefault(u, []).append((v, int(e)))
            adj.setdefault(v, []).append((u, int(e)))
        if any(len(x) != 2 for x in adj.values()):
            raise ValueError("support is not a single simple cycle")
        start = int(g.edge_u[eids[0]])
        seq = [start]
        prev_edge = -1
        cur = start
        for _ in range(eids.size):
            nxt, e = next(
                (w, e) for w, e in adj[cur] if e != prev_edge
            )
            seq.append(nxt)
            prev_edge = e
            cur = nxt
        if seq[-1] != start:
            raise ValueError("support does not close into one cycle")
        return seq[:-1]

    def __len__(self) -> int:
        return int(self.edge_ids.size)
