"""Minimum cycle basis: ear-reduced pipeline, solvers, and verification."""

from . import gf2
from .candidate_store import CandidateStore, ScanStats
from .cycle import Cycle
from .depina import DePinaReport, depina_mcb
from .ear_mcb import EarMCBReport, minimum_cycle_basis
from .fvs import greedy_fvs, is_feedback_vertex_set
from .girth import shortest_cycle_through, weighted_girth
from .horton import horton_mcb, horton_set, perturbed_weights
from .isometric import filter_isometric, is_isometric, isometric_mcb
from .mehlhorn_michail import MMContext, MMReport, mm_mcb
from .signed_graph import build_signed_graph, min_odd_cycle
from .spanning import SpanningStructure, spanning_structure
from .verify import BasisReport, verify_cycle_basis

__all__ = [
    "gf2",
    "CandidateStore",
    "ScanStats",
    "Cycle",
    "DePinaReport",
    "depina_mcb",
    "EarMCBReport",
    "minimum_cycle_basis",
    "greedy_fvs",
    "is_feedback_vertex_set",
    "shortest_cycle_through",
    "weighted_girth",
    "horton_mcb",
    "horton_set",
    "perturbed_weights",
    "filter_isometric",
    "is_isometric",
    "isometric_mcb",
    "MMContext",
    "MMReport",
    "mm_mcb",
    "build_signed_graph",
    "min_odd_cycle",
    "SpanningStructure",
    "spanning_structure",
    "BasisReport",
    "verify_cycle_basis",
]
