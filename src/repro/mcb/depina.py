"""De Pina's minimum cycle basis algorithm (Algorithm 2, exact reference).

Maintains witness vectors ``S_1..S_f`` over E'; each phase finds the
lightest cycle non-orthogonal to ``S_i`` (signed-graph search) and xors
``S_i`` into every later witness still non-orthogonal to the found cycle.
Weight-exact without any tie-breaking assumptions, hence the trusted
reference the faster Mehlhorn–Michail implementation is tested against,
and the "Sequential" row of Table 2.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..obs import metrics as _metrics
from ..obs.trace import span as _span
from . import gf2
from .cycle import Cycle
from .fvs import greedy_fvs
from .signed_graph import min_odd_cycle
from .spanning import spanning_structure

__all__ = ["DePinaReport", "depina_mcb"]

_C_SEARCHES = _metrics.counter("mcb.depina.searches")
_C_XORS = _metrics.counter("mcb.witness_xors")
_C_ORTHO = _metrics.counter("mcb.orthogonality_checks")


@dataclass
class DePinaReport:
    """Phase timing/instrumentation of one de Pina run."""

    f: int = 0
    t_search: float = 0.0
    t_update: float = 0.0
    searches: int = 0
    extra: dict = field(default_factory=dict)


def depina_mcb(
    g: CSRGraph,
    roots: str = "fvs",
    report: DePinaReport | None = None,
) -> list[Cycle]:
    """Minimum cycle basis of ``g`` (multigraphs and self-loops included).

    ``roots`` selects the signed-graph source set: ``"fvs"`` (default,
    every cycle contains a feedback vertex) or ``"all"`` (the textbook
    every-vertex formulation).
    """
    ss = spanning_structure(g)
    f = ss.f
    if report is not None:
        report.f = f
    if f == 0:
        return []
    if roots == "fvs":
        root_ids = greedy_fvs(g)
        if root_ids.size == 0:  # forest would mean f == 0; defensive
            root_ids = np.arange(g.n)
    elif roots == "all":
        root_ids = np.arange(g.n)
    else:
        raise ValueError(f"unknown roots mode {roots!r}")

    # Witness matrix: row i is S_i, initialised to the standard basis.
    witnesses = gf2.identity(f)

    cycles: list[Cycle] = []
    for i in range(f):
        t0 = time.perf_counter()
        with _span("depina.search", cat="mcb", phase=i):
            s_bits = gf2.unpack(witnesses[i], f)
            cyc = min_odd_cycle(g, ss, s_bits, root_ids)
        _C_SEARCHES.inc()
        t1 = time.perf_counter()
        if cyc is None:  # pragma: no cover - S_i != 0 guarantees a cycle
            raise RuntimeError("no odd cycle found for a nonzero witness")
        cycles.append(cyc)
        c_vec = ss.restricted_vector(cyc.edge_ids)
        assert gf2.dot(c_vec, witnesses[i]) == 1, "selected cycle not odd"
        if i + 1 < f:
            # Steps 4-6 as one batched GF(2) sweep over the witness block.
            with _span("depina.update", cat="mcb", phase=i, rows=f - i - 1):
                odd = gf2.pivot_update(witnesses[i + 1 :], c_vec, witnesses[i])
            _C_ORTHO.inc(f - i - 1)
            _C_XORS.inc(int(odd.sum()))
            if os.environ.get("REPRO_CHECK_INVARIANTS"):
                # De Pina's loop invariant: after the update, every pending
                # witness is orthogonal to the cycle just selected — this is
                # what makes each later selection independent of the basis
                # so far (see repro.qa.invariants for the knob).
                for row in witnesses[i + 1 :]:
                    if gf2.dot(row, c_vec) != 0:
                        from ..qa.invariants import InvariantViolation

                        raise InvariantViolation(
                            f"witness not orthogonal to cycle {i} after update"
                        )
        t2 = time.perf_counter()
        if report is not None:
            report.t_search += t1 - t0
            report.t_update += t2 - t1
            report.searches += 1
    return cycles
