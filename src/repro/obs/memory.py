"""Per-phase memory accounting: tracemalloc spans + exact table-byte models.

The paper's headline Table 1 claim is about *memory*, not only speed: the
ear-reduced APSP oracle stores ``O(a² + Σᵢ nᵢ²)`` distance entries instead
of the dense ``O(n²)`` matrix.  This module makes that claim measurable:

* :func:`memory_profiling` / :func:`memory_span` — per-phase memory spans
  mirroring :mod:`repro.obs.trace`: each span records the tracemalloc
  current-allocation delta, the allocation *peak* inside the span
  (segmented so nested spans attribute peaks correctly), and the process
  peak RSS where the platform exposes it.  Disabled mode is the same
  null-singleton contract as tracing — one global read, no allocation.
* :func:`table1_bytes` — the exact byte model of the oracle's distance
  tables (``a²`` articulation table, ``Σ nᵢ²`` per-component tables, the
  ear-*reduced* variant, and the dense ``n²`` matrix) computed from the
  decompositions alone, so it scales to full-size Table 1 stand-ins.
* :func:`measured_component_bytes` — the same split measured off an
  actually-built :class:`~repro.apsp.composition.ComponentTables` (real
  ``ndarray.nbytes``), which the pipeline drivers publish as
  ``memory.apsp.*`` gauges.

``peak_rss_bytes`` returns ``None`` rather than guessing on platforms
without ``resource`` (Windows); everything else is pure stdlib.
"""

from __future__ import annotations

import sys
import threading
import tracemalloc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from . import metrics as _metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..apsp.composition import ComponentTables
    from ..graph.csr import CSRGraph

try:  # pragma: no cover - import guard exercised only on Windows
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

__all__ = [
    "MemSpan",
    "MemoryProfile",
    "memory_profiling",
    "memory_span",
    "memory_profiling_enabled",
    "current_memory_profile",
    "peak_rss_bytes",
    "Table1Bytes",
    "table1_bytes",
    "measured_component_bytes",
    "format_bytes",
]


def peak_rss_bytes() -> int | None:
    """Process peak RSS in bytes, or ``None`` where unavailable.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are
    normalised to bytes.  The value is a high-water mark for the whole
    process lifetime — useful as an upper envelope per phase, not a delta.
    """
    if _resource is None:
        return None
    rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(rss)
    return int(rss) * 1024


@dataclass(frozen=True)
class MemSpan:
    """One finished memory span (allocation accounting over an interval)."""

    name: str
    alloc_before: int  # tracemalloc current bytes at entry
    alloc_after: int   # tracemalloc current bytes at exit
    peak: int          # peak traced bytes observed inside the span
    rss_peak: int | None  # process peak RSS at exit (whole-process high-water)

    @property
    def delta(self) -> int:
        """Net traced bytes retained across the span (can be negative)."""
        return self.alloc_after - self.alloc_before


class MemoryProfile:
    """Accumulates finished :class:`MemSpan` records; thread-safe."""

    def __init__(self) -> None:
        self.spans: list[MemSpan] = []
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- peak segmentation --------------------------------------------- #
    # tracemalloc exposes one process-global peak, reset with reset_peak().
    # To attribute peaks per span, every reset point first folds the
    # prior segment's peak into the enclosing frame, so an outer span's
    # recorded peak is max(own segments, every child's peak).

    def _stack(self) -> list[int]:
        st = getattr(self._tls, "stack", None)
        if st is None:
            st = self._tls.stack = []
        return st

    def _enter(self) -> int:
        cur, prior_peak = tracemalloc.get_traced_memory()
        st = self._stack()
        if st:
            st[-1] = max(st[-1], prior_peak)
        tracemalloc.reset_peak()
        st.append(0)
        return cur

    def _exit(self, name: str, alloc_before: int) -> MemSpan:
        cur, own_peak = tracemalloc.get_traced_memory()
        st = self._stack()
        child_peak = st.pop() if st else 0
        peak = max(own_peak, child_peak)
        tracemalloc.reset_peak()
        if st:
            st[-1] = max(st[-1], peak)
        sp = MemSpan(
            name=name,
            alloc_before=alloc_before,
            alloc_after=cur,
            peak=peak,
            rss_peak=peak_rss_bytes(),
        )
        with self._lock:
            self.spans.append(sp)
        return sp

    # -- views --------------------------------------------------------- #

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    def by_name(self) -> dict[str, list[MemSpan]]:
        out: dict[str, list[MemSpan]] = {}
        with self._lock:
            for sp in self.spans:
                out.setdefault(sp.name, []).append(sp)
        return out

    def as_dict(self) -> dict:
        """JSON-ready per-name aggregate: count, summed delta, max peak."""
        out: dict = {}
        for name, spans in sorted(self.by_name().items()):
            rss = [sp.rss_peak for sp in spans if sp.rss_peak is not None]
            out[name] = {
                "count": len(spans),
                "delta_bytes": sum(sp.delta for sp in spans),
                "peak_bytes": max(sp.peak for sp in spans),
                "rss_peak_bytes": max(rss) if rss else None,
            }
        return out


class _NullMemSpan:
    """Shared no-op returned while memory profiling is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullMemSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_MEM_SPAN = _NullMemSpan()


class _LiveMemSpan:
    __slots__ = ("_prof", "_name", "_before")

    def __init__(self, prof: MemoryProfile, name: str) -> None:
        self._prof = prof
        self._name = name
        self._before = 0

    def __enter__(self) -> "_LiveMemSpan":
        self._before = self._prof._enter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._prof._exit(self._name, self._before)
        return False


_profile: MemoryProfile | None = None
_profile_lock = threading.Lock()


def current_memory_profile() -> MemoryProfile | None:
    """The active profile, or ``None`` while memory profiling is disabled."""
    return _profile


def memory_profiling_enabled() -> bool:
    return _profile is not None


def memory_span(name: str):
    """Start a memory span; the same hot-path contract as ``obs.span``.

    Disabled (no active :func:`memory_profiling` block): one global read,
    one comparison, the shared null singleton.  Enabled: tracemalloc
    current/peak accounting plus peak RSS at exit.
    """
    prof = _profile
    if prof is None:
        return _NULL_MEM_SPAN
    return _LiveMemSpan(prof, name)


class memory_profiling:
    """Install a fresh :class:`MemoryProfile` for a ``with`` block.

    Starts ``tracemalloc`` if it is not already tracing and stops it again
    on exit only if this block started it, so nesting inside an external
    tracemalloc session is safe.  Nestable like ``obs.tracing``; yields
    the profile, which stays readable after the block closes.
    """

    def __init__(self, profile: MemoryProfile | None = None) -> None:
        self.profile = profile if profile is not None else MemoryProfile()
        self._prev: MemoryProfile | None = None
        self._started_tracing = False

    def __enter__(self) -> MemoryProfile:
        global _profile
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        with _profile_lock:
            self._prev = _profile
            _profile = self.profile
        return self.profile

    def __exit__(self, *exc) -> bool:
        global _profile
        with _profile_lock:
            _profile = self._prev
        if self._started_tracing:
            tracemalloc.stop()
        return False


# --------------------------------------------------------------------- #
# Exact byte accounting of the paper's distance tables (Table 1)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Table1Bytes:
    """Exact byte model of every distance-table layout in Table 1.

    All figures count *distance entries × dtype_bytes*; ``reduced_bytes``
    additionally counts the three per-removed-vertex anchor scalars
    (``left/right/offset``) the reduced oracle needs to answer queries for
    ear-removed vertices on the fly (Section 2.1.3).
    """

    name: str
    n: int
    m: int
    n_bcc: int
    n_articulation: int
    ap_bytes: int         # a² — the articulation-point table
    component_bytes: int  # Σ nᵢ² — per-BCC full tables
    reduced_bytes: int    # Σ (nᵢʳ² + 3·removedᵢ) — ear-reduced tables
    dense_bytes: int      # n² — the baseline full matrix
    dtype_bytes: int = 8

    @property
    def oracle_bytes(self) -> int:
        """The ``a² + Σ nᵢ²`` storage of the per-BCC oracle."""
        return self.ap_bytes + self.component_bytes

    @property
    def reduced_oracle_bytes(self) -> int:
        """Oracle storage when each component keeps only reduced tables."""
        return self.ap_bytes + self.reduced_bytes

    @property
    def saving_factor(self) -> float:
        return self.dense_bytes / self.oracle_bytes if self.oracle_bytes else float("inf")

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "n": self.n,
            "m": self.m,
            "n_bcc": self.n_bcc,
            "n_articulation": self.n_articulation,
            "ap_bytes": self.ap_bytes,
            "component_bytes": self.component_bytes,
            "reduced_bytes": self.reduced_bytes,
            "dense_bytes": self.dense_bytes,
            "oracle_bytes": self.oracle_bytes,
            "reduced_oracle_bytes": self.reduced_oracle_bytes,
            "dtype_bytes": self.dtype_bytes,
        }


def table1_bytes(g: "CSRGraph", name: str = "", dtype_bytes: int = 8) -> Table1Bytes:
    """Compute every Table 1 byte column from the decompositions alone.

    Only biconnected components + degree-2 reduction run (near-linear);
    no distance tables are built, so this is safe at full dataset scale.
    ``dtype_bytes`` defaults to 8 to match the float64 tables the solvers
    actually produce (the paper's Table 1 uses 4-byte entries).
    """
    from ..decomposition.biconnected import biconnected_components
    from ..decomposition.reduce import reduce_graph

    bcc = biconnected_components(g)
    comp_entries = 0
    red_entries = 0
    for cid, verts in enumerate(bcc.component_vertices):
        comp_entries += int(verts.size) ** 2
        sub, _ = bcc.component_subgraph(g, cid)
        red = reduce_graph(sub, keep=bcc.component_keep_mask(g, cid))
        red_entries += int(red.graph.n) ** 2 + 3 * red.n_removed
    a = int(bcc.is_articulation.sum())
    return Table1Bytes(
        name=name,
        n=g.n,
        m=g.m,
        n_bcc=bcc.count,
        n_articulation=a,
        ap_bytes=a * a * dtype_bytes,
        component_bytes=comp_entries * dtype_bytes,
        reduced_bytes=red_entries * dtype_bytes,
        dense_bytes=g.n * g.n * dtype_bytes,
        dtype_bytes=dtype_bytes,
    )


def measured_component_bytes(ct: "ComponentTables") -> dict:
    """Actual ``ndarray.nbytes`` held by a built component-table set.

    This is the *measured* counterpart of :func:`table1_bytes`: real
    storage of the per-component tables plus the articulation-point
    matrix, as built by :func:`repro.apsp.composition.build_component_tables`.
    """
    comp = sum(int(t.nbytes) for t in ct.tables)
    ap = int(ct.ap_matrix.nbytes)
    return {
        "component_table_bytes": comp,
        "ap_table_bytes": ap,
        "total_bytes": comp + ap,
    }


def publish_apsp_table_gauges(ct: "ComponentTables", n: int) -> dict:
    """Set the ``memory.apsp.*`` gauges from a built table set.

    Returns the measured dict for callers that also want the numbers.
    The dense figure uses the same 8-byte entries the tables hold, so the
    reduced-vs-dense comparison is entry-for-entry fair.
    """
    meas = measured_component_bytes(ct)
    _metrics.gauge("memory.apsp.component_table_bytes").set(meas["component_table_bytes"])
    _metrics.gauge("memory.apsp.ap_table_bytes").set(meas["ap_table_bytes"])
    _metrics.gauge("memory.apsp.oracle_bytes").set(meas["total_bytes"])
    _metrics.gauge("memory.apsp.dense_bytes").set(n * n * 8)
    return meas


def format_bytes(b: float) -> str:
    """Human-readable byte count (``1.5 KiB``, ``3.2 MiB``, …)."""
    b = float(b)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(b) < 1024.0 or unit == "GiB":
            return f"{b:.0f} {unit}" if unit == "B" else f"{b:.2f} {unit}"
        b /= 1024.0
    return f"{b:.2f} GiB"  # pragma: no cover - unreachable
