"""Chrome ``trace_event`` export and the human-readable summary.

The Chrome trace format (the JSON consumed by ``chrome://tracing`` and
https://ui.perfetto.dev) wants complete events (``"ph": "X"``) with
microsecond timestamps plus optional metadata events naming each
process/thread track.  Span timestamps are re-based to the collector's
origin so traces start near zero, and every distinct ``(pid, tid)`` pair
— including worker pids ingested across the pool boundary — becomes its
own named track.

:func:`validate_chrome_trace` is the schema check the test-suite (and any
downstream consumer) runs against emitted files; :func:`summary` renders
the per-phase wall-time table the paper's Section 2.4 phase accounting
corresponds to, plus the counter table from :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hetero.timing import VirtualClock
    from .trace import TraceCollector

__all__ = [
    "VIRTUAL_PID",
    "chrome_trace",
    "virtual_clock_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "self_times",
    "summary",
]

#: Synthetic pid under which simulated-platform device clocks render as
#: tracks.  Far above any real pid (kernel pid_max is < 2^22), so virtual
#: tracks can never collide with the stitched worker-pid tracks.
VIRTUAL_PID = 9_999_999


def virtual_clock_events(
    clocks: "dict[str, VirtualClock | list]", pid: int = VIRTUAL_PID
) -> list[dict]:
    """Per-device Chrome tracks from simulated-platform virtual clocks.

    ``clocks`` maps device name to a :class:`~repro.hetero.timing.
    VirtualClock` (recorded with ``record_samples=True``) or directly to a
    list of :class:`~repro.hetero.timing.ClockSample`.  Each device
    becomes a thread track under one synthetic "virtual platform"
    process, every accounted interval a complete event — so a
    trace-replay's queue dynamics (Figures 5/6) render next to the real
    pid tracks of the same Chrome trace.  Virtual seconds map to trace
    microseconds 1:1 starting at zero.
    """
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": "virtual platform"}}
    ]
    for tid, (name, clk) in enumerate(sorted(clocks.items())):
        samples = getattr(clk, "samples", clk)
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": f"virtual {name}"}}
        )
        for s in samples:
            events.append(
                {
                    "name": s.label or name,
                    "cat": "virtual",
                    "ph": "X",
                    "ts": s.start * 1e6,
                    "dur": s.duration * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": {"device": name},
                }
            )
    return events


def chrome_trace(collector: "TraceCollector", clocks: dict | None = None) -> dict:
    """The collector's spans as a Chrome ``trace_event`` JSON object.

    ``clocks`` optionally merges simulated-platform device tracks (see
    :func:`virtual_clock_events`) into the same document, so one trace
    carries both the real run and its virtual-platform replay.
    """
    origin = collector.t_origin_ns
    events: list[dict] = []
    tracks: set[tuple[int, int]] = set()
    pids: set[int] = set()
    for s in sorted(collector.spans, key=lambda s: s.start_ns):
        tracks.add((s.pid, s.tid))
        pids.add(s.pid)
        ev = {
            "name": s.name,
            "cat": s.cat,
            "ph": "X",
            "ts": (s.start_ns - origin) / 1e3,  # microseconds
            "dur": s.dur_ns / 1e3,
            "pid": s.pid,
            "tid": s.tid,
        }
        if s.args:
            ev["args"] = s.args
        events.append(ev)
    meta: list[dict] = []
    self_pid = os.getpid()
    for pid in sorted(pids):
        label = "repro (parent)" if pid == self_pid else f"repro worker {pid}"
        meta.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": label}}
        )
    for pid, tid in sorted(tracks):
        meta.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": f"tid {tid}"}}
        )
    virtual = virtual_clock_events(clocks) if clocks else []
    return {"traceEvents": meta + events + virtual, "displayTimeUnit": "ms"}


def write_chrome_trace(
    collector: "TraceCollector", path: str, clocks: dict | None = None
) -> str:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(collector, clocks=clocks), fh, indent=1)
        fh.write("\n")
    return path


def validate_chrome_trace(doc: dict) -> list[str]:
    """Schema-check a trace document; returns a list of problems (empty = valid).

    Checks the subset of the ``trace_event`` spec the viewers actually
    require: a ``traceEvents`` array, per-event ``name``/``ph``/``pid``/
    ``tid``, non-negative numeric ``ts``/``dur`` on complete events, and
    JSON-serializable ``args``.
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        ph = ev.get("ph")
        if ph not in {"X", "M", "B", "E", "i", "C"}:
            problems.append(f"event {i}: unknown phase {ph!r}")
        if ph == "X":
            for key in ("ts", "dur"):
                v = ev.get(key)
                if not isinstance(v, (int, float)) or v < 0:
                    problems.append(f"event {i}: bad {key}={v!r}")
        if "args" in ev:
            try:
                json.dumps(ev["args"])
            except TypeError:
                problems.append(f"event {i}: args not JSON-serializable")
    return problems


def _union_len_ns(intervals: "list[tuple[int, int]]") -> int:
    """Total length of the union of (possibly overlapping) intervals."""
    total = 0
    hi: int | None = None
    for lo, end in sorted(intervals):
        if hi is None or lo > hi:
            total += end - lo
            hi = end
        elif end > hi:
            total += end - hi
            hi = end
    return total


def self_times(collector: "TraceCollector") -> "dict[str, tuple[int, int]]":
    """Per span name: ``(count, self_ns)`` — exclusive time over the tree.

    Self time is a span's duration minus the *union* of its children's
    intervals (clipped to the span).  Union, not sum: the cross-process
    chunk spans stitched under a dispatch bracket overlap in time, and a
    plain subtraction would push the dispatch's self time negative.
    """
    out: dict[str, tuple[int, int]] = {}

    def visit(node: dict) -> None:
        s = node["span"]
        end = s.start_ns + s.dur_ns
        covered = _union_len_ns(
            [
                (
                    max(c["span"].start_ns, s.start_ns),
                    min(c["span"].start_ns + c["span"].dur_ns, end),
                )
                for c in node["children"]
            ]
        )
        cnt, tot = out.get(s.name, (0, 0))
        out[s.name] = (cnt + 1, tot + max(0, s.dur_ns - covered))
        for c in node["children"]:
            visit(c)

    for root in collector.span_tree():
        visit(root)
    return out


def summary(
    collector: "TraceCollector",
    metrics: dict | None = None,
    top_level_only: bool = True,
) -> str:
    """Per-phase wall/self-time table plus (optionally) a counter table.

    ``top_level_only`` aggregates root spans of the span tree — the
    preprocess/process/post-process stages of the pipeline drivers — so
    percentages add up to the traced wall time rather than double-counting
    nested children.  The ``self (s)`` column is exclusive time (children
    removed; see :func:`self_times`), so a phase that spends everything in
    nested spans shows near-zero self.  Pass ``metrics=obs.snapshot()`` to
    append counters.
    """
    from .trace import Span  # noqa: F401 - documents the input type

    rows: dict[str, tuple[int, int]] = {}  # name -> (count, total_ns)
    if top_level_only:
        spans = [node["span"] for node in collector.span_tree()]
    else:
        spans = list(collector.spans)
    for s in spans:
        cnt, tot = rows.get(s.name, (0, 0))
        rows[s.name] = (cnt + 1, tot + s.dur_ns)
    selfs = self_times(collector)
    total_ns = sum(t for _, t in rows.values())
    lines: list[str] = []
    title = "span" if not top_level_only else "phase"
    lines.append(
        f"{title:<28} {'count':>7} {'wall (s)':>12} {'self (s)':>12} "
        f"{'% total':>8}"
    )
    lines.append("-" * 71)
    for name, (cnt, tot) in sorted(rows.items(), key=lambda kv: -kv[1][1]):
        pct = 100.0 * tot / total_ns if total_ns else 0.0
        self_ns = selfs.get(name, (0, 0))[1]
        lines.append(
            f"{name:<28} {cnt:>7} {tot / 1e9:>12.6f} {self_ns / 1e9:>12.6f} "
            f"{pct:>7.1f}%"
        )
    lines.append("-" * 71)
    lines.append(
        f"{'total':<28} {'':>7} {total_ns / 1e9:>12.6f} {'':>12} {'100.0%':>8}"
    )
    if metrics:
        lines.append("")
        lines.append(f"{'metric':<44} {'value':>12}")
        lines.append("-" * 58)
        for name, val in metrics.items():
            if isinstance(val, dict):  # histogram
                val = (
                    f"n={val['count']} sum={val['sum']:.6g}"
                    if val.get("count")
                    else "n=0"
                )
                lines.append(f"{name:<44} {val:>12}")
            elif isinstance(val, float):
                lines.append(f"{name:<44} {val:>12.4f}")
            else:
                lines.append(f"{name:<44} {val:>12}")
    return "\n".join(lines)
