"""``repro.obs`` — unified tracing + metrics for the whole pipeline.

The paper's argument is *phase accounting*: every speedup claim is a
preprocess / process / post-process split (Section 2.4, Figures 2/5/6).
This package makes that accounting first-class for the reproduction:

* :mod:`repro.obs.trace` — nested wall-clock spans with a thread-local
  stack, exported as span trees, JSON, or Chrome ``trace_event`` files
  that open directly in ``chrome://tracing`` / Perfetto.  Disabled by
  default; the guarded no-op path costs one module-global read per span.
* :mod:`repro.obs.metrics` — process-wide named counters / gauges /
  histograms with a snapshot/diff API.  The hot paths (adjacency cache,
  chunk dispatch, witness updates, invariant checks) increment counters
  unconditionally — integer adds are cheap enough to always stay on.
* :mod:`repro.obs.export` — Chrome-trace serialization and the
  ``summary()`` pretty-printer (per-phase wall time, % of total, counter
  table).
* :mod:`repro.obs.memory` — per-phase memory spans (tracemalloc
  current/peak + peak RSS) and the exact byte accounting behind the
  paper's Table 1 (``a² + Σ nᵢ²`` vs dense ``n²``).
* :mod:`repro.obs.ledger` — the append-only JSONL run database: every
  benchmark run stamped with git SHA, host fingerprint, knobs, per-phase
  times, counters, and memory stats.
* :mod:`repro.obs.regress` — the noise-aware regression gate over the
  ledger (median + MAD bands, per-phase attribution, wider tail-latency
  bands) plus the Chrome-trace differ; surfaced as ``repro-bench regress``.
* :mod:`repro.obs.slo` — latency/jitter distributions (p50…p999, IQR,
  deadline misses) extracted from merged event streams and judged
  against declared SLO budgets; surfaced as ``repro-bench slo`` and the
  scenario harness of :mod:`repro.scenarios`.
* :mod:`repro.obs.provenance` — per-query explain records for the
  distance-oracle serving path (pair class, component, boundary APs,
  resolving formula), captured bit-identically alongside ``query_many``.
* :mod:`repro.obs.sampler` — zero-dependency continuous profiling: a
  thread-based stack sampler with collapsed-stack (flamegraph) export,
  armed via ``REPRO_SAMPLER`` / ``repro-bench profile --sample-hz``.
* :mod:`repro.obs.critpath` — offline critical-path attribution over a
  recorded trace: the span-DAG (causal dispatch/chunk links included),
  the longest causally-ordered chain with per-category attribution,
  inclusive-vs-self rollups, per-worker straggler stats, and
  Amdahl-style what-if estimates; surfaced as ``repro-bench critpath``
  and the report's "critical path & stragglers" section.

Enable tracing with the ``REPRO_TRACE`` environment variable (``1`` to
collect, a ``*.json`` path to also write a Chrome trace at process exit)
or programmatically::

    from repro import obs

    with obs.tracing() as tr:
        ear_apsp_full(g)
    tr.write_chrome("trace.json")
    print(obs.summary(tr))

See ``docs/OBSERVABILITY.md`` for span naming conventions and how to
open the traces in Perfetto.
"""

from __future__ import annotations

from .events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    EventSink,
    current_sink,
    default_events_dir,
    emit,
    emitting,
    events_to,
)
from .events import enabled as events_enabled
from .critpath import (
    CRITPATH_SCHEMA_VERSION,
    CritPathResult,
    analyze_chrome,
    analyze_collector,
    validate_critpath_doc,
)
from .critpath import render_text as render_critpath
from .export import (
    VIRTUAL_PID,
    chrome_trace,
    summary,
    validate_chrome_trace,
    virtual_clock_events,
    write_chrome_trace,
)
from .ledger import (
    SCHEMA_VERSION,
    Ledger,
    LedgerError,
    RunRecord,
    default_ledger_path,
    git_sha,
    host_fingerprint,
    repro_knobs,
)
from .memory import (
    MemoryProfile,
    MemSpan,
    Table1Bytes,
    current_memory_profile,
    format_bytes,
    measured_component_bytes,
    memory_profiling,
    memory_profiling_enabled,
    memory_span,
    peak_rss_bytes,
    table1_bytes,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    metrics_diff,
    registry,
    reset_metrics,
    snapshot,
)
from .regress import (
    PhaseVerdict,
    RegressionReport,
    compare,
    diff_chrome_traces,
    extract_phases,
    is_higher_better_phase,
    is_tail_phase,
    measure_profile_phases,
    phase_totals,
)
from .provenance import (
    PAIR_CLASSES,
    RESOLVER_NAMES,
    BatchProvenance,
    QueryProvenance,
)
from .report import REPORT_SECTIONS, build_report, validate_report, write_report
from .sampler import (
    DEFAULT_HZ,
    DEFAULT_PROFILE_DIR,
    StackSampler,
    active_sampler,
    parse_collapsed,
    read_profile,
    sampling_to,
    top_stacks,
)
from .slo import (
    EXIT_EMPTY_STREAM,
    EXIT_NO_DATA,
    EXIT_OK,
    EXIT_VIOLATED,
    Exemplar,
    LatencyStats,
    SLOBudget,
    SLOReport,
    SLOVerdict,
    evaluate,
    extract_exemplars,
    extract_latencies,
    parse_budgets,
    percentile,
    slo_from_events,
)
from .trace import (
    Span,
    TraceCollector,
    current_collector,
    span,
    tracing,
    tracing_enabled,
)
from .watch import (
    Watchdog,
    empty_stream_hint,
    heartbeats_from_events,
    render_status,
    resolve_stall_after,
)

__all__ = [
    # trace
    "Span",
    "TraceCollector",
    "current_collector",
    "span",
    "tracing",
    "tracing_enabled",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "metrics_diff",
    "registry",
    "reset_metrics",
    "snapshot",
    # events
    "EVENT_SCHEMA_VERSION",
    "EventLog",
    "EventSink",
    "current_sink",
    "default_events_dir",
    "emit",
    "emitting",
    "events_enabled",
    "events_to",
    # watch
    "Watchdog",
    "empty_stream_hint",
    "heartbeats_from_events",
    "render_status",
    "resolve_stall_after",
    # slo
    "EXIT_EMPTY_STREAM",
    "EXIT_NO_DATA",
    "EXIT_OK",
    "EXIT_VIOLATED",
    "Exemplar",
    "LatencyStats",
    "SLOBudget",
    "SLOReport",
    "SLOVerdict",
    "evaluate",
    "extract_exemplars",
    "extract_latencies",
    "parse_budgets",
    "percentile",
    "slo_from_events",
    # provenance
    "PAIR_CLASSES",
    "RESOLVER_NAMES",
    "BatchProvenance",
    "QueryProvenance",
    # sampler
    "DEFAULT_HZ",
    "DEFAULT_PROFILE_DIR",
    "StackSampler",
    "active_sampler",
    "parse_collapsed",
    "read_profile",
    "sampling_to",
    "top_stacks",
    # report
    "REPORT_SECTIONS",
    "build_report",
    "validate_report",
    "write_report",
    # export
    "VIRTUAL_PID",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "virtual_clock_events",
    "summary",
    # memory
    "MemSpan",
    "MemoryProfile",
    "memory_profiling",
    "memory_span",
    "memory_profiling_enabled",
    "current_memory_profile",
    "peak_rss_bytes",
    "Table1Bytes",
    "table1_bytes",
    "measured_component_bytes",
    "format_bytes",
    # ledger
    "SCHEMA_VERSION",
    "Ledger",
    "LedgerError",
    "RunRecord",
    "default_ledger_path",
    "git_sha",
    "host_fingerprint",
    "repro_knobs",
    # regress
    "PhaseVerdict",
    "RegressionReport",
    "compare",
    "diff_chrome_traces",
    "extract_phases",
    "is_higher_better_phase",
    "is_tail_phase",
    "measure_profile_phases",
    "phase_totals",
    # critpath
    "CRITPATH_SCHEMA_VERSION",
    "CritPathResult",
    "analyze_chrome",
    "analyze_collector",
    "render_critpath",
    "validate_critpath_doc",
]
