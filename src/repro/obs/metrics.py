"""Process-wide named counters, gauges, and histograms.

A single :class:`MetricsRegistry` instance backs the module-level helpers;
instruments are created on first use and live for the process (the usual
Prometheus-style model).  The increments on the pipeline's hot paths —
adjacency-cache hits, chunk dispatches, witness xors, invariant checks —
are unconditional: an integer add through a preresolved instrument is far
below the cost of the work it counts, so unlike spans there is no
enable/disable knob to get wrong.

:func:`snapshot` returns a plain ``{name: value}`` dict (histograms as
``{count, sum, min, max}`` sub-dicts) suitable for JSON reports;
:func:`metrics_diff` subtracts two snapshots so a benchmark can report
exactly the activity of its own window.
"""

from __future__ import annotations

import math
import os
import random
import threading
import zlib

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "metrics_diff",
    "reset_metrics",
]


class Counter:
    """Monotonically increasing integer (resettable only via the registry)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name}: cannot add negative {n}")
        self.value += n


class Gauge:
    """Last-write-wins float (utilisation fractions, pool sizes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)


class Histogram:
    """Streaming count / sum / min / max of observed values.

    **Retention-cap semantics.**  The first :data:`RETAIN_CAP`
    observations are retained verbatim, so :meth:`percentile` answers
    exactly.  Beyond the cap, the aggregates (count/sum/min/max/mean)
    stay exact while the retained set switches to *reservoir sampling*
    (Vitter's Algorithm R): each subsequent observation replaces a
    random retained sample with probability ``RETAIN_CAP / count``, so
    the reservoir remains a uniform sample of the whole stream and
    :meth:`percentile` stays an unbiased estimate of the true tail —
    rather than silently describing only the first 4096 observations.
    The reservoir's RNG is seeded from ``REPRO_SEED`` and the instrument
    name, so runs with a pinned seed retain bit-identical samples.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "samples", "_rng")

    #: Retention cap: exact percentiles below it, uniform reservoir above.
    RETAIN_CAP = 4096
    #: Backwards-compatible alias for the cap's historical name.
    MAX_SAMPLES = RETAIN_CAP

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: list[float] = []
        self._rng: random.Random | None = None  # armed at first overflow

    def _reservoir_rng(self) -> random.Random:
        if self._rng is None:
            seed = int(os.environ.get("REPRO_SEED", "0") or "0")
            self._rng = random.Random((seed << 32) ^ zlib.crc32(self.name.encode()))
        return self._rng

    def observe(self, v: float) -> None:
        v = float(v)
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if len(self.samples) < self.RETAIN_CAP:
            self.samples.append(v)
        else:
            j = self._reservoir_rng().randrange(self.count)
            if j < self.RETAIN_CAP:
                self.samples[j] = v

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0–100) with linear interpolation.

        A single sample answers every ``p`` with itself; all-equal samples
        answer with the common value.  Raises :class:`ValueError` for an
        empty histogram or ``p`` outside [0, 100].
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p!r} outside [0, 100]")
        if not self.samples:
            raise ValueError(f"histogram {self.name!r} has no samples")
        ordered = sorted(self.samples)
        rank = (len(ordered) - 1) * (p / 100.0)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Name → instrument map with snapshot/diff/reset.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name with a different kind raises, catching
    copy-paste instrumentation mistakes early.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is not None:
            if not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self, prefix: str = "") -> dict:
        """``{name: value}`` for every instrument (histograms as dicts)."""
        with self._lock:
            items = list(self._instruments.items())
        out: dict = {}
        for name, inst in sorted(items):
            if prefix and not name.startswith(prefix):
                continue
            out[name] = inst.as_dict() if isinstance(inst, Histogram) else inst.value
        return out

    def reset(self) -> None:
        """Zero every instrument (the instruments themselves survive)."""
        with self._lock:
            for inst in self._instruments.values():
                if isinstance(inst, Counter):
                    inst.value = 0
                elif isinstance(inst, Gauge):
                    inst.value = 0.0
                else:
                    inst.count, inst.sum = 0, 0.0
                    inst.min, inst.max = math.inf, -math.inf
                    inst.samples.clear()
                    inst._rng = None  # re-derive the reservoir seed next overflow


def metrics_diff(before: dict, after: dict) -> dict:
    """Activity between two :func:`snapshot` calls.

    Counters subtract; gauges report the ``after`` value; histograms
    subtract count/sum (min/max are window-insensitive and pass through
    from ``after``).  Instruments absent from ``before`` count from zero.
    """
    out: dict = {}
    for name, val in after.items():
        prev = before.get(name)
        if isinstance(val, dict):
            pc = prev.get("count", 0) if isinstance(prev, dict) else 0
            ps = prev.get("sum", 0.0) if isinstance(prev, dict) else 0.0
            out[name] = {**val, "count": val["count"] - pc, "sum": val["sum"] - ps}
        elif isinstance(prev, (int, float)):
            out[name] = val - prev if isinstance(val, int) else val
        else:
            out[name] = val
    return out


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry backing the module helpers."""
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return _REGISTRY.histogram(name)


def snapshot(prefix: str = "") -> dict:
    return _REGISTRY.snapshot(prefix)


def reset_metrics() -> None:
    _REGISTRY.reset()
