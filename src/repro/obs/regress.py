"""Noise-aware regression gate over the run ledger and bench baselines.

Benchmark times on shared CI hosts are noisy; a naive "candidate slower
than baseline" comparison fires constantly.  The gate here only confirms
a regression when the candidate phase time clears **both** bands:

* a *relative* band — ``candidate > median(history) × (1 + rel_tol)``;
* a *MAD* band — ``candidate > median + mad_k × MAD(history)`` (median
  absolute deviation; with a single-sample history MAD is 0 and the
  relative band alone decides).

Phases below an absolute noise floor (``min_seconds``) are never flagged:
sub-millisecond timings are scheduler lottery, not signal.  Every verdict
carries per-phase attribution — the terminal report says *which phase*
moved and by how much, and :func:`diff_chrome_traces` answers the same
question for two Chrome ``trace_event`` files span-name by span-name.

Inputs are deliberately duck-typed: a baseline can be a ledger history
(``{phase: [seconds, ...]}``), a single :class:`~repro.obs.ledger.RunRecord`
dict, or a legacy ``BENCH_BASELINE.json`` document (see
:func:`extract_phases`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "median",
    "mad",
    "is_tail_phase",
    "PhaseVerdict",
    "RegressionReport",
    "compare",
    "extract_phases",
    "diff_chrome_traces",
    "measure_profile_phases",
    "phase_totals",
    "TAIL_MARKERS",
    "HIGHER_IS_BETTER_MARKERS",
    "is_higher_better_phase",
]

#: Phases faster than this (both sides) are noise-floor exempt.
DEFAULT_MIN_SECONDS = 1e-3
DEFAULT_REL_TOL = 0.25
DEFAULT_MAD_K = 5.0
#: Wider relative band for tail-latency phases: percentile estimates of a
#: distribution are noisier than its median, so p99/jitter drift needs a
#: larger move before the gate calls it a confirmed regression.
DEFAULT_TAIL_REL_TOL = 0.75

#: Phase-name markers identifying tail-latency measurements.  Scenario
#: records ledger their percentile stats under names like
#: ``scenario.<name>.query.p99``, so matching on these suffix markers is
#: how the gate distinguishes tail phases from median/wall phases.
TAIL_MARKERS = (".p90", ".p99", ".p999", ".jitter")


#: Phase-name markers identifying metrics where *bigger* is better —
#: efficiency ratios and speedups, not wall times.  These gate in the
#: inverted direction: a regression is the candidate falling *below*
#: ``median × (1 − tol)`` and ``median − mad_k × MAD``; a higher value is
#: an improvement, never a failure.
HIGHER_IS_BETTER_MARKERS = (".parallel_efficiency", ".speedup", ".utilisation")


def is_tail_phase(name: str) -> bool:
    """Whether a ledger phase name carries a tail-latency marker."""
    return any(m in name for m in TAIL_MARKERS)


def is_higher_better_phase(name: str) -> bool:
    """Whether a ledger phase name is a bigger-is-better metric."""
    return any(m in name for m in HIGHER_IS_BETTER_MARKERS)


def median(values: list[float]) -> float:
    vals = sorted(values)
    if not vals:
        raise ValueError("median of empty sequence")
    k = len(vals) // 2
    if len(vals) % 2:
        return float(vals[k])
    return 0.5 * (vals[k - 1] + vals[k])


def mad(values: list[float]) -> float:
    """Median absolute deviation — a robust spread estimate (0 for n <= 1)."""
    if len(values) <= 1:
        return 0.0
    med = median(values)
    return median([abs(v - med) for v in values])


@dataclass(frozen=True)
class PhaseVerdict:
    """The gate's decision for one phase."""

    name: str
    baseline_median: float | None
    baseline_mad: float
    candidate: float | None
    threshold: float | None
    status: str  # "ok" | "regressed" | "improved" | "new" | "missing" | "noise-floor"

    @property
    def ratio(self) -> float | None:
        if self.baseline_median and self.candidate is not None:
            return self.candidate / self.baseline_median
        return None


@dataclass
class RegressionReport:
    """All phase verdicts plus the knobs that produced them."""

    verdicts: list[PhaseVerdict]
    rel_tol: float
    mad_k: float
    min_seconds: float
    tail_rel_tol: float = DEFAULT_TAIL_REL_TOL

    @property
    def regressions(self) -> list[PhaseVerdict]:
        return [v for v in self.verdicts if v.status == "regressed"]

    @property
    def compared(self) -> int:
        return sum(
            1 for v in self.verdicts if v.status in ("ok", "regressed", "improved")
        )

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """Terminal report: one line per phase, slowest offenders first."""
        from ..bench.reporting import format_table

        def key(v: PhaseVerdict):
            r = v.ratio
            return -(r if r is not None else 0.0)

        rows = []
        for v in sorted(self.verdicts, key=key):
            rows.append(
                (
                    v.name,
                    "-" if v.baseline_median is None else f"{v.baseline_median:.6f}",
                    f"{v.baseline_mad:.6f}",
                    "-" if v.candidate is None else f"{v.candidate:.6f}",
                    "-" if v.ratio is None else f"{v.ratio:.2f}x",
                    v.status.upper() if v.status == "regressed" else v.status,
                )
            )
        table = format_table(
            ["phase", "base med (s)", "base MAD", "candidate (s)", "ratio", "verdict"],
            rows,
            title=(
                f"regression gate (rel_tol={self.rel_tol:g}, "
                f"tail_rel_tol={self.tail_rel_tol:g}, "
                f"mad_k={self.mad_k:g}, floor={self.min_seconds:g}s)"
            ),
        )
        lines = [table, ""]
        if self.regressions:
            worst = max(
                self.regressions, key=lambda v: (v.ratio or 0.0)
            )
            lines.append(
                f"CONFIRMED REGRESSION in {len(self.regressions)} phase(s); "
                f"worst: {worst.name} at {worst.ratio:.2f}x baseline "
                f"(threshold {worst.threshold:.6f}s)"
            )
        else:
            lines.append(
                f"no confirmed regressions across {self.compared} compared phase(s)"
            )
        return "\n".join(lines)


def compare(
    baseline: dict[str, list[float]],
    candidate: dict[str, float],
    rel_tol: float = DEFAULT_REL_TOL,
    mad_k: float = DEFAULT_MAD_K,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    tail_rel_tol: float = DEFAULT_TAIL_REL_TOL,
) -> RegressionReport:
    """Judge a candidate run against per-phase baseline history.

    ``baseline`` maps phase name to a *list* of historical seconds (one
    entry is fine — the MAD band then degenerates to the relative band).
    Phases present on only one side are reported (``new`` / ``missing``)
    but never fail the gate: a renamed phase should be visible, not fatal.

    Tail-latency phases (names carrying a :data:`TAIL_MARKERS` suffix,
    e.g. the ``scenario.*.query.p99`` entries the scenario runner
    ledgers) are gated with ``tail_rel_tol`` instead of ``rel_tol`` —
    tails regress too, but their estimates are noisier, so the band is
    wider.  Pass ``tail_rel_tol=rel_tol`` to gate them identically.

    Bigger-is-better phases (names carrying a
    :data:`HIGHER_IS_BETTER_MARKERS` token, e.g. the
    ``critpath.parallel_efficiency`` value profile/bench runs ledger) are
    gated in the *inverted* direction — the candidate falling below both
    lower bands is the regression; exceeding the baseline is an
    improvement.
    """
    if rel_tol < 0 or mad_k < 0 or tail_rel_tol < 0:
        raise ValueError("rel_tol, tail_rel_tol, and mad_k must be non-negative")
    verdicts: list[PhaseVerdict] = []
    for name in sorted(set(baseline) | set(candidate)):
        hist = [float(v) for v in baseline.get(name, [])]
        cand = candidate.get(name)
        tol = tail_rel_tol if is_tail_phase(name) else rel_tol
        if not hist:
            verdicts.append(
                PhaseVerdict(name, None, 0.0, float(cand), None, "new")
            )
            continue
        base_med = median(hist)
        base_mad = mad(hist)
        inverted = is_higher_better_phase(name)
        if inverted:
            # Bigger is better: a regression is *dropping below* both
            # bands, and the noise floor is judged on the baseline alone
            # (an efficiency collapsing toward zero must still fail).
            threshold = min(
                base_med * (1.0 - tol), base_med - mad_k * base_mad
            )
        else:
            threshold = max(
                base_med * (1.0 + tol), base_med + mad_k * base_mad
            )
        if cand is None:
            verdicts.append(
                PhaseVerdict(name, base_med, base_mad, None, threshold, "missing")
            )
            continue
        cand = float(cand)
        if inverted:
            if base_med < min_seconds:
                status = "noise-floor"
            elif cand < threshold:
                status = "regressed"
            elif cand > base_med * (1.0 + tol):
                status = "improved"
            else:
                status = "ok"
        elif base_med < min_seconds and cand < min_seconds:
            status = "noise-floor"
        elif cand > threshold:
            status = "regressed"
        elif cand * (1.0 + tol) < base_med:
            status = "improved"
        else:
            status = "ok"
        verdicts.append(
            PhaseVerdict(name, base_med, base_mad, cand, threshold, status)
        )
    return RegressionReport(
        verdicts=verdicts,
        rel_tol=rel_tol,
        mad_k=mad_k,
        min_seconds=min_seconds,
        tail_rel_tol=tail_rel_tol,
    )


def extract_phases(doc: dict) -> dict[str, float]:
    """Pull a ``{phase: seconds}`` map out of any supported document shape.

    Accepts, in order of preference: a document with a ``phases`` dict (a
    :class:`~repro.obs.ledger.RunRecord` or a stamped
    ``BENCH_BASELINE.json``), a bare phases dict (every value numeric), or
    a legacy pre-stamp ``BENCH_BASELINE.json`` (timing keys are harvested
    from its known sections).
    """
    if not isinstance(doc, dict):
        raise ValueError(f"expected an object, got {type(doc).__name__}")
    phases = doc.get("phases")
    if isinstance(phases, dict) and phases:
        return {str(k): float(v) for k, v in phases.items()}
    if doc and all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in doc.values()
    ):
        return {str(k): float(v) for k, v in doc.items()}
    # Legacy BENCH_BASELINE.json layout (pre schema stamp).
    out: dict[str, float] = {}
    rs = doc.get("repeated_sssp")
    if isinstance(rs, dict):
        out["smoke.repeated_sssp.uncached"] = float(rs["uncached_per_source_s"])
        out["smoke.repeated_sssp.cached"] = float(rs["cached_chunked_s"])
    pl = doc.get("parallel")
    if isinstance(pl, dict):
        out["smoke.parallel.serial"] = float(pl["serial_s"])
        out["smoke.parallel.parallel"] = float(pl["parallel_s"])
    for row in doc.get("fig2") or []:
        out[f"smoke.fig2.{row['name']}.ours"] = float(row["t_ours_s"])
        out[f"smoke.fig2.{row['name']}.baseline"] = float(row["t_baseline_s"])
    for row in doc.get("table2") or []:
        out[f"smoke.table2.{row['name']}.with_ear"] = float(row["wall_with_ear_s"])
        out[f"smoke.table2.{row['name']}.without_ear"] = float(row["wall_without_ear_s"])
    if not out:
        raise ValueError("document carries no recognizable phase timings")
    return out


# --------------------------------------------------------------------- #
# Chrome-trace differ — which span moved between two trace files?
# --------------------------------------------------------------------- #


def _span_seconds(doc: dict) -> dict[str, float]:
    """Total seconds per span name over a trace's complete ("X") events."""
    out: dict[str, float] = {}
    for ev in doc.get("traceEvents", []):
        if isinstance(ev, dict) and ev.get("ph") == "X":
            dur = ev.get("dur")
            if isinstance(dur, (int, float)):
                name = str(ev.get("name"))
                out[name] = out.get(name, 0.0) + float(dur) / 1e6
    return out


def diff_chrome_traces(a: dict, b: dict) -> list[dict]:
    """Per-span-name wall-time deltas between two Chrome trace documents.

    Returns rows ``{name, a_s, b_s, delta_s, ratio}`` sorted by absolute
    delta, biggest mover first — the "which phase moved" answer for two
    ``repro-bench profile --trace-out`` files.
    """
    ta, tb = _span_seconds(a), _span_seconds(b)
    rows = []
    for name in sorted(set(ta) | set(tb)):
        a_s = ta.get(name, 0.0)
        b_s = tb.get(name, 0.0)
        rows.append(
            {
                "name": name,
                "a_s": a_s,
                "b_s": b_s,
                "delta_s": b_s - a_s,
                "ratio": (b_s / a_s) if a_s else float("inf"),
            }
        )
    rows.sort(key=lambda r: -abs(r["delta_s"]))
    return rows


# --------------------------------------------------------------------- #
# Candidate measurement — median-of-repeats profile phases
# --------------------------------------------------------------------- #


def phase_totals(collector) -> dict[str, float]:
    """Top-level span totals of a trace collector, keyed ``cat.name``.

    Only root spans count, so the preprocess/process/postprocess phases of
    the pipeline drivers do not double-count their nested children.
    """
    out: dict[str, float] = {}
    for node in collector.span_tree():
        s = node["span"]
        key = f"{s.cat}.{s.name}"
        out[key] = out.get(key, 0.0) + s.dur_ns / 1e9
    return out


def measure_profile_phases(
    workload: str = "apsp",
    dataset: str = "OPF_3754",
    scale: float | None = None,
    repeats: int = 3,
) -> dict[str, float]:
    """Median-of-repeats per-phase seconds for one profile workload.

    Each repeat runs the pipeline under a fresh trace collector and the
    per-phase medians across repeats become the candidate record — the
    same noise defence the gate applies to the baseline side.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    from .. import datasets as _datasets
    from .trace import tracing

    g = _datasets.load(dataset, scale)
    samples: dict[str, list[float]] = {}
    for _ in range(repeats):
        with tracing() as tr:
            if workload in ("apsp", "both"):
                from ..hetero.apsp_runner import apsp_with_trace

                apsp_with_trace(g)
            if workload in ("mcb", "both"):
                from ..hetero.mcb_runner import mcb_with_trace

                mcb_with_trace(g)
        for name, secs in phase_totals(tr).items():
            samples.setdefault(name, []).append(secs)
    return {name: median(vals) for name, vals in sorted(samples.items())}
