"""Self-contained single-file HTML run reports (``repro-bench report``).

One run, one artifact: a plain HTML file with inline CSS/SVG and a few
lines of inline JS — no network fetches, no external assets — that can be
attached to a CI job or mailed around and still render everything the
obs layer knows about a run:

1. **Phase waterfall** — the Chrome-trace spans as per-track horizontal
   bars (real pid/tid tracks plus the virtual-platform device tracks of
   :func:`repro.obs.export.virtual_clock_events`).
2. **Queue & device timeline** — work-queue grabs, worker heartbeats and
   dispatch windows from the structured event stream
   (:mod:`repro.obs.events`), with the queue-depth curve overlaid.
3. **Table-1 memory** — the measured-vs-model byte accounting
   (``a² + Σ nᵢ²`` against dense ``n²``) from :mod:`repro.obs.memory`
   gauges and the recorded model block.
4. **Counters** — the run's :mod:`repro.obs.metrics` counter diff.
5. **SLO panel** — latency budgets vs measured percentiles from
   :mod:`repro.obs.slo` (ledgered by the scenario runner or recomputed
   from the event stream), with a per-sample deadline-miss timeline.
6. **Critical path & stragglers** — the :mod:`repro.obs.critpath`
   span-DAG analysis: which spans bound end-to-end time, per-dispatch
   straggler flags, and the Amdahl-style what-if estimates.
7. **Ledger history** — per-phase sparklines over the run ledger with
   the :mod:`repro.obs.regress` verdict for the newest run.

Sections degrade independently: missing inputs render as an explicit
"no data" note, never an error, so a report can be built from any subset
of {trace, events, ledger}.  :func:`validate_report` is the smoke check
CI runs against the emitted file.
"""

from __future__ import annotations

import html as _html
import json
from typing import TYPE_CHECKING

from .export import VIRTUAL_PID

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ledger import RunRecord

__all__ = ["REPORT_SECTIONS", "build_report", "write_report", "validate_report"]

#: The mandatory sections, in render order; ``validate_report``
#: checks each ``id="section-<name>"`` anchor exists.
REPORT_SECTIONS = (
    "waterfall", "timeline", "memory", "counters", "slo", "profile",
    "critpath", "history",
)

_PALETTE = (
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
    "#edc948", "#b07aa1", "#9c755f", "#bab0ac", "#ff9da7",
)

_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 0; color: #1a1a2e;
       background: #fafafa; }
header { background: #1a1a2e; color: #fafafa; padding: 16px 28px; }
header h1 { margin: 0 0 4px; font-size: 20px; }
header .meta { color: #9aa0b4; font-size: 12px; }
section { background: #fff; margin: 18px 28px; padding: 14px 20px 18px;
          border: 1px solid #e2e2ea; border-radius: 6px; }
section h2 { margin: 0 0 10px; font-size: 15px; cursor: pointer; }
section h2::before { content: "\\25BE "; color: #888; }
section.folded h2::before { content: "\\25B8 "; }
section.folded > *:not(h2) { display: none; }
table { border-collapse: collapse; font-size: 13px; }
th, td { padding: 3px 12px 3px 0; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { border-bottom: 1px solid #ccc; font-weight: 600; }
.nodata { color: #888; font-style: italic; }
.note { color: #666; font-size: 12px; }
.ok { color: #2a7d2a; font-weight: 600; }
.bad { color: #c0392b; font-weight: 600; }
svg { display: block; }
svg text { font: 10px system-ui, sans-serif; fill: #444; }
.spark { display: inline-block; vertical-align: middle; }
"""

_JS = """
document.querySelectorAll('section h2').forEach(function (h) {
  h.addEventListener('click', function () {
    h.parentElement.classList.toggle('folded');
  });
});
"""


def _esc(x) -> str:
    return _html.escape(str(x))


def _color(name: str) -> str:
    return _PALETTE[hash(name) % len(_PALETTE)]


def _fmt_bytes(b) -> str:
    from .memory import format_bytes

    return format_bytes(float(b))


def _nodata(msg: str) -> str:
    return f'<p class="nodata">{_esc(msg)}</p>'


# --------------------------------------------------------------------- #
# Section 1 — phase waterfall from the Chrome trace
# --------------------------------------------------------------------- #

_WATERFALL_MAX_EVENTS = 1200


def _track_labels(trace: dict) -> dict[tuple[int, int], str]:
    proc: dict[int, str] = {}
    thread: dict[tuple[int, int], str] = {}
    for ev in trace.get("traceEvents", []):
        if not isinstance(ev, dict) or ev.get("ph") != "M":
            continue
        args = ev.get("args") or {}
        if ev.get("name") == "process_name":
            proc[ev.get("pid")] = str(args.get("name", ev.get("pid")))
        elif ev.get("name") == "thread_name":
            thread[(ev.get("pid"), ev.get("tid"))] = str(args.get("name", ""))
    out: dict[tuple[int, int], str] = {}
    for key, tname in thread.items():
        pname = proc.get(key[0], f"pid {key[0]}")
        out[key] = f"{pname} · {tname}" if tname else pname
    for pid, pname in proc.items():
        out.setdefault((pid, 0), pname)
    return out

def _waterfall_svg(trace: dict) -> str:
    evs = [
        ev
        for ev in trace.get("traceEvents", [])
        if isinstance(ev, dict)
        and ev.get("ph") == "X"
        and isinstance(ev.get("ts"), (int, float))
        and isinstance(ev.get("dur"), (int, float))
    ]
    if not evs:
        return _nodata("trace carries no complete events")
    truncated = 0
    if len(evs) > _WATERFALL_MAX_EVENTS:
        truncated = len(evs) - _WATERFALL_MAX_EVENTS
        evs = sorted(evs, key=lambda e: -e["dur"])[:_WATERFALL_MAX_EVENTS]
    labels = _track_labels(trace)
    t0 = min(e["ts"] for e in evs)
    t1 = max(e["ts"] + e["dur"] for e in evs)
    span = max(t1 - t0, 1e-9)
    width, left, rowh = 960.0, 190.0, 16.0
    # Group by (pid, tid); within a track, nesting depth = open intervals.
    tracks: dict[tuple[int, int], list[dict]] = {}
    for ev in sorted(evs, key=lambda e: (e["pid"], e["tid"], e["ts"], -e["dur"])):
        tracks.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    rects: list[str] = []
    texts: list[str] = []
    y = 14.0
    for key, track_evs in tracks.items():
        label = labels.get(key, f"pid {key[0]} tid {key[1]}")
        open_ends: list[float] = []
        max_depth = 0
        base_y = y
        for ev in track_evs:
            while open_ends and ev["ts"] >= open_ends[-1] - 1e-12:
                open_ends.pop()
            depth = len(open_ends)
            open_ends.append(ev["ts"] + ev["dur"])
            max_depth = max(max_depth, depth)
            x = left + (ev["ts"] - t0) / span * (width - left - 10)
            w = max(ev["dur"] / span * (width - left - 10), 1.0)
            ry = base_y + depth * rowh
            name = str(ev.get("name"))
            rects.append(
                f'<rect x="{x:.1f}" y="{ry:.1f}" width="{w:.1f}" height="{rowh - 3:.1f}"'
                f' fill="{_color(name)}" rx="1.5">'
                f"<title>{_esc(name)} — {ev['dur'] / 1e3:.3f} ms"
                f" (ts {ev['ts'] / 1e3:.3f} ms)</title></rect>"
            )
            if w > 60:
                texts.append(
                    f'<text x="{x + 3:.1f}" y="{ry + rowh - 6:.1f}"'
                    f' fill="#fff">{_esc(name[:int(w / 6)])}</text>'
                )
        texts.append(
            f'<text x="4" y="{base_y + rowh - 6:.1f}">{_esc(label[:30])}</text>'
        )
        y = base_y + (max_depth + 1) * rowh + 8
    height = y + 6
    note = (
        f'<p class="note">longest {_WATERFALL_MAX_EVENTS} of '
        f"{truncated + _WATERFALL_MAX_EVENTS} spans shown</p>"
        if truncated
        else ""
    )
    return (
        f'<svg width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.0f} {height:.0f}">'
        + "".join(rects) + "".join(texts)
        + f"</svg><p class=\"note\">traced window: {span / 1e3:.3f} ms; "
        f"{len(tracks)} track(s)</p>" + note
    )


# --------------------------------------------------------------------- #
# Section 2 — queue/device timeline from the event stream
# --------------------------------------------------------------------- #


def _timeline_svg(events: list[dict], trace: dict | None = None) -> str:
    if not events:
        return _nodata("no event stream (set REPRO_EVENTS or pass --events)")
    t0 = min(e["ts_ns"] for e in events)
    t1 = max(e["ts_ns"] for e in events)
    span = max(t1 - t0, 1)
    width, left = 960.0, 190.0
    plot_w = width - left - 10

    def x_of(ts_ns: int) -> float:
        return left + (ts_ns - t0) / span * plot_w

    lanes: list[tuple[str, list[str]]] = []

    # Device lanes: queue.grab ticks sized by batch.
    grabs = [e for e in events if e["kind"] == "queue.grab"]
    max_batch = max((int(e.get("batch") or 1) for e in grabs), default=1)
    per_dev: dict[str, list[dict]] = {}
    for ev in grabs:
        per_dev.setdefault(str(ev.get("device") or "?"), []).append(ev)
    for dev, dev_evs in sorted(per_dev.items()):
        marks = []
        for ev in dev_evs:
            h = 4 + 14.0 * int(ev.get("batch") or 1) / max_batch
            end = ev.get("end") or "front"
            marks.append(
                f'<rect x="{x_of(ev["ts_ns"]):.1f}" y="{18 - h:.1f}" width="2"'
                f' height="{h:.1f}" fill="{_color(dev)}">'
                f"<title>{_esc(dev)} grabbed {ev.get('batch')} unit(s) from the"
                f" {_esc(end)} ({ev.get('remaining')} left)</title></rect>"
            )
        lanes.append((f"queue · {dev} ({len(dev_evs)} grabs)", marks))

    # Queue depth polyline across all grabs.
    depth_pts = [
        (e["ts_ns"], int(e["remaining"]))
        for e in grabs
        if isinstance(e.get("remaining"), int)
    ]
    if depth_pts:
        max_d = max((d for _, d in depth_pts), default=1) or 1
        pts = " ".join(
            f"{x_of(ts):.1f},{18 - 16.0 * d / max_d:.1f}" for ts, d in depth_pts
        )
        lanes.append(
            (
                f"queue depth (max {max_d})",
                [
                    f'<polyline points="{pts}" fill="none" stroke="#e15759"'
                    ' stroke-width="1.5"/>'
                ],
            )
        )

    # Dispatch windows (parent-side fan-out brackets).
    dispatches = [
        e for e in events if e["kind"] in ("dispatch.start", "dispatch.finish")
    ]
    if dispatches:
        marks = []
        start_ts = None
        for ev in dispatches:
            if ev["kind"] == "dispatch.start":
                start_ts = ev["ts_ns"]
            elif start_ts is not None:
                x = x_of(start_ts)
                w = max(x_of(ev["ts_ns"]) - x, 1.0)
                marks.append(
                    f'<rect x="{x:.1f}" y="4" width="{w:.1f}" height="12"'
                    ' fill="#76b7b2" opacity="0.55" rx="2">'
                    f"<title>dispatch: {ev.get('chunks', '?')} chunk(s)</title></rect>"
                )
                start_ts = None
        if start_ts is not None:  # never finished — render to the edge
            x = x_of(start_ts)
            marks.append(
                f'<rect x="{x:.1f}" y="4" width="{left + plot_w - x:.1f}" height="12"'
                ' fill="#e15759" opacity="0.45" rx="2">'
                "<title>dispatch never finished</title></rect>"
            )
        lanes.append(("pool dispatches", marks))

    # Per-pid heartbeat lanes.
    beats: dict[int, list[dict]] = {}
    for ev in events:
        if ev["kind"] == "worker.heartbeat":
            beats.setdefault(ev["pid"], []).append(ev)
    for pid, pid_evs in sorted(beats.items()):
        marks = [
            f'<circle cx="{x_of(ev["ts_ns"]):.1f}" cy="11" r="2.4" '
            f'fill="{"#59a14f" if ev.get("status") == "chunk_done" else "#4e79a7"}">'
            f"<title>pid {pid} {_esc(ev.get('status') or 'beat')}</title></circle>"
            for ev in pid_evs
        ]
        for st in (e for e in events if e["kind"] == "engine.stall_detected"):
            if st.get("worker") == pid:
                marks.append(
                    f'<text x="{x_of(st["ts_ns"]):.1f}" y="9" fill="#c0392b">'
                    "&#9888; stall</text>"
                )
        lanes.append((f"worker pid {pid} ({len(pid_evs)} beats)", marks))

    # Phase band: start/finish brackets from the runners.
    phases = [e for e in events if e["kind"] in ("phase.start", "phase.finish")]
    if phases:
        marks = []
        opened: dict[tuple, int] = {}
        for ev in phases:
            key = (ev.get("cat"), ev.get("phase"))
            if ev["kind"] == "phase.start":
                opened[key] = ev["ts_ns"]
            elif key in opened:
                x = x_of(opened.pop(key))
                w = max(x_of(ev["ts_ns"]) - x, 1.0)
                name = f"{key[0]}/{key[1]}"
                marks.append(
                    f'<rect x="{x:.1f}" y="4" width="{w:.1f}" height="12"'
                    f' fill="{_color(name)}" opacity="0.7" rx="2">'
                    f"<title>{_esc(name)}</title></rect>"
                )
        lanes.append(("pipeline phases", marks))

    rows = []
    y = 4.0
    for label, marks in lanes:
        rows.append(
            f'<g transform="translate(0 {y:.1f})">'
            f'<text x="4" y="14">{_esc(label[:32])}</text>'
            f'<line x1="{left}" y1="18" x2="{width - 10}" y2="18" '
            'stroke="#eee"/>' + "".join(marks) + "</g>"
        )
        y += 24.0
    parts = [
        f'<svg width="{width:.0f}" height="{y + 8:.0f}" '
        f'viewBox="0 0 {width:.0f} {y + 8:.0f}">' + "".join(rows) + "</svg>",
        f'<p class="note">event window: {(t1 - t0) / 1e9:.3f} s, '
        f"{len(events)} events</p>",
    ]

    # Virtual-platform occupancy (clock samples bridged into the trace).
    if trace:
        virt = [
            ev
            for ev in trace.get("traceEvents", [])
            if isinstance(ev, dict) and ev.get("ph") == "X"
            and ev.get("pid") == VIRTUAL_PID
        ]
        if virt:
            vt1 = max(e["ts"] + e["dur"] for e in virt)
            vspan = max(vt1, 1e-9)
            vl = _track_labels(trace)
            vrows, vy = [], 4.0
            for tid in sorted({e["tid"] for e in virt}):
                tevs = [e for e in virt if e["tid"] == tid]
                busy = sum(e["dur"] for e in tevs)
                label = vl.get((VIRTUAL_PID, tid), f"virtual tid {tid}")
                marks = "".join(
                    f'<rect x="{left + e["ts"] / vspan * plot_w:.1f}" y="6" '
                    f'width="{max(e["dur"] / vspan * plot_w, 0.8):.1f}" height="10" '
                    f'fill="{_color(str(e.get("name")))}">'
                    f"<title>{_esc(e.get('name'))} — {e['dur'] / 1e6:.6f} vs</title></rect>"
                    for e in tevs
                )
                vrows.append(
                    f'<g transform="translate(0 {vy:.1f})">'
                    f'<text x="4" y="14">{_esc(label[:26])} '
                    f"({100.0 * busy / vspan:.0f}% busy)</text>"
                    f'<line x1="{left}" y1="16" x2="{width - 10}" y2="16" '
                    'stroke="#eee"/>' + marks + "</g>"
                )
                vy += 24.0
            parts.append(
                "<h3 style=\"font-size:13px;margin:14px 0 4px\">virtual platform "
                "occupancy (simulated clocks)</h3>"
                f'<svg width="{width:.0f}" height="{vy + 8:.0f}" '
                f'viewBox="0 0 {width:.0f} {vy + 8:.0f}">' + "".join(vrows)
                + f"</svg><p class=\"note\">virtual makespan: {vspan / 1e6:.6f} "
                "virtual seconds</p>"
            )
    return "".join(parts)


# --------------------------------------------------------------------- #
# Section 3 — Table-1 memory block
# --------------------------------------------------------------------- #

_MEMORY_ROWS = (
    ("component tables (Σ nᵢ²)", "component_bytes", "memory.apsp.component_table_bytes"),
    ("articulation table (a²)", "ap_bytes", "memory.apsp.ap_table_bytes"),
    ("oracle total (a² + Σ nᵢ²)", "oracle_bytes", "memory.apsp.oracle_bytes"),
    ("reduced oracle (ear)", "reduced_oracle_bytes", "memory.apsp.reduced_table_bytes"),
    ("dense matrix (n²)", "dense_bytes", "memory.apsp.dense_bytes"),
)


def _memory_section(record: "RunRecord | None") -> str:
    if record is None or not record.memory:
        return _nodata("no ledgered memory record (run repro-bench profile with --ledger)")
    gauges = record.memory.get("gauges") or {}
    model = record.memory.get("table1_model") or {}
    parts: list[str] = []
    if model or any(g in gauges for _, _, g in _MEMORY_ROWS):
        rows = []
        for label, model_key, gauge_key in _MEMORY_ROWS:
            mv = model.get(model_key)
            gv = gauges.get(gauge_key)
            rows.append(
                f"<tr><td>{_esc(label)}</td>"
                f"<td>{_fmt_bytes(mv) if mv is not None else '-'}</td>"
                f"<td>{_fmt_bytes(gv) if gv else '-'}</td></tr>"
            )
        parts.append(
            "<table><tr><th>distance storage</th><th>model</th>"
            "<th>measured</th></tr>" + "".join(rows) + "</table>"
        )
        oracle = model.get("oracle_bytes")
        dense = model.get("dense_bytes")
        if oracle and dense:
            rel = "&lt;" if oracle < dense else "&ge;"
            cls = "ok" if oracle < dense else "bad"
            parts.append(
                f'<p>shape: <span class="{cls}">a² + Σ nᵢ² = '
                f"{_fmt_bytes(oracle)} {rel} n² = {_fmt_bytes(dense)}</span> "
                f"(saving {dense / oracle:.2f}x)</p>"
            )
    spans = record.memory.get("spans") or {}
    if spans:
        rows = "".join(
            f"<tr><td>{_esc(name)}</td><td>{row.get('count', '-')}</td>"
            f"<td>{_fmt_bytes(row.get('delta_bytes', 0))}</td>"
            f"<td>{_fmt_bytes(row.get('peak_bytes', 0))}</td>"
            f"<td>{'-' if row.get('rss_peak_bytes') is None else _fmt_bytes(row['rss_peak_bytes'])}</td></tr>"
            for name, row in sorted(spans.items())
        )
        parts.append(
            "<table><tr><th>memory span</th><th>count</th><th>alloc Δ</th>"
            "<th>alloc peak</th><th>rss peak</th></tr>" + rows + "</table>"
        )
    return "".join(parts) or _nodata("memory record is empty")


# --------------------------------------------------------------------- #
# Section 4 — counters
# --------------------------------------------------------------------- #


def _counters_section(record: "RunRecord | None") -> str:
    if record is None or not record.counters:
        return _nodata("no ledgered counters for this run")
    rows = "".join(
        f"<tr><td>{_esc(name)}</td>"
        f"<td>{val:.4f}</td></tr>" if isinstance(val, float) else
        f"<tr><td>{_esc(name)}</td><td>{_esc(val)}</td></tr>"
        for name, val in sorted(record.counters.items())
    )
    return "<table><tr><th>metric</th><th>value</th></tr>" + rows + "</table>"


# --------------------------------------------------------------------- #
# Section 5 — SLO panel: budgets vs measured tails + miss timeline
# --------------------------------------------------------------------- #


def _metric_of(ev: dict) -> str | None:
    """The SLO metric key a ``*.finish`` event contributes to (or None)."""
    kind = ev.get("kind", "")
    if not kind.endswith(".finish") or not isinstance(
        ev.get("dur_ns"), (int, float)
    ):
        return None
    base = kind[: -len(".finish")]
    if base == "phase":
        return f"phase.{ev.get('cat', '?')}.{ev.get('phase', '?')}"
    return base


def _miss_timeline_svg(events: list[dict], deadlines: dict[str, float]) -> str:
    """Per-sample deadline scatter: one lane per deadlined metric.

    Every sample renders at its stream timestamp — green under the
    deadline, red above it — with the deadline miss count per lane, so a
    burst of misses is visually distinguishable from an evenly-spread
    tail.
    """
    timed = [
        (m, ev) for ev in events
        if (m := _metric_of(ev)) is not None and m in deadlines
    ]
    if not timed:
        return ""
    t0 = min(ev["ts_ns"] for _, ev in timed)
    t1 = max(ev["ts_ns"] for _, ev in timed)
    span = max(t1 - t0, 1)
    width, left, laneh = 960.0, 190.0, 30.0
    plot_w = width - left - 10
    lanes = []
    y = 4.0
    for metric in sorted({m for m, _ in timed}):
        deadline = deadlines[metric]
        evs = [ev for m, ev in timed if m == metric]
        worst = max(float(ev["dur_ns"]) / 1e9 for ev in evs)
        scale = max(worst, deadline) or 1.0
        misses = sum(1 for ev in evs if float(ev["dur_ns"]) / 1e9 > deadline)
        marks = [
            f'<line x1="{left}" y1="{y + laneh - 6 - deadline / scale * (laneh - 10):.1f}"'
            f' x2="{width - 10}" y2="{y + laneh - 6 - deadline / scale * (laneh - 10):.1f}"'
            ' stroke="#c0392b" stroke-dasharray="4 3" stroke-width="1"/>'
        ]
        for ev in evs:
            dur = float(ev["dur_ns"]) / 1e9
            cx = left + (ev["ts_ns"] - t0) / span * plot_w
            cy = y + laneh - 6 - dur / scale * (laneh - 10)
            color = "#c0392b" if dur > deadline else "#59a14f"
            marks.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="1.8" fill="{color}">'
                f"<title>{_esc(metric)}: {dur * 1e3:.3f} ms "
                f"(deadline {deadline * 1e3:.3f} ms)</title></circle>"
            )
        label = f"{metric} ({misses}/{len(evs)} missed)"
        lanes.append(
            f'<g><text x="4" y="{y + laneh / 2 + 3:.1f}">{_esc(label[:32])}</text>'
            + "".join(marks) + "</g>"
        )
        y += laneh + 4
    return (
        "<h3 style=\"font-size:13px;margin:14px 0 4px\">deadline-miss "
        "timeline</h3>"
        f'<svg width="{width:.0f}" height="{y + 4:.0f}" '
        f'viewBox="0 0 {width:.0f} {y + 4:.0f}">' + "".join(lanes) + "</svg>"
        '<p class="note">dashed line: per-sample deadline; red samples '
        "missed it</p>"
    )


def _slo_section(
    events: list[dict] | None, record: "RunRecord | None"
) -> str:
    """Budgets vs measured percentiles, plus the deadline-miss timeline.

    Prefers the SLO block the scenario runner ledgered in
    ``record.meta["slo"]`` (the judged verdicts); falls back to
    recomputing distributions from the event stream when the run carried
    no budgets, so the panel still shows tails for ad-hoc runs.
    """

    def _ms(v) -> str:
        return f"{float(v) * 1e3:.3f}"

    slo_doc = (record.meta.get("slo") if record is not None else None) or {}
    stats = slo_doc.get("stats") or {}
    verdicts = slo_doc.get("verdicts") or []
    if not stats and events:
        from .slo import extract_latencies, LatencyStats

        stats = {
            metric: LatencyStats.from_samples(metric, samples).as_dict()
            for metric, samples in sorted(extract_latencies(events).items())
            if samples
        }
    if not stats and not verdicts:
        # A record can still carry ledgered exemplars (schema v2) even
        # when it never judged budgets — render the tail table alone.
        tail = _exemplar_table(events, record)
        if tail:
            return tail
        return _nodata(
            "no SLO data (run repro-bench scenarios, or pass --events from "
            "a run with timed events)"
        )
    parts: list[str] = []
    overall = slo_doc.get("verdict")
    if overall:
        cls = "ok" if overall == "ok" else "bad"
        parts.append(f'<p>scenario verdict: <span class="{cls}">{_esc(overall)}</span></p>')
    if verdicts:
        rows = []
        for v in verdicts:
            frac = v.get("stat") == "miss_frac"
            measured = v.get("measured")
            status = str(v.get("status", "?"))
            cls = "ok" if status == "ok" else "bad"
            limit_cell = (
                f"{float(v.get('limit', 0)):.4f}" if frac
                else f"{_ms(v.get('limit', 0))} ms"
            )
            if measured is None:
                measured_cell = "-"
            else:
                measured_cell = (
                    f"{float(measured):.4f}" if frac else f"{_ms(measured)} ms"
                )
            rows.append(
                f"<tr><td>{_esc(v.get('metric'))}</td>"
                f"<td>{_esc(v.get('stat'))}</td>"
                f"<td>{limit_cell}</td><td>{measured_cell}</td>"
                f'<td><span class="{cls}">{_esc(status)}</span></td></tr>'
            )
        parts.append(
            "<table><tr><th>budget</th><th>stat</th><th>limit</th>"
            "<th>measured</th><th>verdict</th></tr>" + "".join(rows) + "</table>"
        )
    if stats:
        rows = "".join(
            f"<tr><td>{_esc(m)}</td><td>{st.get('count')}</td>"
            f"<td>{_ms(st.get('p50'))}</td><td>{_ms(st.get('p90'))}</td>"
            f"<td>{_ms(st.get('p99'))}</td><td>{_ms(st.get('p999'))}</td>"
            f"<td>{_ms(st.get('jitter_iqr'))}</td>"
            f"<td>{_ms(st.get('jitter_range'))}</td>"
            f"<td>{st.get('misses') if st.get('deadline_s') is not None else '-'}</td></tr>"
            for m, st in sorted(stats.items())
        )
        parts.append(
            "<table><tr><th>metric</th><th>n</th><th>p50 ms</th>"
            "<th>p90 ms</th><th>p99 ms</th><th>p999 ms</th><th>IQR ms</th>"
            "<th>range ms</th><th>misses</th></tr>" + rows + "</table>"
        )
    deadlines = {
        m: float(st["deadline_s"])
        for m, st in stats.items()
        if isinstance(st, dict) and st.get("deadline_s") is not None
    }
    if events and deadlines:
        parts.append(_miss_timeline_svg(events, deadlines))
    elif deadlines:
        parts.append(
            '<p class="note">deadline-miss timeline needs the event stream '
            "(pass --events)</p>"
        )
    parts.append(_exemplar_table(events, record))
    return "".join(parts)


def _exemplar_table(
    events: list[dict] | None, record: "RunRecord | None"
) -> str:
    """Top-k tail queries with their provenance attribution.

    Prefers the exemplars the scenario runner ledgered in the record's
    top-level ``exemplars`` field (schema v2); falls back to extracting
    them from the event stream, so an un-ledgered run still gets a table.
    """
    exemplars: list[dict] = []
    if record is not None and getattr(record, "exemplars", None):
        exemplars = [ex for ex in record.exemplars if isinstance(ex, dict)]
    elif events:
        from .slo import extract_exemplars

        exemplars = [ex.as_dict() for ex in extract_exemplars(events)]
    if not exemplars:
        return ""
    rows = []
    for ex in exemplars:
        u, v = ex.get("u"), ex.get("v")
        pair = f"({u}, {v})" if u is not None and v is not None else "-"
        aps = ex.get("boundary_aps")
        via = f"via APs {tuple(aps)}" if aps else ""
        rows.append(
            f"<tr><td>{_esc(ex.get('rank', '?'))}</td>"
            f"<td>{_esc(ex.get('metric', '?'))}</td>"
            f"<td>{float(ex.get('dur_s') or 0) * 1e3:.3f}</td>"
            f"<td>{_esc(pair)}</td>"
            f"<td>{_esc(ex.get('pair_class') or '-')}</td>"
            f"<td>{_esc(ex.get('resolver') or '-')} {_esc(via)}</td>"
            f"<td><code>{_esc(ex.get('digest') or '-')}</code></td>"
            f"<td>pid {_esc(ex.get('pid', '?'))} @ {_esc(ex.get('ts_ns', '?'))}</td>"
            "</tr>"
        )
    return (
        '<h3 style="font-size:13px;margin:14px 0 4px">tail exemplars — '
        "slowest queries and why</h3>"
        "<table><tr><th>#</th><th>metric</th><th>ms</th><th>pair</th>"
        "<th>class</th><th>resolver</th><th>digest</th><th>trace location</th>"
        "</tr>" + "".join(rows) + "</table>"
        '<p class="note">pid/timestamp locate each sample in the '
        '<a href="#section-waterfall">phase waterfall</a>\'s per-pid lanes; '
        "the digest ties it to the query's provenance record</p>"
    )


# --------------------------------------------------------------------- #
# Section 6 — continuous-profiling flamegraph data
# --------------------------------------------------------------------- #


def _profile_section(
    profile: "dict | None", record: "RunRecord | None"
) -> str:
    """The sampler's hottest stacks + where the collapsed shards live.

    ``profile`` is the merged ``{stack_tuple: count}`` map from
    :func:`repro.obs.sampler.read_profile`.  The full collapsed files are
    the flamegraph input (flamegraph.pl / speedscope); the report shows
    the top stacks inline so the artifact is useful without a renderer.
    """
    parts: list[str] = []
    profile_dir = (record.meta.get("profile_dir") if record is not None else None)
    if not profile:
        hint = (
            f"collapsed shards expected under <code>{_esc(profile_dir)}</code>"
            if profile_dir
            else "run repro-bench profile --sample-hz HZ (or set REPRO_SAMPLER)"
        )
        return _nodata(f"no profiling samples ({hint})")
    from .sampler import top_stacks

    total = sum(profile.values())
    rows = []
    for stack, n in top_stacks(profile, k=15):
        frames = stack.split(";")
        leaf = frames[-1]
        rows.append(
            f"<tr><td>{n}</td><td>{100.0 * n / total:.1f}%</td>"
            f"<td><code>{_esc(leaf)}</code></td>"
            f"<td><code>{_esc(';'.join(frames[-4:-1]) or '-')}</code></td></tr>"
        )
    parts.append(
        f'<p class="note">{total} samples over {len(profile)} unique '
        "stack(s), merged across per-pid shards</p>"
    )
    parts.append(
        "<table><tr><th>samples</th><th>%</th><th>leaf frame</th>"
        "<th>callers (innermost last)</th></tr>" + "".join(rows) + "</table>"
    )
    if profile_dir:
        parts.append(
            f'<p class="note">full collapsed-stack shards (flamegraph.pl / '
            f"speedscope input): <code>{_esc(profile_dir)}</code></p>"
        )
    return "".join(parts)


# --------------------------------------------------------------------- #
# Section 7 — critical path & stragglers
# --------------------------------------------------------------------- #


def _critpath_section(
    trace: dict | None, events: list[dict] | None
) -> str:
    """Critical-path attribution, straggler flags, and what-if estimates.

    Runs the :mod:`repro.obs.critpath` analyzer over the same Chrome
    trace the waterfall renders (plus the event stream for fault/degrade
    annotations) and shows the chains that actually bound end-to-end
    time.
    """
    if not trace:
        return _nodata(
            "no Chrome trace (run repro-bench profile --trace-out, or pass "
            "--trace)"
        )
    from .critpath import analyze_chrome

    res = analyze_chrome(trace, events=events)
    if not res.span_count:
        return _nodata("trace carries no real-pid complete events")
    parts: list[str] = []
    eff_cls = "ok" if res.parallel_efficiency >= 0.5 else "bad"
    parts.append(
        f"<p>end-to-end <b>{res.total_ns / 1e6:.3f} ms</b> over "
        f"{res.span_count} span(s); parallel efficiency "
        f'<span class="{eff_cls}">{res.parallel_efficiency:.3f}</span>; '
        f"{res.stragglers} straggler(s), {res.orphans} orphan span(s)</p>"
    )
    path_rows = sorted(res.path, key=lambda e: -e["path_ns"])[:12]
    rows = "".join(
        f"<tr><td>{_esc(e['name'])}</td><td>{_esc(e['cat'])}</td>"
        f"<td>{_esc(e['pid'] if e['pid'] is not None else '-')}</td>"
        f"<td>{e['dur_ns'] / 1e6:.3f}</td><td>{e['path_ns'] / 1e6:.3f}</td>"
        f"<td>{100.0 * e['path_ns'] / max(1, res.total_ns):.1f}%</td></tr>"
        for e in path_rows
    )
    parts.append(
        '<p class="note">heaviest critical-path entries (per-entry '
        "contributions sum to the traced window)</p>"
        "<table><tr><th>span</th><th>cat</th><th>pid</th><th>dur ms</th>"
        "<th>on-path ms</th><th>share</th></tr>" + rows + "</table>"
    )
    if res.dispatches:
        rows = "".join(
            f"<tr><td>{_esc(d['dispatch'] if d['dispatch'] is not None else '-')}</td>"
            f"<td>{d['chunks']}</td><td>{d['workers']}</td>"
            f"<td>{d['wall_ns'] / 1e6:.3f}</td>"
            f"<td>{d['utilisation']:.2f}</td>"
            + (
                f'<td><span class="bad">'
                + _esc(
                    ", ".join(
                        f"pid {s['pid']} chunk {s['chunk']} "
                        f"(+{s['excess_ns'] / 1e6:.3f} ms)"
                        for s in d["stragglers"]
                    )
                )
                + "</span></td>"
                if d["stragglers"]
                else "<td>-</td>"
            )
            + "</tr>"
            for d in res.dispatches
        )
        parts.append(
            f'<p class="note">straggler = dispatch-relative finish &gt; '
            f"median + {res.straggler_k:g}&middot;MAD</p>"
            "<table><tr><th>dispatch</th><th>chunks</th><th>workers</th>"
            "<th>wall ms</th><th>util</th><th>stragglers</th></tr>"
            + rows + "</table>"
        )
    if res.whatif:
        rows = "".join(
            f"<tr><td>{_esc(w['label'])}</td>"
            f"<td>{w['saving_ns'] / 1e6:.3f}</td>"
            f"<td>{w['new_length_ns'] / 1e6:.3f}</td>"
            f"<td>{w['improvement_pct']:.1f}%</td></tr>"
            for w in res.whatif
        )
        parts.append(
            '<p class="note">what-if estimates (savings only for '
            "dispatches on the critical path)</p>"
            "<table><tr><th>scenario</th><th>saving ms</th>"
            "<th>new length ms</th><th>improvement</th></tr>"
            + rows + "</table>"
        )
    if res.annotations:
        items = "".join(
            f"<li><b>{_esc(a['kind'])}</b>: {_esc(a['detail'])}</li>"
            for a in res.annotations
        )
        parts.append(
            '<p class="note">event annotations (why the path looks like '
            f"this)</p><ul>{items}</ul>"
        )
    return "".join(parts)


# --------------------------------------------------------------------- #
# Section 8 — ledger-history sparklines + regression verdict
# --------------------------------------------------------------------- #


def _sparkline(values: list[float], width: float = 140, height: float = 26) -> str:
    if not values:
        return ""
    lo, hi = min(values), max(values)
    spread = (hi - lo) or 1.0
    n = len(values)
    pts = " ".join(
        f"{2 + i * (width - 4) / max(n - 1, 1):.1f},"
        f"{height - 3 - (v - lo) / spread * (height - 6):.1f}"
        for i, v in enumerate(values)
    )
    last_x = 2 + (n - 1) * (width - 4) / max(n - 1, 1)
    last_y = height - 3 - (values[-1] - lo) / spread * (height - 6)
    return (
        f'<svg class="spark" width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.0f} {height:.0f}">'
        f'<polyline points="{pts}" fill="none" stroke="#4e79a7" stroke-width="1.2"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2" fill="#e15759"/></svg>'
    )


def _history_section(history: "list[RunRecord] | None") -> str:
    if not history:
        return _nodata("no ledger history (pass --ledger / set REPRO_LEDGER)")
    series: dict[str, list[float]] = {}
    for rec in history:
        for name, secs in rec.phases.items():
            series.setdefault(name, []).append(secs)
    rows = []
    for name, vals in sorted(series.items()):
        rows.append(
            f"<tr><td>{_esc(name)}</td><td>{len(vals)}</td>"
            f"<td>{vals[-1]:.6f}</td>"
            f"<td>{_sparkline(vals)}</td></tr>"
        )
    parts = [
        f'<p class="note">{len(history)} ledgered run(s)</p>',
        "<table><tr><th>phase</th><th>runs</th><th>latest (s)</th>"
        "<th>history</th></tr>" + "".join(rows) + "</table>",
    ]
    if len(history) >= 2:
        from .regress import compare

        baseline: dict[str, list[float]] = {}
        for rec in history[:-1]:
            for name, secs in rec.phases.items():
                baseline.setdefault(name, []).append(secs)
        rep = compare(baseline, history[-1].phases)
        if rep.ok:
            parts.append(
                f'<p class="ok">regression gate: no confirmed regressions across '
                f"{rep.compared} compared phase(s)</p>"
            )
        else:
            worst = max(rep.regressions, key=lambda v: v.ratio or 0.0)
            parts.append(
                f'<p class="bad">regression gate: CONFIRMED REGRESSION in '
                f"{len(rep.regressions)} phase(s); worst {_esc(worst.name)} at "
                f"{worst.ratio:.2f}x baseline</p>"
            )
    else:
        parts.append(
            '<p class="note">regression verdict needs at least two ledgered runs</p>'
        )
    return "".join(parts)


# --------------------------------------------------------------------- #
# Assembly
# --------------------------------------------------------------------- #


def build_report(
    *,
    title: str = "repro run report",
    trace: dict | None = None,
    events: list[dict] | None = None,
    record: "RunRecord | None" = None,
    history: "list[RunRecord] | None" = None,
    profile: dict | None = None,
) -> str:
    """Assemble the single-file HTML report (:data:`REPORT_SECTIONS`).

    Every input is optional; absent data renders as an explicit note so
    the section anchors (and :func:`validate_report`) always hold.
    """
    meta_bits = []
    if record is not None:
        if record.git_sha:
            meta_bits.append(f"git {record.git_sha[:12]}")
        if record.host.get("hostname"):
            meta_bits.append(str(record.host["hostname"]))
        wl = record.meta.get("workload")
        ds = record.meta.get("dataset")
        if wl or ds:
            meta_bits.append(f"{wl or '?'} on {ds or '?'}")
    if events:
        meta_bits.append(f"{len(events)} events")
    if trace:
        meta_bits.append(f"{len(trace.get('traceEvents', []))} trace events")

    sections = {
        "waterfall": (
            "Phase waterfall (Chrome trace)",
            _waterfall_svg(trace) if trace else _nodata(
                "no Chrome trace (run repro-bench profile --trace-out, or pass --trace)"
            ),
        ),
        "timeline": (
            "Work-queue & device timeline (event stream)",
            _timeline_svg(events or [], trace),
        ),
        "memory": ("Table-1 memory: measured vs model", _memory_section(record)),
        "counters": ("Counters", _counters_section(record)),
        "slo": (
            "SLO panel: budgets vs measured tails",
            _slo_section(events, record),
        ),
        "profile": (
            "Continuous profiling (collapsed stacks)",
            _profile_section(profile, record),
        ),
        "critpath": (
            "Critical path & stragglers",
            _critpath_section(trace, events),
        ),
        "history": ("Ledger history & regression verdict", _history_section(history)),
    }
    body = "".join(
        f'<section id="section-{name}"><h2>{_esc(heading)}</h2>{content}</section>'
        for name, (heading, content) in sections.items()
    )
    return (
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>"
        f"<header><h1>{_esc(title)}</h1>"
        f'<p class="meta">{_esc(" · ".join(meta_bits) or "no run metadata")}</p>'
        f"</header>{body}<script>{_JS}</script></body></html>\n"
    )


def write_report(path, **kwargs) -> str:
    """Build and write the report; returns the path."""
    doc = build_report(**kwargs)
    with open(path, "w") as fh:
        fh.write(doc)
    return str(path)


def validate_report(doc: str) -> list[str]:
    """Smoke-check an emitted report; returns problems (empty = valid).

    Verifies the document parses as HTML, carries every
    :data:`REPORT_SECTIONS` anchor, and references no external network
    resources — the
    "self-contained single file" contract CI gates on.
    """
    problems: list[str] = []
    if not doc.lstrip().lower().startswith("<!doctype html"):
        problems.append("missing <!doctype html> preamble")
    if "</html>" not in doc:
        problems.append("missing closing </html>")
    for name in REPORT_SECTIONS:
        if f'id="section-{name}"' not in doc:
            problems.append(f"missing section anchor: section-{name}")
    lowered = doc.lower()
    for needle in ('src="http', "src='http", 'href="http', "href='http"):
        if needle in lowered:
            problems.append("report references an external network resource")
            break
    from html.parser import HTMLParser

    class _Checker(HTMLParser):
        def __init__(self) -> None:
            super().__init__()
            self.stack: list[str] = []
            self.balanced = True

        VOID = {"meta", "br", "hr", "img", "link", "input", "circle",
                "rect", "line", "polyline", "path"}

        def handle_starttag(self, tag, attrs):
            if tag not in self.VOID:
                self.stack.append(tag)

        def handle_endtag(self, tag):
            if tag in self.VOID:
                return
            if not self.stack or self.stack.pop() != tag:
                self.balanced = False

    checker = _Checker()
    try:
        checker.feed(doc)
        checker.close()
    except Exception as exc:  # pragma: no cover - parser never raises on str
        problems.append(f"HTML parse error: {exc}")
    else:
        if not checker.balanced or checker.stack:
            problems.append("unbalanced HTML tags")
    try:
        json.dumps(doc)  # embeddable in CI annotations
    except (TypeError, ValueError):  # pragma: no cover - str always dumps
        problems.append("report is not JSON-embeddable text")
    return problems
