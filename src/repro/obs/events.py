"""Structured event stream: per-pid JSONL shards + tolerant merged reader.

Spans (:mod:`repro.obs.trace`) answer "how long did each phase take";
events answer "what happened, in what order, across every process" — the
runtime dynamics the paper's heterogeneous story is built on (the
double-ended queue grabs of Indarapu et al., device occupancy, worker
liveness).  Each event is one small JSON object appended to a per-process
shard file, so a run can be watched *while it executes* (``repro-bench
watch``) and reconstructed afterwards (``repro-bench report``).

Design constraints, mirroring the rest of ``repro.obs``:

1. **Disabled is free.**  With ``REPRO_EVENTS`` unset there is no sink:
   :func:`emit` is one module-global read and an ``is None`` test, and
   hot loops guard with :func:`enabled` so not even an argument dict is
   built.  The test-suite pins this with the same tracemalloc budget as
   the trace null span.
2. **Multi-process safe by construction.**  Every process writes only its
   own shard (``events-<pid>.jsonl``), opened ``O_APPEND`` and written as
   one ``os.write`` per line — no cross-process locks, no interleaved
   partial lines.  A forked worker notices the pid change and re-opens
   its own shard; a spawned worker re-arms from the inherited environment
   variable.
3. **Tolerant reader.**  :class:`EventLog` merges every shard, skipping
   (and counting) malformed or future-schema lines — the same
   old-reader/new-writer contract as :mod:`repro.obs.ledger`.
4. **Bounded.**  Emission sites are per *chunk / grab / phase*, never per
   edge, and each shard stops (counting drops) at
   :data:`MAX_EVENTS_PER_SHARD` as a runaway backstop.

Event schema (one JSON object per line)::

    {"v": 1, "seq": 17, "ts_ns": 123456789, "pid": 4242,
     "kind": "queue.grab", ...kind-specific fields...}

``ts_ns`` is ``time.perf_counter_ns()`` — CLOCK_MONOTONIC on Linux, one
clock for every process on the host, directly comparable with trace-span
timestamps.  See ``docs/OBSERVABILITY.md`` for the kind catalogue.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "MAX_EVENTS_PER_SHARD",
    "EventSink",
    "EventLog",
    "emit",
    "emitting",
    "enabled",
    "current_sink",
    "events_to",
    "default_events_dir",
]

#: Bump when a reader would misinterpret older events.  Readers accept
#: events with ``v <= EVENT_SCHEMA_VERSION`` and skip newer ones.
EVENT_SCHEMA_VERSION = 1

#: Per-shard hard cap — a runaway emission loop degrades to counted drops,
#: never an unbounded file.
MAX_EVENTS_PER_SHARD = 200_000

_FALSY = {"", "0", "false", "no", "off"}
_FLAGGY = {"1", "true", "yes", "on"}

#: Directory used when ``REPRO_EVENTS`` is a bare flag rather than a path.
DEFAULT_EVENTS_DIR = "repro-events"


class EventSink:
    """Appends events to this process's shard under one directory.

    The shard file (``events-<pid>.jsonl``) is opened lazily on first
    emit *in the emitting process*: a pool worker — fork and spawn alike
    — therefore writes its own shard, keyed by its own pid, and the
    parent's shard is never shared.  Each line is a single ``O_APPEND``
    ``os.write``, so even threads racing within one process never
    interleave partial lines.
    """

    def __init__(self, dir_path: str | os.PathLike) -> None:
        self.dir = Path(dir_path)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.dropped = 0
        self._fd: int | None = None
        self._fd_pid: int | None = None
        self._seq = 0
        self._lock = threading.Lock()

    def shard_path(self, pid: int | None = None) -> Path:
        return self.dir / f"events-{pid if pid is not None else os.getpid()}.jsonl"

    def _ensure_fd(self, pid: int) -> int:
        if self._fd is None or self._fd_pid != pid:
            if self._fd is not None:
                # Forked child: drop the inherited descriptor (its copy
                # only; the parent's stays open) and start a fresh shard.
                try:
                    os.close(self._fd)
                except OSError:  # pragma: no cover - already closed
                    pass
            self._fd = os.open(
                self.shard_path(pid), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            self._fd_pid = pid
            self._seq = 0
        return self._fd

    def emit(self, kind: str, **fields) -> None:
        """Append one event (schema-stamped, timestamped) to this pid's shard."""
        pid = os.getpid()
        with self._lock:
            if self._seq >= MAX_EVENTS_PER_SHARD:
                self.dropped += 1
                return
            doc = {
                "v": EVENT_SCHEMA_VERSION,
                "seq": self._seq,
                "ts_ns": time.perf_counter_ns(),
                "pid": pid,
                "kind": kind,
            }
            # The envelope always wins: a payload field that collides with
            # a schema key (a query endpoint named ``v``, a worker field
            # named ``pid``) is dropped rather than allowed to corrupt the
            # envelope and get the whole line skipped by the reader.
            for key, val in fields.items():
                doc.setdefault(key, val)
            line = json.dumps(doc, separators=(",", ":"), default=str) + "\n"
            os.write(self._ensure_fd(pid), line.encode())
            self._seq += 1

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:  # pragma: no cover - already closed
                    pass
                self._fd = None
                self._fd_pid = None


class EventLog:
    """Tolerant merged reader over every shard in an event directory.

    ``skipped`` counts lines the last :meth:`read` could not interpret
    (corrupt JSON, missing fields, future schema) — reported, never
    fatal, so an old checkout can read a stream written by a newer one
    and a live ``watch`` can race the writers safely.

    ``clamped`` counts events whose ``ts_ns`` ran *backwards* within
    their own shard.  ``perf_counter_ns`` is monotonic per host, but a
    shard copied from another machine (or a VM suspend/resume) can carry
    skewed clocks; a backwards step inside one pid's append-ordered file
    is physically impossible, so the reader clamps the timestamp up to
    the shard's running maximum and flags the event ``ts_clamped`` —
    making the merged stream honestly ordered instead of silently
    interleaving skewed shards wrongly.
    """

    def __init__(self, dir_path: str | os.PathLike) -> None:
        self.dir = Path(dir_path)
        self.skipped = 0
        self.clamped = 0

    def shards(self) -> list[Path]:
        if not self.dir.is_dir():
            return []
        return sorted(self.dir.glob("events-*.jsonl"))

    def read(self, kinds: set[str] | None = None) -> list[dict]:
        """Every parseable event, merged across shards, in timestamp order.

        Within each shard, file order is emission order (O_APPEND), so a
        timestamp below the shard's running maximum is clamped to it and
        the event gains ``ts_clamped: True`` — clamping runs before any
        ``kinds`` filter so skew tracking sees every event.
        """
        self.skipped = 0
        self.clamped = 0
        out: list[dict] = []
        for shard in self.shards():
            try:
                with open(shard) as fh:
                    lines = fh.readlines()
            except OSError:  # pragma: no cover - shard vanished mid-read
                continue
            high = None  # running max ts_ns of this shard, in file order
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    ev = json.loads(line)
                except json.JSONDecodeError:
                    self.skipped += 1
                    continue
                if not self._valid(ev):
                    self.skipped += 1
                    continue
                if high is not None and ev["ts_ns"] < high:
                    ev["ts_ns"] = high
                    ev["ts_clamped"] = True
                    self.clamped += 1
                else:
                    high = ev["ts_ns"]
                if kinds is None or ev["kind"] in kinds:
                    out.append(ev)
        out.sort(key=lambda e: (e["ts_ns"], e["pid"], e.get("seq", 0)))
        return out

    @staticmethod
    def _valid(ev) -> bool:
        if not isinstance(ev, dict):
            return False
        v = ev.get("v")
        if not isinstance(v, int) or v > EVENT_SCHEMA_VERSION:
            return False
        return (
            isinstance(ev.get("kind"), str)
            and isinstance(ev.get("ts_ns"), int)
            and isinstance(ev.get("pid"), int)
        )

    def kinds(self) -> dict[str, int]:
        """Event count per kind (one full read)."""
        out: dict[str, int] = {}
        for ev in self.read():
            out[ev["kind"]] = out.get(ev["kind"], 0) + 1
        return out


# --------------------------------------------------------------------- #
# Module-global enablement (the hot-path contract)
# --------------------------------------------------------------------- #

_sink: EventSink | None = None
_sink_lock = threading.Lock()


def current_sink() -> EventSink | None:
    """The active sink, or ``None`` while event emission is disabled."""
    return _sink


def enabled() -> bool:
    """True when a sink is installed.

    Hot loops guard with this so a disabled run does not even build the
    event's field dict: one module-global read, one ``is None`` test.
    """
    return _sink is not None


def emit(kind: str, **fields) -> None:
    """Emit one event if a sink is installed; a no-op otherwise."""
    sink = _sink
    if sink is None:
        return
    sink.emit(kind, **fields)


class _NullEmitting:
    """Shared no-op context manager returned while events are disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullEmitting":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_EMITTING = _NullEmitting()


class _LiveEmitting:
    """Emits ``<kind>.start`` on entry and ``<kind>.finish`` on exit.

    The finish event carries ``dur_ns`` and, when the block raised,
    ``error=<ExceptionType>`` — so a crashed phase is visible in the
    stream, mirroring the trace layer's exception tagging.
    """

    __slots__ = ("_sink", "_kind", "_fields", "_t0")

    def __init__(self, sink: EventSink, kind: str, fields: dict) -> None:
        self._sink = sink
        self._kind = kind
        self._fields = fields
        self._t0 = 0

    def __enter__(self) -> "_LiveEmitting":
        self._t0 = time.perf_counter_ns()
        self._sink.emit(f"{self._kind}.start", **self._fields)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter_ns() - self._t0
        if exc_type is not None:
            self._fields["error"] = exc_type.__name__
        self._sink.emit(f"{self._kind}.finish", dur_ns=dur, **self._fields)
        return False


def emitting(kind: str, **fields):
    """Bracket a block with ``<kind>.start`` / ``<kind>.finish`` events.

    Disabled mode returns the shared null singleton (no allocation beyond
    the transient call frame); the pipeline runners use this for their
    Section 2.4 phase transitions.
    """
    sink = _sink
    if sink is None:
        return _NULL_EMITTING
    return _LiveEmitting(sink, kind, fields)


def _resolve_dir(val: str) -> str | None:
    """Map a ``REPRO_EVENTS`` value to an event directory (or None)."""
    val = val.strip()
    if val.lower() in _FALSY:
        return None
    if val.lower() in _FLAGGY:
        return DEFAULT_EVENTS_DIR
    return val


def default_events_dir() -> Path | None:
    """The event directory named by ``REPRO_EVENTS``, or ``None``."""
    d = _resolve_dir(os.environ.get("REPRO_EVENTS", ""))
    return Path(d) if d else None


class events_to:
    """Install an :class:`EventSink` on ``dir_path`` for a ``with`` block.

    Also exports ``REPRO_EVENTS=<dir>`` for the duration, so worker
    processes started under the ``spawn`` method (which re-import rather
    than inherit globals) arm their own sinks on the same directory.
    Nestable; the previous sink and environment value are restored on
    exit.  Yields the sink (``sink.dir`` is the directory to read back).
    """

    def __init__(self, dir_path: str | os.PathLike) -> None:
        self.sink = EventSink(dir_path)
        self._prev: EventSink | None = None
        self._prev_env: str | None = None

    def __enter__(self) -> EventSink:
        global _sink
        with _sink_lock:
            self._prev = _sink
            _sink = self.sink
        self._prev_env = os.environ.get("REPRO_EVENTS")
        os.environ["REPRO_EVENTS"] = str(self.sink.dir)
        return self.sink

    def __exit__(self, *exc) -> bool:
        global _sink
        with _sink_lock:
            _sink = self._prev
        if self._prev_env is None:
            os.environ.pop("REPRO_EVENTS", None)
        else:
            os.environ["REPRO_EVENTS"] = self._prev_env
        self.sink.close()
        return False


def _install_from_env() -> None:
    """Arm the ambient sink when ``REPRO_EVENTS`` is truthy.

    A bare flag value (``1``/``true``/...) writes shards under
    ``repro-events/``; anything else is the directory path.  Worker
    processes inherit the variable, so their sinks arm automatically
    under both ``fork`` and ``spawn``.
    """
    global _sink
    d = _resolve_dir(os.environ.get("REPRO_EVENTS", ""))
    if d is None:
        return
    _sink = EventSink(d)


_install_from_env()
