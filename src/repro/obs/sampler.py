"""Continuous profiling: a zero-dependency thread-based stack sampler.

Traces and events attribute time to *instrumented* seams; the sampler
answers the complementary question — where does the interpreter actually
spend its time *between* those seams — without adding a dependency or
touching the measured code.  A daemon thread wakes ``hz`` times a second,
snapshots every other thread's Python stack via
:func:`sys._current_frames`, and counts identical stacks.

The export is Brendan Gregg's **collapsed-stack** format — one line per
unique stack, root-first frames joined by ``;``, then a space and the
sample count::

    main.py:main;cli.py:_cmd_profile;engine.py:all_pairs 42

which every flamegraph renderer (flamegraph.pl, speedscope, inferno)
consumes directly.  Like the event stream, output is **per-pid shards**
(``profile-<pid>.collapsed``) in one directory: pool workers arm their own
samplers from the inherited ``REPRO_SAMPLER`` environment (both ``fork``
and ``spawn``, because :mod:`repro.obs` imports this module) and write
their own shards at exit, which :func:`read_profile` merges.

Overhead at the default 97 Hz is a fraction of a percent for
numpy-dominated workloads (the sampled threads never block); the contract
is measured by ``scripts/bench_smoke.py`` (< 5%) and gated in CI.
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
from pathlib import Path

from . import metrics as _metrics

__all__ = [
    "DEFAULT_HZ",
    "DEFAULT_PROFILE_DIR",
    "StackSampler",
    "sampling_to",
    "active_sampler",
    "parse_collapsed",
    "read_profile",
    "top_stacks",
]

#: Default sampling rate.  A prime, so the sampler cannot phase-lock with
#: periodic work (the classic 100 Hz vs 100 Hz-timer aliasing trap).
DEFAULT_HZ = 97

#: Directory used when ``REPRO_SAMPLER`` is a bare flag rather than a path.
DEFAULT_PROFILE_DIR = "repro-profile"

#: Stack-depth backstop: deeper stacks are truncated at the root end.
MAX_DEPTH = 128

_FALSY = {"", "0", "false", "no", "off"}
_FLAGGY = {"1", "true", "yes", "on"}

_C_SAMPLES = _metrics.counter("sampler.samples")
_C_ERRORS = _metrics.counter("sampler.errors")


def _frame_name(frame) -> str:
    """Render one frame as ``basename.py:qualname``, collapse-safe."""
    code = frame.f_code
    fn = os.path.basename(code.co_filename)
    qual = getattr(code, "co_qualname", code.co_name)
    # ``;`` separates frames and ``" "`` separates stack from count in the
    # collapsed format — neither may appear inside a frame name.
    return f"{fn}:{qual}".replace(";", ",").replace(" ", "_")


class StackSampler:
    """Samples every thread's Python stack at ``hz`` from a daemon thread."""

    def __init__(self, hz: float = DEFAULT_HZ) -> None:
        if not hz > 0:
            raise ValueError(f"sampler hz must be > 0, got {hz}")
        self.hz = float(hz)
        self.counts: dict[tuple[str, ...], int] = {}
        self.samples = 0
        self.errors = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------- #

    def start(self) -> "StackSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None

    def _run(self) -> None:
        interval = 1.0 / self.hz
        me = threading.get_ident()
        while not self._stop.wait(interval):
            try:
                frames = sys._current_frames()
            except Exception:
                self.errors += 1
                _C_ERRORS.inc()
                continue
            for tid, frame in frames.items():
                if tid == me:
                    continue
                stack: list[str] = []
                depth = 0
                while frame is not None and depth < MAX_DEPTH:
                    stack.append(_frame_name(frame))
                    frame = frame.f_back
                    depth += 1
                if not stack:
                    continue
                stack.reverse()  # collapsed format is root-first
                key = tuple(stack)
                with self._lock:
                    self.counts[key] = self.counts.get(key, 0) + 1
                    self.samples += 1
                _C_SAMPLES.inc()

    # -- export -------------------------------------------------------- #

    def collapsed(self) -> str:
        """The counted stacks in collapsed (flamegraph) format."""
        with self._lock:
            items = sorted(self.counts.items())
        return "".join(f"{';'.join(stack)} {n}\n" for stack, n in items)

    def write(self, dir_path) -> Path:
        """Write this process's shard: ``<dir>/profile-<pid>.collapsed``."""
        d = Path(dir_path)
        d.mkdir(parents=True, exist_ok=True)
        path = d / f"profile-{os.getpid()}.collapsed"
        path.write_text(self.collapsed())
        return path


# --------------------------------------------------------------------- #
# Ambient sampler (REPRO_SAMPLER), mirroring the event-sink discipline.

_sampler: StackSampler | None = None
_sampler_dir: str | None = None


def active_sampler() -> StackSampler | None:
    """The ambient sampler, or ``None`` when profiling is off."""
    return _sampler


def _resolve_dir(val: str) -> str | None:
    """Map a ``REPRO_SAMPLER`` value to a profile directory (or None)."""
    val = val.strip()
    if val.lower() in _FALSY:
        return None
    if val.lower() in _FLAGGY:
        return DEFAULT_PROFILE_DIR
    return val


def _resolve_hz() -> float:
    try:
        return float(os.environ.get("REPRO_SAMPLER_HZ", DEFAULT_HZ))
    except ValueError:
        return float(DEFAULT_HZ)


class sampling_to:
    """Run a ``with`` block under a stack sampler writing into ``dir_path``.

    Exports ``REPRO_SAMPLER`` / ``REPRO_SAMPLER_HZ`` for the duration so
    pool workers (fork *and* spawn — :mod:`repro.obs` imports this module,
    arming :func:`_install_from_env` in every child) profile themselves
    into per-pid shards of the same directory.  The parent shard is
    written on exit.
    """

    def __init__(self, dir_path, hz: float = DEFAULT_HZ) -> None:
        self.dir = Path(dir_path)
        self.sampler = StackSampler(hz)
        self._prev: StackSampler | None = None
        self._prev_env: tuple[str | None, str | None] | None = None

    def __enter__(self) -> StackSampler:
        global _sampler
        self._prev = _sampler
        self._prev_env = (
            os.environ.get("REPRO_SAMPLER"),
            os.environ.get("REPRO_SAMPLER_HZ"),
        )
        os.environ["REPRO_SAMPLER"] = str(self.dir)
        os.environ["REPRO_SAMPLER_HZ"] = repr(self.sampler.hz)
        _sampler = self.sampler.start()
        return self.sampler

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _sampler
        self.sampler.stop()
        self.sampler.write(self.dir)
        _sampler = self._prev
        for name, prev in zip(("REPRO_SAMPLER", "REPRO_SAMPLER_HZ"), self._prev_env):
            if prev is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = prev
        return False


def _write_ambient_shard() -> None:  # pragma: no cover - exercised in workers
    if _sampler is not None and _sampler_dir is not None:
        try:
            _sampler.stop()
            _sampler.write(_sampler_dir)
        except OSError:
            _C_ERRORS.inc()


def _install_from_env() -> None:
    """Arm an ambient sampler when ``REPRO_SAMPLER`` is truthy.

    A bare flag value (``1``/``true``/...) writes shards under
    ``repro-profile/``; anything else is the directory path.  Worker
    processes inherit the variable, so their samplers arm automatically
    under both ``fork`` and ``spawn``; each writes its own per-pid shard
    at interpreter exit.
    """
    global _sampler, _sampler_dir
    d = _resolve_dir(os.environ.get("REPRO_SAMPLER", ""))
    if d is None or _sampler is not None:
        return
    _sampler_dir = d
    _sampler = StackSampler(_resolve_hz()).start()
    atexit.register(_write_ambient_shard)


# --------------------------------------------------------------------- #
# Readers.

def parse_collapsed(text: str) -> dict[tuple[str, ...], int]:
    """Parse collapsed-stack text back into ``{stack_tuple: count}``.

    Raises :class:`ValueError` on malformed lines — CI uses this as the
    "output is actually a flamegraph input" validation.
    """
    counts: dict[tuple[str, ...], int] = {}
    for ln, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        stack_part, sep, count_part = line.rpartition(" ")
        if not sep or not stack_part:
            raise ValueError(f"collapsed line {ln}: no 'stack count' split: {line!r}")
        try:
            n = int(count_part)
        except ValueError as exc:
            raise ValueError(f"collapsed line {ln}: bad count {count_part!r}") from exc
        if n <= 0:
            raise ValueError(f"collapsed line {ln}: count must be positive, got {n}")
        key = tuple(stack_part.split(";"))
        counts[key] = counts.get(key, 0) + n
    return counts


def read_profile(dir_path) -> dict[tuple[str, ...], int]:
    """Merge every ``profile-*.collapsed`` shard of one directory."""
    merged: dict[tuple[str, ...], int] = {}
    d = Path(dir_path)
    if not d.is_dir():
        return merged
    for shard in sorted(d.glob("profile-*.collapsed")):
        try:
            counts = parse_collapsed(shard.read_text())
        except (OSError, ValueError):
            _C_ERRORS.inc()
            continue
        for key, n in counts.items():
            merged[key] = merged.get(key, 0) + n
    return merged


def top_stacks(counts: dict[tuple[str, ...], int], k: int = 10) -> list[tuple[str, int]]:
    """The ``k`` hottest leaf-annotated stacks, heaviest first."""
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(";".join(stack), n) for stack, n in ranked[:k]]


_install_from_env()
