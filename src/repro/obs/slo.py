"""Latency/jitter SLO gate over merged event streams (``repro-bench slo``).

The rest of ``repro.obs`` records what a run did; this module asserts what
it was *allowed* to do.  It extracts per-phase / per-chunk / per-query
latency distributions from a merged :mod:`repro.obs.events` stream,
summarises each as tail percentiles plus jitter, and judges the summaries
against declared budgets with exit-coded verdicts — the CORTEX-style
deadline harness of ROADMAP item 5, and the serving-latency contract the
distance-oracle query service (item 1) gates on.

Latency sources, keyed by metric name:

``phase.<cat>.<phase>``
    ``phase.finish`` events carry ``dur_ns`` (the :func:`~repro.obs.
    events.emitting` bracket), one sample per pipeline phase execution.
``chunk``
    ``chunk.start`` / ``chunk.finish`` pairs from the bulk-SSSP engine,
    paired per pid in stream order (chunks never nest within a process).
``dispatch``
    ``dispatch.start`` / ``dispatch.finish`` pairs from the parallel
    backend's fan-out brackets.
``query`` / ``query_batch``
    ``query.finish`` / ``query_batch.finish`` events with ``dur_ns``,
    emitted by the scenario runner's query load
    (:mod:`repro.scenarios.runner`).

Percentiles use the same linear interpolation as
:meth:`repro.obs.metrics.Histogram.percentile`, so the two agree to the
sample on identical data (pinned by the test suite).  Jitter is reported
both ways the real-time literature uses the word: interquartile range
(``jitter_iqr``, robust) and full spread (``jitter_range``, worst-case).

Exit codes (shared with ``repro-bench slo`` / ``scenarios`` / ``watch``):

* :data:`EXIT_OK` (0) — every budget met;
* :data:`EXIT_VIOLATED` (1) — at least one budget violated;
* :data:`EXIT_NO_DATA` (2) — budgets name metrics the stream lacks;
* :data:`EXIT_EMPTY_STREAM` (3) — no parseable events at all (see
  :func:`repro.obs.watch.empty_stream_hint`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "EXIT_OK",
    "EXIT_VIOLATED",
    "EXIT_NO_DATA",
    "EXIT_EMPTY_STREAM",
    "STAT_NAMES",
    "percentile",
    "LatencyStats",
    "extract_latencies",
    "SLOBudget",
    "parse_budgets",
    "SLOVerdict",
    "Exemplar",
    "extract_exemplars",
    "SLOReport",
    "evaluate",
    "slo_from_events",
]

EXIT_OK = 0
EXIT_VIOLATED = 1
EXIT_NO_DATA = 2
EXIT_EMPTY_STREAM = 3

#: Statistics a budget may bound, in render order.
STAT_NAMES = (
    "p50", "p90", "p99", "p999", "mean", "max",
    "jitter_iqr", "jitter_range", "miss_frac",
)


def percentile(samples: list[float], p: float) -> float:
    """The ``p``-th percentile (0–100) with linear interpolation.

    Bit-for-bit the same rank arithmetic as
    :meth:`repro.obs.metrics.Histogram.percentile`, so SLO verdicts and
    histogram snapshots never disagree on shared data.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile {p!r} outside [0, 100]")
    if not samples:
        raise ValueError("percentile of empty sample set")
    ordered = sorted(samples)
    rank = (len(ordered) - 1) * (p / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class LatencyStats:
    """One metric's latency distribution, summarised for budget checks.

    All durations are seconds.  ``misses``/``miss_frac`` are only
    meaningful when a ``deadline_s`` was declared for the metric —
    without one they are 0 against a ``deadline_s`` of ``None``.
    """

    metric: str
    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    p999: float
    min: float
    max: float
    jitter_iqr: float
    jitter_range: float
    deadline_s: float | None = None
    misses: int = 0

    @property
    def miss_frac(self) -> float:
        return self.misses / self.count if self.count else 0.0

    @classmethod
    def from_samples(
        cls, metric: str, samples: list[float], deadline_s: float | None = None
    ) -> "LatencyStats":
        if not samples:
            raise ValueError(f"metric {metric!r} has no samples")
        ordered = sorted(samples)
        n = len(ordered)
        misses = (
            sum(1 for s in ordered if s > deadline_s)
            if deadline_s is not None
            else 0
        )
        return cls(
            metric=metric,
            count=n,
            mean=sum(ordered) / n,
            p50=percentile(ordered, 50.0),
            p90=percentile(ordered, 90.0),
            p99=percentile(ordered, 99.0),
            p999=percentile(ordered, 99.9),
            min=ordered[0],
            max=ordered[-1],
            jitter_iqr=percentile(ordered, 75.0) - percentile(ordered, 25.0),
            jitter_range=ordered[-1] - ordered[0],
            deadline_s=deadline_s,
            misses=misses,
        )

    def value(self, stat: str) -> float:
        """The named statistic (one of :data:`STAT_NAMES`, plus min/count)."""
        if stat not in STAT_NAMES and stat not in ("min", "count"):
            raise ValueError(f"unknown latency statistic {stat!r}")
        return float(getattr(self, stat))

    def as_dict(self) -> dict:
        return {
            "metric": self.metric,
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "p999": self.p999,
            "min": self.min,
            "max": self.max,
            "jitter_iqr": self.jitter_iqr,
            "jitter_range": self.jitter_range,
            "deadline_s": self.deadline_s,
            "misses": self.misses,
            "miss_frac": self.miss_frac,
        }


def extract_latencies(events: list[dict]) -> dict[str, list[float]]:
    """Per-metric latency samples (seconds) from a merged event stream.

    ``*.finish`` events carrying ``dur_ns`` contribute directly (phase
    brackets become ``phase.<cat>.<phase>``); bare ``chunk`` and
    ``dispatch`` start/finish pairs are matched per pid in stream order.
    Events the stream's writers never produced simply yield no metric —
    callers decide whether an absent metric is an error
    (:data:`EXIT_NO_DATA`) or not.
    """
    out: dict[str, list[float]] = {}
    open_pairs: dict[tuple[str, int], list[int]] = {}
    for ev in events:
        kind = ev.get("kind", "")
        dur = ev.get("dur_ns")
        if kind.endswith(".finish") and isinstance(dur, (int, float)):
            base = kind[: -len(".finish")]
            if base == "phase":
                key = f"phase.{ev.get('cat', '?')}.{ev.get('phase', '?')}"
            else:
                key = base
            out.setdefault(key, []).append(float(dur) / 1e9)
            continue
        base, _, tail = kind.rpartition(".")
        if base in ("chunk", "dispatch"):
            stack = open_pairs.setdefault((base, ev["pid"]), [])
            if tail == "start":
                stack.append(ev["ts_ns"])
            elif tail == "finish" and stack:
                t0 = stack.pop(0)
                out.setdefault(base, []).append((ev["ts_ns"] - t0) / 1e9)
    return out


# --------------------------------------------------------------------- #
# Tail exemplars
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Exemplar:
    """One tail sample tied back to *why* it was slow.

    The scenario runner emits ``kind="exemplar"`` events for query
    samples above its configured percentile, carrying the query's
    provenance digest (:mod:`repro.obs.provenance`) — pair class,
    resolver formula, component, boundary APs — plus the pid/timestamp
    that locate the sample inside the Chrome trace's per-pid lanes.
    """

    metric: str
    dur_s: float
    rank: int                 # 1 = slowest of its metric
    pid: int
    ts_ns: int
    u: int | None = None
    v: int | None = None
    pair_class: str | None = None
    resolver: str | None = None
    component: int | None = None
    boundary_aps: tuple | None = None
    digest: str | None = None

    @classmethod
    def from_event(cls, ev: dict, rank: int) -> "Exemplar":
        aps = ev.get("boundary_aps")
        return cls(
            metric=str(ev.get("metric", "?")),
            dur_s=float(ev.get("dur_ns", 0)) / 1e9,
            rank=rank,
            pid=int(ev.get("pid", 0)),
            ts_ns=int(ev.get("ts_ns", 0)),
            u=ev.get("src"),
            v=ev.get("dst"),
            pair_class=ev.get("pair_class"),
            resolver=ev.get("resolver"),
            component=ev.get("component"),
            boundary_aps=tuple(aps) if aps else None,
            digest=ev.get("digest"),
        )

    def as_dict(self) -> dict:
        return {
            "metric": self.metric,
            "dur_s": self.dur_s,
            "rank": self.rank,
            "pid": self.pid,
            "ts_ns": self.ts_ns,
            "u": self.u,
            "v": self.v,
            "pair_class": self.pair_class,
            "resolver": self.resolver,
            "component": self.component,
            "boundary_aps": list(self.boundary_aps) if self.boundary_aps else None,
            "digest": self.digest,
        }


def extract_exemplars(events: list[dict], top_k: int = 10) -> list[Exemplar]:
    """The slowest attributed samples of a stream, worst first.

    Prefers explicit ``kind="exemplar"`` events (full provenance); when a
    stream carries none — a run predating the scenario runner's capture,
    or a plain profile run — the slowest ``*.finish`` events with
    ``dur_ns`` are synthesised into bare exemplars (duration + location,
    no attribution) so the report's tail table never renders empty for a
    stream that did record durations.  At most ``top_k`` per metric.
    """
    explicit = [ev for ev in events if ev.get("kind") == "exemplar"]
    per_metric: dict[str, list[dict]] = {}
    if explicit:
        pool = explicit
    else:
        pool = []
        for ev in events:
            kind = ev.get("kind", "")
            dur = ev.get("dur_ns")
            if not kind.endswith(".finish") or not isinstance(dur, (int, float)):
                continue
            base = kind[: -len(".finish")]
            if base == "phase":
                metric = f"phase.{ev.get('cat', '?')}.{ev.get('phase', '?')}"
            else:
                metric = base
            pool.append(dict(ev, metric=metric))
    for ev in pool:
        per_metric.setdefault(str(ev.get("metric", "?")), []).append(ev)
    out: list[Exemplar] = []
    for metric in sorted(per_metric):
        ranked = sorted(
            per_metric[metric], key=lambda e: -float(e.get("dur_ns", 0))
        )[: max(0, int(top_k))]
        out.extend(Exemplar.from_event(ev, rank=i + 1) for i, ev in enumerate(ranked))
    out.sort(key=lambda ex: (-ex.dur_s, ex.metric, ex.rank))
    return out


# --------------------------------------------------------------------- #
# Budgets
# --------------------------------------------------------------------- #

#: Budget-dict keys that bound a statistic, with their unit scale to
#: seconds.  ``*_ms`` variants exist because millisecond budgets are what
#: humans actually write in scenario configs.
_BUDGET_KEYS: dict[str, tuple[str, float]] = {}
for _stat in ("p50", "p90", "p99", "p999", "mean", "max",
              "jitter_iqr", "jitter_range"):
    _BUDGET_KEYS[f"{_stat}_s"] = (_stat, 1.0)
    _BUDGET_KEYS[f"{_stat}_ms"] = (_stat, 1e-3)
_BUDGET_KEYS["miss_frac"] = ("miss_frac", 1.0)


@dataclass(frozen=True)
class SLOBudget:
    """One bound: ``metric``'s ``stat`` must not exceed ``limit``.

    ``limit`` is seconds for duration statistics and a fraction for
    ``miss_frac``.  ``deadline_s`` rides along on every budget of a
    metric so miss counting knows its threshold.
    """

    metric: str
    stat: str
    limit: float
    deadline_s: float | None = None


def parse_budgets(spec) -> list[SLOBudget]:
    """Parse the declarative budget list of a scenario config.

    ``spec`` is a list of dicts, one per metric::

        [{"metric": "query", "p99_ms": 5.0, "deadline_ms": 10.0,
          "miss_frac": 0.01},
         {"metric": "phase.apsp.process", "p50_s": 2.0}]

    Duration statistics take an ``_s`` or ``_ms`` suffix; ``deadline_ms``
    / ``deadline_s`` declares the per-sample deadline that ``miss_frac``
    counts against.  Unknown keys raise :class:`ValueError` naming the
    accepted ones, so a typo'd budget fails the config load, not the run.
    """
    if isinstance(spec, dict):
        spec = [spec]
    if not isinstance(spec, list):
        raise ValueError(
            f"slo budgets must be a list of objects, got {type(spec).__name__}"
        )
    out: list[SLOBudget] = []
    for i, entry in enumerate(spec):
        if not isinstance(entry, dict):
            raise ValueError(f"slo budget #{i} must be an object, got {entry!r}")
        metric = entry.get("metric")
        if not isinstance(metric, str) or not metric:
            raise ValueError(f"slo budget #{i} missing 'metric' name")
        deadline = None
        if "deadline_s" in entry:
            deadline = float(entry["deadline_s"])
        elif "deadline_ms" in entry:
            deadline = float(entry["deadline_ms"]) * 1e-3
        bounds: list[tuple[str, float]] = []
        for key, val in entry.items():
            if key in ("metric", "deadline_s", "deadline_ms"):
                continue
            if key not in _BUDGET_KEYS:
                raise ValueError(
                    f"slo budget #{i} ({metric}): unknown key {key!r}; "
                    f"accepted: metric, deadline_s/deadline_ms, "
                    f"{', '.join(sorted(_BUDGET_KEYS))}"
                )
            stat, scale = _BUDGET_KEYS[key]
            limit = float(val) * scale
            if limit < 0:
                raise ValueError(f"slo budget #{i} ({metric}): {key} is negative")
            bounds.append((stat, limit))
        if not bounds and deadline is None:
            raise ValueError(
                f"slo budget #{i} ({metric}) declares no bounds — add e.g. p99_ms"
            )
        if deadline is not None and not any(s == "miss_frac" for s, _ in bounds):
            # A bare deadline bounds nothing by itself; default to "no
            # misses at all", the strict reading of a hard deadline.
            bounds.append(("miss_frac", 0.0))
        for stat, limit in bounds:
            out.append(SLOBudget(metric, stat, limit, deadline_s=deadline))
    return out


# --------------------------------------------------------------------- #
# Verdicts
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SLOVerdict:
    """One budget's outcome against the measured distribution."""

    metric: str
    stat: str
    limit: float
    measured: float | None
    status: str  # "ok" | "violated" | "no-data"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> dict:
        return {
            "metric": self.metric,
            "stat": self.stat,
            "limit": self.limit,
            "measured": self.measured,
            "status": self.status,
        }


@dataclass
class SLOReport:
    """All verdicts plus the distributions they were judged on."""

    stats: dict[str, LatencyStats] = field(default_factory=dict)
    verdicts: list[SLOVerdict] = field(default_factory=list)
    exemplars: list[Exemplar] = field(default_factory=list)

    @property
    def violations(self) -> list[SLOVerdict]:
        return [v for v in self.verdicts if v.status == "violated"]

    @property
    def missing(self) -> list[SLOVerdict]:
        return [v for v in self.verdicts if v.status == "no-data"]

    @property
    def ok(self) -> bool:
        return not self.violations and not self.missing

    @property
    def verdict(self) -> str:
        if self.violations:
            return "violated"
        if self.missing:
            return "no-data"
        return "ok"

    @property
    def exit_code(self) -> int:
        if self.violations:
            return EXIT_VIOLATED
        if self.missing:
            return EXIT_NO_DATA
        return EXIT_OK

    def render(self) -> str:
        """Terminal report: distributions first, then the budget table."""
        from ..bench.reporting import format_table

        def _ms(v: float) -> str:
            return f"{v * 1e3:.3f}"

        lines: list[str] = []
        if self.stats:
            lines.append(
                format_table(
                    ["metric", "n", "p50 ms", "p90 ms", "p99 ms", "p999 ms",
                     "IQR ms", "range ms", "misses"],
                    [
                        (
                            st.metric, st.count, _ms(st.p50), _ms(st.p90),
                            _ms(st.p99), _ms(st.p999), _ms(st.jitter_iqr),
                            _ms(st.jitter_range),
                            f"{st.misses}/{st.count}" if st.deadline_s is not None else "-",
                        )
                        for st in sorted(self.stats.values(), key=lambda s: s.metric)
                    ],
                    title="latency distributions (from merged event stream)",
                )
            )
        if self.exemplars:
            lines.append("")
            lines.append(
                format_table(
                    ["#", "metric", "ms", "pair", "class", "resolver", "digest"],
                    [
                        (
                            ex.rank,
                            ex.metric,
                            _ms(ex.dur_s),
                            f"({ex.u},{ex.v})" if ex.u is not None else "-",
                            ex.pair_class or "-",
                            ex.resolver or "-",
                            ex.digest or "-",
                        )
                        for ex in self.exemplars
                    ],
                    title="tail exemplars (slowest samples, with provenance)",
                )
            )
        if self.verdicts:
            lines.append("")
            lines.append(
                format_table(
                    ["metric", "stat", "budget", "measured", "verdict"],
                    [
                        (
                            v.metric,
                            v.stat,
                            f"{v.limit:.4f}" if v.stat == "miss_frac" else f"{_ms(v.limit)} ms",
                            "-" if v.measured is None else (
                                f"{v.measured:.4f}" if v.stat == "miss_frac"
                                else f"{_ms(v.measured)} ms"
                            ),
                            v.status.upper() if v.status != "ok" else "ok",
                        )
                        for v in self.verdicts
                    ],
                    title="SLO budgets",
                )
            )
            lines.append("")
            if self.violations:
                worst = max(
                    self.violations,
                    key=lambda v: (v.measured / v.limit) if v.limit else float("inf"),
                )
                over = (
                    f"{worst.measured / worst.limit:.2f}x over budget"
                    if worst.limit
                    else "budget is zero"
                )
                lines.append(
                    f"SLO VIOLATED: {len(self.violations)} budget(s) missed; "
                    f"worst {worst.metric}.{worst.stat} at {over}"
                )
            elif self.missing:
                names = ", ".join(f"{v.metric}.{v.stat}" for v in self.missing)
                lines.append(f"SLO INCONCLUSIVE: no samples for {names}")
            else:
                lines.append(f"SLO OK: all {len(self.verdicts)} budget(s) met")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """Ledger-meta shape: stats + verdicts + the one-word verdict.

        Exemplars are deliberately *not* duplicated here — the scenario
        runner ledgers them in the record's top-level ``exemplars`` field
        (ledger schema v2).
        """
        return {
            "verdict": self.verdict,
            "stats": {k: v.as_dict() for k, v in sorted(self.stats.items())},
            "verdicts": [v.as_dict() for v in self.verdicts],
        }


def evaluate(
    latencies: dict[str, list[float]], budgets: list[SLOBudget]
) -> SLOReport:
    """Judge extracted latency samples against parsed budgets.

    Every metric with samples is summarised (budgeted or not — the stats
    table is the observability payload); every budget gets a verdict, with
    ``no-data`` for metrics the stream never produced, which fails the
    gate with :data:`EXIT_NO_DATA` rather than silently passing a scenario
    that skipped its workload.
    """
    deadlines: dict[str, float] = {
        b.metric: b.deadline_s for b in budgets if b.deadline_s is not None
    }
    stats: dict[str, LatencyStats] = {
        metric: LatencyStats.from_samples(metric, samples, deadlines.get(metric))
        for metric, samples in latencies.items()
        if samples
    }
    verdicts: list[SLOVerdict] = []
    for b in budgets:
        st = stats.get(b.metric)
        if st is None:
            verdicts.append(SLOVerdict(b.metric, b.stat, b.limit, None, "no-data"))
            continue
        measured = st.value(b.stat)
        verdicts.append(
            SLOVerdict(
                b.metric, b.stat, b.limit, measured,
                "ok" if measured <= b.limit else "violated",
            )
        )
    return SLOReport(stats=stats, verdicts=verdicts)


def slo_from_events(events: list[dict], budgets, top_k: int = 10) -> SLOReport:
    """One-call gate: extract, parse (if needed), evaluate + exemplars."""
    if budgets and not isinstance(budgets[0], SLOBudget):
        budgets = parse_budgets(budgets)
    report = evaluate(extract_latencies(events), list(budgets))
    report.exemplars = extract_exemplars(events, top_k=top_k)
    return report
