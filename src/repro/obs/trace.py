"""Nested wall-clock spans with near-zero overhead when disabled.

Design constraints, in order:

1. **Disabled is free.**  Instrumented hot paths call ``span(...)`` per
   chunk / per phase; with no collector installed that call is one
   module-global read, one ``is None`` test, and the return of a shared
   singleton — no allocation, no clock read, no dict work.  The same
   singleton is returned for every disabled span, which the test-suite
   uses to assert the no-allocation property.
2. **Exception safe.**  A span that exits via an exception is still
   recorded (tagged ``error=<ExceptionType>``), and the thread-local
   stack is unwound exactly once, so a crashing phase never corrupts the
   nesting of its siblings.
3. **Cross-process stitchable.**  Spans carry ``pid``/``tid`` and a
   monotonic timestamp (``time.perf_counter_ns``, CLOCK_MONOTONIC on
   Linux — shared by every process on the host), so worker-recorded
   spans can be shipped back over a pool boundary and merged into the
   parent trace as per-worker tracks (:meth:`TraceCollector.ingest`).

Enablement is either programmatic (the :func:`tracing` context manager)
or ambient via ``REPRO_TRACE``: any truthy value installs a process-wide
collector at import time; a value that looks like a path additionally
writes the Chrome trace there at interpreter exit.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "TraceCollector",
    "span",
    "tracing",
    "tracing_enabled",
    "current_collector",
]

_FALSY = {"", "0", "false", "no", "off"}


@dataclass(frozen=True)
class Span:
    """One finished span (a closed interval of wall time)."""

    name: str
    cat: str
    start_ns: int  # perf_counter_ns at entry
    dur_ns: int
    pid: int
    tid: int
    depth: int  # nesting depth within its thread at record time
    args: dict = field(default_factory=dict)

    def to_tuple(self) -> tuple:
        """Compact picklable form for crossing process boundaries."""
        return (self.name, self.cat, self.start_ns, self.dur_ns,
                self.pid, self.tid, self.depth, self.args)

    @staticmethod
    def from_tuple(t: tuple) -> "Span":
        return Span(name=t[0], cat=t[1], start_ns=t[2], dur_ns=t[3],
                    pid=t[4], tid=t[5], depth=t[6], args=t[7])


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span into a collector."""

    __slots__ = ("_col", "_name", "_cat", "_args", "_t0")

    def __init__(self, col: "TraceCollector", name: str, cat: str, args: dict) -> None:
        self._col = col
        self._name = name
        self._cat = cat
        self._args = args
        self._t0 = 0

    def set(self, **attrs) -> "_LiveSpan":
        """Attach attributes to the span (shows up under ``args``)."""
        self._args.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        self._col._push()
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter_ns() - self._t0
        if exc_type is not None:
            self._args["error"] = exc_type.__name__
        self._col._record(self._name, self._cat, self._t0, dur, self._args)
        return False


class TraceCollector:
    """Accumulates finished spans; thread-safe, mergeable across processes."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.t_origin_ns = time.perf_counter_ns()
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- recording ----------------------------------------------------- #

    def _depth(self) -> int:
        return getattr(self._tls, "depth", 0)

    def _push(self) -> None:
        self._tls.depth = self._depth() + 1

    def _record(self, name: str, cat: str, t0: int, dur: int, args: dict) -> None:
        depth = self._depth()
        self._tls.depth = depth - 1
        sp = Span(
            name=name,
            cat=cat,
            start_ns=t0,
            dur_ns=dur,
            pid=os.getpid(),
            tid=threading.get_ident(),
            depth=depth - 1,
            args=args,
        )
        with self._lock:
            self.spans.append(sp)

    def ingest(self, payload: list[tuple]) -> None:
        """Merge spans exported by another process (see :meth:`export_spans`).

        Spans keep their own ``pid``/``tid``, which the Chrome export maps
        to separate tracks — this is how the parallel backend's per-worker
        activity is stitched into the parent trace.
        """
        incoming = [Span.from_tuple(t) for t in payload]
        with self._lock:
            self.spans.extend(incoming)

    def export_spans(self) -> list[tuple]:
        """Picklable span payload for shipping across a process boundary."""
        with self._lock:
            return [s.to_tuple() for s in self.spans]

    # -- views --------------------------------------------------------- #

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    def by_name(self) -> dict[str, list[Span]]:
        out: dict[str, list[Span]] = {}
        with self._lock:
            for s in self.spans:
                out.setdefault(s.name, []).append(s)
        return out

    def total_ns(self, name: str) -> int:
        """Summed duration of every span named ``name``."""
        with self._lock:
            return sum(s.dur_ns for s in self.spans if s.name == name)

    def span_tree(self) -> list[dict]:
        """Spans nested by containment, per ``(pid, tid)`` track.

        Returns a list of root nodes ``{"span": Span, "children": [...]}``
        sorted by start time.  Containment is computed from intervals, so
        ingested cross-process spans nest correctly inside their track.
        """
        with self._lock:
            spans = sorted(self.spans, key=lambda s: (s.pid, s.tid, s.start_ns, -s.dur_ns))
        roots: list[dict] = []
        stack: list[dict] = []
        track: tuple[int, int] | None = None
        for s in spans:
            node = {"span": s, "children": []}
            if (s.pid, s.tid) != track:
                track = (s.pid, s.tid)
                stack = []
            while stack and not _contains(stack[-1]["span"], s):
                stack.pop()
            if stack:
                stack[-1]["children"].append(node)
            else:
                roots.append(node)
            stack.append(node)
        roots.sort(key=lambda nd: nd["span"].start_ns)
        return roots

    # -- export (delegates) -------------------------------------------- #

    def chrome_trace(self) -> dict:
        from .export import chrome_trace

        return chrome_trace(self)

    def write_chrome(self, path: str, clocks: dict | None = None) -> str:
        from .export import write_chrome_trace

        return write_chrome_trace(self, path, clocks=clocks)


def _contains(outer: Span, inner: Span) -> bool:
    return (
        outer.start_ns <= inner.start_ns
        and inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns
    )


# --------------------------------------------------------------------- #
# Module-global enablement
# --------------------------------------------------------------------- #

_collector: TraceCollector | None = None
_collector_lock = threading.Lock()


def current_collector() -> TraceCollector | None:
    """The active collector, or ``None`` while tracing is disabled."""
    return _collector


def tracing_enabled() -> bool:
    """True when a collector is installed (env knob or :func:`tracing`)."""
    return _collector is not None


def span(name: str, cat: str = "repro", **args):
    """Start a span; returns a context manager.

    The disabled path is the hot-path contract: one global read, one
    comparison, and the shared :data:`_NULL_SPAN` singleton — callers may
    sprinkle spans on per-chunk loops without measurable cost.
    """
    col = _collector
    if col is None:
        return _NULL_SPAN
    return _LiveSpan(col, name, cat, args)


class tracing:
    """Install a fresh collector for the duration of a ``with`` block.

    Nestable: the previous collector (possibly the ``REPRO_TRACE``-installed
    ambient one) is restored on exit.  Yields the :class:`TraceCollector`,
    which stays readable after the block closes::

        with tracing() as tr:
            run_pipeline()
        tr.write_chrome("trace.json")
    """

    def __init__(self, collector: TraceCollector | None = None) -> None:
        self.collector = collector if collector is not None else TraceCollector()
        self._prev: TraceCollector | None = None

    def __enter__(self) -> TraceCollector:
        global _collector
        with _collector_lock:
            self._prev = _collector
            _collector = self.collector
        return self.collector

    def __exit__(self, *exc) -> bool:
        global _collector
        with _collector_lock:
            _collector = self._prev
        return False


def _install_from_env() -> None:
    """Arm the ambient collector when ``REPRO_TRACE`` is truthy.

    A value that is not a plain boolean flag is treated as an output path:
    the Chrome trace is written there at interpreter exit.  Worker
    processes inherit the variable, so their own ambient collectors arm
    automatically under both ``fork`` and ``spawn``.
    """
    global _collector
    val = os.environ.get("REPRO_TRACE", "")
    if val.strip().lower() in _FALSY:
        return
    col = TraceCollector()
    _collector = col
    if val.strip().lower() not in {"1", "true", "yes", "on"}:
        path = val.strip()

        def _dump() -> None:  # pragma: no cover - exercised via subprocess
            if len(col):
                col.write_chrome(path)

        atexit.register(_dump)


_install_from_env()
