"""Append-only JSONL run ledger: the repo's longitudinal benchmark database.

Every benchmark-ish entry point (``scripts/bench_smoke.py``, ``repro-bench
profile``, ``repro-bench qa``, ``repro-bench regress --record``) can append
one schema-versioned :class:`RunRecord` per run.  A record carries enough
context to compare runs *across commits and hosts*: git SHA, host
fingerprint, the ``REPRO_*`` knob environment, per-phase wall times, the
counter diff of the run's window, and memory statistics.

The format is one JSON object per line (JSONL) so appends are atomic-ish,
merges are trivial, and ``grep``/``jq`` work.  Readers are tolerant:
malformed or future-schema lines are skipped and counted, never fatal —
an old checkout must be able to read a ledger written by a newer one.

The regression gate (:mod:`repro.obs.regress`) consumes the ledger as its
noise model: per-phase medians and MAD bands over the recorded history.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SCHEMA_VERSION",
    "LedgerError",
    "RunRecord",
    "Ledger",
    "git_sha",
    "host_fingerprint",
    "repro_knobs",
    "default_ledger_path",
]

#: Bump when a reader would misinterpret older records.  Readers accept
#: records with ``schema_version <= SCHEMA_VERSION`` and skip newer ones.
#:
#: * **1** — original layout (kind/phases/counters/memory/meta).
#: * **2** — adds the top-level ``exemplars`` list (tail-query provenance
#:   captured by the scenario runner).  v1 records parse with
#:   ``exemplars == []``.
SCHEMA_VERSION = 2


class LedgerError(ValueError):
    """A record or ledger file that cannot be interpreted."""


def git_sha(root: str | os.PathLike | None = None) -> str | None:
    """Current-commit SHA of the repo at ``root`` (or cwd); ``None`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def host_fingerprint() -> dict:
    """Stable description of the machine a record was measured on."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def repro_knobs() -> dict:
    """Every ``REPRO_*`` environment knob in effect (the run's configuration)."""
    return {k: v for k, v in sorted(os.environ.items()) if k.startswith("REPRO_")}


def default_ledger_path() -> Path | None:
    """``REPRO_LEDGER`` as a path, or ``None`` (ledger writes are opt-in)."""
    val = os.environ.get("REPRO_LEDGER", "").strip()
    return Path(val) if val else None


@dataclass
class RunRecord:
    """One benchmark run: context + per-phase times + counters + memory."""

    kind: str                       # "bench_smoke" | "profile" | "qa" | ...
    phases: dict[str, float]        # phase name -> seconds
    schema_version: int = SCHEMA_VERSION
    created_unix: float = 0.0
    git_sha: str | None = None
    host: dict = field(default_factory=dict)
    knobs: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    memory: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    exemplars: list = field(default_factory=list)  # schema v2: tail queries

    @classmethod
    def new(
        cls,
        kind: str,
        phases: dict[str, float],
        counters: dict | None = None,
        memory: dict | None = None,
        meta: dict | None = None,
        exemplars: list | None = None,
        root: str | os.PathLike | None = None,
    ) -> "RunRecord":
        """A record stamped with the current commit, host, knobs, and time."""
        return cls(
            kind=kind,
            phases={str(k): float(v) for k, v in phases.items()},
            created_unix=time.time(),
            git_sha=git_sha(root),
            host=host_fingerprint(),
            knobs=repro_knobs(),
            counters=dict(counters or {}),
            memory=dict(memory or {}),
            meta=dict(meta or {}),
            exemplars=list(exemplars or []),
        )

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "created_unix": self.created_unix,
            "git_sha": self.git_sha,
            "host": self.host,
            "knobs": self.knobs,
            "phases": self.phases,
            "counters": self.counters,
            "memory": self.memory,
            "meta": self.meta,
            "exemplars": self.exemplars,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "RunRecord":
        """Parse + validate one record; raises :class:`LedgerError` if unusable."""
        if not isinstance(doc, dict):
            raise LedgerError(f"record must be an object, got {type(doc).__name__}")
        version = doc.get("schema_version")
        if not isinstance(version, int):
            raise LedgerError("record missing integer schema_version")
        if version > SCHEMA_VERSION:
            raise LedgerError(
                f"record schema_version {version} is newer than supported "
                f"{SCHEMA_VERSION}"
            )
        kind = doc.get("kind")
        if not isinstance(kind, str) or not kind:
            raise LedgerError("record missing kind")
        phases = doc.get("phases")
        if not isinstance(phases, dict):
            raise LedgerError("record missing phases dict")
        clean_phases: dict[str, float] = {}
        for name, secs in phases.items():
            if not isinstance(secs, (int, float)) or isinstance(secs, bool):
                raise LedgerError(f"phase {name!r} has non-numeric time {secs!r}")
            clean_phases[str(name)] = float(secs)
        exemplars = doc.get("exemplars")
        if exemplars is not None and not isinstance(exemplars, list):
            raise LedgerError("record exemplars must be a list when present")
        return cls(
            kind=kind,
            phases=clean_phases,
            schema_version=version,
            created_unix=float(doc.get("created_unix") or 0.0),
            git_sha=doc.get("git_sha"),
            host=doc.get("host") or {},
            knobs=doc.get("knobs") or {},
            counters=doc.get("counters") or {},
            memory=doc.get("memory") or {},
            meta=doc.get("meta") or {},
            # v1 records predate the field; they parse with an empty list.
            exemplars=exemplars or [],
        )


class Ledger:
    """Append-only JSONL file of :class:`RunRecord` lines.

    ``skipped`` counts lines the last :meth:`records` call could not parse
    (corrupt JSON, future schema); they are reported, never fatal.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.skipped = 0

    def append(self, record: RunRecord) -> RunRecord:
        """Append one record (creating the file and parent dirs on demand).

        The full line goes through a single ``O_APPEND`` ``os.write``:
        POSIX guarantees the seek+write is atomic with respect to other
        appenders, so concurrent writers (a process-parallel QA sweep,
        racing CI shards) can share one ledger file without interleaving
        partial lines — the same discipline as the event-stream shards.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
        return record

    def records(
        self, kind: str | None = None, scenario: str | None = None
    ) -> list[RunRecord]:
        """Every parseable record, oldest first, optionally filtered.

        ``kind`` filters on the record kind; ``scenario`` on the
        ``meta.scenario`` stamp the scenario runner (and ``bench_smoke``,
        which stamps ``"smoke"``) writes — the longitudinal key for one
        named workload's history.
        """
        self.skipped = 0
        if not self.path.exists():
            return []
        out: list[RunRecord] = []
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = RunRecord.from_dict(json.loads(line))
                except (json.JSONDecodeError, LedgerError):
                    self.skipped += 1
                    continue
                if kind is not None and rec.kind != kind:
                    continue
                if scenario is not None and rec.meta.get("scenario") != scenario:
                    continue
                out.append(rec)
        return out

    def latest(
        self, kind: str | None = None, scenario: str | None = None
    ) -> RunRecord | None:
        recs = self.records(kind, scenario=scenario)
        return recs[-1] if recs else None

    def phase_history(
        self,
        kind: str | None = None,
        limit: int | None = None,
        scenario: str | None = None,
    ) -> dict[str, list[float]]:
        """Per-phase time series across the (optionally ``limit`` newest) runs.

        This is the regression gate's noise model input: enough repeats to
        take a median and a MAD band per phase.  ``scenario`` narrows the
        series to one named scenario's records.
        """
        recs = self.records(kind, scenario=scenario)
        if limit is not None:
            recs = recs[-limit:]
        out: dict[str, list[float]] = {}
        for rec in recs:
            for name, secs in rec.phases.items():
                out.setdefault(name, []).append(secs)
        return out
