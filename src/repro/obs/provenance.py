"""Per-query provenance: *why* the oracle answered what it answered.

The bulk query path (:class:`repro.apsp.bulk_query.BulkOracleIndex`)
classifies every pair into the paper's three-way decision tree — same
component (table lookup or Section 2.1.3 chain closed forms), cross
component (boundary articulation points, Section 2.2), unreachable — and
resolves each class with a different formula.  This module is the
opt-in *explain* record for that classification: which class a pair
landed in, which component(s) it touched, which boundary APs bracketed
it, and which concrete formula produced the number.

Capture is structured so the distance arithmetic is untouched: the
resolver only *writes attribution arrays* next to the existing masks, so
``explain_many`` distances are bit-identical to ``query_many`` — asserted
across the qa adversarial corpus and registered as a
``qa.differential`` check (``oracle-explain`` / ``reduced-oracle-explain``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from . import metrics as _metrics

__all__ = [
    "PAIR_CLASSES",
    "RESOLVER_NAMES",
    "BatchProvenance",
    "QueryProvenance",
]

# Pair-class codes (int8).  C_UNREACHABLE is the zero default so a pair
# no mask ever claims reports honestly.
C_UNREACHABLE = 0
C_SELF = 1
C_SAME = 2
C_CROSS = 3

#: Class code → public name.  ``same`` refines to ``same-chain`` when the
#: resolver is the pure chain closed form (see :data:`RESOLVER_NAMES`).
PAIR_CLASSES = ("unreachable", "self", "same-bcc", "cross-bcc")

# Resolver codes (int8): the concrete formula that produced the distance.
R_NONE = 0            # unreachable — nothing resolved it
R_IDENTITY = 1        # u == v
R_TABLE = 2           # dense per-component Dijkstra table gather
R_CHAIN_ENDPOINT = 3  # §2.1.3: one endpoint reduced onto a chain
R_CHAIN_CHAIN = 4     # §2.1.3: both reduced, min over 4 anchor routes
R_SAME_CHAIN = 5      # §2.1.3: both on one chain, |d_left(u) - d_left(v)| won
R_AP_SHARED = 6       # both-AP pair answered by the shared-block min
R_AP_BRIDGE = 7       # §2.2: d(u,a1) + A[a1,a2] + d(a2,v)

#: Resolver code → public name (indexable by the int8 code).
RESOLVER_NAMES = (
    "none",
    "identity",
    "table",
    "chain-endpoint",
    "chain-chain",
    "same-chain",
    "ap-shared",
    "ap-bridge",
)

_C_EXPLAINS = _metrics.counter("provenance.explains")
_C_PAIRS = _metrics.counter("provenance.pairs")


@dataclass(frozen=True)
class QueryProvenance:
    """One explained query: the answer plus its full attribution."""

    u: int
    v: int
    distance: float
    pair_class: str
    resolver: str
    component: int          # resolving component id (-1 when not one component)
    comp_u: int             # home component of u (-1 for APs / non-members)
    comp_v: int
    boundary_aps: tuple[int, int] | None  # (a1, a2) vertex ids for cross pairs
    batch_sizes: dict       # per-class pair counts of the batch this rode in

    def digest(self) -> str:
        """Stable 12-hex fingerprint of the attribution (exemplar linkage)."""
        dist_key = (
            "inf" if np.isinf(self.distance) else float(self.distance).hex()
        )
        key = "|".join(
            (
                str(self.u),
                str(self.v),
                dist_key,
                self.pair_class,
                self.resolver,
                str(self.component),
                str(self.boundary_aps or ""),
            )
        )
        return hashlib.sha1(key.encode()).hexdigest()[:12]

    def as_dict(self) -> dict:
        return {
            "u": self.u,
            "v": self.v,
            "distance": self.distance,
            "pair_class": self.pair_class,
            "resolver": self.resolver,
            "component": self.component,
            "comp_u": self.comp_u,
            "comp_v": self.comp_v,
            "boundary_aps": (
                list(self.boundary_aps) if self.boundary_aps is not None else None
            ),
            "batch_sizes": dict(self.batch_sizes),
            "digest": self.digest(),
        }


class BatchProvenance:
    """Attribution arrays for one ``explain_many`` batch.

    Filled in place by :meth:`BulkOracleIndex._resolve` alongside the
    distance computation; every array is per-pair and indexable by the
    original pair position.
    """

    __slots__ = (
        "pairs", "distances", "cls", "resolver",
        "component", "comp_u", "comp_v", "ap1", "ap2",
    )

    def __init__(self, pairs: np.ndarray) -> None:
        k = pairs.shape[0]
        self.pairs = pairs
        self.distances = np.full(k, np.inf, dtype=np.float64)
        self.cls = np.zeros(k, dtype=np.int8)          # C_UNREACHABLE default
        self.resolver = np.zeros(k, dtype=np.int8)     # R_NONE default
        self.component = np.full(k, -1, dtype=np.int64)
        self.comp_u = np.full(k, -1, dtype=np.int64)
        self.comp_v = np.full(k, -1, dtype=np.int64)
        self.ap1 = np.full(k, -1, dtype=np.int64)      # boundary AP vertex ids
        self.ap2 = np.full(k, -1, dtype=np.int64)

    def __len__(self) -> int:
        return self.pairs.shape[0]

    def class_sizes(self) -> dict:
        """Per-class pair counts for this batch (public class names)."""
        counts = np.bincount(self.cls, minlength=len(PAIR_CLASSES))
        sizes = {
            PAIR_CLASSES[code]: int(counts[code])
            for code in range(len(PAIR_CLASSES))
            if counts[code]
        }
        n_chain = int(np.count_nonzero(self.resolver == R_SAME_CHAIN))
        if n_chain:
            sizes["same-chain"] = n_chain
        return sizes

    def pair_class_name(self, i: int) -> str:
        """Public class name for pair ``i`` (``same-chain`` refined)."""
        code = int(self.cls[i])
        if code == C_SAME and int(self.resolver[i]) == R_SAME_CHAIN:
            return "same-chain"
        return PAIR_CLASSES[code]

    def record(self, i: int) -> QueryProvenance:
        """Materialise pair ``i`` as a :class:`QueryProvenance`."""
        i = int(i)
        if not 0 <= i < len(self):
            raise IndexError(f"pair index {i} outside batch of {len(self)}")
        aps = None
        if self.ap1[i] >= 0:
            aps = (int(self.ap1[i]), int(self.ap2[i]))
        return QueryProvenance(
            u=int(self.pairs[i, 0]),
            v=int(self.pairs[i, 1]),
            distance=float(self.distances[i]),
            pair_class=self.pair_class_name(i),
            resolver=RESOLVER_NAMES[int(self.resolver[i])],
            component=int(self.component[i]),
            comp_u=int(self.comp_u[i]),
            comp_v=int(self.comp_v[i]),
            boundary_aps=aps,
            batch_sizes=self.class_sizes(),
        )

    def records(self) -> list[QueryProvenance]:
        return [self.record(i) for i in range(len(self))]


def count_explain(pairs: int) -> None:
    """Bump the provenance counters for one explain batch."""
    _C_EXPLAINS.inc()
    _C_PAIRS.inc(int(pairs))
