"""Stall watchdog + live terminal view over the structured event stream.

The parallel backend's only liveness defence used to be the blunt
``REPRO_PARALLEL_TIMEOUT`` on a whole dispatch: a single hung worker was
invisible until the entire fan-out expired.  The watchdog closes that gap
by consuming the ``worker.heartbeat`` events of
:mod:`repro.obs.events` — a worker whose last heartbeat is older than
``stall_after`` seconds is flagged *while the dispatch is still in
flight*, counted on ``watch.stalls``, and published as an
``engine.stall_detected`` event.  :class:`~repro.hetero.parallel.
ParallelEngine` runs one watchdog thread per dispatch whenever events are
enabled; the deterministic test path arms the ``worker.hang`` seam of
:mod:`repro.qa.faultinject` and asserts the stall is seen before the
dispatch timeout fires.

:func:`render_status` is the ``repro-bench watch`` terminal view: one
frame summarising a (possibly still growing) event stream — open phases,
per-device queue grabs, queue depth, and per-worker heartbeat ages.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Callable

from . import metrics as _metrics
from .events import EventLog, emit as _emit

__all__ = [
    "DEFAULT_STALL_AFTER",
    "DEFAULT_POLL_INTERVAL",
    "resolve_stall_after",
    "heartbeats_from_events",
    "empty_stream_hint",
    "Watchdog",
    "render_status",
]

#: Heartbeat age (seconds) past which a worker counts as stalled when
#: neither ``REPRO_WATCH_STALL`` nor a dispatch timeout narrows it.
DEFAULT_STALL_AFTER = 5.0

#: Watchdog poll cadence (seconds).
DEFAULT_POLL_INTERVAL = 0.05

_C_STALLS = _metrics.counter("watch.stalls")
_C_CHECKS = _metrics.counter("watch.checks")
_G_WORKERS = _metrics.gauge("watch.workers")
_G_MAX_AGE = _metrics.gauge("watch.max_heartbeat_age_s")


def resolve_stall_after(
    stall_after: float | None = None, timeout: float | None = None
) -> float:
    """Effective stall threshold: argument > ``REPRO_WATCH_STALL`` > timeout-derived.

    With a dispatch ``timeout`` configured the default is half of it, so a
    hung worker is flagged *before* the timeout tears the pool down — the
    stall diagnosis then accompanies the degradation warning instead of
    arriving too late to matter.
    """
    if stall_after is None:
        env = os.environ.get("REPRO_WATCH_STALL", "").strip()
        if env:
            stall_after = float(env)
    if stall_after is None:
        stall_after = timeout / 2.0 if timeout else DEFAULT_STALL_AFTER
    if stall_after <= 0:
        raise ValueError(f"stall_after must be positive, got {stall_after}")
    return float(stall_after)


def heartbeats_from_events(dir_path) -> Callable[[], dict[int, int]]:
    """A heartbeat source reading ``worker.heartbeat`` events from a directory.

    Returns a callable producing ``{pid: last_heartbeat_ts_ns}``.  Reads
    go through the tolerant :class:`EventLog`, so racing live writers is
    safe (a torn final line is skipped, not fatal).
    """
    log = EventLog(dir_path)

    def read() -> dict[int, int]:
        out: dict[int, int] = {}
        for ev in log.read(kinds={"worker.heartbeat"}):
            ts = ev["ts_ns"]
            if ts > out.get(ev["pid"], 0):
                out[ev["pid"]] = ts
        return out

    return read


class Watchdog:
    """Flags workers whose last heartbeat is older than ``stall_after``.

    ``heartbeats`` is any zero-argument callable returning
    ``{worker_key: last_heartbeat_ts_ns}`` (perf-counter nanoseconds);
    :func:`heartbeats_from_events` builds one over an event directory.
    Heartbeats older than the watchdog's own start time are ignored, so a
    shared event directory carrying beats from earlier dispatches never
    produces phantom stalls.

    Use either programmatically (:meth:`check` once per poll — what the
    deterministic tests do) or as a daemon thread (:meth:`start` /
    :meth:`stop` — what :class:`~repro.hetero.parallel.ParallelEngine`
    does around each pool dispatch).  A worker is counted on
    ``watch.stalls`` once per stall episode: a fresh heartbeat clears it
    and a later stall counts again.
    """

    def __init__(
        self,
        heartbeats: Callable[[], dict[int, int]],
        stall_after: float | None = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        since_ns: int | None = None,
    ) -> None:
        self._heartbeats = heartbeats
        self.stall_after = resolve_stall_after(stall_after)
        self.poll_interval = float(poll_interval)
        self.since_ns = time.perf_counter_ns() if since_ns is None else int(since_ns)
        #: worker_key -> perf-counter ns at which the stall was detected.
        self.stalled: dict = {}
        self.checks = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def check(self, now_ns: int | None = None) -> list:
        """One poll; returns the workers that *newly* stalled this poll."""
        beats = self._heartbeats()
        now = time.perf_counter_ns() if now_ns is None else now_ns
        self.checks += 1
        _C_CHECKS.inc()
        newly: list = []
        max_age = 0.0
        tracked = 0
        for key, ts in beats.items():
            if ts < self.since_ns:
                continue  # a beat from before this watchdog armed
            tracked += 1
            age = (now - ts) / 1e9
            if age > max_age:
                max_age = age
            if age > self.stall_after:
                if key not in self.stalled:
                    self.stalled[key] = now
                    _C_STALLS.inc()
                    newly.append(key)
                    _emit(
                        "engine.stall_detected",
                        worker=key,
                        heartbeat_age_s=age,
                        stall_after_s=self.stall_after,
                    )
            else:
                self.stalled.pop(key, None)
        _G_WORKERS.set(tracked)
        _G_MAX_AGE.set(max_age)
        return newly

    # -- thread lifecycle ---------------------------------------------- #

    def start(self) -> "Watchdog":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.check()
            except Exception:  # pragma: no cover - racing reader, never fatal
                continue

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "Watchdog":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# --------------------------------------------------------------------- #
# Terminal view (``repro-bench watch``)
# --------------------------------------------------------------------- #


def _fmt_age(seconds: float) -> str:
    if seconds < 1.0:
        return f"{seconds * 1e3:.0f} ms"
    if seconds < 120.0:
        return f"{seconds:.1f} s"
    return f"{seconds / 60.0:.1f} min"


def empty_stream_hint(dir_path=None) -> str:
    """Actionable diagnosis for a stream with no readable events.

    Names the expected on-disk layout (``events-<pid>.jsonl`` shards
    inside the directory ``REPRO_EVENTS`` points at) and distinguishes a
    missing directory from a present-but-eventless one, so "I pointed at
    the wrong path" and "the run emitted nothing" read differently.
    ``repro-bench watch --once`` and ``repro-bench slo`` pair this hint
    with a distinct exit code (:data:`repro.obs.slo.EXIT_EMPTY_STREAM`).
    """
    lines = ["event stream is empty: no events could be read."]
    if dir_path is not None:
        d = Path(dir_path)
        if not d.is_dir():
            lines.append(f"  {d} is not a directory.")
        else:
            shards = sorted(d.glob("events-*.jsonl"))
            if shards:
                lines.append(
                    f"  {d} has {len(shards)} shard(s) but none held a "
                    "parseable event line."
                )
            else:
                lines.append(f"  {d} exists but holds no events-*.jsonl shards.")
    lines.append(
        "  expected layout: <dir>/events-<pid>.jsonl, one JSONL shard per "
        "process, produced by running under REPRO_EVENTS=<dir> (or "
        "repro-bench ... --events <dir>)."
    )
    return "\n".join(lines)


def render_status(
    events: list[dict],
    now_ns: int | None = None,
    stall_after: float | None = None,
) -> str:
    """One terminal frame over an event stream.

    ``now_ns`` defaults to the newest event timestamp, so a *recorded*
    stream renders with the ages it had when it ended rather than the
    wall-clock time since.  Pass ``time.perf_counter_ns()`` when tailing
    a live run.
    """
    stall_after = resolve_stall_after(stall_after)
    if not events:
        return empty_stream_hint()
    now = now_ns if now_ns is not None else max(e["ts_ns"] for e in events)
    t0 = min(e["ts_ns"] for e in events)
    lines: list[str] = []
    lines.append(
        f"events: {len(events)} over {_fmt_age((now - t0) / 1e9)} "
        f"from {len({e['pid'] for e in events})} process(es)"
    )

    # Open phases: the last phase.start per (cat, phase) without a finish.
    open_phases: dict[tuple, int] = {}
    for ev in events:
        if ev["kind"] == "phase.start":
            open_phases[(ev.get("cat"), ev.get("phase"))] = ev["ts_ns"]
        elif ev["kind"] == "phase.finish":
            open_phases.pop((ev.get("cat"), ev.get("phase")), None)
    if open_phases:
        for (cat, phase), ts in sorted(open_phases.items(), key=lambda kv: kv[1]):
            lines.append(
                f"  open phase: {cat}/{phase} (running {_fmt_age((now - ts) / 1e9)})"
            )
    else:
        lines.append("  open phase: none (pipeline idle or finished)")

    # Per-device queue activity.
    grabs = [e for e in events if e["kind"] == "queue.grab"]
    if grabs:
        per_dev: dict[str, dict] = {}
        total_units = 0
        for ev in grabs:
            dev = str(ev.get("device") or "?")
            row = per_dev.setdefault(dev, {"grabs": 0, "units": 0, "front": 0, "back": 0})
            row["grabs"] += 1
            row["units"] += int(ev.get("batch") or 0)
            row[ev.get("end") or "front"] = row.get(ev.get("end") or "front", 0) + 1
            total_units += int(ev.get("batch") or 0)
        lines.append(f"  work queue: {len(grabs)} grabs, {total_units} units")
        for dev, row in sorted(per_dev.items()):
            share = 100.0 * row["units"] / total_units if total_units else 0.0
            lines.append(
                f"    {dev:<12} {row['units']:>6} units ({share:5.1f}%) in "
                f"{row['grabs']} grabs  [front {row['front']} / back {row['back']}]"
            )
        depth = [e for e in grabs if isinstance(e.get("remaining"), int)]
        if depth:
            lines.append(f"  queue depth: {depth[-1]['remaining']} remaining after last grab")

    # Chunk throughput (bulk-SSSP engine).
    starts = sum(1 for e in events if e["kind"] == "chunk.start")
    finishes = sum(1 for e in events if e["kind"] == "chunk.finish")
    if starts or finishes:
        lines.append(f"  sssp chunks: {finishes}/{starts} finished")

    # Per-worker heartbeat ages.  A beat older than the newest
    # dispatch.finish belongs to a completed fan-out: that worker is done,
    # not stalled, however much later the stream (or the clock) runs.
    beats: dict[int, dict] = {}
    for ev in events:
        if ev["kind"] == "worker.heartbeat":
            row = beats.setdefault(ev["pid"], {"count": 0, "last": 0, "status": ""})
            row["count"] += 1
            if ev["ts_ns"] >= row["last"]:
                row["last"] = ev["ts_ns"]
                row["status"] = str(ev.get("status") or "")
    dispatch_done_ns = max(
        (e["ts_ns"] for e in events if e["kind"] == "dispatch.finish"), default=0
    )
    if beats:
        lines.append(f"  workers: {len(beats)} heartbeating")
        for pid, row in sorted(beats.items()):
            age = (now - row["last"]) / 1e9
            if row["last"] <= dispatch_done_ns:
                flag = "done"
            elif age > stall_after:
                flag = "STALLED"
            else:
                flag = "ok"
            lines.append(
                f"    pid {pid:<8} last beat {_fmt_age(age):>8} ago "
                f"({row['status'] or '-'}, {row['count']} beats)  {flag}"
            )
    stalls = [e for e in events if e["kind"] == "engine.stall_detected"]
    if stalls:
        lines.append(f"  stalls detected: {len(stalls)}")
    faults = [e for e in events if e["kind"] == "fault.fired"]
    if faults:
        sites = ", ".join(sorted({str(e.get("site")) for e in faults}))
        lines.append(f"  injected faults fired: {len(faults)} ({sites})")
    degraded = [e for e in events if e["kind"] == "engine.degraded"]
    if degraded:
        lines.append(f"  engine degraded to serial: {degraded[-1].get('error', '?')}")
    return "\n".join(lines)
