"""Critical-path attribution over recorded traces (``repro-bench critpath``).

The rest of :mod:`repro.obs` *records* what happened — spans, events,
counters.  This module answers the question those recordings exist for:
**which spans actually bound end-to-end latency, and what would make the
run faster?**  It is a pure offline analyzer: input is a recorded trace
(a live :class:`~repro.obs.trace.TraceCollector` or a Chrome
``trace_event`` document written by ``repro-bench profile``) plus,
optionally, the merged :mod:`repro.obs.events` stream for fault/degrade
annotations.

The analysis reconstructs the execution DAG and derives four views:

1. **Critical path** — the longest chain of causally-ordered spans from
   run start to run end.  Within one ``(pid, tid)`` track causality is
   interval containment (the same nesting :meth:`TraceCollector.span_tree`
   computes); across processes the ``parallel.worker_chunk`` spans link
   to their ``parallel.dispatch`` bracket through the ``dispatch``/
   ``chunk`` ids :mod:`repro.hetero.parallel` stamps on both sides (with
   an interval-containment fallback for traces recorded before the ids
   existed).  The path is found by a backward greedy sweep: starting at
   the window end, repeatedly step into the child that finished last,
   then continue from that child's start.  Each path node is attributed
   the time not covered by its own chosen children, so the per-entry
   contributions sum to the window length *exactly* — gaps no span covers
   surface as an explicit ``(untraced)`` entry rather than vanishing.
2. **Inclusive vs self time per span name** — inclusive sums raw
   durations; self subtracts the union of child intervals (union, not
   sum: parallel chunk children overlap inside their dispatch bracket),
   so nested spans stop double-counting.
3. **Per-worker / per-dispatch stats** — busy, idle, utilisation, and
   stragglers.  A chunk straggles when its dispatch-relative finish
   exceeds ``median + k·MAD`` of its dispatch's finishes (MAD = median
   absolute deviation), with a small absolute floor so near-identical
   finishes are never flagged on scheduler noise.
4. **What-if estimates** — Amdahl-style bounds: how much shorter the
   critical path gets if dispatches on it balanced perfectly over their
   workers, if stragglers finished at the median, or if worker counts
   doubled.  Savings only count for dispatches that are actually *on*
   the critical path; shaving a dispatch the run never waited for does
   not move end-to-end time.

Results are JSON-able (:meth:`CritPathResult.as_dict`, schema-versioned)
and renderable as terminal tables (:func:`render_text`); ``critpath.*``
metrics are emitted on every analysis so profile/bench runs can ledger
``critpath.length_ns`` / ``critpath.parallel_efficiency`` and the
regression gate can hold the line on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import metrics as _metrics

__all__ = [
    "CRITPATH_SCHEMA_VERSION",
    "DEFAULT_STRAGGLER_K",
    "STRAGGLER_FLOOR_NS",
    "CritPathResult",
    "analyze_collector",
    "analyze_chrome",
    "render_text",
    "validate_critpath_doc",
]

#: Stamped into :meth:`CritPathResult.as_dict` so downstream consumers
#: (CI validation, archived artifacts) can detect layout changes.
CRITPATH_SCHEMA_VERSION = 1

#: Straggler band width: a chunk straggles when its dispatch-relative
#: finish exceeds ``median + k * MAD``.
DEFAULT_STRAGGLER_K = 4.0

#: Absolute slack under which a chunk is never called a straggler, even
#: when the MAD band is razor thin (near-identical finishes make
#: ``MAD ~ 0``, and scheduler jitter must not produce false positives).
STRAGGLER_FLOOR_NS = 1_000_000  # 1 ms

#: The synthetic entry name for window time no recorded span covers.
UNTRACED = "(untraced)"

_C_ANALYSES = _metrics.counter("critpath.analyses")
_C_STRAGGLERS = _metrics.counter("critpath.stragglers")
_C_ORPHANS = _metrics.counter("critpath.orphans")
_G_LENGTH = _metrics.gauge("critpath.length_ns")
_G_EFFICIENCY = _metrics.gauge("critpath.parallel_efficiency")


class _Node:
    """One span in the reconstructed DAG (containment + causal children)."""

    __slots__ = ("name", "cat", "start_ns", "end_ns", "pid", "tid",
                 "args", "children", "linked_by")

    def __init__(self, name, cat, start_ns, dur_ns, pid, tid, args):
        self.name = str(name)
        self.cat = str(cat)
        self.start_ns = int(start_ns)
        self.end_ns = int(start_ns) + max(0, int(dur_ns))
        self.pid = pid
        self.tid = tid
        self.args = args if isinstance(args, dict) else {}
        self.children: list[_Node] = []
        self.linked_by: str | None = None  # "id" | "time" for causal links

    @property
    def dur_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class CritPathResult:
    """The full analysis of one recorded run (all times in ns, rebased)."""

    total_ns: int
    span_count: int
    parallel_efficiency: float
    path: list[dict] = field(default_factory=list)
    attribution: dict[str, int] = field(default_factory=dict)
    rollup: list[dict] = field(default_factory=list)
    dispatches: list[dict] = field(default_factory=list)
    workers: list[dict] = field(default_factory=list)
    whatif: list[dict] = field(default_factory=list)
    orphans: int = 0
    annotations: list[dict] = field(default_factory=list)
    straggler_k: float = DEFAULT_STRAGGLER_K

    @property
    def stragglers(self) -> int:
        return sum(len(d["stragglers"]) for d in self.dispatches)

    def as_dict(self) -> dict:
        return {
            "schema_version": CRITPATH_SCHEMA_VERSION,
            "total_ns": self.total_ns,
            "span_count": self.span_count,
            "parallel_efficiency": self.parallel_efficiency,
            "straggler_k": self.straggler_k,
            "path": self.path,
            "attribution": self.attribution,
            "rollup": self.rollup,
            "dispatches": self.dispatches,
            "workers": self.workers,
            "whatif": self.whatif,
            "orphans": self.orphans,
            "stragglers": self.stragglers,
            "annotations": self.annotations,
        }

    def summary_dict(self) -> dict:
        """Compact form for ledger meta: headline numbers + top path spans."""
        return {
            "length_ns": self.total_ns,
            "parallel_efficiency": self.parallel_efficiency,
            "entries": len(self.path),
            "dispatches": len(self.dispatches),
            "stragglers": self.stragglers,
            "orphans": self.orphans,
            "top": [
                e["name"]
                for e in sorted(self.path, key=lambda e: -e["path_ns"])[:3]
            ],
        }


# --------------------------------------------------------------------- #
# Input normalization
# --------------------------------------------------------------------- #


def _nodes_from_collector(collector) -> list[_Node]:
    return [
        _Node(s.name, s.cat, s.start_ns, s.dur_ns, s.pid, s.tid, s.args)
        for s in collector.spans
    ]


def _nodes_from_chrome(doc: dict) -> list[_Node]:
    """Complete ("X") events as nodes; virtual-platform tracks excluded.

    The simulated device clocks of :func:`repro.obs.export.
    virtual_clock_events` replay the run in *virtual* seconds — mixing
    them into the real run's causal DAG would be nonsense.
    """
    from .export import VIRTUAL_PID

    nodes = []
    for ev in doc.get("traceEvents", []):
        if not isinstance(ev, dict) or ev.get("ph") != "X":
            continue
        if ev.get("pid") == VIRTUAL_PID:
            continue
        ts, dur = ev.get("ts"), ev.get("dur")
        if not isinstance(ts, (int, float)) or not isinstance(dur, (int, float)):
            continue
        nodes.append(
            _Node(
                ev.get("name", "?"), ev.get("cat", "?"),
                int(round(ts * 1e3)), int(round(dur * 1e3)),
                ev.get("pid"), ev.get("tid"), ev.get("args") or {},
            )
        )
    return nodes


# --------------------------------------------------------------------- #
# DAG reconstruction
# --------------------------------------------------------------------- #


def _containment_forest(nodes: list[_Node]) -> list[_Node]:
    """Nest nodes per ``(pid, tid)`` track; returns the forest roots.

    Same stack sweep as :meth:`TraceCollector.span_tree`: sort by
    ``(pid, tid, start, -dur)`` so an enclosing span precedes its
    children (zero-duration spans and identical start times included —
    the longer span wins the tie and contains the shorter one).
    """
    roots: list[_Node] = []
    stack: list[_Node] = []
    track = object()
    for n in sorted(
        nodes, key=lambda n: (str(n.pid), str(n.tid), n.start_ns, -n.dur_ns)
    ):
        if (n.pid, n.tid) != track:
            track = (n.pid, n.tid)
            stack = []
        while stack and not (
            stack[-1].start_ns <= n.start_ns and n.end_ns <= stack[-1].end_ns
        ):
            stack.pop()
        if stack:
            stack[-1].children.append(n)
        else:
            roots.append(n)
        stack.append(n)
    return roots


def _link_causal(roots: list[_Node], all_nodes: list[_Node]) -> int:
    """Attach worker-chunk roots to their dispatch bracket; returns orphans.

    Primary key is the ``dispatch`` id stamped on both sides by
    :mod:`repro.hetero.parallel`.  Traces recorded before the ids existed
    fall back to interval containment (a chunk that ran inside exactly
    the window of one dispatch belongs to it).  A chunk that matches
    neither — typically a crash-degraded run whose dispatch bracket never
    closed, or a torn trace — stays a DAG root and is counted as an
    orphan; the analysis degrades gracefully instead of inventing edges.
    """
    dispatches = [n for n in all_nodes if n.name == "parallel.dispatch"]
    by_id = {
        n.args.get("dispatch"): n
        for n in dispatches
        if n.args.get("dispatch") is not None
    }
    orphans = 0
    still_roots: list[_Node] = []
    for root in roots:
        if root.name != "parallel.worker_chunk":
            still_roots.append(root)
            continue
        did = root.args.get("dispatch")
        parent = by_id.get(did)
        if parent is not None:
            root.linked_by = "id"
        else:
            # Legacy traces: containment in time, unique match required.
            hits = [
                d for d in dispatches
                if d.start_ns <= root.start_ns and root.end_ns <= d.end_ns
            ]
            if len(hits) == 1:
                parent, root.linked_by = hits[0], "time"
        if parent is None:
            orphans += 1
            still_roots.append(root)
        else:
            parent.children.append(root)
    roots[:] = still_roots
    return orphans


# --------------------------------------------------------------------- #
# Critical path
# --------------------------------------------------------------------- #


def _walk_path(node: _Node, entries: list[dict], origin: int) -> None:
    """Backward greedy sweep from ``node``'s end; appends path entries.

    The child that finished last (ending at or before the cursor) is the
    one the node waited for; recurse into it, move the cursor to its
    start, repeat.  The node's own contribution is its duration minus the
    chosen children's clipped coverage — by construction the chosen
    windows are disjoint, so contributions sum to the node's duration.
    """
    cursor = node.end_ns
    covered = 0
    for child in sorted(node.children, key=lambda c: (-c.end_ns, c.start_ns)):
        if child.end_ns > cursor or child.end_ns <= node.start_ns:
            continue
        _walk_path(child, entries, origin)
        lo = max(child.start_ns, node.start_ns)
        covered += child.end_ns - lo
        cursor = lo
    entries.append(
        {
            "name": node.name,
            "cat": node.cat,
            "pid": node.pid,
            "tid": node.tid,
            "start_ns": node.start_ns - origin,
            "dur_ns": node.dur_ns,
            "path_ns": node.dur_ns - covered,
        }
    )


# --------------------------------------------------------------------- #
# Rollups and worker stats
# --------------------------------------------------------------------- #


def _union_ns(intervals: list[tuple[int, int]]) -> int:
    """Total length of the union of (possibly overlapping) intervals."""
    total = 0
    hi = None
    for lo, end in sorted(intervals):
        if hi is None or lo > hi:
            total += end - lo
            hi = end
        elif end > hi:
            total += end - hi
            hi = end
    return total


def _rollup(all_nodes: list[_Node]) -> list[dict]:
    """Per-name inclusive and self (exclusive) time over the whole DAG.

    Self subtracts the *union* of child coverage: a dispatch whose chunk
    children overlap (they ran in parallel) only loses the covered wall
    time once, never more than its own duration.
    """
    rows: dict[tuple[str, str], dict] = {}
    for n in all_nodes:
        covered = _union_ns(
            [
                (max(c.start_ns, n.start_ns), min(c.end_ns, n.end_ns))
                for c in n.children
                if c.end_ns > n.start_ns and c.start_ns < n.end_ns
            ]
        )
        row = rows.setdefault(
            (n.name, n.cat),
            {"name": n.name, "cat": n.cat, "count": 0,
             "inclusive_ns": 0, "self_ns": 0},
        )
        row["count"] += 1
        row["inclusive_ns"] += n.dur_ns
        row["self_ns"] += max(0, n.dur_ns - covered)
    return sorted(rows.values(), key=lambda r: -r["self_ns"])


def _median(values: list[float]) -> float:
    vals = sorted(values)
    k = len(vals) // 2
    if len(vals) % 2:
        return float(vals[k])
    return 0.5 * (vals[k - 1] + vals[k])


def _dispatch_stats(
    all_nodes: list[_Node], k: float, origin: int
) -> tuple[list[dict], list[dict], float]:
    """Per-dispatch and per-worker tables plus overall parallel efficiency."""
    dispatch_rows: list[dict] = []
    per_worker: dict = {}
    busy_total = 0
    capacity_total = 0
    for d in (n for n in all_nodes if n.name == "parallel.dispatch"):
        chunks = [c for c in d.children if c.name == "parallel.worker_chunk"]
        workers = int(d.args.get("workers") or 0) or len({c.pid for c in chunks})
        wall = max(1, d.dur_ns)
        busy = sum(c.dur_ns for c in chunks)
        finishes = [c.end_ns - d.start_ns for c in chunks]
        stragglers: list[dict] = []
        med = mad = 0.0
        if len(finishes) >= 2:
            med = _median([float(f) for f in finishes])
            mad = _median([abs(f - med) for f in finishes])
            cut = med + max(k * mad, float(STRAGGLER_FLOOR_NS))
            for c, fin in zip(chunks, finishes):
                if fin > cut:
                    stragglers.append(
                        {
                            "pid": c.pid,
                            "chunk": c.args.get("chunk"),
                            "finish_ns": fin,
                            "excess_ns": int(fin - med),
                        }
                    )
        if chunks:
            busy_total += busy
            capacity_total += wall * max(1, workers)
        dispatch_rows.append(
            {
                "dispatch": d.args.get("dispatch"),
                "start_ns": d.start_ns - origin,
                "wall_ns": d.dur_ns,
                "busy_ns": busy,
                "workers": workers,
                "chunks": len(chunks),
                "utilisation": busy / (wall * max(1, workers)),
                "median_finish_ns": int(med),
                "mad_ns": int(mad),
                "finishes_ns": sorted(finishes),
                "longest_chunk_ns": max(
                    (c.dur_ns for c in chunks), default=0
                ),
                "stragglers": stragglers,
            }
        )
        for c in chunks:
            w = per_worker.setdefault(
                c.pid, {"pid": c.pid, "chunks": 0, "busy_ns": 0, "window_ns": 0}
            )
            w["chunks"] += 1
            w["busy_ns"] += c.dur_ns
        for pid in {c.pid for c in chunks}:
            per_worker[pid]["window_ns"] += d.dur_ns
    worker_rows = []
    straggler_pids = {
        s["pid"] for row in dispatch_rows for s in row["stragglers"]
    }
    for w in sorted(per_worker.values(), key=lambda w: str(w["pid"])):
        w["idle_ns"] = max(0, w["window_ns"] - w["busy_ns"])
        w["utilisation"] = w["busy_ns"] / max(1, w["window_ns"])
        w["straggler"] = w["pid"] in straggler_pids
        worker_rows.append(w)
    efficiency = busy_total / capacity_total if capacity_total else 1.0
    return dispatch_rows, worker_rows, efficiency


# --------------------------------------------------------------------- #
# What-if estimates
# --------------------------------------------------------------------- #


def _whatif(
    dispatch_rows: list[dict], path: list[dict], total_ns: int
) -> list[dict]:
    """Amdahl-style bounds over the dispatches on the critical path.

    Each estimate recomputes a hypothetical wall per dispatch and only
    credits the saving when that dispatch is on the critical path — the
    run never waited on off-path dispatches, so shrinking them cannot
    shorten it.  Per-dispatch walls are floored at the longest single
    chunk: no worker count makes one chunk finish faster than itself.
    """
    if not total_ns:
        return []
    on_path_starts = {
        e["start_ns"] for e in path if e["name"] == "parallel.dispatch"
    }

    def saving(row: dict, new_wall: float) -> int:
        if row["start_ns"] not in on_path_starts:
            return 0
        return max(0, int(row["wall_ns"] - new_wall))

    scenarios = [
        (
            "perfect balance across current workers",
            lambda row: max(
                row["busy_ns"] / max(1, row["workers"]),
                row["longest_chunk_ns"],
            ),
        ),
        (
            "slowest chunk finishes at the dispatch median",
            lambda row: _median_wall(row),
        ),
        (
            "2x workers, perfect balance",
            lambda row: max(
                row["busy_ns"] / max(1, 2 * row["workers"]),
                row["longest_chunk_ns"],
            ),
        ),
    ]
    estimates = []
    for label, new_wall_of in scenarios:
        saved = sum(
            saving(row, new_wall_of(row))
            for row in dispatch_rows
            if row["chunks"]
        )
        estimates.append(
            {
                "label": label,
                "saving_ns": saved,
                "new_length_ns": total_ns - saved,
                "improvement_pct": 100.0 * saved / total_ns,
            }
        )
    return estimates


def _median_wall(row: dict) -> float:
    """Hypothetical dispatch wall if every straggler finished at the
    dispatch-median finish; non-stragglers keep their real finishes."""
    if row["chunks"] < 2 or not row["stragglers"]:
        return float(row["wall_ns"])
    straggler_finishes = {s["finish_ns"] for s in row["stragglers"]}
    kept = [f for f in row["finishes_ns"] if f not in straggler_finishes]
    return float(max(kept + [row["median_finish_ns"]]))


# --------------------------------------------------------------------- #
# Event-stream annotations
# --------------------------------------------------------------------- #


def _annotations(events: list[dict] | None) -> list[dict]:
    """Fault/degrade/stall context from the merged event stream.

    The trace shows *where* time went; the events say *why* — an injected
    fault, a degradation to serial, a watchdog-flagged stall.  Only the
    kinds that explain latency are surfaced.
    """
    if not events:
        return []
    out = []
    for ev in events:
        kind = ev.get("kind")
        if kind == "fault.fired":
            out.append(
                {
                    "kind": kind,
                    "detail": f"{ev.get('site')}"
                    + (f":{ev.get('arg')}" if ev.get("arg") else "")
                    + f" at seam {ev.get('seam')}",
                    "pid": ev.get("pid"),
                    "ts_ns": ev.get("ts_ns"),
                }
            )
        elif kind == "engine.degraded":
            out.append(
                {
                    "kind": kind,
                    "detail": f"degraded to serial ({ev.get('error')})",
                    "pid": ev.get("pid"),
                    "ts_ns": ev.get("ts_ns"),
                }
            )
        elif kind == "engine.stall_detected":
            out.append(
                {
                    "kind": kind,
                    "detail": f"watchdog flagged worker {ev.get('worker')} "
                    f"(heartbeat age {ev.get('age_s', '?')}s)",
                    "pid": ev.get("pid"),
                    "ts_ns": ev.get("ts_ns"),
                }
            )
    return out


# --------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------- #


def _analyze(
    nodes: list[_Node],
    events: list[dict] | None,
    straggler_k: float,
) -> CritPathResult:
    _C_ANALYSES.inc()
    if not nodes:
        return CritPathResult(
            total_ns=0, span_count=0, parallel_efficiency=1.0,
            annotations=_annotations(events), straggler_k=straggler_k,
        )
    roots = _containment_forest(nodes)
    orphans = _link_causal(roots, nodes)
    origin = min(n.start_ns for n in nodes)
    window_end = max(n.end_ns for n in nodes)
    total_ns = window_end - origin

    # Synthetic root spanning the whole window: the critical path always
    # reaches from run start to run end, and time no root span covers is
    # attributed to the explicit UNTRACED entry.
    root = _Node(UNTRACED, "critpath", origin, total_ns, None, None, {})
    root.children = list(roots)
    entries: list[dict] = []
    _walk_path(root, entries, origin)
    entries.sort(key=lambda e: (e["start_ns"], -e["dur_ns"]))
    if total_ns == 0:
        # A trace of only zero-duration spans still reports its spans —
        # the backward walk cannot step into zero-width children, so the
        # path is synthesized from the nodes directly.
        entries = [
            {"name": n.name, "cat": n.cat, "pid": n.pid, "tid": n.tid,
             "start_ns": n.start_ns - origin, "dur_ns": 0, "path_ns": 0}
            for n in nodes
        ]
    else:
        entries = [
            e for e in entries if e["path_ns"] > 0 or e["name"] != UNTRACED
        ]

    attribution: dict[str, int] = {}
    for e in entries:
        attribution[e["cat"]] = attribution.get(e["cat"], 0) + e["path_ns"]

    dispatch_rows, worker_rows, efficiency = _dispatch_stats(
        nodes, straggler_k, origin
    )
    result = CritPathResult(
        total_ns=total_ns,
        span_count=len(nodes),
        parallel_efficiency=efficiency,
        path=entries,
        attribution=attribution,
        rollup=_rollup(nodes),
        dispatches=dispatch_rows,
        workers=worker_rows,
        whatif=_whatif(dispatch_rows, entries, total_ns),
        orphans=orphans,
        annotations=_annotations(events),
        straggler_k=straggler_k,
    )
    if orphans:
        _C_ORPHANS.inc(orphans)
    if result.stragglers:
        _C_STRAGGLERS.inc(result.stragglers)
    _G_LENGTH.set(float(total_ns))
    _G_EFFICIENCY.set(efficiency)
    return result


def analyze_collector(
    collector,
    events: list[dict] | None = None,
    straggler_k: float = DEFAULT_STRAGGLER_K,
) -> CritPathResult:
    """Analyze a live :class:`~repro.obs.trace.TraceCollector`."""
    return _analyze(_nodes_from_collector(collector), events, straggler_k)


def analyze_chrome(
    doc: dict,
    events: list[dict] | None = None,
    straggler_k: float = DEFAULT_STRAGGLER_K,
) -> CritPathResult:
    """Analyze a Chrome ``trace_event`` document (the offline path)."""
    return _analyze(_nodes_from_chrome(doc), events, straggler_k)


# --------------------------------------------------------------------- #
# Rendering and validation
# --------------------------------------------------------------------- #


def _ms(ns) -> str:
    return f"{float(ns) / 1e6:.3f}"


def render_text(result: CritPathResult, top: int = 12) -> str:
    """Terminal tables for ``repro-bench critpath``."""
    from ..bench.reporting import format_table

    lines: list[str] = []
    lines.append(
        f"critical path: {_ms(result.total_ns)} ms end to end over "
        f"{result.span_count} span(s); parallel efficiency "
        f"{result.parallel_efficiency:.3f}"
    )
    if result.orphans:
        lines.append(
            f"({result.orphans} orphan worker span(s) without a dispatch "
            "bracket — crash-degraded or torn trace; kept as DAG roots)"
        )
    lines.append("")
    path_rows = sorted(result.path, key=lambda e: -e["path_ns"])[:top]
    lines.append(
        format_table(
            ["span", "cat", "pid", "start ms", "dur ms", "on-path ms", "share"],
            [
                (
                    e["name"], e["cat"], e["pid"] if e["pid"] is not None else "-",
                    _ms(e["start_ns"]), _ms(e["dur_ns"]), _ms(e["path_ns"]),
                    f"{100.0 * e['path_ns'] / max(1, result.total_ns):.1f}%",
                )
                for e in path_rows
            ],
            title=(
                f"critical path — heaviest {len(path_rows)} of "
                f"{len(result.path)} entr(ies), contributions sum to the window"
            ),
        )
    )
    if result.attribution:
        lines.append("")
        lines.append(
            "attribution by category: "
            + ", ".join(
                f"{cat} {100.0 * ns / max(1, result.total_ns):.1f}%"
                for cat, ns in sorted(
                    result.attribution.items(), key=lambda kv: -kv[1]
                )
            )
        )
    if result.rollup:
        lines.append("")
        lines.append(
            format_table(
                ["span name", "cat", "count", "inclusive ms", "self ms"],
                [
                    (r["name"], r["cat"], r["count"],
                     _ms(r["inclusive_ns"]), _ms(r["self_ns"]))
                    for r in result.rollup[:top]
                ],
                title="inclusive vs self time per span name",
            )
        )
    if result.dispatches:
        lines.append("")
        lines.append(
            format_table(
                ["dispatch", "chunks", "workers", "wall ms", "busy ms",
                 "util", "stragglers"],
                [
                    (
                        d["dispatch"] if d["dispatch"] is not None else "-",
                        d["chunks"], d["workers"], _ms(d["wall_ns"]),
                        _ms(d["busy_ns"]), f"{d['utilisation']:.2f}",
                        ", ".join(
                            f"pid {s['pid']} chunk {s['chunk']} "
                            f"(+{_ms(s['excess_ns'])} ms)"
                            for s in d["stragglers"]
                        ) or "-",
                    )
                    for d in result.dispatches
                ],
                title=(
                    f"dispatches — straggler = finish > median + "
                    f"{result.straggler_k:g}*MAD"
                ),
            )
        )
    if result.workers:
        lines.append("")
        lines.append(
            format_table(
                ["worker pid", "chunks", "busy ms", "idle ms", "util",
                 "straggled"],
                [
                    (w["pid"], w["chunks"], _ms(w["busy_ns"]),
                     _ms(w["idle_ns"]), f"{w['utilisation']:.2f}",
                     "yes" if w["straggler"] else "-")
                    for w in result.workers
                ],
                title="per-worker busy/idle over their dispatch windows",
            )
        )
    if result.whatif:
        lines.append("")
        lines.append(
            format_table(
                ["what-if", "saving ms", "new length ms", "improvement"],
                [
                    (
                        w["label"], _ms(w["saving_ns"]),
                        _ms(w["new_length_ns"]),
                        f"{w['improvement_pct']:.1f}%",
                    )
                    for w in result.whatif
                ],
                title="what-if estimates (savings only for on-path dispatches)",
            )
        )
    if result.annotations:
        lines.append("")
        lines.append("event annotations:")
        for a in result.annotations:
            lines.append(f"  - [{a['kind']}] {a['detail']}")
    return "\n".join(lines)


def validate_critpath_doc(doc: dict) -> list[str]:
    """Schema-check an exported analysis; returns problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["not an object"]
    if doc.get("schema_version") != CRITPATH_SCHEMA_VERSION:
        problems.append(
            f"schema_version {doc.get('schema_version')!r} != "
            f"{CRITPATH_SCHEMA_VERSION}"
        )
    for key, typ in (
        ("total_ns", int), ("span_count", int),
        ("parallel_efficiency", (int, float)), ("orphans", int),
        ("stragglers", int),
    ):
        if not isinstance(doc.get(key), typ) or isinstance(doc.get(key), bool):
            problems.append(f"missing or mistyped {key!r}")
    for key in ("path", "rollup", "dispatches", "workers", "whatif",
                "annotations"):
        if not isinstance(doc.get(key), list):
            problems.append(f"missing or mistyped list {key!r}")
    if not isinstance(doc.get("attribution"), dict):
        problems.append("missing or mistyped 'attribution'")
    for i, e in enumerate(doc.get("path") or []):
        if not isinstance(e, dict) or not {
            "name", "cat", "start_ns", "dur_ns", "path_ns"
        } <= set(e):
            problems.append(f"path entry {i} lacks required keys")
            break
    path = doc.get("path") or []
    total = doc.get("total_ns")
    if path and isinstance(total, int) and total > 0:
        covered = sum(int(e.get("path_ns", 0)) for e in path)
        if abs(covered - total) > max(1, total // 100):
            problems.append(
                f"path contributions ({covered}) do not sum to total_ns "
                f"({total}) within 1%"
            )
    return problems
