"""Multilevel graph partitioning (METIS substitute for the Djidjev baseline)."""

from .metis_lite import Partition, partition_graph

__all__ = ["Partition", "partition_graph"]
