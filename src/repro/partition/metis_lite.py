"""Multilevel k-way graph partitioner (METIS substitute).

Djidjev et al. [12] partition with METIS/ParMETIS; offline we provide the
same style of partitioner: heavy-edge-matching coarsening, greedy BFS-grown
initial partition on the coarsest graph, then Kernighan–Lin boundary
refinement while uncoarsening.  Quality is what the Djidjev baseline needs:
balanced parts with a small vertex boundary on planar/mesh-like graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["Partition", "partition_graph"]


@dataclass
class Partition:
    """A k-way vertex partition."""

    assignment: np.ndarray  # part id per vertex
    k: int

    def parts(self) -> list[np.ndarray]:
        """Vertex id arrays, one per part."""
        return [np.nonzero(self.assignment == p)[0] for p in range(self.k)]

    def boundary_vertices(self, g: CSRGraph) -> np.ndarray:
        """Vertices incident to an edge that crosses parts."""
        asg = self.assignment
        cross = asg[g.edge_u] != asg[g.edge_v]
        return np.unique(
            np.concatenate([g.edge_u[cross], g.edge_v[cross]])
        ) if cross.any() else np.empty(0, dtype=np.int64)

    def edge_cut(self, g: CSRGraph) -> int:
        """Number of edges crossing between parts."""
        asg = self.assignment
        return int((asg[g.edge_u] != asg[g.edge_v]).sum())

    def balance(self) -> float:
        """Largest part size over ideal size (1.0 = perfectly balanced)."""
        sizes = np.bincount(self.assignment, minlength=self.k)
        ideal = self.assignment.size / self.k
        return float(sizes.max() / ideal) if ideal else 1.0


def partition_graph(g: CSRGraph, k: int, seed: int = 0, refine_passes: int = 4) -> Partition:
    """Partition ``g`` into ``k`` parts.

    Multilevel scheme: coarsen by heavy-edge matching until the graph is
    small (≤ max(4k, 64) vertices), partition the coarsest level by greedy
    region growth, project back and KL-refine at every level.
    """
    if k <= 1 or g.n <= k:
        return Partition(np.zeros(g.n, dtype=np.int64) if k <= 1 else np.arange(g.n) % k, max(k, 1))
    rng = np.random.default_rng(seed)

    levels: list[tuple[CSRGraph, np.ndarray]] = []  # (graph, map fine->coarse)
    cur = g
    target = max(4 * k, 64)
    while cur.n > target:
        nxt, cmap = _coarsen(cur, rng)
        if nxt.n >= cur.n:  # matching stalled
            break
        levels.append((cur, cmap))
        cur = nxt

    assignment = _initial_partition(cur, k, rng)
    assignment = _kl_refine(cur, assignment, k, refine_passes)
    # Uncoarsen with refinement at each level.
    for fine, cmap in reversed(levels):
        assignment = assignment[cmap]
        assignment = _kl_refine(fine, assignment, k, refine_passes)
    return Partition(assignment=assignment.astype(np.int64), k=k)


def _coarsen(g: CSRGraph, rng: np.random.Generator) -> tuple[CSRGraph, np.ndarray]:
    """Heavy-edge matching contraction: one level of the V-cycle."""
    n = g.n
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for u in order:
        if match[u] != -1:
            continue
        nbrs, wts, _ = g.incident(int(u))
        best, best_w = -1, -1.0
        for v, w in zip(nbrs, wts):
            if v != u and match[v] == -1 and w > best_w:
                best, best_w = int(v), float(w)
        match[u] = best if best != -1 else u
        if best != -1:
            match[best] = u

    cmap = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for u in range(n):
        if cmap[u] != -1:
            continue
        cmap[u] = nxt
        partner = match[u]
        if partner != u and partner != -1:
            cmap[partner] = nxt
        nxt += 1
    cu = cmap[g.edge_u]
    cv = cmap[g.edge_v]
    keep = cu != cv
    # Sum parallel edge weights so heavy-edge matching stays meaningful.
    if keep.any():
        lo = np.minimum(cu[keep], cv[keep])
        hi = np.maximum(cu[keep], cv[keep])
        keys = lo * nxt + hi
        uniq, inv = np.unique(keys, return_inverse=True)
        wsum = np.zeros(uniq.size)
        np.add.at(wsum, inv, g.edge_w[keep])
        coarse = CSRGraph(nxt, uniq // nxt, uniq % nxt, wsum)
    else:
        coarse = CSRGraph(nxt, [], [], [])
    return coarse, cmap


def _initial_partition(g: CSRGraph, k: int, rng: np.random.Generator) -> np.ndarray:
    """Greedy BFS region growth from k random seeds, balanced by quota."""
    n = g.n
    assignment = np.full(n, -1, dtype=np.int64)
    quota = int(np.ceil(n / k))
    seeds = rng.choice(n, size=min(k, n), replace=False)
    frontiers: list[list[int]] = [[int(s)] for s in seeds]
    sizes = [0] * k
    for p, s in enumerate(seeds):
        assignment[s] = p
        sizes[p] += 1
    active = True
    while active:
        active = False
        for p in range(k):
            if sizes[p] >= quota or not frontiers[p]:
                continue
            nxt: list[int] = []
            for u in frontiers[p]:
                for v in g.neighbors(u):
                    if assignment[v] == -1 and sizes[p] < quota:
                        assignment[v] = p
                        sizes[p] += 1
                        nxt.append(int(v))
            frontiers[p] = nxt
            if nxt:
                active = True
    # Orphans (disconnected or quota-starved): round-robin to smallest part.
    for u in np.nonzero(assignment == -1)[0]:
        p = int(np.argmin(sizes))
        assignment[u] = p
        sizes[p] += 1
    return assignment


def _kl_refine(g: CSRGraph, assignment: np.ndarray, k: int, passes: int) -> np.ndarray:
    """Kernighan–Lin style boundary refinement with a balance guard."""
    assignment = assignment.copy()
    n = g.n
    if n == 0 or g.m == 0:
        return assignment
    quota_hi = int(np.ceil(n / k * 1.1)) + 1
    sizes = np.bincount(assignment, minlength=k)
    for _ in range(passes):
        moved = 0
        cross = assignment[g.edge_u] != assignment[g.edge_v]
        boundary = np.unique(
            np.concatenate([g.edge_u[cross], g.edge_v[cross]])
        ) if cross.any() else np.empty(0, dtype=np.int64)
        for u in boundary:
            pu = int(assignment[u])
            nbrs, wts, _ = g.incident(int(u))
            gain = np.zeros(k)
            for v, w in zip(nbrs, wts):
                gain[assignment[v]] += w
            gain_move = gain - gain[pu]
            gain_move[pu] = -np.inf
            full = sizes >= quota_hi
            gain_move[full] = -np.inf
            best = int(np.argmax(gain_move))
            if gain_move[best] > 0 and sizes[pu] > 1:
                assignment[u] = best
                sizes[pu] -= 1
                sizes[best] += 1
                moved += 1
        if not moved:
            break
    return assignment
