"""Graph-strategy library: the structures where the equivalence breaks.

Every generator here is deterministic in its arguments (a seed selects the
randomness), so a failing graph can be regenerated from its corpus name
alone.  The families target the fragile cases of the ear-decomposition
pipeline: long degree-2 chains (heavy reduction), cactus/bridge-heavy
graphs (block-cut-tree composition, single-edge BCCs), multigraphs with
parallel edges and self-loops (Lemma 3.1's non-tree edges), disconnected
graphs, and tie-heavy / near-minimum weights (tie-breaking between
equal-length paths and equal-weight cycles).

:func:`adversarial_corpus` enumerates the named deterministic cases;
:func:`random_corpus` pads with randomized family draws;
:func:`graph_strategy` exposes the same space as a hypothesis strategy
(imported lazily so the core library never depends on hypothesis).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.generators import (
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    grid_graph,
    path_graph,
)

__all__ = [
    "theta_graph",
    "cactus_graph",
    "bridge_heavy_graph",
    "parallel_hairball",
    "disconnected_graph",
    "star_of_cycles",
    "reweighted",
    "adversarial_corpus",
    "random_corpus",
    "corpus",
    "graph_strategy",
]


# ------------------------------------------------------------------ #
# Deterministic adversarial families
# ------------------------------------------------------------------ #


def theta_graph(n_chains: int = 3, chain_len: int = 6, seed: int = 0) -> CSRGraph:
    """Two hubs joined by ``n_chains`` internally-disjoint chains.

    Every interior vertex has degree 2, so reduction contracts the graph
    to two vertices with ``n_chains`` parallel edges — the canonical
    stress case for chain re-expansion and parallel-edge handling.
    """
    rng = np.random.default_rng(seed)
    n = 2 + n_chains * max(0, chain_len - 1)
    us, vs = [], []
    nxt = 2
    for _ in range(n_chains):
        prev = 0
        for _ in range(chain_len - 1):
            us.append(prev)
            vs.append(nxt)
            prev = nxt
            nxt += 1
        us.append(prev)
        vs.append(1)
    w = rng.uniform(0.5, 2.0, len(us))
    return CSRGraph(n, us, vs, w)


def cactus_graph(n_cycles: int = 4, cycle_len: int = 5, seed: int = 0) -> CSRGraph:
    """Cycles glued in a tree pattern at shared articulation vertices.

    Every edge lies on exactly one cycle and every shared vertex is a cut
    vertex, so each cycle is its own biconnected component — the
    block-cut-tree composition path gets one component per cycle.
    """
    rng = np.random.default_rng(seed)
    us, vs = [], []
    anchors = [0]
    n = 1
    for _ in range(n_cycles):
        a = int(rng.choice(anchors))
        ring = [a] + list(range(n, n + cycle_len - 1))
        n += cycle_len - 1
        for i in range(len(ring)):
            us.append(ring[i])
            vs.append(ring[(i + 1) % len(ring)])
        anchors.extend(ring[1:])
    w = rng.uniform(0.5, 2.0, len(us))
    return CSRGraph(n, us, vs, w)


def bridge_heavy_graph(
    n_blocks: int = 4, block_size: int = 4, seed: int = 0
) -> CSRGraph:
    """Small dense blocks connected by bridges, plus pendant paths.

    Bridges are single-edge biconnected components; the pendant paths add
    iteratively-peelable degree-1 vertices (the Banerjee baseline's one
    structural optimisation).
    """
    rng = np.random.default_rng(seed)
    us, vs = [], []
    block_entry = []
    n = 0
    for _ in range(n_blocks):
        verts = list(range(n, n + block_size))
        n += block_size
        for i, a in enumerate(verts):
            for b in verts[i + 1 :]:
                if rng.random() < 0.8:
                    us.append(a)
                    vs.append(b)
        # Ensure the block is at least a path so it stays connected.
        for a, b in zip(verts, verts[1:]):
            us.append(a)
            vs.append(b)
        block_entry.append(verts[0])
    for a, b in zip(block_entry, block_entry[1:]):  # bridge chain of blocks
        us.append(a)
        vs.append(b)
    anchor = block_entry[-1]  # pendant path off the last block
    for _ in range(int(rng.integers(1, 4))):
        us.append(anchor)
        vs.append(n)
        anchor = n
        n += 1
    w = rng.uniform(0.5, 2.0, len(us))
    return CSRGraph(n, us, vs, w)


def parallel_hairball(n: int = 6, m: int = 14, seed: int = 0) -> CSRGraph:
    """Random multigraph: parallel edges and self-loops are likely."""
    rng = np.random.default_rng(seed)
    us = rng.integers(0, n, m)
    vs = rng.integers(0, n, m)
    w = rng.uniform(0.5, 2.0, m)
    return CSRGraph(n, us, vs, w)


def disconnected_graph(
    n_parts: int = 3, part_size: int = 5, isolated: int = 2, seed: int = 0
) -> CSRGraph:
    """Disjoint random connected parts plus isolated vertices."""
    rng = np.random.default_rng(seed)
    us, vs, ws = [], [], []
    n = 0
    for _ in range(n_parts):
        extra = int(rng.integers(0, part_size))
        m_part = min(part_size - 1 + extra, part_size * (part_size - 1) // 2)
        part = gnm_random_graph(part_size, m_part, seed=int(rng.integers(0, 2**31)))
        us.extend(part.edge_u + n)
        vs.extend(part.edge_v + n)
        ws.extend(rng.uniform(0.5, 2.0, part.m))
        n += part_size
    n += isolated
    return CSRGraph(n, us, vs, ws)


def star_of_cycles(arms: int = 3, cycle_len: int = 4, seed: int = 0) -> CSRGraph:
    """Cycles sharing one central cut vertex (single-vertex overlap BCCs)."""
    rng = np.random.default_rng(seed)
    us, vs = [], []
    n = 1
    for _ in range(arms):
        ring = [0] + list(range(n, n + cycle_len - 1))
        n += cycle_len - 1
        for i in range(len(ring)):
            us.append(ring[i])
            vs.append(ring[(i + 1) % len(ring)])
    w = rng.uniform(0.5, 2.0, len(us))
    return CSRGraph(n, us, vs, w)


def reweighted(g: CSRGraph, mode: str = "ties", seed: int = 0) -> CSRGraph:
    """Replace the weights of ``g`` to stress a tie-breaking regime.

    ``"ties"`` makes every weight 1.0 (every path length is a tie class);
    ``"few"`` draws from {1.0, 2.0} (many partial ties); ``"near-zero"``
    draws tiny weights just above the engine's ``MIN_POSITIVE_WEIGHT``
    contract, where the zero-weight nudge could interfere if mishandled.
    """
    rng = np.random.default_rng(seed)
    if mode == "ties":
        w = np.ones(g.m)
    elif mode == "few":
        w = rng.choice([1.0, 2.0], size=g.m)
    elif mode == "near-zero":
        w = rng.uniform(1e-11, 1e-9, size=g.m)
    else:
        raise ValueError(f"unknown reweight mode {mode!r}")
    return g.with_weights(w)


# ------------------------------------------------------------------ #
# Corpora
# ------------------------------------------------------------------ #


def adversarial_corpus(seed: int = 0) -> list[tuple[str, CSRGraph]]:
    """Named deterministic adversarial cases (same list for a given seed)."""
    rng = np.random.default_rng(seed)

    def s() -> int:
        return int(rng.integers(0, 2**31))

    cases: list[tuple[str, CSRGraph]] = [
        ("empty", CSRGraph(0, [], [], [])),
        ("single-vertex", CSRGraph(1, [], [], [])),
        ("lonely-loop", CSRGraph(1, [0], [0], [0.5])),
        ("isolated-pair", CSRGraph(2, [], [], [])),
        ("one-edge", CSRGraph(2, [0], [1], [1.5])),
        ("parallel-pair", CSRGraph(2, [0, 0], [1, 1], [1.0, 2.0])),
        ("parallel-tied", CSRGraph(2, [0, 0, 0], [1, 1, 1], [1.0, 1.0, 1.0])),
        ("loop-on-path", CSRGraph(3, [0, 1, 1], [1, 2, 1], [1.0, 1.0, 0.25])),
        ("triangle", cycle_graph(3)),
        ("long-cycle", cycle_graph(12)),
        ("pure-path", path_graph(9)),
        ("theta", theta_graph(3, 6, seed=s())),
        ("theta-wide", theta_graph(5, 3, seed=s())),
        ("theta-long", theta_graph(2, 12, seed=s())),
        ("theta-ties", reweighted(theta_graph(3, 6, seed=s()), "ties")),
        ("cactus", cactus_graph(4, 5, seed=s())),
        ("cactus-triangles", cactus_graph(5, 3, seed=s())),
        ("bridge-heavy", bridge_heavy_graph(4, 4, seed=s())),
        ("bridge-heavy-ties", reweighted(bridge_heavy_graph(3, 4, seed=s()), "ties")),
        ("hairball", parallel_hairball(6, 14, seed=s())),
        ("hairball-dense", parallel_hairball(4, 16, seed=s())),
        ("hairball-ties", reweighted(parallel_hairball(5, 12, seed=s()), "ties")),
        ("disconnected", disconnected_graph(3, 5, 2, seed=s())),
        ("disconnected-rings", disconnected_graph(2, 4, 3, seed=s())),
        ("star-of-cycles", star_of_cycles(3, 4, seed=s())),
        ("star-of-cycles-big", star_of_cycles(4, 5, seed=s())),
        ("grid", grid_graph(4, 5)),
        ("grid-ties", reweighted(grid_graph(3, 6), "ties")),
        ("complete", complete_graph(6)),
        ("complete-few", reweighted(complete_graph(5), "few", seed=s())),
        ("near-zero-theta", reweighted(theta_graph(3, 5, seed=s()), "near-zero", seed=s())),
        ("near-zero-grid", reweighted(grid_graph(3, 4), "near-zero", seed=s())),
        ("gnm-sparse", gnm_random_graph(14, 16, seed=s())),
        ("gnm-dense", gnm_random_graph(10, 28, seed=s())),
    ]
    return cases


_FAMILIES = ("theta", "cactus", "bridge", "hairball", "disconnected", "star", "gnm")


def random_corpus(
    count: int, seed: int = 0, max_n: int = 18
) -> list[tuple[str, CSRGraph]]:
    """``count`` randomized family draws, deterministic in ``seed``."""
    rng = np.random.default_rng(seed)
    out: list[tuple[str, CSRGraph]] = []
    for i in range(count):
        fam = _FAMILIES[int(rng.integers(0, len(_FAMILIES)))]
        fs = int(rng.integers(0, 2**31))
        if fam == "theta":
            g = theta_graph(int(rng.integers(2, 5)), int(rng.integers(2, 8)), seed=fs)
        elif fam == "cactus":
            g = cactus_graph(int(rng.integers(2, 5)), int(rng.integers(3, 6)), seed=fs)
        elif fam == "bridge":
            g = bridge_heavy_graph(int(rng.integers(2, 4)), int(rng.integers(3, 5)), seed=fs)
        elif fam == "hairball":
            g = parallel_hairball(int(rng.integers(2, 8)), int(rng.integers(0, 16)), seed=fs)
        elif fam == "disconnected":
            g = disconnected_graph(int(rng.integers(1, 4)), int(rng.integers(2, 6)), int(rng.integers(0, 3)), seed=fs)
        elif fam == "star":
            g = star_of_cycles(int(rng.integers(2, 4)), int(rng.integers(3, 6)), seed=fs)
        else:
            n = int(rng.integers(2, max_n))
            m = min(int(rng.integers(n - 1, 2 * n + 1)), n * (n - 1) // 2)
            g = gnm_random_graph(n, m, seed=fs)
        mode = rng.random()
        if mode < 0.15:
            g = reweighted(g, "ties")
        elif mode < 0.3:
            g = reweighted(g, "few", seed=fs)
        elif mode < 0.38:
            g = reweighted(g, "near-zero", seed=fs)
        out.append((f"random-{fam}-{i}", g))
    return out


def corpus(count: int = 200, seed: int = 0) -> list[tuple[str, CSRGraph]]:
    """The adversarial corpus padded with random draws to ``count`` graphs."""
    base = adversarial_corpus(seed)
    if count > len(base):
        base = base + random_corpus(count - len(base), seed=seed + 1)
    return base[:count]


# ------------------------------------------------------------------ #
# Hypothesis strategies (lazy import: hypothesis is a test-only dep)
# ------------------------------------------------------------------ #


def graph_strategy(
    max_n: int = 16,
    multigraph: bool = True,
    connected: bool = False,
    tie_prone: bool = True,
):
    """A hypothesis strategy drawing :class:`CSRGraph` instances.

    Draws a family, a size, and a seed, then delegates to the
    deterministic generators above — so every shrunk counterexample is
    reproducible from the drawn parameters alone.
    """
    from hypothesis import strategies as st

    @st.composite
    def _graphs(draw):
        fam = draw(
            st.sampled_from(
                _FAMILIES if multigraph else tuple(f for f in _FAMILIES if f != "hairball")
            )
        )
        fs = draw(st.integers(0, 2**31 - 1))
        if connected and fam == "disconnected":
            fam = "gnm"
        if fam == "theta":
            g = theta_graph(draw(st.integers(2, 4)), draw(st.integers(2, 6)), seed=fs)
        elif fam == "cactus":
            g = cactus_graph(draw(st.integers(2, 4)), draw(st.integers(3, 5)), seed=fs)
        elif fam == "bridge":
            g = bridge_heavy_graph(draw(st.integers(2, 3)), draw(st.integers(3, 4)), seed=fs)
        elif fam == "hairball":
            g = parallel_hairball(draw(st.integers(1, 7)), draw(st.integers(0, 14)), seed=fs)
        elif fam == "disconnected":
            g = disconnected_graph(draw(st.integers(1, 3)), draw(st.integers(2, 5)), draw(st.integers(0, 2)), seed=fs)
        elif fam == "star":
            g = star_of_cycles(draw(st.integers(2, 3)), draw(st.integers(3, 5)), seed=fs)
        else:
            n = draw(st.integers(2, max_n))
            m = min(draw(st.integers(n - 1, 2 * n)), n * (n - 1) // 2)
            g = gnm_random_graph(n, m, seed=fs)
        if tie_prone:
            mode = draw(st.sampled_from(["random", "random", "ties", "few"]))
            if mode != "random":
                g = reweighted(g, mode, seed=fs)
        return g

    return _graphs()
