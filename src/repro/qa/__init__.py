"""``repro.qa`` — conformance tooling for the algorithm zoo.

The paper's central claim is an *equivalence* (Lemma 3.1, Table 1):
APSP/MCB computed through the ear-reduced graph ``G^r`` — chain
re-expansion, block-cut-tree composition, multigraph parallel edges and
self-loops included — must match the same computation on ``G``.  This
package is the machinery that keeps every implementation honest about it:

* :mod:`repro.qa.strategies` — deterministic adversarial generators and
  hypothesis strategies for the structures where the equivalence is
  fragile (long degree-2 chains, bridges, parallel edges, ties).
* :mod:`repro.qa.differential` — a registry of every APSP/MCB
  implementation plus a differential-oracle runner that cross-checks them
  pairwise on generated graphs and serializes any disagreeing graph for
  replay.
* :mod:`repro.qa.invariants` — checkable contracts (ear partition, chain
  weight preservation, GF(2) basis independence) wired into the library
  behind the ``REPRO_CHECK_INVARIANTS`` env knob.
* :mod:`repro.qa.faultinject` — fault injection for the process-parallel
  backend (worker crashes, shared-memory allocation failure, hangs),
  used to prove the parallel→serial degradation path is lossless.
"""

from importlib import import_module

# Attribute → submodule map, resolved lazily (PEP 562).  The invariant
# hooks embedded in the decomposition/MCB modules import ``repro.qa``
# submodules at call time; keeping this package façade lazy means those
# hooks never drag the full registry (and with it every APSP/MCB module)
# into an import cycle or onto a cold path's import bill.
_EXPORTS = {
    "differential": (
        "APSP_REGISTRY",
        "MCB_REGISTRY",
        "DifferentialReport",
        "Disagreement",
        "Implementation",
        "matrices_agree",
        "register_apsp",
        "register_mcb",
        "run_apsp_differential",
        "run_mcb_differential",
        "run_suite",
    ),
    "invariants": (
        "InvariantViolation",
        "check_cycle_basis",
        "check_ear_decomposition",
        "check_reduction",
        "invariants_enabled",
    ),
    "strategies": ("adversarial_corpus", "corpus", "graph_strategy", "random_corpus"),
    "faultinject": (),
}
_ATTR_TO_MODULE = {
    attr: mod for mod, attrs in _EXPORTS.items() for attr in attrs
}


def __getattr__(name: str):
    if name in _ATTR_TO_MODULE:
        module = import_module(f".{_ATTR_TO_MODULE[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    if name in _EXPORTS:
        return import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "APSP_REGISTRY",
    "MCB_REGISTRY",
    "DifferentialReport",
    "Disagreement",
    "Implementation",
    "matrices_agree",
    "register_apsp",
    "register_mcb",
    "run_apsp_differential",
    "run_mcb_differential",
    "run_suite",
    "InvariantViolation",
    "check_cycle_basis",
    "check_ear_decomposition",
    "check_reduction",
    "invariants_enabled",
    "adversarial_corpus",
    "corpus",
    "graph_strategy",
    "random_corpus",
]
