"""Checkable contracts, wired into the library behind an env knob.

Each function raises :class:`InvariantViolation` with a precise message
when a structural contract of the pipeline is broken:

* :func:`check_ear_decomposition` — the ears partition the edge set, walk
  consistency, and the open-ear property (Section 2.1.1).
* :func:`check_reduction` — removed vertices have degree 2 in ``G``,
  chains partition the edges with exact weight preservation, and no
  reduced vertex is left contractible (degree 2 in ``G^r`` without being a
  promoted cycle anchor).
* :func:`check_cycle_basis` — basis size equals ``m − n + c``, every
  element is a genuine cycle-space vector, and the restricted vectors are
  GF(2)-independent.

``REPRO_CHECK_INVARIANTS`` (any of ``1/true/yes/on``) turns on the hooks
embedded in :func:`repro.decomposition.reduce.reduce_graph`,
:func:`repro.decomposition.ear.ear_decomposition`,
:func:`repro.mcb.ear_mcb.minimum_cycle_basis`, and the de Pina witness
loop.  When the knob is off, each hook costs a single dict lookup, so the
checks can ride along in CI at near-zero production cost.
"""

from __future__ import annotations

import os

import numpy as np

from ..graph.csr import CSRGraph
from ..obs import metrics as _metrics

__all__ = [
    "InvariantViolation",
    "invariants_enabled",
    "check_ear_decomposition",
    "check_reduction",
    "check_cycle_basis",
    "maybe_check_ear_decomposition",
    "maybe_check_reduction",
    "maybe_check_cycle_basis",
]

_TRUTHY = {"1", "true", "yes", "on"}

_C_CHECKS = _metrics.counter("qa.invariant_checks")


class InvariantViolation(AssertionError):
    """A structural contract of the pipeline does not hold."""


def invariants_enabled() -> bool:
    """True when ``REPRO_CHECK_INVARIANTS`` is set to a truthy value."""
    return os.environ.get("REPRO_CHECK_INVARIANTS", "").strip().lower() in _TRUTHY


def _fail(message: str) -> None:
    raise InvariantViolation(message)


# ------------------------------------------------------------------ #
# Ear decomposition
# ------------------------------------------------------------------ #


def check_ear_decomposition(g: CSRGraph, dec) -> None:
    """Every edge on exactly one ear; walks consistent; first ear a cycle."""
    counts = np.zeros(g.m, dtype=np.int64)
    for ear in dec.ears:
        np.add.at(counts, ear.edges, 1)
    if np.any(counts != 1):
        missing = int((counts == 0).sum())
        dup = int((counts > 1).sum())
        _fail(
            f"ears do not partition the edge set: {missing} edges uncovered, "
            f"{dup} covered more than once"
        )
    for k, ear in enumerate(dec.ears):
        if ear.vertices.size != ear.edges.size + 1:
            _fail(f"ear {k}: walk has {ear.vertices.size} vertices for {ear.edges.size} edges")
        for i, eid in enumerate(ear.edges):
            a, b = g.edge_endpoints(int(eid))
            u, v = int(ear.vertices[i]), int(ear.vertices[i + 1])
            if {a, b} != {u, v}:
                _fail(f"ear {k}: edge {eid} does not join walk vertices {u}-{v}")
    if not dec.ears[0].is_cycle:
        _fail("first ear is not a cycle")
    if dec.is_open and any(e.is_cycle for e in dec.ears[1:]):
        _fail("decomposition marked open but a later ear is a cycle")


# ------------------------------------------------------------------ #
# Degree-2 reduction
# ------------------------------------------------------------------ #


def check_reduction(red, strict_degree: bool | None = None) -> None:
    """Structural contract of ``reduce_graph``.

    Beyond :meth:`ReducedGraph.validate` (chains partition the edges with
    exact per-chain weight preservation and consistent endpoints), checks
    that every removed vertex has degree 2 in ``G`` and — unless
    ``strict_degree`` is disabled, as it must be for a caller-supplied
    ``keep`` mask — that the reduction is *maximal*: a degree-2 vertex of
    ``G^r`` is only allowed when it is a promoted cycle anchor (it then
    carries a self-loop, which counts 2 toward its degree).
    """
    red.validate()
    g, r = red.original, red.graph
    removed = np.nonzero(~red.kept_mask)[0]
    if removed.size and np.any(g.degree[removed] != 2):
        bad = removed[g.degree[removed] != 2]
        _fail(f"removed vertices with degree != 2 in G: {bad[:5].tolist()}")
    if removed.size:
        ch = red.chain_of[removed]
        if np.any(ch < 0):
            _fail("removed vertex assigned to no chain")
        dl = red.dist_left[removed]
        dr = red.dist_right[removed]
        cw = np.asarray([red.chains[int(c)].weight for c in ch])
        if not np.allclose(dl + dr, cw):
            _fail("dist_left + dist_right != chain weight for some removed vertex")
    if strict_degree is None:
        strict_degree = True
    if strict_degree and r.n:
        deg2 = np.nonzero(r.degree == 2)[0]
        loops = np.unique(r.edge_u[r.edge_u == r.edge_v])
        stray = np.setdiff1d(deg2, loops)
        if stray.size:
            _fail(
                "reduced graph is not maximal: degree-2 non-anchor vertices "
                f"{red.kept_ids[stray][:5].tolist()} survive"
            )


# ------------------------------------------------------------------ #
# Minimum cycle basis
# ------------------------------------------------------------------ #


def check_cycle_basis(g: CSRGraph, cycles: list) -> None:
    """Size ``m − n + c``, valid supports, GF(2) independence.

    Weight *minimality* is not checkable without an oracle — that is the
    differential runner's job; this contract is about basis-hood.
    """
    from ..mcb.verify import verify_cycle_basis

    rep = verify_cycle_basis(g, cycles)
    if not rep.ok:
        _fail(f"cycle basis contract violated: {rep.message}")
    for i, c in enumerate(cycles):
        if abs(c.weight - c.support_weight(g)) > 1e-9 * max(1.0, abs(c.weight)):
            _fail(
                f"cycle {i}: accounted weight {c.weight} != support weight "
                f"{c.support_weight(g)}"
            )


# ------------------------------------------------------------------ #
# Hooks (near-zero cost when the knob is off)
# ------------------------------------------------------------------ #


def maybe_check_ear_decomposition(g: CSRGraph, dec) -> None:
    if invariants_enabled():
        _C_CHECKS.inc()
        check_ear_decomposition(g, dec)


def maybe_check_reduction(red, strict_degree: bool | None = None) -> None:
    if invariants_enabled():
        _C_CHECKS.inc()
        check_reduction(red, strict_degree=strict_degree)


def maybe_check_cycle_basis(g: CSRGraph, cycles: list) -> None:
    if invariants_enabled():
        _C_CHECKS.inc()
        check_cycle_basis(g, cycles)
