"""Differential oracle: every implementation pair must agree.

APSP: all registered implementations are run on the same graph and their
distance matrices compared against the registry's reference entry —
infinities must match exactly, finite entries to tight tolerance (the
implementations legitimately differ in summation order; serial-vs-parallel
engine pairs are additionally asserted bit-identical by the fault-injection
tests).  MCB: every implementation must return a *verified* cycle basis
(:func:`repro.mcb.verify.verify_cycle_basis`) whose total support weight —
the quantity Lemma 3.1 preserves, and which is unique for minimum bases
even when the basis itself is not — matches the reference's.

New backends auto-enroll by calling :func:`register_apsp` /
:func:`register_mcb` (or using them as decorators); the conformance suite
iterates the registries, so a registered implementation is covered with no
further test changes.  On any disagreement the failing graph is serialized
through :mod:`repro.graph.io` (``REPRO_QA_ARTIFACTS`` or the
``artifacts_dir`` argument names the directory) so the exact instance can
be replayed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "Implementation",
    "Disagreement",
    "DifferentialReport",
    "APSP_REGISTRY",
    "MCB_REGISTRY",
    "register_apsp",
    "register_mcb",
    "matrices_agree",
    "run_apsp_differential",
    "run_mcb_differential",
    "run_suite",
]

#: Relative tolerance for cross-implementation comparisons.  Distances are
#: sums of at most ``n`` doubles, so anything past accumulated rounding is
#: a real disagreement.
RTOL = 1e-9
ATOL = 1e-12


@dataclass(frozen=True)
class Implementation:
    """A registered APSP or MCB implementation.

    ``max_n`` caps the graphs this implementation is asked to solve
    (Horton's candidate enumeration is O(n·m·f) — fine as an oracle on
    small graphs, pointless on large ones); ``stride`` runs it on every
    k-th corpus graph only (the process-pool backend pays a pool spin-up
    per graph).  ``reference`` marks the registry's comparison baseline.
    """

    name: str
    fn: Callable[[CSRGraph], object]
    max_n: int | None = None
    stride: int = 1
    reference: bool = False


@dataclass(frozen=True)
class Disagreement:
    """One implementation disagreeing with the reference on one graph."""

    impl: str
    reference: str
    graph_name: str
    graph: CSRGraph
    detail: str
    artifact: str | None = None

    def __str__(self) -> str:
        loc = f" [saved: {self.artifact}]" if self.artifact else ""
        return (
            f"{self.impl} vs {self.reference} on {self.graph_name} "
            f"(n={self.graph.n}, m={self.graph.m}): {self.detail}{loc}"
        )


@dataclass
class DifferentialReport:
    """Outcome of one differential sweep."""

    kind: str
    graphs_run: int = 0
    comparisons: int = 0
    implementations: list[str] = field(default_factory=list)
    skipped: int = 0
    disagreements: list[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        head = (
            f"{self.kind}: {len(self.implementations)} implementations "
            f"({', '.join(self.implementations)}), {self.graphs_run} graphs, "
            f"{self.comparisons} comparisons, {self.skipped} skipped"
        )
        if self.ok:
            return head + " — all agree"
        lines = [head, f"{len(self.disagreements)} DISAGREEMENTS:"]
        lines += [f"  - {d}" for d in self.disagreements]
        return "\n".join(lines)


# ------------------------------------------------------------------ #
# Registries
# ------------------------------------------------------------------ #

APSP_REGISTRY: dict[str, Implementation] = {}
MCB_REGISTRY: dict[str, Implementation] = {}


def _register(
    registry: dict[str, Implementation],
    name: str,
    fn: Callable | None,
    **kwargs,
):
    if fn is None:  # decorator form
        return lambda f: _register(registry, name, f, **kwargs)
    if kwargs.get("reference"):
        for impl in registry.values():
            if impl.reference:
                raise ValueError(f"registry already has a reference: {impl.name}")
    registry[name] = Implementation(name=name, fn=fn, **kwargs)
    return fn


def register_apsp(name: str, fn: Callable | None = None, **kwargs):
    """Enroll an APSP implementation (callable ``g -> (n, n) ndarray``)."""
    return _register(APSP_REGISTRY, name, fn, **kwargs)


def register_mcb(name: str, fn: Callable | None = None, **kwargs):
    """Enroll an MCB implementation (callable ``g -> list[Cycle]``)."""
    return _register(MCB_REGISTRY, name, fn, **kwargs)


def _reference_of(registry: dict[str, Implementation]) -> Implementation:
    for impl in registry.values():
        if impl.reference:
            return impl
    raise ValueError("registry has no reference implementation")


def _all_pairs(n: int) -> np.ndarray:
    """Every ordered vertex pair as a ``(n*n, 2)`` array (row-major)."""
    uu, vv = np.meshgrid(
        np.arange(n, dtype=np.int64), np.arange(n, dtype=np.int64), indexing="ij"
    )
    return np.column_stack([uu.ravel(), vv.ravel()])


def _oracle_bulk_matrix(g: CSRGraph) -> np.ndarray:
    from ..apsp.oracle import DistanceOracle

    return DistanceOracle(g).query_many(_all_pairs(g.n)).reshape(g.n, g.n)


def _reduced_oracle_bulk_matrix(g: CSRGraph) -> np.ndarray:
    from ..apsp.reduced_oracle import ReducedDistanceOracle

    return ReducedDistanceOracle(g).query_many(_all_pairs(g.n)).reshape(g.n, g.n)


def _oracle_explain_matrix(g: CSRGraph) -> np.ndarray:
    from ..apsp.oracle import DistanceOracle

    oracle = DistanceOracle(g)
    pairs = _all_pairs(g.n)
    prov = oracle.explain_many(pairs)
    # The explain path must not perturb the answer: bit-exact vs query_many.
    if not np.array_equal(prov.distances, oracle.query_many(pairs)):
        raise AssertionError("explain_many distances diverge from query_many")
    return prov.distances.reshape(g.n, g.n)


def _reduced_oracle_explain_matrix(g: CSRGraph) -> np.ndarray:
    from ..apsp.reduced_oracle import ReducedDistanceOracle

    oracle = ReducedDistanceOracle(g)
    pairs = _all_pairs(g.n)
    prov = oracle.explain_many(pairs)
    if not np.array_equal(prov.distances, oracle.query_many(pairs)):
        raise AssertionError("explain_many distances diverge from query_many")
    return prov.distances.reshape(g.n, g.n)


def _builtin_registrations() -> None:
    # Imported here: the apsp/mcb packages must not be a hard import cost
    # (or cycle) for anyone importing repro.qa.strategies alone.
    from ..apsp import (
        bcc_apsp,
        blocked_floyd_warshall,
        dijkstra_apsp,
        ear_apsp_full,
        floyd_warshall,
        partition_apsp,
    )
    from ..mcb import depina_mcb, horton_mcb, minimum_cycle_basis, mm_mcb

    register_apsp("dijkstra-scipy", dijkstra_apsp, reference=True)
    register_apsp("dijkstra-python", lambda g: dijkstra_apsp(g, engine="python"))
    register_apsp("dense-fw", floyd_warshall, max_n=128)
    register_apsp("blocked-fw", lambda g: blocked_floyd_warshall(g, block=8), max_n=128)
    register_apsp("ear", ear_apsp_full)
    register_apsp("partition", partition_apsp)
    register_apsp("bcc", bcc_apsp)
    register_apsp(
        "parallel",
        lambda g: dijkstra_apsp(g, engine="parallel", workers=2, chunk_size=4),
        stride=25,
    )
    # Bulk-query fast paths: the vectorized oracle query_many over every
    # pair must reproduce the full matrix (and is additionally asserted
    # bit-identical to the scalar query loop by tests/test_bulk_query.py).
    register_apsp("oracle-bulk", _oracle_bulk_matrix, max_n=96)
    register_apsp("reduced-oracle-bulk", _reduced_oracle_bulk_matrix, max_n=96)
    # Provenance capture rides the same _resolve body as query_many; the
    # explain registrations additionally self-assert bit-exactness.
    register_apsp("oracle-explain", _oracle_explain_matrix, max_n=64, stride=2)
    register_apsp(
        "reduced-oracle-explain", _reduced_oracle_explain_matrix, max_n=64, stride=2
    )

    register_mcb("horton", horton_mcb, max_n=24, reference=True)
    register_mcb("depina", depina_mcb)
    register_mcb("mm", mm_mcb)
    register_mcb("ear-mm", lambda g: minimum_cycle_basis(g, algorithm="mm"))
    register_mcb("ear-depina", lambda g: minimum_cycle_basis(g, algorithm="depina"))


_builtin_registrations()


# ------------------------------------------------------------------ #
# Comparison semantics
# ------------------------------------------------------------------ #


def matrices_agree(a: np.ndarray, b: np.ndarray) -> str | None:
    """None when two distance matrices agree; else a description.

    Reachability (infinity pattern) must match exactly; finite entries to
    ``RTOL``/``ATOL``.
    """
    if a.shape != b.shape:
        return f"shape mismatch: {a.shape} vs {b.shape}"
    fin_a = np.isfinite(a)
    fin_b = np.isfinite(b)
    if not np.array_equal(fin_a, fin_b):
        bad = int(np.sum(fin_a != fin_b))
        return f"reachability mismatch on {bad} pairs"
    if not fin_a.any():
        return None
    x, y = a[fin_a], b[fin_a]
    close = np.isclose(x, y, rtol=RTOL, atol=ATOL)
    if not close.all():
        delta = float(np.max(np.abs(x[~close] - y[~close])))
        return f"{int((~close).sum())} finite entries differ (max |Δ| = {delta:g})"
    return None


def _basis_weight(g: CSRGraph, cycles) -> float:
    return float(sum(c.support_weight(g) for c in cycles))


def _artifact_path(artifacts_dir: str | Path | None) -> Path | None:
    env = os.environ.get("REPRO_QA_ARTIFACTS")
    chosen = artifacts_dir if artifacts_dir is not None else env
    if not chosen:
        return None
    p = Path(chosen)
    p.mkdir(parents=True, exist_ok=True)
    return p


def _save_artifact(
    out_dir: Path | None,
    kind: str,
    graph_name: str,
    g: CSRGraph,
    context: dict,
) -> str | None:
    """Serialize a disagreeing graph + context for replay; returns the path."""
    if out_dir is None:
        return None
    from ..graph import io as graph_io

    slug = "".join(ch if ch.isalnum() or ch in "-_" else "-" for ch in graph_name)
    base = out_dir / f"{kind}-{slug}"
    graph_io.save_npz(g, base.with_suffix(".npz"))
    base.with_suffix(".json").write_text(json.dumps(context, indent=2, default=str))
    return str(base.with_suffix(".npz"))


# ------------------------------------------------------------------ #
# Runners
# ------------------------------------------------------------------ #


def _select(
    registry: dict[str, Implementation], impls: Sequence[str] | None
) -> list[Implementation]:
    if impls is None:
        return list(registry.values())
    return [registry[name] for name in impls]


def run_apsp_differential(
    graphs: Iterable[tuple[str, CSRGraph]],
    impls: Sequence[str] | None = None,
    artifacts_dir: str | Path | None = None,
) -> DifferentialReport:
    """Cross-check every registered APSP implementation on ``graphs``."""
    selected = _select(APSP_REGISTRY, impls)
    ref = _reference_of(APSP_REGISTRY)
    if ref.name not in [i.name for i in selected]:
        selected.insert(0, ref)
    out_dir = _artifact_path(artifacts_dir)
    report = DifferentialReport(kind="apsp", implementations=[i.name for i in selected])
    for gi, (name, g) in enumerate(graphs):
        report.graphs_run += 1
        want = np.asarray(ref.fn(g), dtype=np.float64)
        for impl in selected:
            if impl.name == ref.name:
                continue
            if impl.max_n is not None and g.n > impl.max_n:
                report.skipped += 1
                continue
            if gi % impl.stride != 0:
                report.skipped += 1
                continue
            got = np.asarray(impl.fn(g), dtype=np.float64)
            report.comparisons += 1
            detail = matrices_agree(want, got)
            if detail is not None:
                artifact = _save_artifact(
                    out_dir,
                    "apsp",
                    name,
                    g,
                    {"impl": impl.name, "reference": ref.name, "detail": detail},
                )
                report.disagreements.append(
                    Disagreement(impl.name, ref.name, name, g, detail, artifact)
                )
    return report


def run_mcb_differential(
    graphs: Iterable[tuple[str, CSRGraph]],
    impls: Sequence[str] | None = None,
    artifacts_dir: str | Path | None = None,
) -> DifferentialReport:
    """Cross-check every registered MCB implementation on ``graphs``.

    Each implementation's output must be a verified basis; basis *support
    weights* must agree with the reference (the minimum total weight is
    unique even when the basis itself is not).
    """
    from ..mcb.verify import verify_cycle_basis

    selected = _select(MCB_REGISTRY, impls)
    ref = _reference_of(MCB_REGISTRY)
    if ref.name not in [i.name for i in selected]:
        selected.insert(0, ref)
    out_dir = _artifact_path(artifacts_dir)
    report = DifferentialReport(kind="mcb", implementations=[i.name for i in selected])
    for gi, (name, g) in enumerate(graphs):
        report.graphs_run += 1
        # Baseline weight: the reference when it runs at this size, else the
        # first implementation that does (so large graphs still cross-check).
        baseline: tuple[str, float] | None = None
        if ref.max_n is None or g.n <= ref.max_n:
            baseline = (ref.name, _basis_weight(g, ref.fn(g)))
        for impl in selected:
            if impl.name == ref.name:
                continue
            if impl.max_n is not None and g.n > impl.max_n:
                report.skipped += 1
                continue
            if gi % impl.stride != 0:
                report.skipped += 1
                continue
            cycles = impl.fn(g)
            report.comparisons += 1
            rep = verify_cycle_basis(g, cycles)
            detail = None
            if not rep.ok:
                detail = f"not a cycle basis: {rep.message}"
            else:
                w = _basis_weight(g, cycles)
                if baseline is None:
                    baseline = (impl.name, w)
                elif not np.isclose(w, baseline[1], rtol=RTOL, atol=ATOL):
                    detail = (
                        f"basis weight {w:.17g} != {baseline[0]}'s {baseline[1]:.17g}"
                    )
            if detail is not None:
                artifact = _save_artifact(
                    out_dir,
                    "mcb",
                    name,
                    g,
                    {"impl": impl.name, "reference": ref.name, "detail": detail},
                )
                report.disagreements.append(
                    Disagreement(impl.name, ref.name, name, g, detail, artifact)
                )
    return report


def run_suite(
    count: int = 200,
    seed: int = 0,
    mcb_count: int | None = None,
    artifacts_dir: str | Path | None = None,
) -> dict[str, DifferentialReport]:
    """The full conformance sweep: APSP + MCB differential on one corpus.

    MCB implementations are superlinear in the cycle-space dimension, so
    they run on the first ``mcb_count`` (default: half) corpus graphs.
    """
    from .strategies import corpus

    graphs = corpus(count=count, seed=seed)
    if mcb_count is None:
        mcb_count = max(1, count // 2)
    return {
        "apsp": run_apsp_differential(graphs, artifacts_dir=artifacts_dir),
        "mcb": run_mcb_differential(graphs[:mcb_count], artifacts_dir=artifacts_dir),
    }
